#include <gtest/gtest.h>

#include "test_util.h"

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "common/rng.h"
#include "rowstore/rowstore_table.h"
#include "rowstore/skiplist.h"

namespace s2 {
namespace {

// --- SkipList ---

TEST(SkipListTest, InsertFindOrder) {
  SkipList list;
  bool created;
  list.GetOrInsert("banana", &created);
  EXPECT_TRUE(created);
  list.GetOrInsert("apple", &created);
  list.GetOrInsert("cherry", &created);
  list.GetOrInsert("banana", &created);
  EXPECT_FALSE(created) << "second insert of same key finds existing node";
  EXPECT_EQ(list.num_nodes(), 3u);

  std::vector<std::string> keys;
  for (auto* node = list.First(); node != nullptr; node = SkipList::Next(node)) {
    keys.push_back(node->key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry"}));

  EXPECT_NE(list.Find("apple"), nullptr);
  EXPECT_EQ(list.Find("grape"), nullptr);
  EXPECT_EQ(list.Seek("b")->key, "banana");
  EXPECT_EQ(list.Seek("zzz"), nullptr);
}

TEST(SkipListTest, ConcurrentInsertsAllPresent) {
  SkipList list;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&list, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Heavy key overlap across threads stresses the CAS retry path.
        std::string key = "key" + std::to_string((i * kThreads + t) % 6000);
        bool created;
        list.GetOrInsert(key, &created);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(list.num_nodes(), 6000u);
  // Order invariant holds after the storm.
  std::string prev;
  size_t count = 0;
  for (auto* node = list.First(); node != nullptr; node = SkipList::Next(node)) {
    if (count > 0) {
      EXPECT_LT(prev, node->key);
    }
    prev = node->key;
    ++count;
  }
  EXPECT_EQ(count, 6000u);
}

TEST(SkipListTest, ModelCheckAgainstStdMap) {
  SkipList list;
  std::set<std::string> model;
  const uint64_t seed = TestSeed(99);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(800));
    bool created;
    list.GetOrInsert(key, &created);
    EXPECT_EQ(created, model.insert(key).second);
  }
  EXPECT_EQ(list.num_nodes(), model.size());
  for (const std::string& key : model) {
    EXPECT_NE(list.Find(key), nullptr) << key;
  }
}

// --- RowStoreTable ---

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"score", DataType::kDouble}});
}

Row MakeRow(int64_t id, std::string name, double score) {
  return Row{Value(id), Value(std::move(name)), Value(score)};
}

class RowStoreTest : public ::testing::Test {
 protected:
  RowStoreTest() : table_(TestSchema(), {0}) {}

  // Helper: run an autocommit single-op transaction.
  Status Commit1(TxnId txn, Timestamp ts, Status op_result) {
    if (!op_result.ok()) {
      table_.AbortTxn(txn);
      return op_result;
    }
    table_.CommitTxn(txn, ts);
    return Status::OK();
  }

  RowStoreTable table_;
};

TEST_F(RowStoreTest, InsertGetVisibility) {
  ASSERT_TRUE(table_.Insert(1, 0, MakeRow(7, "alice", 1.5)).ok());
  // Uncommitted: visible to own txn only.
  EXPECT_TRUE(table_.Get(1, 0, {Value(int64_t{7})}).ok());
  EXPECT_TRUE(table_.Get(2, 10, {Value(int64_t{7})}).status().IsNotFound());
  table_.CommitTxn(1, 5);
  // Committed at ts 5: visible at read_ts >= 5.
  EXPECT_TRUE(table_.Get(2, 5, {Value(int64_t{7})}).ok());
  EXPECT_TRUE(table_.Get(2, 4, {Value(int64_t{7})}).status().IsNotFound());
  EXPECT_EQ((*table_.Get(2, 5, {Value(int64_t{7})}))[1], Value("alice"));
}

TEST_F(RowStoreTest, DuplicateInsertRejected) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "a", 0))).ok());
  EXPECT_TRUE(table_.Insert(2, 5, MakeRow(1, "b", 0)).IsAlreadyExists());
  table_.AbortTxn(2);
}

TEST_F(RowStoreTest, DeleteAndReinsert) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "a", 0))).ok());
  ASSERT_TRUE(Commit1(2, 6, table_.Delete(2, 5, {Value(int64_t{1})})).ok());
  EXPECT_TRUE(table_.Get(9, 6, {Value(int64_t{1})}).status().IsNotFound());
  // Old snapshot still sees it (MVCC).
  EXPECT_TRUE(table_.Get(9, 5, {Value(int64_t{1})}).ok());
  // Key is reusable after delete.
  ASSERT_TRUE(Commit1(3, 7, table_.Insert(3, 6, MakeRow(1, "again", 1))).ok());
  EXPECT_EQ((*table_.Get(9, 7, {Value(int64_t{1})}))[1], Value("again"));
}

TEST_F(RowStoreTest, UpdateCreatesNewVersion) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "v1", 0))).ok());
  ASSERT_TRUE(
      Commit1(2, 8, table_.Update(2, 5, {Value(int64_t{1})}, MakeRow(1, "v2", 1)))
          .ok());
  EXPECT_EQ((*table_.Get(9, 8, {Value(int64_t{1})}))[1], Value("v2"));
  EXPECT_EQ((*table_.Get(9, 5, {Value(int64_t{1})}))[1], Value("v1"));
}

TEST_F(RowStoreTest, UpdateMissingRowFails) {
  EXPECT_TRUE(
      table_.Update(1, 0, {Value(int64_t{42})}, MakeRow(42, "x", 0)).IsNotFound());
  table_.AbortTxn(1);
}

TEST_F(RowStoreTest, AbortRollsBack) {
  ASSERT_TRUE(table_.Insert(1, 0, MakeRow(1, "doomed", 0)).ok());
  table_.AbortTxn(1);
  EXPECT_TRUE(table_.Get(2, 100, {Value(int64_t{1})}).status().IsNotFound());
  // Key usable afterwards.
  ASSERT_TRUE(Commit1(3, 5, table_.Insert(3, 0, MakeRow(1, "kept", 0))).ok());
  EXPECT_TRUE(table_.Get(2, 5, {Value(int64_t{1})}).ok());
}

TEST_F(RowStoreTest, WriteWriteConflictAborts) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "base", 0))).ok());
  // Txn 3 commits an update after txn 2's snapshot (ts 5)...
  ASSERT_TRUE(
      Commit1(3, 10, table_.Update(3, 5, {Value(int64_t{1})}, MakeRow(1, "w1", 0)))
          .ok());
  // ...so txn 2 (snapshot 5) must abort: first-committer-wins.
  Status s = table_.Update(2, 5, {Value(int64_t{1})}, MakeRow(1, "w2", 0));
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  table_.AbortTxn(2);
}

TEST_F(RowStoreTest, RowLockBlocksConcurrentWriter) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "base", 0))).ok());
  // Txn 2 locks the row by updating it, holds the lock (no commit yet).
  ASSERT_TRUE(
      table_.Update(2, 5, {Value(int64_t{1})}, MakeRow(1, "locked", 0)).ok());
  std::atomic<bool> t3_done{false};
  std::thread t3([&] {
    // Blocks on the row lock until txn 2 commits, then hits the
    // write-write conflict (snapshot 5 < txn 2's commit ts 10).
    Status s = table_.Update(3, 5, {Value(int64_t{1})}, MakeRow(1, "late", 0));
    EXPECT_TRUE(s.IsAborted());
    table_.AbortTxn(3);
    t3_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(t3_done.load()) << "writer should still be waiting on the lock";
  table_.CommitTxn(2, 10);
  t3.join();
  EXPECT_EQ((*table_.Get(9, 10, {Value(int64_t{1})}))[1], Value("locked"));
}

TEST_F(RowStoreTest, ScanVisibleInOrder) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(3, "c", 0))).ok());
  ASSERT_TRUE(Commit1(2, 6, table_.Insert(2, 5, MakeRow(1, "a", 0))).ok());
  ASSERT_TRUE(Commit1(3, 7, table_.Insert(3, 6, MakeRow(2, "b", 0))).ok());
  ASSERT_TRUE(Commit1(4, 8, table_.Delete(4, 7, {Value(int64_t{2})})).ok());

  std::vector<int64_t> ids;
  table_.Scan(9, 8, [&](const Row& row) {
    ids.push_back(row[0].as_int());
    return true;
  });
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 3}));

  // At ts 7 the deleted row is still visible.
  EXPECT_EQ(table_.CountVisible(7), 3u);
  EXPECT_EQ(table_.CountVisible(8), 2u);
  EXPECT_EQ(table_.CountVisible(4), 0u);
}

TEST_F(RowStoreTest, SecondaryIndexSeek) {
  RowStoreTable table(TestSchema(), {0});
  table.AddSecondaryIndex({1});  // by name
  ASSERT_TRUE(table.Insert(1, 0, MakeRow(1, "bob", 1)).ok());
  ASSERT_TRUE(table.Insert(1, 0, MakeRow(2, "alice", 2)).ok());
  ASSERT_TRUE(table.Insert(1, 0, MakeRow(3, "bob", 3)).ok());
  table.CommitTxn(1, 5);

  std::vector<int64_t> ids;
  ASSERT_TRUE(table
                  .IndexSeek(0, 9, 5, {Value("bob")},
                             [&](const Row& row) {
                               ids.push_back(row[0].as_int());
                               return true;
                             })
                  .ok());
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 3}));

  // Update moves id=1 from bob to carol: index reflects it.
  ASSERT_TRUE(table.Update(2, 5, {Value(int64_t{1})}, MakeRow(1, "carol", 1)).ok());
  table.CommitTxn(2, 6);
  ids.clear();
  ASSERT_TRUE(table
                  .IndexSeek(0, 9, 6, {Value("bob")},
                             [&](const Row& row) {
                               ids.push_back(row[0].as_int());
                               return true;
                             })
                  .ok());
  EXPECT_EQ(ids, (std::vector<int64_t>{3}));
  ids.clear();
  ASSERT_TRUE(table
                  .IndexSeek(0, 9, 6, {Value("carol")},
                             [&](const Row& row) {
                               ids.push_back(row[0].as_int());
                               return true;
                             })
                  .ok());
  EXPECT_EQ(ids, (std::vector<int64_t>{1}));
}

TEST_F(RowStoreTest, PurgeRemovesDeadRowsAndOldVersions) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_.Insert(1, 0, MakeRow(i, "row", 0)).ok());
  }
  table_.CommitTxn(1, 5);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table_.Delete(2, 5, {Value(int64_t{i})}).ok());
  }
  table_.CommitTxn(2, 6);
  EXPECT_EQ(table_.num_nodes(), 10u);
  size_t purged = table_.Purge(/*oldest_active=*/7);
  EXPECT_EQ(purged, 5u);
  EXPECT_EQ(table_.num_nodes(), 5u);
  EXPECT_EQ(table_.CountVisible(7), 5u);
}

TEST_F(RowStoreTest, PurgeKeepsRowsVisibleToActiveSnapshots) {
  ASSERT_TRUE(Commit1(1, 5, table_.Insert(1, 0, MakeRow(1, "a", 0))).ok());
  ASSERT_TRUE(Commit1(2, 6, table_.Delete(2, 5, {Value(int64_t{1})})).ok());
  // A snapshot at ts 5 is still active: purge must not remove the row.
  EXPECT_EQ(table_.Purge(/*oldest_active=*/5), 0u);
  EXPECT_TRUE(table_.Get(9, 5, {Value(int64_t{1})}).ok());
}

TEST_F(RowStoreTest, SnapshotRoundTrip) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        table_.Insert(1, 0, MakeRow(i, "n" + std::to_string(i), i * 0.5)).ok());
  }
  table_.CommitTxn(1, 5);
  ASSERT_TRUE(Commit1(2, 6, table_.Delete(2, 5, {Value(int64_t{50})})).ok());

  std::string snapshot = table_.SerializeSnapshot(6);

  RowStoreTable restored(TestSchema(), {0});
  ASSERT_TRUE(restored.RestoreSnapshot(snapshot, 1).ok());
  EXPECT_EQ(restored.CountVisible(1), 99u);
  EXPECT_TRUE(restored.Get(9, 1, {Value(int64_t{50})}).status().IsNotFound());
  EXPECT_EQ((*restored.Get(9, 1, {Value(int64_t{42})}))[1], Value("n42"));
}

TEST_F(RowStoreTest, ConcurrentDisjointWritersAllCommit) {
  constexpr int kThreads = 8;
  constexpr int kRows = 500;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> next_ts{10};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRows; ++i) {
        TxnId txn = 1000 + t * kRows + i;
        int64_t id = t * kRows + i;
        ASSERT_TRUE(table_.Insert(txn, 0, MakeRow(id, "w", 0)).ok());
        table_.CommitTxn(txn, next_ts.fetch_add(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table_.CountVisible(kTsMax), kThreads * kRows);
}

TEST_F(RowStoreTest, ConcurrentConflictingWritersOneKeyEachValueWins) {
  // Many txns race on a single key with immediate commit; exactly one
  // insert succeeds, the rest see AlreadyExists or Aborted.
  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  std::atomic<uint64_t> next_ts{10};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxnId txn = 77 + t;
      Status s = table_.Insert(txn, 0, MakeRow(1, "winner", t));
      if (s.ok()) {
        table_.CommitTxn(txn, next_ts.fetch_add(1));
        successes.fetch_add(1);
      } else {
        table_.AbortTxn(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 1);
  EXPECT_EQ(table_.CountVisible(kTsMax), 1u);
}

}  // namespace
}  // namespace s2
