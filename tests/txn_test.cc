#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "txn/txn_manager.h"

namespace s2 {
namespace {

TEST(TxnManagerTest, BeginAssignsFreshIdsAndSnapshot) {
  TxnManager txns;
  auto a = txns.Begin();
  auto b = txns.Begin();
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(a.read_ts, 0u) << "no commits yet";
  txns.EndRead(a.id);
  txns.EndRead(b.id);
}

TEST(TxnManagerTest, WatermarkAdvancesOnlyAfterFinish) {
  TxnManager txns;
  auto writer = txns.Begin();
  Timestamp cts = txns.PrepareCommit(writer.id);
  EXPECT_EQ(txns.watermark(), 0u)
      << "commit in progress: new readers must not see it yet";
  auto reader = txns.Begin();
  EXPECT_LT(reader.read_ts, cts);
  txns.FinishCommit(writer.id, cts);
  EXPECT_EQ(txns.watermark(), cts);
  auto reader2 = txns.Begin();
  EXPECT_EQ(reader2.read_ts, cts);
  txns.EndRead(reader.id);
  txns.EndRead(reader2.id);
}

TEST(TxnManagerTest, WatermarkHeldBackByOldestInFlightCommit) {
  TxnManager txns;
  auto t1 = txns.Begin();
  auto t2 = txns.Begin();
  Timestamp c1 = txns.PrepareCommit(t1.id);
  Timestamp c2 = txns.PrepareCommit(t2.id);
  EXPECT_LT(c1, c2);
  // Finish the NEWER commit first: watermark must stay below the older
  // still-stamping commit, or readers would see half of t1.
  txns.FinishCommit(t2.id, c2);
  EXPECT_LT(txns.watermark(), c1);
  txns.FinishCommit(t1.id, c1);
  EXPECT_EQ(txns.watermark(), c2);
}

TEST(TxnManagerTest, OldestActiveTracksReaders) {
  TxnManager txns;
  auto w = txns.Begin();
  txns.FinishCommit(w.id, txns.PrepareCommit(w.id));
  Timestamp after_first = txns.watermark();

  auto old_reader = txns.Begin();
  auto w2 = txns.Begin();
  txns.FinishCommit(w2.id, txns.PrepareCommit(w2.id));
  // The old reader pins the GC horizon at its snapshot.
  EXPECT_EQ(txns.oldest_active(), after_first);
  txns.EndRead(old_reader.id);
  EXPECT_EQ(txns.oldest_active(), txns.watermark());
}

TEST(TxnManagerTest, AbortReleasesSnapshot) {
  TxnManager txns;
  auto t = txns.Begin();
  txns.Abort(t.id);
  EXPECT_EQ(txns.oldest_active(), txns.watermark());
}

TEST(TxnManagerTest, AdvanceToBumpsClockAndWatermark) {
  TxnManager txns;
  txns.AdvanceTo(100);
  EXPECT_EQ(txns.watermark(), 100u);
  auto t = txns.Begin();
  Timestamp c = txns.PrepareCommit(t.id);
  EXPECT_GT(c, 100u);
  txns.FinishCommit(t.id, c);
}

TEST(TxnManagerTest, ConcurrentCommitTimestampsAreUniqueAndMonotonic) {
  TxnManager txns;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<Timestamp>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto h = txns.Begin();
        Timestamp c = txns.PrepareCommit(h.id);
        per_thread[t].push_back(c);
        txns.FinishCommit(h.id, c);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<Timestamp> all;
  for (const auto& v : per_thread) {
    Timestamp prev = 0;
    for (Timestamp c : v) {
      EXPECT_GT(c, prev) << "per-thread monotonicity";
      prev = c;
      EXPECT_TRUE(all.insert(c).second) << "duplicate commit ts " << c;
    }
  }
  EXPECT_EQ(all.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(txns.watermark(), size_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace s2
