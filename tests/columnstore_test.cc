#include <gtest/gtest.h>

#include <memory>

#include "columnstore/merger.h"
#include "columnstore/segment.h"
#include "columnstore/segment_meta.h"
#include "common/rng.h"

namespace s2 {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"tag", DataType::kString},
                 {"score", DataType::kDouble}});
}

Row MakeRow(int64_t id, std::string tag, double score) {
  return Row{Value(id), Value(std::move(tag)), Value(score)};
}

std::shared_ptr<Segment> BuildSegment(const std::vector<Row>& rows) {
  SegmentBuilder builder(TestSchema());
  for (const Row& row : rows) builder.AddRow(row);
  auto file = builder.Finish();
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  auto segment =
      Segment::Open(std::make_shared<const std::string>(std::move(*file)));
  EXPECT_TRUE(segment.ok()) << segment.status().ToString();
  return *segment;
}

TEST(SegmentTest, BuildOpenReadRows) {
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(MakeRow(i, "tag" + std::to_string(i % 3), i * 0.25));
  }
  auto segment = BuildSegment(rows);
  ASSERT_EQ(segment->num_rows(), 100u);
  ASSERT_EQ(segment->num_columns(), 3u);
  for (uint32_t r = 0; r < 100; ++r) {
    auto row = segment->ReadRow(r);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(*row, rows[r]) << "row " << r;
  }
  EXPECT_FALSE(segment->ReadRow(100).ok());
}

TEST(SegmentTest, ColumnStatsComputed) {
  auto segment = BuildSegment({MakeRow(5, "b", 2.5), MakeRow(1, "a", -1.0),
                               MakeRow(9, "c", 0.0)});
  EXPECT_EQ(segment->stats(0).min, Value(int64_t{1}));
  EXPECT_EQ(segment->stats(0).max, Value(int64_t{9}));
  EXPECT_EQ(segment->stats(1).min, Value("a"));
  EXPECT_EQ(segment->stats(1).max, Value("c"));
  EXPECT_EQ(segment->stats(2).min, Value(-1.0));
  EXPECT_FALSE(segment->stats(0).has_nulls);
}

TEST(SegmentTest, StatsEliminationChecks) {
  ColumnStats stats;
  stats.min = Value(int64_t{10});
  stats.max = Value(int64_t{20});
  EXPECT_TRUE(stats.MayContain(Value(int64_t{15})));
  EXPECT_TRUE(stats.MayContain(Value(int64_t{10})));
  EXPECT_FALSE(stats.MayContain(Value(int64_t{9})));
  EXPECT_FALSE(stats.MayContain(Value(int64_t{21})));
  EXPECT_FALSE(stats.MayContain(Value::Null()));
  EXPECT_TRUE(stats.MayOverlap(Value(int64_t{18}), Value(int64_t{30})));
  EXPECT_FALSE(stats.MayOverlap(Value(int64_t{21}), Value(int64_t{30})));
  EXPECT_TRUE(stats.MayOverlap(Value::Null(), Value(int64_t{12})));
  EXPECT_FALSE(stats.MayOverlap(Value::Null(), Value(int64_t{9})));
}

TEST(SegmentTest, NullsTrackedInStats) {
  SegmentBuilder builder(TestSchema());
  builder.AddRow({Value(int64_t{1}), Value::Null(), Value(1.0)});
  builder.AddRow({Value(int64_t{2}), Value("x"), Value(2.0)});
  auto file = builder.Finish();
  auto segment =
      Segment::Open(std::make_shared<const std::string>(std::move(*file)));
  ASSERT_TRUE(segment.ok());
  EXPECT_TRUE((*segment)->stats(1).has_nulls);
  EXPECT_EQ((*segment)->ReadRow(0)->at(1), Value::Null());
}

TEST(SegmentTest, AuxBlocksRoundTrip) {
  SegmentBuilder builder(TestSchema());
  builder.AddRow(MakeRow(1, "a", 1.0));
  builder.AddAuxBlock("idx.tag", "inverted-index-bytes");
  builder.AddAuxBlock("idx.id", "other-bytes");
  auto file = builder.Finish();
  auto segment =
      Segment::Open(std::make_shared<const std::string>(std::move(*file)));
  ASSERT_TRUE(segment.ok());
  auto block = (*segment)->aux_block("idx.tag");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->ToString(), "inverted-index-bytes");
  EXPECT_EQ((*segment)->aux_block("idx.id")->ToString(), "other-bytes");
  EXPECT_TRUE((*segment)->aux_block("absent").status().IsNotFound());
}

TEST(SegmentTest, CorruptFooterRejected) {
  SegmentBuilder builder(TestSchema());
  builder.AddRow(MakeRow(1, "a", 1.0));
  auto file = builder.Finish();
  std::string corrupt = *file;
  corrupt[corrupt.size() - 10] ^= 0xff;
  EXPECT_FALSE(
      Segment::Open(std::make_shared<const std::string>(corrupt)).ok());
  std::string truncated = file->substr(0, 4);
  EXPECT_FALSE(
      Segment::Open(std::make_shared<const std::string>(truncated)).ok());
}

TEST(SegmentMetaTest, EncodeDecodeRoundTrip) {
  SegmentMeta meta;
  meta.id = 42;
  meta.file_name = "seg_00000000000000001234_42";
  meta.num_rows = 1000;
  ColumnStats s;
  s.min = Value(int64_t{1});
  s.max = Value(int64_t{99});
  meta.stats.push_back(s);
  BitVector deletes(1000);
  deletes.Set(5);
  deletes.Set(999);
  meta.deletes = std::make_shared<const BitVector>(std::move(deletes));

  std::string buf;
  meta.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = SegmentMeta::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->file_name, meta.file_name);
  EXPECT_EQ(decoded->num_rows, 1000u);
  EXPECT_EQ(decoded->live_rows(), 998u);
  EXPECT_TRUE(decoded->deletes->Get(5));
  EXPECT_FALSE(decoded->deletes->Get(6));
}

TEST(RunPolicyTest, HealthyTreeNoMerge) {
  std::vector<SortedRun> runs(3);
  for (auto& r : runs) r.total_rows = 100;
  EXPECT_TRUE(PickRunsToMerge(runs, 4).empty());
}

TEST(RunPolicyTest, MergesSmallestRuns) {
  std::vector<SortedRun> runs(6);
  uint64_t sizes[] = {1000, 10, 500, 20, 5000, 30};
  for (int i = 0; i < 6; ++i) runs[i].total_rows = sizes[i];
  auto picked = PickRunsToMerge(runs, 4);
  // 6 runs, max 4: merge the 3 smallest (10, 20, 30) = indices 1, 3, 5.
  EXPECT_EQ(picked, (std::vector<size_t>{1, 3, 5}));
}

TEST(RunPolicyTest, RunCountStaysLogarithmic) {
  // Simulate many flushes with the policy applied after each.
  std::vector<SortedRun> runs;
  size_t max_observed = 0;
  for (int flush = 0; flush < 1000; ++flush) {
    runs.push_back(SortedRun{{}, 64});
    for (;;) {
      auto picked = PickRunsToMerge(runs, 8);
      if (picked.empty()) break;
      SortedRun merged;
      for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
        merged.total_rows += runs[*it].total_rows;
        runs.erase(runs.begin() + static_cast<long>(*it));
      }
      runs.push_back(merged);
    }
    max_observed = std::max(max_observed, runs.size());
  }
  EXPECT_LE(max_observed, 9u);
}

TEST(MergerTest, SortedMergeDropsDeletes) {
  auto seg1 = BuildSegment({MakeRow(1, "a", 1), MakeRow(3, "c", 3),
                            MakeRow(5, "e", 5)});
  auto seg2 = BuildSegment({MakeRow(2, "b", 2), MakeRow(4, "d", 4),
                            MakeRow(6, "f", 6)});
  auto deletes2 = std::make_shared<BitVector>(3);
  deletes2->Set(1);  // delete id=4

  SegmentMerger merger(TestSchema(), {0}, 100);
  RowMapping mapping;
  auto files = merger.Merge(
      {{seg1, nullptr}, {seg2, std::shared_ptr<const BitVector>(deletes2)}},
      &mapping);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  ASSERT_EQ(files->size(), 1u);
  auto merged =
      Segment::Open(std::make_shared<const std::string>((*files)[0]));
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ((*merged)->num_rows(), 5u);
  std::vector<int64_t> ids;
  for (uint32_t r = 0; r < 5; ++r) {
    ids.push_back((*merged)->ReadRow(r)->at(0).as_int());
  }
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2, 3, 5, 6}));

  // Mapping: seg1 rows land at output rows 0, 2, 3; seg2 row 1 dropped.
  EXPECT_EQ(mapping.where[0][0], (std::pair<uint32_t, uint32_t>{0, 0}));
  EXPECT_EQ(mapping.where[0][1], (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_EQ(mapping.where[1][1].second, RowMapping::kDropped);
  EXPECT_EQ(mapping.where[1][0], (std::pair<uint32_t, uint32_t>{0, 1}));
}

TEST(MergerTest, SplitsIntoBoundedSegments) {
  std::vector<Row> rows;
  for (int i = 0; i < 250; ++i) rows.push_back(MakeRow(i, "x", i));
  auto seg = BuildSegment(rows);
  SegmentMerger merger(TestSchema(), {0}, 100);
  auto files = merger.Merge({{seg, nullptr}}, nullptr);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 3u);  // 100 + 100 + 50
  auto last =
      Segment::Open(std::make_shared<const std::string>(files->back()));
  EXPECT_EQ((*last)->num_rows(), 50u);
}

TEST(MergerTest, NoSortKeyConcatenatesInOrder) {
  auto seg1 = BuildSegment({MakeRow(9, "z", 9), MakeRow(1, "a", 1)});
  auto seg2 = BuildSegment({MakeRow(5, "m", 5)});
  SegmentMerger merger(TestSchema(), {}, 100);
  auto files = merger.Merge({{seg1, nullptr}, {seg2, nullptr}}, nullptr);
  ASSERT_TRUE(files.ok());
  auto merged =
      Segment::Open(std::make_shared<const std::string>((*files)[0]));
  std::vector<int64_t> ids;
  for (uint32_t r = 0; r < (*merged)->num_rows(); ++r) {
    ids.push_back((*merged)->ReadRow(r)->at(0).as_int());
  }
  EXPECT_EQ(ids, (std::vector<int64_t>{9, 1, 5}));
}

TEST(MergerTest, AllRowsDeletedYieldsNoFiles) {
  auto seg = BuildSegment({MakeRow(1, "a", 1)});
  auto deletes = std::make_shared<BitVector>(1);
  deletes->Set(0);
  SegmentMerger merger(TestSchema(), {0}, 100);
  auto files =
      merger.Merge({{seg, std::shared_ptr<const BitVector>(deletes)}}, nullptr);
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty());
}

// Property sweep: merge random sorted segments and verify global order and
// exact multiset of surviving rows.
class MergerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergerPropertyTest, MergePreservesRowsAndOrder) {
  Rng rng(GetParam());
  size_t num_segments = 2 + rng.Uniform(4);
  std::vector<MergeInput> inputs;
  std::vector<int64_t> expected;
  for (size_t s = 0; s < num_segments; ++s) {
    size_t n = 1 + rng.Uniform(200);
    std::vector<int64_t> keys;
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(static_cast<int64_t>(rng.Uniform(1000)));
    }
    std::sort(keys.begin(), keys.end());
    std::vector<Row> rows;
    auto deletes = std::make_shared<BitVector>(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(MakeRow(keys[i], "t", 0));
      if (rng.Bernoulli(0.2)) {
        deletes->Set(static_cast<uint32_t>(i));
      } else {
        expected.push_back(keys[i]);
      }
    }
    inputs.push_back(
        {BuildSegment(rows), std::shared_ptr<const BitVector>(deletes)});
  }
  std::sort(expected.begin(), expected.end());

  SegmentMerger merger(TestSchema(), {0}, 64);
  auto files = merger.Merge(inputs, nullptr);
  ASSERT_TRUE(files.ok());
  std::vector<int64_t> actual;
  for (const std::string& f : *files) {
    auto seg = Segment::Open(std::make_shared<const std::string>(f));
    ASSERT_TRUE(seg.ok());
    for (uint32_t r = 0; r < (*seg)->num_rows(); ++r) {
      actual.push_back((*seg)->ReadRow(r)->at(0).as_int());
    }
  }
  EXPECT_EQ(actual, expected) << "merged output must be the sorted multiset "
                                 "of undeleted input rows";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergerPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace s2
