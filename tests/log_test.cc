#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "log/log_record.h"
#include "log/partition_log.h"
#include "log/snapshot.h"

namespace s2 {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-log-test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::string dir_;
};

LogRecord MakeRecord(TxnId txn, LogRecordType type, std::string payload) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.payload = std::move(payload);
  return rec;
}

TEST_F(LogTest, AppendCommitReplay) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  ASSERT_TRUE(log.ok());

  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "row-a"));
  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "row-b"));
  ASSERT_TRUE((*log)->Commit(1).ok());

  std::vector<std::pair<TxnId, std::string>> seen;
  ASSERT_TRUE((*log)
                  ->Replay(0, 0,
                           [&](Lsn, const LogRecord& rec) {
                             seen.emplace_back(rec.txn_id, rec.payload);
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(seen.size(), 3u);  // two inserts + commit marker
  EXPECT_EQ(seen[0].second, "row-a");
  EXPECT_EQ(seen[1].second, "row-b");
}

TEST_F(LogTest, DurableLsnAdvancesOnCommit) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->durable_lsn(), 0u);
  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "x"));
  EXPECT_EQ((*log)->durable_lsn(), 0u) << "append alone is not durable";
  ASSERT_TRUE((*log)->Commit(1).ok());
  EXPECT_GT((*log)->durable_lsn(), 0u);
  EXPECT_EQ((*log)->durable_lsn(), (*log)->next_lsn() - 12)
      << "durable end == next page's first record position - header";
}

TEST_F(LogTest, ReopenRecoversPosition) {
  LogOptions opts;
  opts.dir = dir_;
  Lsn end;
  {
    auto log = PartitionLog::Open(opts);
    ASSERT_TRUE(log.ok());
    (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "persisted"));
    ASSERT_TRUE((*log)->Commit(1).ok());
    end = (*log)->durable_lsn();
  }
  auto log = PartitionLog::Open(opts);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->durable_lsn(), end);
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Replay(0, 0,
                           [&](Lsn, const LogRecord&) {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST_F(LogTest, TornTailTruncatedOnOpen) {
  LogOptions opts;
  opts.dir = dir_;
  {
    auto log = PartitionLog::Open(opts);
    (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "good"));
    ASSERT_TRUE((*log)->Commit(1).ok());
  }
  // Simulate a crash mid-append: garbage at the tail.
  ASSERT_TRUE(AppendToFile(dir_ + "/log", "garbage-torn-page").ok());
  auto log = PartitionLog::Open(opts);
  ASSERT_TRUE(log.ok());
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Replay(0, 0,
                           [&](Lsn, const LogRecord&) {
                             ++count;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(count, 2) << "valid prefix survives, torn tail dropped";
  // And the log accepts new appends after recovery.
  (*log)->Append(MakeRecord(2, LogRecordType::kInsertRows, "after"));
  ASSERT_TRUE((*log)->Commit(2).ok());
}

// Torn-write sweep: cut the log at EVERY byte offset (simulating a crash
// partway through the tail append) and reopen. Recovery must stop cleanly
// at the last CRC-valid page — never fail, never read garbage — and the
// reopened log must accept new appends.
TEST_F(LogTest, TornWriteSweepEveryByteOffset) {
  LogOptions opts;
  opts.dir = dir_;
  std::vector<size_t> boundaries = {0};  // file size after each commit
  {
    auto log = PartitionLog::Open(opts);
    ASSERT_TRUE(log.ok());
    for (TxnId txn = 1; txn <= 3; ++txn) {
      (*log)->Append(MakeRecord(txn, LogRecordType::kInsertRows,
                                "payload-" + std::to_string(txn)));
      ASSERT_TRUE((*log)->Commit(txn).ok());
      auto size = FileSize(dir_ + "/log");
      ASSERT_TRUE(size.ok());
      boundaries.push_back(*size);
    }
  }
  auto pristine = ReadFileToString(dir_ + "/log");
  ASSERT_TRUE(pristine.ok());
  ASSERT_EQ(pristine->size(), boundaries.back());

  Env* env = Env::Default();
  std::string cut_dir = dir_ + "/cut";
  ASSERT_TRUE(env->CreateDirs(cut_dir).ok());
  LogOptions cut_opts;
  cut_opts.dir = cut_dir;
  for (size_t cut = 0; cut <= pristine->size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_TRUE(env->WriteStringToFile(cut_dir + "/log",
                                       pristine->substr(0, cut),
                                       /*sync=*/false)
                    .ok());
    auto log = PartitionLog::Open(cut_opts);
    ASSERT_TRUE(log.ok()) << "open must succeed at any torn offset";
    // Whole pages below the cut survive; a partially written page is
    // dropped in full. Each committed page holds 2 records.
    size_t complete_pages = 0;
    while (complete_pages + 1 < boundaries.size() &&
           boundaries[complete_pages + 1] <= cut) {
      ++complete_pages;
    }
    size_t count = 0;
    ASSERT_TRUE((*log)
                    ->Replay(0, 0,
                             [&](Lsn, const LogRecord&) {
                               ++count;
                               return Status::OK();
                             })
                    .ok());
    EXPECT_EQ(count, 2 * complete_pages);
    // The recovered log keeps working.
    (*log)->Append(MakeRecord(99, LogRecordType::kInsertRows, "resumed"));
    ASSERT_TRUE((*log)->Commit(99).ok());
    count = 0;
    ASSERT_TRUE((*log)
                    ->Replay(0, 0,
                             [&](Lsn, const LogRecord&) {
                               ++count;
                               return Status::OK();
                             })
                    .ok());
    EXPECT_EQ(count, 2 * complete_pages + 2);
  }
}

// A sink that records pages and can simulate being down.
class TestSink : public ReplicationSink {
 public:
  bool OnPage(Lsn lsn, Slice bytes) override {
    if (down) return false;
    pages[lsn] = bytes.ToString();
    return true;
  }

  // Replica-side view: contiguous byte stream rebuilt from pages.
  std::string Stream() const {
    std::string out;
    for (const auto& [lsn, bytes] : pages) {
      if (lsn < out.size()) continue;  // duplicate redelivery
      out.resize(lsn, 0);
      out += bytes;
    }
    return out;
  }

  std::map<Lsn, std::string> pages;
  bool down = false;
};

TEST_F(LogTest, ReplicationDeliversPagesAndAcks) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  TestSink sink;
  ASSERT_TRUE((*log)->AddSink(&sink).ok());

  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "r1"));
  ASSERT_TRUE((*log)->Commit(1).ok());
  (*log)->Append(MakeRecord(2, LogRecordType::kInsertRows, "r2"));
  ASSERT_TRUE((*log)->Commit(2).ok());

  // Replica can parse its rebuilt stream into the same records.
  std::vector<std::string> payloads;
  ASSERT_TRUE(PartitionLog::ParseStream(sink.Stream(), 0,
                                        [&](Lsn, const LogRecord& rec) {
                                          payloads.push_back(rec.payload);
                                          return Status::OK();
                                        })
                  .ok());
  ASSERT_EQ(payloads.size(), 4u);
  EXPECT_EQ(payloads[0], "r1");
  EXPECT_EQ(payloads[2], "r2");
}

TEST_F(LogTest, CommitFailsWithoutAckThenRecovers) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  TestSink sink;
  ASSERT_TRUE((*log)->AddSink(&sink).ok());

  sink.down = true;
  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "r1"));
  Status s = (*log)->Commit(1);
  EXPECT_TRUE(s.IsUnavailable());
  Lsn stalled = (*log)->durable_lsn();

  // Replica comes back; the pending page is redelivered on next commit.
  sink.down = false;
  (*log)->Append(MakeRecord(2, LogRecordType::kInsertRows, "r2"));
  ASSERT_TRUE((*log)->Commit(2).ok());
  EXPECT_GT((*log)->durable_lsn(), stalled);
  EXPECT_EQ(sink.pages.size(), 2u);
}

TEST_F(LogTest, LateSinkCatchesUp) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "early"));
  ASSERT_TRUE((*log)->Commit(1).ok());

  TestSink sink;
  ASSERT_TRUE((*log)->AddSink(&sink).ok());
  int count = 0;
  ASSERT_TRUE(PartitionLog::ParseStream(sink.Stream(), 0,
                                        [&](Lsn, const LogRecord&) {
                                          ++count;
                                          return Status::OK();
                                        })
                  .ok());
  EXPECT_EQ(count, 2) << "sink added later still sees earlier pages";
}

TEST_F(LogTest, BigTransactionSealsPagesEarly) {
  LogOptions opts;
  opts.dir = dir_;
  opts.page_size = 1024;
  auto log = PartitionLog::Open(opts);
  TestSink sink;
  ASSERT_TRUE((*log)->AddSink(&sink).ok());

  // One large uncommitted transaction spanning many pages: replica should
  // already have pages before the commit ("replicated early").
  for (int i = 0; i < 100; ++i) {
    (*log)->Append(MakeRecord(7, LogRecordType::kInsertRows,
                              std::string(100, 'x')));
  }
  EXPECT_GT(sink.pages.size(), 5u);
  ASSERT_TRUE((*log)->Commit(7).ok());
}

TEST_F(LogTest, ReadRangeReturnsChunks) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  (*log)->Append(MakeRecord(1, LogRecordType::kInsertRows, "chunk-data"));
  ASSERT_TRUE((*log)->Commit(1).ok());
  Lsn durable = (*log)->durable_lsn();

  auto chunk = (*log)->ReadRange(0, durable);
  ASSERT_TRUE(chunk.ok());
  // The chunk parses standalone — this is what gets uploaded to blob.
  int count = 0;
  ASSERT_TRUE(PartitionLog::ParseStream(*chunk, 0,
                                        [&](Lsn, const LogRecord&) {
                                          ++count;
                                          return Status::OK();
                                        })
                  .ok());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE((*log)->ReadRange(0, durable + 999).ok());
}

TEST_F(LogTest, AbortMarkerWritten) {
  LogOptions opts;
  opts.dir = dir_;
  auto log = PartitionLog::Open(opts);
  (*log)->Append(MakeRecord(5, LogRecordType::kInsertRows, "doomed"));
  (*log)->Abort(5);
  (*log)->Append(MakeRecord(6, LogRecordType::kInsertRows, "ok"));
  ASSERT_TRUE((*log)->Commit(6).ok());

  bool saw_abort = false;
  ASSERT_TRUE((*log)
                  ->Replay(0, 0,
                           [&](Lsn, const LogRecord& rec) {
                             if (rec.type == LogRecordType::kAbort &&
                                 rec.txn_id == 5) {
                               saw_abort = true;
                             }
                             return Status::OK();
                           })
                  .ok());
  EXPECT_TRUE(saw_abort);
}

TEST(SnapshotTest, WriteListLoadTrim) {
  auto dir = MakeTempDir("s2-snap-test");
  ASSERT_TRUE(dir.ok());
  SnapshotStore store(*dir);

  ASSERT_TRUE(store.Write(100, "state-at-100").ok());
  ASSERT_TRUE(store.Write(500, "state-at-500").ok());
  ASSERT_TRUE(store.Write(900, "state-at-900").ok());

  auto lsns = store.List();
  ASSERT_TRUE(lsns.ok());
  EXPECT_EQ(*lsns, (std::vector<Lsn>{100, 500, 900}));

  auto at_600 = store.LatestAtOrBelow(600);
  ASSERT_TRUE(at_600.ok());
  EXPECT_EQ(at_600->first, 500u);
  EXPECT_EQ(at_600->second, "state-at-500");

  auto latest = store.LatestAtOrBelow(~0ULL);
  EXPECT_EQ(latest->first, 900u);

  EXPECT_TRUE(store.LatestAtOrBelow(50).status().IsNotFound());

  ASSERT_TRUE(store.TrimBelow(500).ok());
  EXPECT_EQ(*store.List(), (std::vector<Lsn>{500, 900}));
  (void)RemoveDirRecursive(*dir);
}

TEST(SnapshotTest, CorruptSnapshotRejected) {
  auto dir = MakeTempDir("s2-snap-test");
  ASSERT_TRUE(dir.ok());
  SnapshotStore store(*dir);
  ASSERT_TRUE(store.Write(10, "good-state").ok());
  // Flip a byte in the middle of the file.
  std::string path = *dir + "/" + SnapshotStore::FileName(10);
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  (*data)[2] ^= 0xff;
  ASSERT_TRUE(WriteFileAtomic(path, *data).ok());
  EXPECT_TRUE(store.LatestAtOrBelow(10).status().IsCorruption());
  (void)RemoveDirRecursive(*dir);
}

}  // namespace
}  // namespace s2
