// Crash-recovery torture harness: a randomized OLTP + maintenance workload
// runs against a partition whose filesystem is a FaultInjectionEnv; at each
// enumerated failpoint a fault fires (IO error, torn write, dropped sync,
// frozen process), the partition "crashes" (destroyed, optionally with
// unsynced data dropped to simulate power loss), recovery itself is crashed
// twice mid-flight, and the finally recovered state is checked against a
// model folded from the acknowledged commits:
//   - every acknowledged commit is visible,
//   - no unacknowledged commit is visible (acked-prefix under power loss),
//   - multi-row transactions are atomic,
//   - secondary indexes agree with table contents,
//   - recovery is idempotent (a second clean reopen yields the same state),
//   - the partition accepts new commits after recovery.
//
// Every run prints its RNG seed via SCOPED_TRACE; rerun a failure with
// S2_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/flight_recorder.h"
#include "common/rng.h"
#include "storage/partition.h"
#include "test_util.h"

namespace s2 {
namespace {

Schema LedgerSchema() {
  return Schema({{"account", DataType::kInt64},
                 {"owner", DataType::kString},
                 {"balance", DataType::kDouble}});
}

TableOptions LedgerTable() {
  TableOptions t;
  t.schema = LedgerSchema();
  t.unique_key = {0};
  t.indexes = {{0}, {1}};
  t.sort_key = {0};
  t.segment_rows = 32;
  t.flush_threshold = 32;
  t.max_sorted_runs = 3;
  return t;
}

std::string OwnerOf(int64_t account) {
  return "o" + std::to_string(account % 5);
}

/// One write of a recorded transaction: an upsert or a tombstone.
struct WriteOp {
  int64_t account = 0;
  bool tombstone = false;
  double value = 0;
};

/// One transaction the workload attempted to commit.
struct TxnRec {
  std::vector<WriteOp> writes;
  bool acked = false;  // Partition::Commit returned OK
};

using Model = std::map<int64_t, double>;

/// Folds the first `acked_limit` acknowledged transactions (unacknowledged
/// ones never apply: the log withdraws the commit marker when the local
/// append fails, and frozen/torn writes never reach disk).
Model Fold(const std::vector<TxnRec>& history, size_t acked_limit) {
  Model m;
  size_t acked_seen = 0;
  for (const TxnRec& rec : history) {
    if (!rec.acked) continue;
    if (acked_seen++ >= acked_limit) break;
    for (const WriteOp& w : rec.writes) {
      if (w.tombstone) {
        m.erase(w.account);
      } else {
        m[w.account] = w.value;
      }
    }
  }
  return m;
}

/// What a failpoint run injects and which end-state invariant applies.
struct FaultPlan {
  bool use_env_fault = true;
  EnvOp op = EnvOp::kAppend;
  std::string tag;
  FaultSpec spec;
  /// Simulate power loss at the crash: unsynced bytes vanish.
  bool power_loss = false;
  /// Dropped syncs can lose an acked suffix; accept any acked prefix
  /// instead of requiring exact equality with the full acked fold.
  bool accept_acked_prefix = false;
  /// Script this many MemBlobStore Put failures instead of an env fault.
  int blob_put_failures = 0;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = TestSeed(20260807);
    auto dir = MakeTempDir("s2-crash");
    ASSERT_TRUE(dir.ok());
    base_dir_ = *dir;
  }

  void TearDown() override {
    // On a torture failure, dump a flight-recorder bundle (metrics,
    // journal tail, trace) for the post-mortem before the scratch state
    // goes away. S2_FLIGHT_DIR overrides the destination; CI uploads it
    // as a workflow artifact.
    if (::testing::Test::HasFailure()) {
      const char* flight_dir = std::getenv("S2_FLIGHT_DIR");
      FlightRecorderOptions fr;
      fr.dir = std::string(flight_dir != nullptr ? flight_dir
                                                 : "crash-flight-recorder") +
               "/" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
      Status s = DumpFlightRecorder(fr);
      if (s.ok()) {
        fprintf(stderr, "flight recorder bundle: %s\n", fr.dir.c_str());
      }
    }
    partition_.reset();
    (void)RemoveDirRecursive(base_dir_);
  }

  void Open(const std::string& dir, FaultInjectionEnv* env) {
    PartitionOptions opts;
    opts.dir = dir;
    opts.blob = &blob_;
    opts.blob_prefix = "p/";
    opts.background_uploads = false;
    opts.auto_maintain = true;
    opts.sync_to_disk = true;
    opts.env = env;
    partition_ = std::make_unique<Partition>(opts);
    ASSERT_TRUE(partition_->Init().ok());
  }

  /// Runs `ops` randomized transactions with maintenance interleaved,
  /// recording every attempted commit into `history`.
  void RunWorkload(Rng* rng, int ops, std::vector<TxnRec>* history) {
    auto table = partition_->GetTable("ledger");
    ASSERT_TRUE(table.ok());
    UnifiedTable* ledger = *table;
    for (int i = 0; i < ops; ++i) {
      if (i % 7 == 5) (void)partition_->Maintain();
      if (i % 13 == 11) (void)partition_->WriteSnapshot();
      if (i % 17 == 16) (void)partition_->UploadToBlob();

      TxnRec rec;
      auto h = partition_->Begin();
      Status s;
      int kind = static_cast<int>(rng->Uniform(4));
      if (kind == 3) {
        // Paired upsert: two accounts written atomically with the same
        // value; recovery must never show one without the other.
        int64_t a = 2000 + 2 * static_cast<int64_t>(rng->Uniform(15));
        double v = static_cast<double>(rng->Uniform(100000));
        s = ledger
                ->InsertRows(h.id, h.read_ts,
                             {{Value(a), Value(OwnerOf(a)), Value(v)},
                              {Value(a + 1), Value(OwnerOf(a + 1)), Value(v)}},
                             DupPolicy::kUpdate)
                .status();
        rec.writes = {{a, false, v}, {a + 1, false, v}};
      } else {
        int64_t account = static_cast<int64_t>(rng->Uniform(60));
        double v = static_cast<double>(rng->Uniform(100000));
        if (kind == 0) {
          s = ledger
                  ->InsertRows(
                      h.id, h.read_ts,
                      {{Value(account), Value(OwnerOf(account)), Value(v)}},
                      DupPolicy::kUpdate)
                  .status();
          rec.writes = {{account, false, v}};
        } else if (kind == 1) {
          s = ledger->UpdateByKey(
              h.id, h.read_ts, {Value(account)},
              {Value(account), Value(OwnerOf(account)), Value(v)});
          rec.writes = {{account, false, v}};
        } else {
          s = ledger->DeleteByKey(h.id, h.read_ts, {Value(account)});
          rec.writes = {{account, true, 0}};
        }
      }
      if (!s.ok()) {
        // Staging failed (e.g. update/delete of an absent key, or the env
        // is frozen): nothing to commit.
        partition_->Abort(h.id);
        continue;
      }
      Status cs = partition_->Commit(h.id);
      rec.acked = cs.ok();
      if (!cs.ok()) partition_->Abort(h.id);
      history->push_back(std::move(rec));
    }
  }

  /// Full logical content: rowstore scan + visible segment rows.
  Model Balances() {
    Model out;
    auto table = partition_->GetTable("ledger");
    if (!table.ok()) return out;
    auto h = partition_->Begin();
    (*table)->ScanRowstore(h.id, h.read_ts,
                           [&](const Row& row, const RowLocation&) {
                             out[row[0].as_int()] = row[2].as_double();
                             return true;
                           });
    auto segments = (*table)->GetSegments(h.read_ts);
    EXPECT_TRUE(segments.ok());
    for (const SegmentSnapshot& snap : *segments) {
      for (uint32_t r = 0; r < snap.segment->num_rows(); ++r) {
        if (snap.deletes != nullptr && snap.deletes->Get(r)) continue;
        Row row = *snap.segment->ReadRow(r);
        out[row[0].as_int()] = row[2].as_double();
      }
    }
    partition_->EndRead(h.id);
    return out;
  }

  /// Index-vs-content agreement: every present account resolves through
  /// the unique-key index to exactly one row with the scanned balance;
  /// absent accounts resolve to nothing; the owner index counts match.
  void CheckIndexesAgree(const Model& state) {
    auto table = partition_->GetTable("ledger");
    ASSERT_TRUE(table.ok());
    auto h = partition_->Begin();
    for (const auto& [account, balance] : state) {
      int found = 0;
      double got = 0;
      ASSERT_TRUE((*table)
                      ->LookupByIndex(h.id, h.read_ts, {0}, {Value(account)},
                                      [&](const Row& row, const RowLocation&) {
                                        ++found;
                                        got = row[2].as_double();
                                        return true;
                                      })
                      .ok());
      EXPECT_EQ(found, 1) << "unique-key lookup of account " << account;
      EXPECT_EQ(got, balance) << "account " << account;
    }
    for (int64_t absent : {int64_t{100}, int64_t{101}, int64_t{900000}}) {
      if (state.count(absent) > 0) continue;
      int found = 0;
      (void)(*table)->LookupByIndex(h.id, h.read_ts, {0}, {Value(absent)},
                                    [&](const Row&, const RowLocation&) {
                                      ++found;
                                      return true;
                                    });
      EXPECT_EQ(found, 0) << "absent account " << absent;
    }
    std::map<std::string, int> owner_counts;
    for (const auto& [account, balance] : state) ++owner_counts[OwnerOf(account)];
    for (int o = 0; o < 5; ++o) {
      std::string owner = "o" + std::to_string(o);
      int found = 0;
      ASSERT_TRUE((*table)
                      ->LookupByIndex(h.id, h.read_ts, {1}, {Value(owner)},
                                      [&](const Row&, const RowLocation&) {
                                        ++found;
                                        return true;
                                      })
                      .ok());
      EXPECT_EQ(found, owner_counts[owner]) << "owner index " << owner;
    }
    partition_->EndRead(h.id);
  }

  /// Paired accounts must be both present (with equal balances, since every
  /// pair transaction writes the same value to both) or both absent.
  void CheckPairAtomicity(const Model& state) {
    for (int64_t a = 2000; a < 2030; a += 2) {
      auto left = state.find(a);
      auto right = state.find(a + 1);
      ASSERT_EQ(left != state.end(), right != state.end())
          << "pair (" << a << ", " << a + 1 << ") is torn";
      if (left != state.end()) {
        EXPECT_EQ(left->second, right->second)
            << "pair (" << a << ", " << a + 1 << ") diverged";
      }
    }
  }

  /// The complete failpoint scenario; see the file comment.
  void RunTorture(const std::string& name, const FaultPlan& plan) {
    SCOPED_TRACE("failpoint=" + name +
                 " S2_TEST_SEED=" + std::to_string(seed_));
    std::string dir = base_dir_ + "/" + name;
    FaultInjectionEnv env;
    Rng rng(seed_);
    std::vector<TxnRec> history;

    Open(dir, &env);
    ASSERT_TRUE(partition_->CreateTable("ledger", LedgerTable()).ok());

    // Warmup: committed baseline with snapshots, flushes, and uploads on
    // disk before any fault is armed. Every commit must ack. (Ops whose
    // staging fails — updates/deletes of absent keys — are not recorded.)
    RunWorkload(&rng, 40, &history);
    for (const TxnRec& rec : history) ASSERT_TRUE(rec.acked);
    size_t warmup_recorded = history.size();
    ASSERT_TRUE(partition_->WriteSnapshot().ok());

    // Arm the failpoint, then keep the workload running through it. Tags
    // are anchored to this run's directory so a failpoint name like
    // "log-append-error" in the path can't accidentally match a "/log"
    // substring.
    if (plan.use_env_fault) {
      env.InjectFault(plan.op, plan.tag.empty() ? "" : dir + plan.tag,
                      plan.spec);
    }
    if (plan.blob_put_failures > 0) blob_.FailNextPuts(plan.blob_put_failures);
    RunWorkload(&rng, 120, &history);
    if (plan.use_env_fault) {
      EXPECT_TRUE(env.FaultFired()) << "failpoint never hit; workload or "
                                       "tag is wrong";
    } else {
      // The scripted blob failures parked uploads; a retry must succeed
      // once the schedule is exhausted.
      EXPECT_TRUE(partition_->UploadToBlob().ok());
    }

    // Crash. Under power loss, everything not fsync'd is gone.
    env.Crash();
    partition_.reset();
    if (plan.power_loss) {
      ASSERT_TRUE(env.DropUnsyncedData().ok());
    }
    env.Unfreeze();

    // Crash recovery itself, twice, at successively deeper read points
    // (the log open, then the replay). Each attempt must fail cleanly.
    for (int attempt = 0; attempt < 2; ++attempt) {
      env.ClearFaults();
      FaultSpec read_fault;
      read_fault.mode = FaultSpec::Mode::kError;
      read_fault.skip = attempt;
      env.InjectFault(EnvOp::kRead, dir + "/log", read_fault);
      PartitionOptions opts;
      opts.dir = dir;
      opts.blob = &blob_;
      opts.blob_prefix = "p/";
      opts.background_uploads = false;
      opts.sync_to_disk = true;
      opts.env = &env;
      partition_ = std::make_unique<Partition>(opts);
      EXPECT_FALSE(partition_->Init().ok())
          << "recovery attempt " << attempt << " should have crashed";
      partition_.reset();
    }

    // Clean recovery must now succeed.
    env.ClearFaults();
    Open(dir, &env);

    Model recovered = Balances();
    Model full = Fold(history, ~size_t{0});
    if (plan.accept_acked_prefix) {
      // Dropped syncs + power loss: some acked suffix may be lost, but the
      // survivors must be a prefix of the acked history (no gaps, no
      // reordering, no partial transactions).
      size_t total_acked = 0;
      for (const TxnRec& rec : history) total_acked += rec.acked ? 1 : 0;
      bool is_prefix = false;
      size_t prefix_len = 0;
      // Scan from the longest prefix down so a coincidental earlier match
      // (states can repeat across delete/re-insert cycles) doesn't
      // understate how much survived.
      for (size_t k = total_acked + 1; k-- > 0;) {
        if (recovered == Fold(history, k)) {
          is_prefix = true;
          prefix_len = k;
          break;
        }
      }
      EXPECT_TRUE(is_prefix)
          << "recovered state is not a prefix of the acked history";
      // The warmup was fully synced (and snapshotted) before the fault
      // armed, so at least those commits must have survived.
      EXPECT_GE(prefix_len, warmup_recorded);
    } else {
      EXPECT_EQ(recovered, full)
          << "recovered state differs from the acked-commit fold";
    }
    CheckIndexesAgree(recovered);
    CheckPairAtomicity(recovered);

    // The recovered partition must accept and persist new commits.
    auto table = partition_->GetTable("ledger");
    ASSERT_TRUE(table.ok());
    for (int64_t account : {int64_t{5000}, int64_t{5001}, int64_t{5002}}) {
      auto h = partition_->Begin();
      ASSERT_TRUE((*table)
                      ->InsertRows(h.id, h.read_ts,
                                   {{Value(account), Value(OwnerOf(account)),
                                     Value(1.0)}},
                                   DupPolicy::kUpdate)
                      .ok());
      ASSERT_TRUE(partition_->Commit(h.id).ok());
    }
    Model after_writes = Balances();
    for (int64_t account : {int64_t{5000}, int64_t{5001}, int64_t{5002}}) {
      EXPECT_EQ(after_writes.count(account), 1u);
    }

    // Idempotence: recovering again from the same on-disk state yields the
    // identical result.
    partition_.reset();
    Open(dir, &env);
    EXPECT_EQ(Balances(), after_writes) << "second recovery diverged";
    partition_.reset();
  }

  uint64_t seed_ = 0;
  std::string base_dir_;
  MemBlobStore blob_;
  std::unique_ptr<Partition> partition_;
};

// ---------------------------------------------------------------------
// The failpoint catalog (see DESIGN.md). Each failpoint is one test so a
// failure names the exact broken recovery path.
// ---------------------------------------------------------------------

TEST_F(CrashRecoveryTest, LogAppendError) {
  FaultPlan plan;
  plan.op = EnvOp::kAppend;
  plan.tag = "/log";
  plan.spec.mode = FaultSpec::Mode::kError;
  RunTorture("log-append-error", plan);
}

TEST_F(CrashRecoveryTest, LogAppendTorn) {
  FaultPlan plan;
  plan.op = EnvOp::kAppend;
  plan.tag = "/log";
  plan.spec.mode = FaultSpec::Mode::kTorn;
  plan.spec.seed = seed_ + 1;
  RunTorture("log-append-torn", plan);
}

TEST_F(CrashRecoveryTest, LogAppendFreeze) {
  FaultPlan plan;
  plan.op = EnvOp::kAppend;
  plan.tag = "/log";
  plan.spec.mode = FaultSpec::Mode::kFreeze;
  RunTorture("log-append-freeze", plan);
}

TEST_F(CrashRecoveryTest, LogSyncDroppedThenPowerLoss) {
  FaultPlan plan;
  plan.op = EnvOp::kSync;
  plan.tag = "";  // a lying disk drops every fsync from here on
  plan.spec.mode = FaultSpec::Mode::kDropSync;
  plan.spec.count = 1 << 20;
  plan.power_loss = true;
  plan.accept_acked_prefix = true;
  RunTorture("log-sync-drop", plan);
}

TEST_F(CrashRecoveryTest, SnapshotWriteError) {
  FaultPlan plan;
  plan.op = EnvOp::kWrite;
  plan.tag = "/snapshots/";
  plan.spec.mode = FaultSpec::Mode::kError;
  plan.spec.count = 2;
  RunTorture("snapshot-write-error", plan);
}

TEST_F(CrashRecoveryTest, SnapshotRenameError) {
  // The rename fails after the temp file was written and synced: a stray
  // snap_<lsn>.tmp is left behind, which recovery must ignore.
  FaultPlan plan;
  plan.op = EnvOp::kRename;
  plan.tag = "/snapshots/";
  plan.spec.mode = FaultSpec::Mode::kError;
  plan.spec.count = 2;
  RunTorture("manifest-rename-error", plan);
}

TEST_F(CrashRecoveryTest, SegmentFileWriteError) {
  FaultPlan plan;
  plan.op = EnvOp::kWrite;
  plan.tag = "/files/";
  plan.spec.mode = FaultSpec::Mode::kError;
  plan.spec.count = 2;
  RunTorture("segment-file-write-error", plan);
}

TEST_F(CrashRecoveryTest, SegmentFileWriteFreeze) {
  FaultPlan plan;
  plan.op = EnvOp::kWrite;
  plan.tag = "/files/";
  plan.spec.mode = FaultSpec::Mode::kFreeze;
  RunTorture("segment-file-freeze", plan);
}

TEST_F(CrashRecoveryTest, BlobPutError) {
  FaultPlan plan;
  plan.use_env_fault = false;
  plan.blob_put_failures = 4;
  RunTorture("blob-put-error", plan);
}

}  // namespace
}  // namespace s2
