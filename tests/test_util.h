#ifndef S2_TESTS_TEST_UTIL_H_
#define S2_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace s2 {

/// Seed for a randomized test: `default_seed` unless the S2_TEST_SEED env
/// var overrides it (replaying a failure). Pair with
///   SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
/// so any assertion failure prints the seed to rerun with.
inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("S2_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return default_seed;
}

}  // namespace s2

#endif  // S2_TESTS_TEST_UTIL_H_
