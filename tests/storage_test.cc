#include <gtest/gtest.h>

#include "test_util.h"

#include <map>
#include <set>
#include <thread>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/rng.h"
#include "storage/partition.h"
#include "storage/unified_table.h"

namespace s2 {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"tag", DataType::kString},
                 {"amount", DataType::kDouble}});
}

Row MakeRow(int64_t id, std::string tag, double amount) {
  return Row{Value(id), Value(std::move(tag)), Value(amount)};
}

TableOptions SmallTableOptions() {
  TableOptions opts;
  opts.schema = TestSchema();
  opts.sort_key = {0};
  opts.indexes = {{0}, {1}};
  opts.unique_key = {0};
  opts.segment_rows = 64;      // tiny segments force multi-segment LSM
  opts.flush_threshold = 64;
  opts.max_sorted_runs = 4;
  return opts;
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-storage");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    Open();
  }

  void TearDown() override {
    partition_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  void Open(Lsn recover_to = 0) {
    PartitionOptions opts;
    opts.dir = dir_;
    opts.blob = &blob_;
    opts.blob_prefix = "part0/";
    opts.background_uploads = false;
    opts.auto_maintain = false;  // tests drive maintenance explicitly
    opts.recover_to_lsn = recover_to;
    partition_ = std::make_unique<Partition>(opts);
    ASSERT_TRUE(partition_->Init().ok());
  }

  void Reopen(Lsn recover_to = 0) {
    partition_.reset();
    Open(recover_to);
  }

  UnifiedTable* MakeTable(const TableOptions& opts = SmallTableOptions()) {
    auto table = partition_->CreateTable("t", opts);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return *table;
  }

  // Runs a writer txn to completion (commit), asserting success.
  template <typename Fn>
  void Txn(Fn&& fn) {
    auto h = partition_->Begin();
    Status s = fn(h);
    ASSERT_TRUE(s.ok()) << s.ToString();
    Status cs = partition_->Commit(h.id);
    ASSERT_TRUE(cs.ok()) << cs.ToString();
  }

  // Inserts [lo, hi) as single-row committed transactions.
  void InsertRange(UnifiedTable* table, int64_t lo, int64_t hi,
                   const std::string& tag = "t") {
    for (int64_t i = lo; i < hi; ++i) {
      Txn([&](TxnManager::TxnHandle h) {
        return table
            ->InsertRows(h.id, h.read_ts,
                         {MakeRow(i, tag + std::to_string(i % 7), i * 0.5)})
            .status();
      });
    }
  }

  // Collects all visible rows (rowstore + segments) at a fresh snapshot.
  std::map<int64_t, Row> AllRows(UnifiedTable* table) {
    auto h = partition_->Begin();
    std::map<int64_t, Row> out;
    table->ScanRowstore(h.id, h.read_ts,
                        [&](const Row& row, const RowLocation&) {
                          out[row[0].as_int()] = row;
                          return true;
                        });
    auto segments = table->GetSegments(h.read_ts);
    EXPECT_TRUE(segments.ok());
    for (const SegmentSnapshot& snap : *segments) {
      for (uint32_t r = 0; r < snap.segment->num_rows(); ++r) {
        if (snap.deletes != nullptr && snap.deletes->Get(r)) continue;
        auto row = snap.segment->ReadRow(r);
        EXPECT_TRUE(row.ok());
        out[(*row)[0].as_int()] = *row;
      }
    }
    partition_->EndRead(h.id);
    return out;
  }

  std::string dir_;
  MemBlobStore blob_;
  std::unique_ptr<Partition> partition_;
};

TEST_F(StorageTest, InsertAndLookupViaIndex) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 10);
  auto h = partition_->Begin();
  int found = 0;
  ASSERT_TRUE(table
                  ->LookupByIndex(h.id, h.read_ts, {0}, {Value(int64_t{7})},
                                  [&](const Row& row, const RowLocation&) {
                                    EXPECT_EQ(row[0], Value(int64_t{7}));
                                    ++found;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(found, 1);
  partition_->EndRead(h.id);
}

TEST_F(StorageTest, FlushMovesRowsToSegment) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 100);
  EXPECT_EQ(table->RowstoreRows(), 100u);
  EXPECT_EQ(table->NumSegments(), 0u);

  auto flushed = table->FlushRowstore();
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(*flushed, 64u) << "one segment worth of rows";
  EXPECT_EQ(table->NumSegments(), 1u);

  // All 100 rows still visible, split across rowstore + segment.
  EXPECT_EQ(AllRows(table).size(), 100u);
  // Point lookup still works through the index after flush.
  auto h = partition_->Begin();
  int found = 0;
  ASSERT_TRUE(table
                  ->LookupByIndex(h.id, h.read_ts, {0}, {Value(int64_t{3})},
                                  [&](const Row&, const RowLocation& loc) {
                                    EXPECT_FALSE(loc.in_rowstore);
                                    ++found;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(found, 1);
  partition_->EndRead(h.id);
}

TEST_F(StorageTest, UniqueKeyRejectsDuplicates) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 5);
  // Duplicate in rowstore.
  auto h = partition_->Begin();
  auto r = table->InsertRows(h.id, h.read_ts, {MakeRow(3, "dup", 0)});
  EXPECT_TRUE(r.status().IsAlreadyExists());
  partition_->Abort(h.id);

  // Duplicate in a segment (after flush).
  ASSERT_TRUE(table->FlushRowstore().ok());
  EXPECT_EQ(table->RowstoreRows(), 0u);
  auto h2 = partition_->Begin();
  auto r2 = table->InsertRows(h2.id, h2.read_ts, {MakeRow(3, "dup", 0)});
  EXPECT_TRUE(r2.status().IsAlreadyExists())
      << "uniqueness must be enforced through the columnstore index";
  partition_->Abort(h2.id);
}

TEST_F(StorageTest, DupPolicies) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 3);
  ASSERT_TRUE(table->FlushRowstore().ok());

  // kSkip: duplicate silently dropped.
  Txn([&](TxnManager::TxnHandle h) {
    auto r = table->InsertRows(h.id, h.read_ts,
                               {MakeRow(1, "skipped", 9), MakeRow(10, "new", 1)},
                               DupPolicy::kSkip);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, 1u);
    return Status::OK();
  });
  auto rows = AllRows(table);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[1][1], Value("skipped"));

  // kUpdate: duplicate overwritten in place.
  Txn([&](TxnManager::TxnHandle h) {
    return table
        ->InsertRows(h.id, h.read_ts, {MakeRow(1, "updated", 5)},
                     DupPolicy::kUpdate)
        .status();
  });
  rows = AllRows(table);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][1], Value("updated"));

  // kReplace: delete + insert.
  Txn([&](TxnManager::TxnHandle h) {
    return table
        ->InsertRows(h.id, h.read_ts, {MakeRow(2, "replaced", 7)},
                     DupPolicy::kReplace)
        .status();
  });
  rows = AllRows(table);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][1], Value("replaced"));
}

TEST_F(StorageTest, DeleteFromSegmentViaMoveTransaction) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 64);
  ASSERT_TRUE(table->FlushRowstore().ok());
  ASSERT_EQ(table->NumSegments(), 1u);
  uint64_t moves_before = table->stats().rows_moved.load();

  Txn([&](TxnManager::TxnHandle h) {
    return table->DeleteByKey(h.id, h.read_ts, {Value(int64_t{10})});
  });
  EXPECT_EQ(table->stats().rows_moved.load(), moves_before + 1)
      << "segment delete goes through a move transaction";
  auto rows = AllRows(table);
  EXPECT_EQ(rows.size(), 63u);
  EXPECT_EQ(rows.count(10), 0u);
  // The data file itself is immutable: only metadata changed.
  EXPECT_EQ(table->NumSegments(), 1u);
}

TEST_F(StorageTest, UpdateSegmentRowPreservesSnapshot) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 64);
  ASSERT_TRUE(table->FlushRowstore().ok());

  // Take a snapshot before the update.
  auto old_snap = partition_->Begin();

  Txn([&](TxnManager::TxnHandle h) {
    return table->UpdateByKey(h.id, h.read_ts, {Value(int64_t{5})},
                              MakeRow(5, "updated", 99));
  });

  // New snapshot sees the update; old snapshot still sees the original.
  auto rows = AllRows(table);
  EXPECT_EQ(rows[5][1], Value("updated"));

  std::map<int64_t, Row> old_rows;
  table->ScanRowstore(old_snap.id, old_snap.read_ts,
                      [&](const Row& row, const RowLocation&) {
                        old_rows[row[0].as_int()] = row;
                        return true;
                      });
  auto segments = table->GetSegments(old_snap.read_ts);
  ASSERT_TRUE(segments.ok());
  for (const SegmentSnapshot& snap : *segments) {
    for (uint32_t r = 0; r < snap.segment->num_rows(); ++r) {
      if (snap.deletes != nullptr && snap.deletes->Get(r)) continue;
      old_rows[(*snap.segment->ReadRow(r))[0].as_int()] =
          *snap.segment->ReadRow(r);
    }
  }
  EXPECT_EQ(old_rows[5][1], Value("t5")) << "old snapshot must not see the "
                                            "update (delete-vector MVCC)";
  EXPECT_EQ(old_rows.size(), 64u);
  partition_->EndRead(old_snap.id);
}

TEST_F(StorageTest, MergeCompactsRunsAndDropsDeletes) {
  UnifiedTable* table = MakeTable();
  // Build several runs via repeated flushes.
  for (int batch = 0; batch < 6; ++batch) {
    InsertRange(table, batch * 64, (batch + 1) * 64);
    ASSERT_TRUE(table->FlushRowstore().ok());
  }
  EXPECT_EQ(table->NumSegments(), 6u);
  // Delete some rows (they live in segments).
  for (int64_t id : {1, 65, 130, 200}) {
    Txn([&](TxnManager::TxnHandle h) {
      return table->DeleteByKey(h.id, h.read_ts, {Value(id)});
    });
  }
  auto merged = table->MaybeMergeRuns();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(*merged);

  auto rows = AllRows(table);
  EXPECT_EQ(rows.size(), 6 * 64 - 4u);
  for (int64_t id : {1, 65, 130, 200}) EXPECT_EQ(rows.count(id), 0u);
  // Index lookups still resolve to the new segments.
  auto h = partition_->Begin();
  int found = 0;
  ASSERT_TRUE(table
                  ->LookupByIndex(h.id, h.read_ts, {0}, {Value(int64_t{100})},
                                  [&](const Row&, const RowLocation&) {
                                    ++found;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(found, 1);
  partition_->EndRead(h.id);
}

TEST_F(StorageTest, DeleteDuringMergeIsRemapped) {
  // Deletes committed between the merge's scan and its install must land
  // in the new segments (Section 4.2 reconciliation). We simulate by
  // deleting from another thread while the merge runs; since the merge is
  // fast we also re-check correctness when the delete happens right
  // before/after. The invariant: no deleted row ever resurfaces.
  UnifiedTable* table = MakeTable();
  for (int batch = 0; batch < 6; ++batch) {
    InsertRange(table, batch * 64, (batch + 1) * 64);
    ASSERT_TRUE(table->FlushRowstore().ok());
  }
  std::thread deleter([&] {
    for (int64_t id = 0; id < 40; ++id) {
      auto h = partition_->Begin();
      Status s = table->DeleteByKey(h.id, h.read_ts, {Value(id)});
      if (s.ok()) {
        (void)partition_->Commit(h.id);
      } else {
        partition_->Abort(h.id);
      }
    }
  });
  (void)*table->MaybeMergeRuns();
  deleter.join();
  // Retry any deletes that aborted due to the merge race.
  for (int64_t id = 0; id < 40; ++id) {
    auto h = partition_->Begin();
    Status s = table->DeleteByKey(h.id, h.read_ts, {Value(id)});
    if (s.ok()) {
      ASSERT_TRUE(partition_->Commit(h.id).ok());
    } else {
      partition_->Abort(h.id);
      EXPECT_TRUE(s.IsNotFound() || s.IsAborted()) << s.ToString();
    }
  }
  auto rows = AllRows(table);
  EXPECT_EQ(rows.size(), 6 * 64 - 40u);
  for (int64_t id = 0; id < 40; ++id) {
    EXPECT_EQ(rows.count(id), 0u) << "deleted row " << id << " resurfaced";
  }
}

TEST_F(StorageTest, AbortRollsBackAcrossStores) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 64);
  ASSERT_TRUE(table->FlushRowstore().ok());

  auto h = partition_->Begin();
  ASSERT_TRUE(table->DeleteByKey(h.id, h.read_ts, {Value(int64_t{5})}).ok());
  ASSERT_TRUE(
      table->InsertRows(h.id, h.read_ts, {MakeRow(100, "x", 1)}).ok());
  partition_->Abort(h.id);

  auto rows = AllRows(table);
  EXPECT_EQ(rows.size(), 64u);
  EXPECT_EQ(rows.count(5), 1u) << "aborted delete must not stick";
  EXPECT_EQ(rows.count(100), 0u) << "aborted insert must not stick";
}

TEST_F(StorageTest, CommitNeverWritesToBlob) {
  UnifiedTable* table = MakeTable();
  uint64_t puts_before = blob_.stats().puts.load();
  InsertRange(table, 0, 50);
  EXPECT_EQ(blob_.stats().puts.load(), puts_before)
      << "commit path must not touch the blob store (Section 3.1)";
  // Uploads happen asynchronously/explicitly.
  ASSERT_TRUE(table->FlushRowstore().ok());
  ASSERT_TRUE(partition_->UploadToBlob().ok());
  EXPECT_GT(blob_.stats().puts.load(), puts_before);
}

TEST_F(StorageTest, RecoveryReplaysLog) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 100);
  ASSERT_TRUE(table->FlushRowstore().ok());
  Txn([&](TxnManager::TxnHandle h) {
    return table->DeleteByKey(h.id, h.read_ts, {Value(int64_t{7})});
  });
  Txn([&](TxnManager::TxnHandle h) {
    return table->UpdateByKey(h.id, h.read_ts, {Value(int64_t{8})},
                              MakeRow(8, "updated", 1));
  });
  auto before = AllRows(table);

  Reopen();
  auto recovered = partition_->GetTable("t");
  ASSERT_TRUE(recovered.ok());
  auto after = AllRows(*recovered);
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [id, row] : before) {
    ASSERT_EQ(after.count(id), 1u) << id;
    EXPECT_EQ(after[id], row) << id;
  }
  EXPECT_EQ(after[8][1], Value("updated"));
  EXPECT_EQ(after.count(7), 0u);
  // Indexes were rebuilt: point lookup works.
  auto h = partition_->Begin();
  int found = 0;
  ASSERT_TRUE((*recovered)
                  ->LookupByIndex(h.id, h.read_ts, {0}, {Value(int64_t{42})},
                                  [&](const Row&, const RowLocation&) {
                                    ++found;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(found, 1);
  partition_->EndRead(h.id);
}

TEST_F(StorageTest, UncommittedTxnNotRecovered) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 10);
  // Leave a transaction uncommitted at "crash" time.
  auto h = partition_->Begin();
  ASSERT_TRUE(table->InsertRows(h.id, h.read_ts, {MakeRow(99, "x", 0)}).ok());
  // Note: its records may sit in the unsealed log page or be sealed by
  // later commits; either way replay must not apply them without a commit
  // marker.
  Reopen();
  auto recovered = partition_->GetTable("t");
  auto rows = AllRows(*recovered);
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.count(99), 0u);
}

TEST_F(StorageTest, SnapshotShortensRecovery) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 100);
  ASSERT_TRUE(table->FlushRowstore().ok());
  ASSERT_TRUE(partition_->WriteSnapshot().ok());
  InsertRange(table, 100, 120);

  Reopen();
  auto recovered = partition_->GetTable("t");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(AllRows(*recovered).size(), 120u)
      << "snapshot + tail replay must equal full state";
}

TEST_F(StorageTest, PointInTimeRestore) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 50);
  Lsn checkpoint = partition_->log()->durable_lsn();
  InsertRange(table, 50, 80);
  Txn([&](TxnManager::TxnHandle h) {
    return table->DeleteByKey(h.id, h.read_ts, {Value(int64_t{3})});
  });

  // Restore to the LSN captured mid-history.
  Reopen(checkpoint);
  auto restored = partition_->GetTable("t");
  ASSERT_TRUE(restored.ok());
  auto rows = AllRows(*restored);
  EXPECT_EQ(rows.size(), 50u) << "PITR returns the state as of the target";
  EXPECT_EQ(rows.count(3), 1u) << "later delete undone by PITR";
  EXPECT_EQ(rows.count(60), 0u);
}

TEST_F(StorageTest, ColdReadThroughBlobAfterEviction) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 64);
  ASSERT_TRUE(table->FlushRowstore().ok());
  ASSERT_TRUE(partition_->UploadToBlob().ok());

  // Drop every local copy; reads must fall through to blob.
  Reopen();
  auto recovered = partition_->GetTable("t");
  // Remove local files dir to simulate full local cache loss.
  // (Reopen already reloaded from local; force the blob path instead by
  // evicting.)
  partition_->files()->EvictCold();
  auto rows = AllRows(*recovered);
  EXPECT_EQ(rows.size(), 64u);
}

TEST_F(StorageTest, WriteWriteConflictOnSameKeyAborts) {
  UnifiedTable* table = MakeTable();
  InsertRange(table, 0, 64);
  ASSERT_TRUE(table->FlushRowstore().ok());

  auto h1 = partition_->Begin();
  auto h2 = partition_->Begin();
  ASSERT_TRUE(table->UpdateByKey(h1.id, h1.read_ts, {Value(int64_t{5})},
                                 MakeRow(5, "w1", 0))
                  .ok());
  ASSERT_TRUE(partition_->Commit(h1.id).ok());
  // h2's snapshot predates h1's commit: must abort.
  Status s = table->UpdateByKey(h2.id, h2.read_ts, {Value(int64_t{5})},
                                MakeRow(5, "w2", 0));
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  partition_->Abort(h2.id);
  EXPECT_EQ(AllRows(table)[5][1], Value("w1"));
}

TEST_F(StorageTest, ConcurrentWorkloadModelCheck) {
  // Random inserts/deletes/updates from several threads with retries,
  // model-checked against a mutex-protected std::map at the end.
  TableOptions opts = SmallTableOptions();
  opts.segment_rows = 32;
  opts.flush_threshold = 32;
  UnifiedTable* table = MakeTable(opts);

  std::mutex model_mu;
  std::map<int64_t, std::string> model;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  const uint64_t seed = TestSeed(1000);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        int64_t id = static_cast<int64_t>(rng.Uniform(50));
        std::string tag = "v" + std::to_string(rng.Uniform(1000));
        int op = static_cast<int>(rng.Uniform(3));
        auto h = partition_->Begin();
        // Hold the model lock through commit so model order matches commit
        // order.
        std::unique_lock<std::mutex> model_lock(model_mu);
        Status s;
        if (op == 0) {
          s = table->InsertRows(h.id, h.read_ts, {MakeRow(id, tag, 1.0)})
                  .status();
          if (s.ok()) s = partition_->Commit(h.id);
          if (s.ok()) model[id] = tag;
        } else if (op == 1) {
          s = table->DeleteByKey(h.id, h.read_ts, {Value(id)});
          if (s.ok()) s = partition_->Commit(h.id);
          if (s.ok()) model.erase(id);
        } else {
          s = table->UpdateByKey(h.id, h.read_ts, {Value(id)},
                                 MakeRow(id, tag, 2.0));
          if (s.ok()) s = partition_->Commit(h.id);
          if (s.ok()) model[id] = tag;
        }
        if (!s.ok()) {
          model_lock.unlock();
          partition_->Abort(h.id);
        }
        // Occasional maintenance from a worker thread.
        if (i % 40 == 39 && t == 0) {
          (void)table->FlushRowstore();
          (void)table->MaybeMergeRuns();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  (void)*table->FlushRowstore();
  (void)*table->MaybeMergeRuns();

  auto rows = AllRows(table);
  ASSERT_EQ(rows.size(), model.size());
  for (const auto& [id, tag] : model) {
    ASSERT_EQ(rows.count(id), 1u) << id;
    EXPECT_EQ(rows[id][1], Value(tag)) << id;
  }
}

TEST_F(StorageTest, RecoveryAfterMergePreservesData) {
  UnifiedTable* table = MakeTable();
  for (int batch = 0; batch < 6; ++batch) {
    InsertRange(table, batch * 64, (batch + 1) * 64);
    ASSERT_TRUE(table->FlushRowstore().ok());
  }
  ASSERT_TRUE(*table->MaybeMergeRuns());
  auto before = AllRows(table);

  Reopen();
  auto recovered = partition_->GetTable("t");
  auto after = AllRows(*recovered);
  EXPECT_EQ(after.size(), before.size());
}

TEST_F(StorageTest, MultiColumnIndexLookup) {
  TableOptions opts;
  opts.schema = TestSchema();
  opts.indexes = {{0, 1}};  // multi-column index on (id, tag)
  opts.segment_rows = 32;
  opts.flush_threshold = 32;
  UnifiedTable* table = MakeTable(opts);
  for (int64_t i = 0; i < 64; ++i) {
    Txn([&](TxnManager::TxnHandle h) {
      return table
          ->InsertRows(h.id, h.read_ts,
                       {MakeRow(i % 8, "tag" + std::to_string(i % 4), i)})
          .status();
    });
  }
  ASSERT_TRUE(table->FlushRowstore().ok());
  ASSERT_TRUE(table->FlushRowstore().ok());

  auto h = partition_->Begin();
  // Full composite lookup.
  int full = 0;
  ASSERT_TRUE(table
                  ->LookupByIndex(h.id, h.read_ts, {0, 1},
                                  {Value(int64_t{1}), Value("tag1")},
                                  [&](const Row& row, const RowLocation&) {
                                    EXPECT_EQ(row[0], Value(int64_t{1}));
                                    EXPECT_EQ(row[1], Value("tag1"));
                                    ++full;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(full, 8);
  // Partial match on a single indexed column also works (per-column
  // indexes are shared, Section 4.1.1).
  int partial = 0;
  ASSERT_TRUE(table
                  ->LookupByIndex(h.id, h.read_ts, {1}, {Value("tag2")},
                                  [&](const Row& row, const RowLocation&) {
                                    EXPECT_EQ(row[1], Value("tag2"));
                                    ++partial;
                                    return true;
                                  })
                  .ok());
  EXPECT_EQ(partial, 16);
  partition_->EndRead(h.id);
}

TEST_F(StorageTest, IndexProbeCountStaysLogarithmic) {
  UnifiedTable* table = MakeTable();
  for (int batch = 0; batch < 20; ++batch) {
    InsertRange(table, batch * 64, (batch + 1) * 64);
    ASSERT_TRUE(table->FlushRowstore().ok());
    ASSERT_TRUE(table->MaybeMergeRuns().ok());
  }
  EXPECT_GE(table->NumSegments(), 3u);
  EXPECT_LE(table->IndexProbeTables(0), 9u)
      << "global index LSM keeps probe count O(log N), not O(#segments)";
}

}  // namespace
}  // namespace s2
