#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "common/bitvector.h"
#include "common/coding.h"
#include "common/env.h"
#include "common/executor.h"
#include "common/fault_env.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/types.h"

namespace s2 {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Aborted("conflict");
  Status t = s;
  EXPECT_TRUE(t.IsAborted());
  EXPECT_EQ(t.message(), "conflict");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> UseAssignOrReturn(int x) {
  S2_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*UseAssignOrReturn(3), 7);
  EXPECT_FALSE(UseAssignOrReturn(0).ok());
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice().empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  const uint64_t cases[] = {0,    1,        127,        128,
                            300,  16383,    16384,      (1ULL << 32),
                            ~0ULL, (1ULL << 63), 0xdeadbeefULL};
  for (uint64_t v : cases) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : cases) {
    auto r = GetVarint64(&in);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  EXPECT_FALSE(GetVarint64(&in).ok());
}

TEST(CodingTest, ZigZag) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-12345},
                    INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Slice in(buf);
  EXPECT_EQ(GetLengthPrefixed(&in)->ToString(), "hello");
  EXPECT_EQ(GetLengthPrefixed(&in)->ToString(), "");
  EXPECT_EQ(GetLengthPrefixed(&in)->size(), 1000u);
}

TEST(BitVectorTest, SetGetCount) {
  BitVector bv(130);
  EXPECT_EQ(bv.Count(), 0u);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 3u);
  bv.Clear(64);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVectorTest, EncodeDecodeRoundTrip) {
  Rng rng(42);
  BitVector bv(257);
  for (int i = 0; i < 100; ++i) bv.Set(static_cast<uint32_t>(rng.Uniform(257)));
  std::string buf;
  bv.EncodeTo(&buf);
  Slice in(buf);
  auto r = BitVector::DecodeFrom(&in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, bv);
  EXPECT_TRUE(in.empty());
}

TEST(BitVectorTest, UnionAndResize) {
  BitVector a(10), b(10);
  a.Set(1);
  b.Set(2);
  a.Union(b);
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(2));
  a.Resize(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_TRUE(a.Get(1));
  EXPECT_FALSE(a.Get(99));
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
  EXPECT_NE(Hash64("a"), Hash64("b"));
  // Seed changes the hash.
  EXPECT_NE(Hash64("hello", 1), Hash64("hello", 2));
  // Spread check: hash many keys, expect few collisions in 64-bit space.
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    std::string key = "key" + std::to_string(i);
    seen.insert(Hash64(key));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, DeterministicSequences) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRangeBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
    }
    pool.Shutdown();  // every task accepted before Shutdown still runs
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleCoversTasksThatEnqueueMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  // A chain: each task enqueues the next; WaitIdle must not return while
  // any link is still queued or running.
  std::function<void(int)> chain = [&](int depth) {
    count.fetch_add(1);
    if (depth > 0) pool.Submit([&chain, depth] { chain(depth - 1); });
  };
  ASSERT_TRUE(pool.Submit([&chain] { chain(20); }));
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 21);
}

TEST(ThreadPoolTest, TryRunOneStealsQueuedWork) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  // Occupy the single worker so further tasks stay queued.
  ASSERT_TRUE(pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  }));
  // Wait until the worker owns the blocker, so TryRunOne below can only
  // pick up the second task.
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  while (!pool.TryRunOne()) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 1);  // the caller executed the queued task
  release.store(true);
  pool.WaitIdle();
  EXPECT_FALSE(pool.TryRunOne());  // empty queue: nothing to steal
}

TEST(ExecutorTest, ParallelForEmptyRange) {
  Executor exec(4);
  int calls = 0;
  EXPECT_TRUE(exec.ParallelFor(0, [&](size_t) {
    ++calls;
    return Status::OK();
  }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(ExecutorTest, ParallelForVisitsEveryIndexOnce) {
  Executor exec(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ASSERT_TRUE(exec.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  }).ok());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecutorTest, ParallelForPropagatesFirstErrorAndCancels) {
  Executor exec(4);
  CancelToken cancel;
  std::atomic<int> after_error{0};
  Status s = exec.ParallelFor(
      1000,
      [&](size_t i) -> Status {
        if (i == 3) return Status::Internal("boom");
        if (cancel.cancelled()) after_error.fetch_add(1);
        return Status::OK();
      },
      &cancel);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
  EXPECT_TRUE(cancel.cancelled());  // error trips the token for siblings
}

TEST(ExecutorTest, ParallelForPreCancelledAborts) {
  Executor exec(2);
  CancelToken cancel;
  cancel.Cancel();
  int calls = 0;
  Status s = exec.ParallelFor(
      10,
      [&](size_t) {
        ++calls;
        return Status::OK();
      },
      &cancel);
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 0);
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  // A 2-thread pool with nested loops: without caller participation and
  // work-stealing waits, the outer iterations would occupy every worker
  // and the inner loops' helper tasks could never run.
  Executor exec(2);
  std::atomic<int> total{0};
  ASSERT_TRUE(exec.ParallelFor(8, [&](size_t) {
    return exec.ParallelFor(8, [&](size_t) {
      total.fetch_add(1);
      return Status::OK();
    });
  }).ok());
  EXPECT_EQ(total.load(), 64);
}

TEST(ExecutorTest, SubmitWithResultDeliversValue) {
  Executor exec(2);
  auto fut = exec.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ExecutorTest, SerialExecutorStillRunsLoops) {
  Executor exec(1);
  std::atomic<int> count{0};
  ASSERT_TRUE(exec.ParallelFor(100, [&](size_t) {
    count.fetch_add(1);
    return Status::OK();
  }).ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(ValueTest, CompareOrdering) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(int64_t{5})), 0);
  EXPECT_LT(Value(int64_t{4}).Compare(Value(int64_t{5})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.0)), 0);  // cross-numeric
  EXPECT_LT(Value(4.5).Compare(Value(int64_t{5})), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  // Numerics order before strings, deterministically.
  EXPECT_LT(Value(int64_t{5}).Compare(Value("5")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  Row row = {Value::Null(), Value(int64_t{-42}), Value(3.25), Value("hi"),
             Value(std::string(500, 'z'))};
  std::string buf;
  for (const Value& v : row) v.EncodeTo(&buf);
  Slice in(buf);
  for (const Value& v : row) {
    auto r = Value::DecodeFrom(&in);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v) << v.ToString();
  }
  EXPECT_TRUE(in.empty());
}

TEST(ValueTest, EncodeKeyDistinguishesTuples) {
  EXPECT_NE(EncodeKey(Row{Value("ab"), Value("c")}),
            EncodeKey(Row{Value("a"), Value("bc")}));
  EXPECT_EQ(EncodeKey(Row{Value(int64_t{1}), Value("x")}),
            EncodeKey(Row{Value(int64_t{1}), Value("x")}));
}

TEST(SchemaTest, FindColumn) {
  Schema schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  EXPECT_EQ(*schema.FindColumn("id"), 0);
  EXPECT_EQ(*schema.FindColumn("name"), 1);
  EXPECT_FALSE(schema.FindColumn("absent").ok());
  EXPECT_EQ(schema.num_columns(), 2u);
}

class EnvFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = env_.MakeTempDir("s2-env-fault");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)env_.RemoveDirRecursive(dir_); }

  FaultInjectionEnv env_;
  std::string dir_;
};

// WriteFileAtomic's crash-safety recipe, white-box: the temp file is
// written AND fsync'd before the rename, and the parent directory is
// fsync'd after — in that order. Skipping either step makes the rename
// non-durable (see the power-loss tests below).
TEST_F(EnvFaultTest, WriteFileAtomicSyncsTempThenRenamesThenSyncsDir) {
  std::string target = dir_ + "/target";
  ASSERT_TRUE(env_.WriteFileAtomic(target, "payload").ok());
  EXPECT_EQ(*env_.ReadFileToString(target), "payload");

  std::vector<EnvOp> ops;
  for (const auto& [op, path] : env_.History()) ops.push_back(op);
  std::vector<EnvOp> want = {EnvOp::kWrite, EnvOp::kSync, EnvOp::kRename,
                             EnvOp::kSyncDir};
  // `want` must appear as an ordered subsequence (MakeTempDir and the
  // read add other entries around it).
  size_t next = 0;
  for (EnvOp op : ops) {
    if (next < want.size() && op == want[next]) ++next;
  }
  EXPECT_EQ(next, want.size())
      << "temp write, temp fsync, rename, dir fsync must happen in order";
}

TEST_F(EnvFaultTest, WriteFileAtomicTempSyncFailureKeepsOldContents) {
  std::string target = dir_ + "/target";
  ASSERT_TRUE(env_.WriteFileAtomic(target, "old").ok());

  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kError;
  env_.InjectFault(EnvOp::kSync, ".tmp", spec);
  EXPECT_FALSE(env_.WriteFileAtomic(target, "new").ok());
  EXPECT_TRUE(env_.FaultFired());
  EXPECT_EQ(*env_.ReadFileToString(target), "old");

  // Even after power loss the old contents survive: the failed update
  // never renamed over the target.
  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_EQ(*env_.ReadFileToString(target), "old");
}

TEST_F(EnvFaultTest, WriteFileAtomicRenameFailureKeepsOldContents) {
  std::string target = dir_ + "/target";
  ASSERT_TRUE(env_.WriteFileAtomic(target, "old").ok());

  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kError;
  env_.InjectFault(EnvOp::kRename, "/target", spec);
  EXPECT_FALSE(env_.WriteFileAtomic(target, "new").ok());
  EXPECT_EQ(*env_.ReadFileToString(target), "old");
}

// The parent-directory fsync is what makes the rename durable: when a
// lying device drops it and power is lost, the freshly renamed file
// vanishes — it never holds a partial write.
TEST_F(EnvFaultTest, WriteFileAtomicDroppedDirSyncLosesFileWholesale) {
  std::string target = dir_ + "/fresh";
  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kDropSync;
  env_.InjectFault(EnvOp::kSyncDir, dir_, spec);
  ASSERT_TRUE(env_.WriteFileAtomic(target, "payload").ok());  // device lies
  EXPECT_TRUE(env_.FileExists(target));

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_FALSE(env_.FileExists(target))
      << "a rename without a durable dir entry must vanish at power loss";
}

// Control for the previous test: with every fsync honored, the atomic
// write survives power loss with its full contents.
TEST_F(EnvFaultTest, WriteFileAtomicSurvivesPowerLossIntact) {
  std::string target = dir_ + "/fresh";
  ASSERT_TRUE(env_.WriteFileAtomic(target, "payload").ok());
  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_EQ(*env_.ReadFileToString(target), "payload");
}

TEST_F(EnvFaultTest, TornAppendWritesStrictPrefixThenFreezes) {
  std::string path = dir_ + "/file";
  ASSERT_TRUE(env_.AppendToFile(path, "0123456789", /*sync=*/true).ok());

  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kTorn;
  spec.seed = 42;
  env_.InjectFault(EnvOp::kAppend, "/file", spec);
  EXPECT_FALSE(env_.AppendToFile(path, "abcdefghij", /*sync=*/true).ok());
  EXPECT_TRUE(env_.frozen());

  auto size = env_.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_GE(*size, 10u);  // the synced first append is intact
  EXPECT_LT(*size, 20u);  // the torn append is a strict prefix

  // Frozen: mutating calls fail, reads still work (recovery code reads
  // the "disk image" after the crash).
  EXPECT_FALSE(env_.AppendToFile(path, "x", false).ok());
  EXPECT_TRUE(env_.ReadFileToString(path).ok());
  env_.Unfreeze();
  EXPECT_TRUE(env_.AppendToFile(path, "x", false).ok());
}

TEST_F(EnvFaultTest, DropUnsyncedDataTruncatesUnsyncedAppends) {
  std::string path = dir_ + "/log";
  ASSERT_TRUE(env_.AppendToFile(path, "synced", /*sync=*/true).ok());

  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kDropSync;
  spec.count = 1 << 20;
  env_.InjectFault(EnvOp::kSync, "", spec);
  ASSERT_TRUE(env_.AppendToFile(path, "-lost", /*sync=*/true).ok());
  EXPECT_EQ(*env_.ReadFileToString(path), "synced-lost");

  ASSERT_TRUE(env_.DropUnsyncedData().ok());
  EXPECT_EQ(*env_.ReadFileToString(path), "synced");
}

TEST_F(EnvFaultTest, ErrorFaultHonorsSkipAndCount) {
  std::string path = dir_ + "/f";
  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kError;
  spec.skip = 1;
  spec.count = 2;
  env_.InjectFault(EnvOp::kWrite, "/f", spec);
  EXPECT_TRUE(env_.WriteStringToFile(path, "a", false).ok());   // skipped
  EXPECT_FALSE(env_.WriteStringToFile(path, "b", false).ok());  // fires
  EXPECT_FALSE(env_.WriteStringToFile(path, "c", false).ok());  // fires
  EXPECT_TRUE(env_.WriteStringToFile(path, "d", false).ok());   // exhausted
  EXPECT_EQ(*env_.ReadFileToString(path), "d");
}

}  // namespace
}  // namespace s2
