#include <gtest/gtest.h>

#include "test_util.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "common/rng.h"
#include "index/global_index.h"
#include "index/inverted_index.h"
#include "index/key_lock_manager.h"
#include "index/postings.h"

namespace s2 {
namespace {

std::vector<uint32_t> Drain(PostingsIterator it) {
  std::vector<uint32_t> out;
  while (it.Valid()) {
    out.push_back(it.row());
    it.Next();
  }
  return out;
}

TEST(PostingsTest, EncodeDecodeRoundTrip) {
  std::vector<uint32_t> rows = {0, 1, 5, 100, 101, 65000, 1000000};
  std::string buf;
  EncodePostings(rows, &buf);
  auto it = PostingsIterator::Open(buf);
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(it->count(), rows.size());
  EXPECT_EQ(Drain(*it), rows);
}

TEST(PostingsTest, EmptyList) {
  std::string buf;
  EncodePostings({}, &buf);
  auto it = PostingsIterator::Open(buf);
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  EXPECT_EQ(it->encoded_size(), buf.size());
}

TEST(PostingsTest, SeekToSkipsGroups) {
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < 10000; ++i) rows.push_back(i * 3);
  std::string buf;
  EncodePostings(rows, &buf);
  auto it = PostingsIterator::Open(buf);
  ASSERT_TRUE(it.ok());
  it->SeekTo(15000);
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->row(), 15000u);
  it->SeekTo(15001);
  EXPECT_EQ(it->row(), 15003u);
  it->SeekTo(29997);
  EXPECT_EQ(it->row(), 29997u);
  it->SeekTo(30000);
  EXPECT_FALSE(it->Valid());
}

TEST(PostingsTest, SeekToPropertySweep) {
  const uint64_t seed = TestSeed(31);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  std::vector<uint32_t> rows;
  uint32_t v = 0;
  for (int i = 0; i < 5000; ++i) {
    v += 1 + static_cast<uint32_t>(rng.Uniform(20));
    rows.push_back(v);
  }
  std::string buf;
  EncodePostings(rows, &buf);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t target = static_cast<uint32_t>(rng.Uniform(v + 100));
    auto it = PostingsIterator::Open(buf);
    ASSERT_TRUE(it.ok());
    it->SeekTo(target);
    auto expect = std::lower_bound(rows.begin(), rows.end(), target);
    if (expect == rows.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(it->row(), *expect) << "target " << target;
    }
  }
}

TEST(PostingsTest, EncodedSizeAllowsConcatenation) {
  std::string buf;
  EncodePostings({1, 2, 3}, &buf);
  size_t first_size = buf.size();
  EncodePostings({10, 20}, &buf);
  auto first = PostingsIterator::Open(buf);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->encoded_size(), first_size);
  auto second = PostingsIterator::Open(
      Slice(buf.data() + first->encoded_size(), buf.size() - first_size));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Drain(*second), (std::vector<uint32_t>{10, 20}));
}

TEST(PostingsTest, IntersectLeapfrog) {
  std::string a, b, c;
  EncodePostings({1, 3, 5, 7, 9, 100, 200}, &a);
  EncodePostings({2, 3, 7, 8, 100, 150, 200}, &b);
  EncodePostings({3, 7, 9, 100, 200, 300}, &c);
  std::vector<PostingsIterator> its;
  its.push_back(*PostingsIterator::Open(a));
  its.push_back(*PostingsIterator::Open(b));
  its.push_back(*PostingsIterator::Open(c));
  std::vector<uint32_t> out;
  ASSERT_TRUE(IntersectPostings(std::move(its), &out).ok());
  EXPECT_EQ(out, (std::vector<uint32_t>{3, 7, 100, 200}));
}

TEST(PostingsTest, UnionMerges) {
  std::string a, b;
  EncodePostings({1, 5, 9}, &a);
  EncodePostings({2, 5, 10}, &b);
  std::vector<PostingsIterator> its;
  its.push_back(*PostingsIterator::Open(a));
  its.push_back(*PostingsIterator::Open(b));
  std::vector<uint32_t> out;
  ASSERT_TRUE(UnionPostings(std::move(its), &out).ok());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 5, 9, 10}));
}

TEST(PostingsTest, IntersectRandomAgainstBruteForce) {
  const uint64_t seed = TestSeed(77);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<uint32_t> sa, sb;
    for (int i = 0; i < 300; ++i) {
      sa.insert(static_cast<uint32_t>(rng.Uniform(1000)));
      sb.insert(static_cast<uint32_t>(rng.Uniform(1000)));
    }
    std::vector<uint32_t> va(sa.begin(), sa.end()), vb(sb.begin(), sb.end());
    std::string ea, eb;
    EncodePostings(va, &ea);
    EncodePostings(vb, &eb);
    std::vector<uint32_t> expected;
    std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                          std::back_inserter(expected));
    std::vector<PostingsIterator> its;
    its.push_back(*PostingsIterator::Open(ea));
    its.push_back(*PostingsIterator::Open(eb));
    std::vector<uint32_t> out;
    ASSERT_TRUE(IntersectPostings(std::move(its), &out).ok());
    EXPECT_EQ(out, expected);
  }
}

TEST(InvertedIndexTest, BuildLookup) {
  ColumnVector col(DataType::kString);
  col.AppendString("apple");
  col.AppendString("banana");
  col.AppendString("apple");
  col.AppendNull();
  col.AppendString("cherry");
  col.AppendString("apple");

  std::string block = InvertedIndexBuilder::Build(col);
  auto reader = InvertedIndexReader::Open(block);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->num_terms(), 3u);

  auto apple = reader->Lookup(Value("apple"));
  ASSERT_TRUE(apple.ok());
  EXPECT_EQ(Drain(*apple), (std::vector<uint32_t>{0, 2, 5}));
  auto banana = reader->Lookup(Value("banana"));
  EXPECT_EQ(Drain(*banana), (std::vector<uint32_t>{1}));
  auto missing = reader->Lookup(Value("durian"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->Valid());
}

TEST(InvertedIndexTest, TermsReportHashAndOffset) {
  ColumnVector col(DataType::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt(i % 5);
  std::vector<InvertedIndexBuilder::TermInfo> terms;
  std::string block = InvertedIndexBuilder::BuildWithTerms(col, &terms);
  ASSERT_EQ(terms.size(), 5u);
  auto reader = InvertedIndexReader::Open(block);
  ASSERT_TRUE(reader.ok());
  for (const auto& term : terms) {
    EXPECT_EQ(term.doc_count, 20u);
  }
  // PostingsAt with the correct value works; with a wrong value (hash
  // collision simulation) it must return an invalid iterator.
  auto good = reader->PostingsAt(terms[0].postings_offset, Value(int64_t{0}));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->count(), 20u);
  auto collided =
      reader->PostingsAt(terms[0].postings_offset, Value(int64_t{999}));
  ASSERT_TRUE(collided.ok());
  EXPECT_FALSE(collided->Valid());
}

TEST(HashTableTest, BuildLookupMultiEntry) {
  std::vector<IndexEntry> entries = {
      {111, 1, 10}, {222, 1, 20}, {111, 2, 30}, {333, 3, 40}};
  std::string bytes = ImmutableHashTable::Build(entries, {1, 2, 3});
  auto table =
      ImmutableHashTable::Open(std::make_shared<const std::string>(bytes));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_entries(), 4u);

  std::vector<uint64_t> segs;
  table->Lookup(111, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  std::sort(segs.begin(), segs.end());
  EXPECT_EQ(segs, (std::vector<uint64_t>{1, 2}));

  segs.clear();
  table->Lookup(999, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  EXPECT_TRUE(segs.empty());
}

TEST(HashTableTest, ManyCollidingHashesAllFound) {
  // Adversarial: many entries whose hashes collide modulo table size.
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.push_back({i << 32, i, 0});  // low bits all zero
  }
  std::string bytes = ImmutableHashTable::Build(entries, {});
  auto table =
      ImmutableHashTable::Open(std::make_shared<const std::string>(bytes));
  ASSERT_TRUE(table.ok());
  for (uint64_t i = 0; i < 100; ++i) {
    int found = 0;
    table->Lookup(i << 32, [&](const IndexEntry&) { ++found; });
    EXPECT_EQ(found, 1) << i;
  }
}

TEST(GlobalIndexTest, AddLookupAcrossTables) {
  GlobalIndex index(/*max_tables=*/100);  // no merging for this test
  index.AddSegment(1, {{111, 1, 10}, {222, 1, 20}});
  index.AddSegment(2, {{111, 2, 30}});
  index.AddSegment(3, {{333, 3, 40}});
  EXPECT_EQ(index.num_tables(), 3u);

  std::vector<uint64_t> segs;
  index.Lookup(111, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  std::sort(segs.begin(), segs.end());
  EXPECT_EQ(segs, (std::vector<uint64_t>{1, 2}));
}

TEST(GlobalIndexTest, MergeKeepsLookupsAndBoundsTables) {
  GlobalIndex index(/*max_tables=*/4);
  for (uint64_t seg = 0; seg < 50; ++seg) {
    index.AddSegment(seg, {{seg % 7, seg, static_cast<uint32_t>(seg)}});
  }
  EXPECT_LE(index.num_tables(), 5u) << "LSM merge keeps table count bounded";
  std::vector<uint64_t> segs;
  index.Lookup(3, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  std::sort(segs.begin(), segs.end());
  EXPECT_EQ(segs, (std::vector<uint64_t>{3, 10, 17, 24, 31, 38, 45}));
}

TEST(GlobalIndexTest, LazyDeletionSkipsDeadSegments) {
  GlobalIndex index(/*max_tables=*/100);
  index.AddSegment(1, {{111, 1, 0}});
  index.AddSegment(2, {{111, 2, 0}});
  std::set<uint64_t> live = {2};
  index.set_live_check([&](uint64_t seg) { return live.count(seg) > 0; });

  std::vector<uint64_t> segs;
  index.Lookup(111, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  EXPECT_EQ(segs, (std::vector<uint64_t>{2}));
}

TEST(GlobalIndexTest, MaintainRewritesMostlyDeadTables) {
  GlobalIndex index(/*max_tables=*/100);
  index.AddSegment(1, {{111, 1, 0}, {222, 1, 0}});
  std::set<uint64_t> live = {};
  index.set_live_check([&](uint64_t seg) { return live.count(seg) > 0; });
  EXPECT_EQ(index.total_entries(), 2u);
  EXPECT_TRUE(index.Maintain()) << "table with 100% dead coverage rewritten";
  EXPECT_EQ(index.total_entries(), 0u);
}

TEST(GlobalIndexTest, MergeDropsDeadEntries) {
  GlobalIndex index(/*max_tables=*/2);
  std::set<uint64_t> live = {0, 1, 2, 3, 4};
  index.set_live_check([&](uint64_t seg) { return live.count(seg) > 0; });
  for (uint64_t seg = 0; seg < 5; ++seg) {
    index.AddSegment(seg, {{42, seg, 0}});
  }
  live = {0, 4};
  index.Maintain();
  std::vector<uint64_t> segs;
  index.Lookup(42, [&](const IndexEntry& e) { segs.push_back(e.segment_id); });
  std::sort(segs.begin(), segs.end());
  EXPECT_EQ(segs, (std::vector<uint64_t>{0, 4}));
}

TEST(KeyLockTest, BasicLockUnlock) {
  KeyLockManager locks;
  ASSERT_TRUE(locks.LockAll(1, {"a", "b"}).ok());
  EXPECT_EQ(locks.num_locked(), 2u);
  // Re-entrant for the same txn.
  ASSERT_TRUE(locks.LockAll(1, {"b", "c"}).ok());
  // Conflicting txn times out.
  EXPECT_TRUE(locks.LockAll(2, {"b"}, /*timeout_ms=*/20).IsAborted());
  locks.UnlockAll(1);
  EXPECT_EQ(locks.num_locked(), 0u);
  ASSERT_TRUE(locks.LockAll(2, {"b"}).ok());
  locks.UnlockAll(2);
}

TEST(KeyLockTest, TimeoutRollsBackPartialAcquisition) {
  KeyLockManager locks;
  ASSERT_TRUE(locks.LockAll(1, {"m"}).ok());
  // Txn 2 grabs "a" then blocks on "m" and times out: "a" must be freed.
  EXPECT_TRUE(locks.LockAll(2, {"a", "m"}, /*timeout_ms=*/20).IsAborted());
  ASSERT_TRUE(locks.LockAll(3, {"a"}, /*timeout_ms=*/20).ok());
  locks.UnlockAll(1);
  locks.UnlockAll(3);
}

TEST(KeyLockTest, ContendedHandoff) {
  KeyLockManager locks;
  ASSERT_TRUE(locks.LockAll(1, {"k"}).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(locks.LockAll(2, {"k"}, /*timeout_ms=*/2000).ok());
    acquired = true;
    locks.UnlockAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  locks.UnlockAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(KeyLockTest, SortedAcquisitionAvoidsDeadlock) {
  // Two txns lock overlapping key sets in opposite order; sorted
  // acquisition means one waits for the other rather than deadlocking.
  KeyLockManager locks;
  std::atomic<int> successes{0};
  std::thread t1([&] {
    if (locks.LockAll(1, {"x", "y"}, 2000).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      locks.UnlockAll(1);
      successes.fetch_add(1);
    }
  });
  std::thread t2([&] {
    if (locks.LockAll(2, {"y", "x"}, 2000).ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      locks.UnlockAll(2);
      successes.fetch_add(1);
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(successes.load(), 2);
}

}  // namespace
}  // namespace s2
