#include "common/profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/metrics.h"
#include "engine/database.h"
#include "engine/system_tables.h"
#include "query/plan.h"

namespace s2 {
namespace {

// ---------------------------------------------------------------------------
// ProfileCollector unit tests
// ---------------------------------------------------------------------------

TEST(ProfileCollectorTest, SpansNestAndCountersAccumulate) {
  ProfileCollector pc("query");
  ProfileNode* a = pc.StartSpan(pc.root(), "scan", "table=t");
  pc.AddCounter(a, "rows", 10);
  pc.AddCounter(a, "rows", 5);
  ProfileNode* b = pc.StartSpan(a, "segment");
  pc.AddCounter(b, "rows", 7);
  pc.FinishSpan(b);
  pc.FinishSpan(a);
  pc.FinishRoot();

  EXPECT_EQ(pc.root()->children.size(), 1u);
  EXPECT_EQ(a->counter("rows"), 15);
  EXPECT_EQ(a->counters.size(), 1u) << "repeated keys accumulate in place";
  EXPECT_EQ(pc.TotalCounter("rows"), 22);
  EXPECT_GT(pc.root()->duration_ns, 0u);
  EXPECT_EQ(pc.FindAll("segment").size(), 1u);

  std::string text = pc.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("table=t"), std::string::npos);
  std::string json = pc.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"name\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":15"), std::string::npos);
}

TEST(ProfileCollectorTest, DetachedThreadIsInert) {
  EXPECT_EQ(ProfileCollector::Current().collector, nullptr);
  ProfileCollector::CountHere("ignored", 1);  // must not crash
  ProfileSpan span("noop");
  EXPECT_FALSE(span.active());
  span.Count("ignored", 1);
}

TEST(ProfileCollectorTest, ScopeAttachesAndRestores) {
  ProfileCollector pc("root");
  {
    ProfileScope scope(&pc, pc.root());
    EXPECT_EQ(ProfileCollector::Current().collector, &pc);
    {
      ProfileSpan span("child");
      ASSERT_TRUE(span.active());
      EXPECT_EQ(ProfileCollector::Current().node, span.node());
      ProfileCollector::CountHere("hits", 3);
    }
    EXPECT_EQ(ProfileCollector::Current().node, pc.root());
  }
  EXPECT_EQ(ProfileCollector::Current().collector, nullptr);
  ASSERT_EQ(pc.root()->children.size(), 1u);
  EXPECT_EQ(pc.root()->children[0]->counter("hits"), 3);
}

// ---------------------------------------------------------------------------
// Engine-level profiling
// ---------------------------------------------------------------------------

TableOptions ItemsTable(uint32_t segment_rows) {
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64},
                     {"name", DataType::kString},
                     {"price", DataType::kDouble}});
  t.unique_key = {0};
  t.indexes = {{0}};
  // Sorted by id: flushes and merges keep disjoint per-segment id windows,
  // so range predicates on id exercise zone-map segment skipping.
  t.sort_key = {0};
  t.segment_rows = segment_rows;
  t.flush_threshold = segment_rows;
  return t;
}

Row ItemRow(int64_t i) {
  return {Value(i), Value("name-" + std::to_string(i)),
          Value(static_cast<double>(i % 100))};
}

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-profile");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    TraceBuffer::Global()->set_enabled(false);
    TraceBuffer::Global()->Clear();
  }
  void TearDown() override {
    TraceBuffer::Global()->set_enabled(false);
    TraceBuffer::Global()->Clear();
    (void)RemoveDirRecursive(dir_);
  }

  std::unique_ptr<Database> Open(DatabaseOptions opts) {
    opts.dir = dir_ + "/" + std::to_string(count_++);
    auto db = Database::Open(std::move(opts));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  /// Loads `total` items in flush-sized batches and drains the rowstore
  /// into columnstore segments (one Maintain flushes at most one segment
  /// per table).
  void LoadAndDrain(Database* db, int64_t total, size_t batch) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < total; ++i) {
      rows.push_back(ItemRow(i));
      if (rows.size() == batch || i + 1 == total) {
        ASSERT_TRUE(db->Insert("items", rows).ok());
        rows.clear();
      }
    }
    for (int round = 0; round < 200; ++round) {
      bool drained = true;
      for (int p = 0; p < db->cluster()->num_partitions(); ++p) {
        auto table = db->cluster()->partition(p)->GetTable("items");
        ASSERT_TRUE(table.ok());
        if ((*table)->RowstoreRows() > 0) drained = false;
      }
      if (drained) return;
      ASSERT_TRUE(db->Maintain().ok());
    }
    FAIL() << "rowstore did not drain";
  }

  std::string dir_;
  int count_ = 0;
};

// ISSUE 4 acceptance: a filtered analytic query under Profile() yields a
// tree whose per-segment strategy decisions match the trace ring, with
// non-zero segment-skip counts, and whose per-partition child spans sum to
// the root wall time within 5%.
TEST_F(ProfileTest, ProfiledAnalyticQueryReportsStrategyAndTimings) {
  DatabaseOptions opts;
  opts.num_partitions = 2;
  opts.num_exec_threads = 1;  // serial scatter: partition spans tile the root
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(2048), {0}).ok());
  LoadAndDrain(db.get(), 40000, 2000);

  TraceBuffer::Global()->Clear();
  TraceBuffer::Global()->set_enabled(true);
  // Ascending inserts give each segment a narrow id window, so the id
  // range clause zone-skips segments wholly outside [10000, 29999]; the
  // price clause spans every segment (price cycles mod 100) and selects
  // 2% of the scanned rows.
  auto profiled = db->Profile([] {
    std::vector<std::unique_ptr<FilterNode>> clauses;
    clauses.push_back(FilterBetween(0, Value(int64_t{10000}),
                                    Value(int64_t{29999})));
    clauses.push_back(FilterBetween(2, Value(0.0), Value(1.0)));
    return std::make_unique<ScanOp>("items", std::vector<int>{0, 1, 2},
                                    FilterAnd(std::move(clauses)));
  });
  TraceBuffer::Global()->set_enabled(false);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_EQ(profiled->rows.size(), 400u);

  const ProfileCollector& tree = *profiled->tree;
  EXPECT_GT(profiled->wall_ns, 0u);
  EXPECT_EQ(tree.root()->counter("rows"), 400);

  // Per-partition child spans, one per partition, summing to the root
  // wall time (serial scatter leaves only gather overhead outside them).
  std::vector<const ProfileNode*> partitions = tree.FindAll("partition");
  ASSERT_EQ(partitions.size(), 2u);
  uint64_t partition_ns = 0;
  for (const ProfileNode* p : partitions) partition_ns += p->duration_ns;
  EXPECT_LE(partition_ns, profiled->wall_ns);
  EXPECT_GE(partition_ns, profiled->wall_ns - profiled->wall_ns / 20)
      << "partition spans sum to " << partition_ns << " of "
      << profiled->wall_ns << " root ns";

  // Non-zero skip counts and scan-strategy counters.
  EXPECT_GT(tree.TotalCounter("segments"), 0);
  EXPECT_GT(tree.TotalCounter("segments_skipped_zone"), 0);
  EXPECT_GT(tree.TotalCounter("rows_considered"), 0);
  EXPECT_EQ(tree.TotalCounter("rows_output"), 400);

  // Every per-segment decision in the tree also appears in the trace
  // ring, verbatim (the two report through one shared detail string).
  std::set<std::string> traced;
  for (const TraceEvent& e : TraceBuffer::Global()->Snapshot()) {
    if (std::string(e.category) == "scan.segment") traced.insert(e.detail);
  }
  ASSERT_FALSE(traced.empty());
  std::vector<const ProfileNode*> seg_nodes = tree.FindAll("segment");
  ASSERT_FALSE(seg_nodes.empty());
  size_t skips = 0;
  for (const ProfileNode* seg : seg_nodes) {
    EXPECT_EQ(traced.count(seg->detail), 1u)
        << "segment decision missing from trace ring: " << seg->detail;
    if (seg->detail.find("strategy=skip") != std::string::npos) ++skips;
  }
  EXPECT_GT(skips, 0u);
  EXPECT_LT(skips, seg_nodes.size()) << "some segments must be scanned";

  // Renderings carry the decisions too.
  EXPECT_NE(profiled->ToText().find("strategy=skip_zone"),
            std::string::npos);
  EXPECT_NE(profiled->ToJson().find("\"name\":\"partition\""),
            std::string::npos);
}

// ISSUE 4 acceptance: queries past the threshold land in the slow-query
// ring, bounded by capacity, retrievable with their profile trees.
TEST_F(ProfileTest, SlowQueryLogRetainsProfiles) {
  DatabaseOptions opts;
  opts.num_partitions = 2;
  opts.slow_query_ns = 1;  // every query is "slow"
  opts.slow_query_capacity = 2;
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(128), {0}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) rows.push_back(ItemRow(i));
  ASSERT_TRUE(db->Insert("items", rows).ok());

  auto scan = [] {
    return std::make_unique<ScanOp>("items", std::vector<int>{0});
  };
  for (int i = 0; i < 3; ++i) {
    auto r = db->Query(scan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 64u);
  }

  std::vector<SlowQuery> slow = db->SlowQueries();
  ASSERT_EQ(slow.size(), 2u) << "ring keeps only the newest two";
  EXPECT_EQ(slow[0].seq, 2u);
  EXPECT_EQ(slow[1].seq, 3u);
  for (const SlowQuery& q : slow) {
    ASSERT_NE(q.tree, nullptr);
    EXPECT_GE(q.wall_ns, 1u);
    EXPECT_EQ(q.tree->root()->counter("rows"), 64);
    EXPECT_EQ(q.tree->FindAll("partition").size(), 2u);
  }
  EXPECT_GE(MetricsRegistry::Global()->counter("s2_slow_queries_total")
                ->value(),
            3u);

  // Threshold off: Query() records nothing.
  DatabaseOptions quiet;
  quiet.num_partitions = 1;
  auto db2 = Open(quiet);
  ASSERT_TRUE(db2->CreateTable("items", ItemsTable(128), {0}).ok());
  ASSERT_TRUE(db2->Insert("items", {ItemRow(1)}).ok());
  ASSERT_TRUE(db2->Query(scan).ok());
  EXPECT_TRUE(db2->SlowQueries().empty());
}

// Satellite: profile-tree merging under parallel scatter-gather — child
// spans from every partition land under the root and their totals add up.
TEST_F(ProfileTest, ParallelScatterMergesPartitionSpans) {
  DatabaseOptions opts;
  opts.num_partitions = 4;
  opts.num_exec_threads = 4;  // real pool: spans merge across threads
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(256), {0}).ok());
  LoadAndDrain(db.get(), 4000, 256);

  auto profiled = db->Profile([] {
    return std::make_unique<ScanOp>("items", std::vector<int>{0});
  });
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  ASSERT_EQ(profiled->rows.size(), 4000u);

  const ProfileCollector& tree = *profiled->tree;
  std::vector<const ProfileNode*> partitions = tree.FindAll("partition");
  ASSERT_EQ(partitions.size(), 4u);
  std::set<std::string> details;
  int64_t partition_rows = 0;
  for (const ProfileNode* p : partitions) {
    details.insert(p->detail);
    partition_rows += p->counter("rows");
    EXPECT_EQ(p->children.size(), tree.FindAll("scan").size() / 4)
        << "each partition span owns its own scan span";
  }
  EXPECT_EQ(details.size(), 4u) << "one distinct child per partition";
  EXPECT_EQ(partition_rows, 4000);
  EXPECT_EQ(tree.TotalCounter("rows_output"), 4000);
  EXPECT_EQ(tree.FindAll("scan").size(), 4u);
}

// Commit-path profiling: a transaction with an attached collector reports
// per-partition commit spans with log/commit wait counters.
TEST_F(ProfileTest, TxnCommitReportsWaits) {
  DatabaseOptions opts;
  opts.num_partitions = 2;
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(128), {0}).ok());

  ProfileCollector pc("txn");
  auto txn = db->Begin();
  txn.SetProfile(&pc);
  for (int p = 0; p < 2; ++p) {
    auto h = txn.On(p);
    // Rows with ids hashing to each partition: insert through both
    // handles so Commit touches two partitions.
    std::vector<Row> rows;
    for (int64_t i = 0; i < 50; ++i) {
      int64_t id = static_cast<int64_t>(p) * 1000 + i;
      if (db->cluster()->PartitionForKey({Value(id)}) == p) {
        rows.push_back(ItemRow(id));
      }
    }
    ASSERT_FALSE(rows.empty());
    ASSERT_TRUE(
        txn.table(p, "items")->InsertRows(h.id, h.read_ts, rows).ok());
  }
  ASSERT_TRUE(txn.Commit().ok());
  pc.FinishRoot();

  std::vector<const ProfileNode*> commits = pc.FindAll("commit.partition");
  ASSERT_EQ(commits.size(), 2u);
  for (const ProfileNode* c : commits) {
    EXPECT_GT(c->duration_ns, 0u);
  }
  EXPECT_GT(pc.TotalCounter("commit_wait_ns"), 0);
  EXPECT_GT(pc.TotalCounter("log_commit_wait_ns"), 0);
}

// Maintenance profiling: Cluster::Maintain with a collector nests flush
// spans (with row counts) under per-partition maintenance spans.
TEST_F(ProfileTest, MaintenanceProfileShowsFlushes) {
  DatabaseOptions opts;
  opts.num_partitions = 2;
  opts.auto_maintain = false;  // all flushing happens in Maintain below
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(128), {0}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 600; ++i) rows.push_back(ItemRow(i));
  ASSERT_TRUE(db->Insert("items", rows).ok());

  ProfileCollector pc("maintain");
  ASSERT_TRUE(db->cluster()->Maintain(&pc).ok());
  pc.FinishRoot();

  EXPECT_EQ(pc.FindAll("maintain.partition").size(), 2u);
  std::vector<const ProfileNode*> flushes = pc.FindAll("flush");
  ASSERT_FALSE(flushes.empty());
  int64_t flushed = 0;
  for (const ProfileNode* f : flushes) {
    EXPECT_NE(f->detail.find("table=items"), std::string::npos);
    flushed += f->counter("rows");
  }
  EXPECT_GT(flushed, 0);
  EXPECT_GT(pc.TotalCounter("bytes"), 0) << "flush reports file bytes";
}

// ---------------------------------------------------------------------------
// System tables
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, SystemTablesExposeLiveState) {
  MemBlobStore blob;
  DatabaseOptions opts;
  opts.num_partitions = 2;
  opts.blob = &blob;
  auto db = Open(opts);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(128), {0}).ok());
  LoadAndDrain(db.get(), 1000, 128);
  ASSERT_TRUE(db->Checkpoint().ok());
  auto ws = db->CreateWorkspace();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();

  SystemTables sys(db->cluster());

  SystemTableDump segments = sys.Segments();
  EXPECT_EQ(segments.name, "segments");
  ASSERT_FALSE(segments.rows.empty());
  ASSERT_EQ(segments.columns.size(), 11u);
  bool any_local = false, any_encoded = false;
  for (const auto& row : segments.rows) {
    ASSERT_EQ(row.size(), segments.columns.size());
    EXPECT_FALSE(row[3].empty()) << "file name";
    if (row[7] == "1") any_local = true;
    if (!row[9].empty()) any_encoded = true;
  }
  EXPECT_TRUE(any_local) << "fresh segments reside in the local cache";
  EXPECT_TRUE(any_encoded) << "opened segments report column encodings";

  SystemTableDump tables = sys.Tables();
  ASSERT_EQ(tables.rows.size(), 2u) << "one row per (partition, table)";
  uint64_t seg_count = 0, inserted = 0;
  for (const auto& row : tables.rows) {
    EXPECT_EQ(row[1], "items");
    seg_count += std::stoull(row[3]);
    inserted += std::stoull(row[5]);
  }
  EXPECT_GT(seg_count, 0u);
  EXPECT_EQ(inserted, 1000u);

  SystemTableDump cache = sys.Cache();
  ASSERT_EQ(cache.rows.size(), 2u);
  for (const auto& row : cache.rows) {
    EXPECT_GT(std::stoull(row[1]), 0u) << "cached bytes";
    EXPECT_GT(std::stoull(row[5]), 0u) << "files written";
  }

  SystemTableDump replicas = sys.Replicas();
  ASSERT_EQ(replicas.rows.size(), 2u) << "one workspace replica/partition";
  for (const auto& row : replicas.rows) {
    EXPECT_EQ(row[2], "0") << "workspace id";
    EXPECT_GT(std::stoull(row[3]), 0u) << "master durable lsn";
  }

  // Text and JSON renderings cover every table.
  std::string text = sys.ToText();
  for (const char* name : {"== segments ==", "== tables ==", "== cache ==",
                           "== replicas =="}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  std::string json = sys.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"segments\":[", "\"tables\":[", "\"cache\":[",
                          "\"replicas\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace s2
