#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "encoding/bitpack.h"
#include "encoding/column_vector.h"
#include "encoding/encoding.h"
#include "encoding/lz.h"

namespace s2 {
namespace {

std::unique_ptr<ColumnReader> MustOpen(const ColumnVector& col, Encoding enc) {
  auto encoded = EncodeColumn(col, enc);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto reader =
      OpenColumn(std::make_shared<const std::string>(std::move(*encoded)));
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(*reader);
}

void ExpectRoundTrip(const ColumnVector& col, Encoding enc) {
  auto reader = MustOpen(col, enc);
  ASSERT_EQ(reader->num_rows(), col.size());
  // Full decode matches.
  ColumnVector decoded(col.type());
  reader->DecodeAll(&decoded);
  ASSERT_EQ(decoded.size(), col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(decoded.GetValue(i), col.GetValue(i)) << "row " << i;
  }
  // Seek matches (every row, plus out-of-order probes).
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(reader->ValueAt(static_cast<uint32_t>(i)), col.GetValue(i))
        << "seek row " << i;
  }
  if (col.size() > 2) {
    EXPECT_EQ(reader->ValueAt(static_cast<uint32_t>(col.size() - 1)),
              col.GetValue(col.size() - 1));
    EXPECT_EQ(reader->ValueAt(0), col.GetValue(0));
  }
}

TEST(BitPackTest, WidthFor) {
  EXPECT_EQ(BitWidthFor(0), 0);
  EXPECT_EQ(BitWidthFor(1), 1);
  EXPECT_EQ(BitWidthFor(2), 2);
  EXPECT_EQ(BitWidthFor(255), 8);
  EXPECT_EQ(BitWidthFor(256), 9);
  EXPECT_EQ(BitWidthFor(~0ULL), 64);
}

TEST(BitPackTest, PackUnpackAllWidths) {
  Rng rng(11);
  for (int width = 0; width <= 64; ++width) {
    std::vector<uint64_t> values(100);
    uint64_t mask = width == 64 ? ~0ULL : ((uint64_t{1} << width) - 1);
    for (auto& v : values) v = rng.Next() & mask;
    std::string buf;
    BitPack(values.data(), values.size(), width, &buf);
    EXPECT_EQ(buf.size(), BitPackedBytes(values.size(), width));
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(BitUnpackOne(buf.data(), i, width), values[i])
          << "width=" << width << " i=" << i;
    }
  }
}

TEST(LzTest, RoundTripText) {
  std::string input;
  for (int i = 0; i < 200; ++i) {
    input += "the quick brown fox jumps over the lazy dog ";
  }
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2) << "should compress";
  std::string out;
  ASSERT_TRUE(LzDecompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RoundTripIncompressible) {
  Rng rng(5);
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  std::string compressed;
  LzCompress(input, &compressed);
  std::string out;
  ASSERT_TRUE(LzDecompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RoundTripTinyAndEmpty) {
  for (const std::string& input : {std::string(), std::string("a"),
                                   std::string("abc"), std::string("aaaa")}) {
    std::string compressed;
    LzCompress(input, &compressed);
    std::string out;
    ASSERT_TRUE(LzDecompress(compressed, input.size(), &out).ok());
    EXPECT_EQ(out, input);
  }
}

TEST(LzTest, OverlappingMatch) {
  // Long run of one byte forces offset-1 overlapping copies.
  std::string input(10000, 'q');
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), 200u);
  std::string out;
  ASSERT_TRUE(LzDecompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(ColumnVectorTest, AppendAndNulls) {
  ColumnVector col(DataType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(0), Value(int64_t{1}));
  EXPECT_EQ(col.GetValue(1), Value::Null());
  EXPECT_EQ(col.GetValue(2), Value(int64_t{3}));
}

// --- Property-style sweep: every encoding round-trips every data shape. ---

struct EncodingCase {
  const char* name;
  DataType type;
  Encoding encoding;
  int shape;  // 0=random, 1=runs, 2=low-cardinality, 3=sorted, 4=with nulls
};

class EncodingRoundTrip : public ::testing::TestWithParam<EncodingCase> {};

ColumnVector MakeColumn(DataType type, int shape, size_t n, uint64_t seed) {
  Rng rng(seed);
  ColumnVector col(type);
  for (size_t i = 0; i < n; ++i) {
    if (shape == 4 && rng.Bernoulli(0.1)) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case DataType::kInt64: {
        int64_t v;
        if (shape == 1) {
          v = static_cast<int64_t>(i / 37);  // long runs
        } else if (shape == 2) {
          v = static_cast<int64_t>(rng.Uniform(5));
        } else if (shape == 3) {
          v = static_cast<int64_t>(i) * 3 - 1000;
        } else {
          v = static_cast<int64_t>(rng.Next());
        }
        col.AppendInt(v);
        break;
      }
      case DataType::kDouble:
        col.AppendDouble(shape == 2 ? 1.5 : rng.NextDouble() * 1e6 - 5e5);
        break;
      case DataType::kString: {
        if (shape == 2) {
          col.AppendString("tag" + std::to_string(rng.Uniform(4)));
        } else if (shape == 1) {
          col.AppendString("prefix-shared-" + std::to_string(i / 20));
        } else {
          col.AppendString(rng.NextString(0, 30));
        }
        break;
      }
    }
  }
  return col;
}

TEST_P(EncodingRoundTrip, SeekAndDecodeMatch) {
  const EncodingCase& c = GetParam();
  for (size_t n : {size_t{0}, size_t{1}, size_t{1000}}) {
    ColumnVector col = MakeColumn(c.type, c.shape, n, 1234 + n);
    ExpectRoundTrip(col, c.encoding);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingRoundTrip,
    ::testing::Values(
        EncodingCase{"plain_int_rand", DataType::kInt64, Encoding::kPlain, 0},
        EncodingCase{"plain_int_null", DataType::kInt64, Encoding::kPlain, 4},
        EncodingCase{"bitpack_rand", DataType::kInt64, Encoding::kBitPack, 0},
        EncodingCase{"bitpack_sorted", DataType::kInt64, Encoding::kBitPack,
                     3},
        EncodingCase{"bitpack_null", DataType::kInt64, Encoding::kBitPack, 4},
        EncodingCase{"rle_runs", DataType::kInt64, Encoding::kRle, 1},
        EncodingCase{"rle_rand", DataType::kInt64, Encoding::kRle, 0},
        EncodingCase{"rle_null", DataType::kInt64, Encoding::kRle, 4},
        EncodingCase{"dict_int", DataType::kInt64, Encoding::kDict, 2},
        EncodingCase{"dict_int_null", DataType::kInt64, Encoding::kDict, 4},
        EncodingCase{"plain_double", DataType::kDouble, Encoding::kPlain, 0},
        EncodingCase{"plain_double_null", DataType::kDouble, Encoding::kPlain,
                     4},
        EncodingCase{"plain_str", DataType::kString, Encoding::kPlain, 0},
        EncodingCase{"plain_str_null", DataType::kString, Encoding::kPlain,
                     4},
        EncodingCase{"dict_str", DataType::kString, Encoding::kDict, 2},
        EncodingCase{"dict_str_null", DataType::kString, Encoding::kDict, 4},
        EncodingCase{"lz_str_runs", DataType::kString, Encoding::kLz, 1},
        EncodingCase{"lz_str_rand", DataType::kString, Encoding::kLz, 0},
        EncodingCase{"lz_str_null", DataType::kString, Encoding::kLz, 4}),
    [](const ::testing::TestParamInfo<EncodingCase>& info) {
      return info.param.name;
    });

TEST(EncodingTest, ChooseEncodingHeuristics) {
  // Long runs of ints -> RLE.
  ColumnVector runs = MakeColumn(DataType::kInt64, 1, 1000, 1);
  EXPECT_EQ(ChooseEncoding(runs), Encoding::kRle);
  // Low-cardinality strings -> dict.
  ColumnVector lowcard = MakeColumn(DataType::kString, 2, 1000, 2);
  EXPECT_EQ(ChooseEncoding(lowcard), Encoding::kDict);
  // Random wide ints -> bitpack (degenerates to 64-bit width but valid).
  ColumnVector rand_ints = MakeColumn(DataType::kInt64, 0, 1000, 3);
  EXPECT_EQ(ChooseEncoding(rand_ints), Encoding::kBitPack);
  // Doubles -> plain.
  ColumnVector doubles = MakeColumn(DataType::kDouble, 0, 100, 4);
  EXPECT_EQ(ChooseEncoding(doubles), Encoding::kPlain);
}

TEST(EncodingTest, DictExposesDictionaryAndCodes) {
  ColumnVector col(DataType::kString);
  for (int i = 0; i < 100; ++i) col.AppendString(i % 2 ? "yes" : "no");
  auto reader = MustOpen(col, Encoding::kDict);
  const ColumnVector* dict = reader->dictionary();
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->size(), 2u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dict->GetValue(reader->CodeAt(i)), col.GetValue(i));
  }
}

TEST(EncodingTest, NonDictReturnsNullDictionary) {
  ColumnVector col = MakeColumn(DataType::kInt64, 0, 50, 9);
  auto reader = MustOpen(col, Encoding::kPlain);
  EXPECT_EQ(reader->dictionary(), nullptr);
}

TEST(EncodingTest, DecodeRowsSelective) {
  ColumnVector col = MakeColumn(DataType::kInt64, 3, 500, 10);
  auto reader = MustOpen(col, Encoding::kBitPack);
  std::vector<uint32_t> rows = {0, 17, 250, 499};
  ColumnVector out(DataType::kInt64);
  reader->DecodeRows(rows, &out);
  ASSERT_EQ(out.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(out.GetValue(i), col.GetValue(rows[i]));
  }
}

TEST(EncodingTest, CorruptBlockRejected) {
  ColumnVector col = MakeColumn(DataType::kInt64, 0, 100, 12);
  auto encoded = EncodeColumn(col, Encoding::kPlain);
  ASSERT_TRUE(encoded.ok());
  std::string truncated = encoded->substr(0, encoded->size() / 2);
  auto reader = OpenColumn(std::make_shared<const std::string>(truncated));
  EXPECT_FALSE(reader.ok());
}

TEST(EncodingTest, CompressionActuallyShrinks) {
  // 1000 rows of 5 distinct strings: dict must beat plain by a lot.
  ColumnVector col = MakeColumn(DataType::kString, 2, 1000, 13);
  auto plain = EncodeColumn(col, Encoding::kPlain);
  auto dict = EncodeColumn(col, Encoding::kDict);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(dict.ok());
  EXPECT_LT(dict->size() * 4, plain->size());

  ColumnVector runs = MakeColumn(DataType::kInt64, 1, 10000, 14);
  auto plain_i = EncodeColumn(runs, Encoding::kPlain);
  auto rle = EncodeColumn(runs, Encoding::kRle);
  EXPECT_LT(rle->size() * 10, plain_i->size());
}

}  // namespace
}  // namespace s2
