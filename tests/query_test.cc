#include <gtest/gtest.h>

#include "blob/blob_store.h"
#include "common/env.h"
#include "query/expr.h"
#include "query/plan.h"
#include "storage/partition.h"

namespace s2 {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-query");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    PartitionOptions opts;
    opts.dir = dir_;
    opts.background_uploads = false;
    opts.auto_maintain = false;
    partition_ = std::make_unique<Partition>(opts);
    ASSERT_TRUE(partition_->Init().ok());

    // orders(order_id, customer_id, status, amount)
    TableOptions orders;
    orders.schema = Schema({{"order_id", DataType::kInt64},
                            {"customer_id", DataType::kInt64},
                            {"status", DataType::kString},
                            {"amount", DataType::kDouble}});
    orders.sort_key = {0};
    orders.indexes = {{0}, {1}};
    orders.unique_key = {0};
    orders.segment_rows = 64;
    ASSERT_TRUE(partition_->CreateTable("orders", orders).ok());

    // customers(customer_id, name, region)
    TableOptions customers;
    customers.schema = Schema({{"customer_id", DataType::kInt64},
                               {"name", DataType::kString},
                               {"region", DataType::kString}});
    customers.indexes = {{0}};
    customers.unique_key = {0};
    ASSERT_TRUE(partition_->CreateTable("customers", customers).ok());

    UnifiedTable* orders_table = *partition_->GetTable("orders");
    UnifiedTable* customers_table = *partition_->GetTable("customers");
    // 10 customers; 200 orders round-robin over customers 0..9.
    for (int64_t c = 0; c < 10; ++c) {
      auto h = partition_->Begin();
      ASSERT_TRUE(customers_table
                      ->InsertRows(h.id, h.read_ts,
                                   {{Value(c), Value("name" + std::to_string(c)),
                                     Value(c < 5 ? "EU" : "US")}})
                      .ok());
      ASSERT_TRUE(partition_->Commit(h.id).ok());
    }
    for (int64_t o = 0; o < 200; ++o) {
      auto h = partition_->Begin();
      ASSERT_TRUE(orders_table
                      ->InsertRows(h.id, h.read_ts,
                                   {{Value(o), Value(o % 10),
                                     Value(o % 3 == 0 ? "OPEN" : "DONE"),
                                     Value((o % 50) * 1.0)}})
                      .ok());
      ASSERT_TRUE(partition_->Commit(h.id).ok());
      if ((o + 1) % 64 == 0) {
        ASSERT_TRUE(orders_table->FlushRowstore().ok());
      }
    }
  }

  void TearDown() override {
    partition_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  QueryContext Ctx() {
    auto h = partition_->Begin();
    QueryContext ctx;
    ctx.partition = partition_.get();
    ctx.txn = h.id;
    ctx.read_ts = h.read_ts;
    return ctx;
  }

  std::string dir_;
  std::unique_ptr<Partition> partition_;
};

TEST_F(QueryTest, ExprEval) {
  Row row = {Value(int64_t{10}), Value("hello"), Value(2.5)};
  EXPECT_EQ(Add(Col(0), Lit(Value(int64_t{5})))->Eval(row),
            Value(int64_t{15}));
  EXPECT_EQ(Mul(Col(2), Lit(Value(2.0)))->Eval(row), Value(5.0));
  EXPECT_EQ(Eq(Col(1), Lit(Value("hello")))->Eval(row), Value(int64_t{1}));
  EXPECT_EQ(Like(Col(1), "he%o")->Eval(row), Value(int64_t{1}));
  EXPECT_EQ(Like(Col(1), "he_o")->Eval(row), Value(int64_t{0}));
  EXPECT_EQ(Substr(Col(1), 2, 3)->Eval(row), Value("ell"));
  EXPECT_EQ(CaseWhen({Gt(Col(0), Lit(Value(int64_t{5}))), Lit(Value("big")),
                      Lit(Value("small"))})
                ->Eval(row),
            Value("big"));
  EXPECT_EQ(IsNull(Col(0))->Eval(row), Value(int64_t{0}));
  // NULL propagation.
  Row with_null = {Value::Null()};
  EXPECT_TRUE(Add(Col(0), Lit(Value(int64_t{1})))->Eval(with_null).is_null());
  EXPECT_EQ(IsNull(Col(0))->Eval(with_null), Value(int64_t{1}));
}

TEST_F(QueryTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("PROMO BRUSHED", "PROMO%"));
  EXPECT_FALSE(LikeMatch("STANDARD", "PROMO%"));
  EXPECT_TRUE(LikeMatch("forest green metal", "%green%"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("xyz", "_y_"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
}

TEST_F(QueryTest, ScanWithFilterAndLimit) {
  auto ctx = Ctx();
  auto scan = std::make_unique<ScanOp>(
      "orders", std::vector<int>{0, 3},
      FilterCmp(0, CmpOp::kLt, Value(int64_t{20})));
  auto limit = std::make_unique<LimitOp>(std::move(scan), 5);
  auto rows = RunPlan(limit.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, AggregateSumAvgCount) {
  auto ctx = Ctx();
  // SELECT status, count(*), sum(amount), avg(amount) FROM orders GROUP BY status
  auto scan = std::make_unique<ScanOp>("orders", std::vector<int>{2, 3});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  aggs.push_back({AggKind::kSum, Col(1)});
  aggs.push_back({AggKind::kAvg, Col(1)});
  auto agg = std::make_unique<AggregateOp>(
      std::move(scan), std::vector<ExprPtr>{Col(0)}, std::move(aggs));
  auto sort = std::make_unique<SortOp>(
      std::move(agg), std::vector<SortKey>{{Col(0), false}});
  auto rows = RunPlan(sort.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // DONE: orders where o%3 != 0 -> 133 rows; OPEN: 67 rows.
  EXPECT_EQ((*rows)[0][0], Value("DONE"));
  EXPECT_EQ((*rows)[0][1], Value(int64_t{133}));
  EXPECT_EQ((*rows)[1][0], Value("OPEN"));
  EXPECT_EQ((*rows)[1][1], Value(int64_t{67}));
  double total = (*rows)[0][2].as_double() + (*rows)[1][2].as_double();
  double expected = 0;
  for (int o = 0; o < 200; ++o) expected += (o % 50) * 1.0;
  EXPECT_DOUBLE_EQ(total, expected);
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, HashJoinInner) {
  auto ctx = Ctx();
  // SELECT o.order_id, c.region FROM orders o JOIN customers c USING (customer_id)
  // WHERE c.region = 'EU'
  auto orders = std::make_unique<ScanOp>("orders", std::vector<int>{0, 1});
  auto customers = std::make_unique<ScanOp>(
      "customers", std::vector<int>{0, 2}, FilterEq(1, Value("EU")));
  // Wait: customers projection {0,2} = (customer_id, region); filter col 1
  // refers to the table schema (name), so filter on region is col 2.
  customers = std::make_unique<ScanOp>("customers", std::vector<int>{0, 2},
                                       FilterEq(2, Value("EU")));
  auto join = std::make_unique<HashJoinOp>(
      std::move(orders), std::move(customers), std::vector<ExprPtr>{Col(1)},
      std::vector<ExprPtr>{Col(0)}, JoinType::kInner, 2);
  auto rows = RunPlan(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  // Customers 0..4 are EU; orders to them: o%10 in 0..4 -> 100 orders.
  EXPECT_EQ(rows->size(), 100u);
  for (const Row& row : *rows) {
    EXPECT_LT(row[1].as_int(), 5);
    EXPECT_EQ(row[3], Value("EU"));
  }
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, LeftJoinPadsNulls) {
  auto ctx = Ctx();
  // customers LEFT JOIN orders with amount > 48 (only some customers have
  // such orders).
  auto customers =
      std::make_unique<ScanOp>("customers", std::vector<int>{0, 1});
  auto orders = std::make_unique<ScanOp>(
      "orders", std::vector<int>{1, 3},
      FilterCmp(3, CmpOp::kGt, Value(48.0)));
  auto join = std::make_unique<HashJoinOp>(
      std::move(customers), std::move(orders), std::vector<ExprPtr>{Col(0)},
      std::vector<ExprPtr>{Col(0)}, JoinType::kLeft, 2);
  auto rows = RunPlan(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  // Orders with amount 49: o%50==49 -> o in {49,99,149,199}, customers 9.
  size_t null_rows = 0;
  for (const Row& row : *rows) {
    if (row[2].is_null()) ++null_rows;
  }
  EXPECT_EQ(null_rows, 9u) << "9 customers with no matching order";
  EXPECT_EQ(rows->size(), 9u + 4u);
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, SemiAndAntiJoin) {
  auto ctx = Ctx();
  // Customers with at least one OPEN order (semi) / none (anti).
  auto open_orders = [&] {
    return std::make_unique<ScanOp>("orders", std::vector<int>{1},
                                    FilterEq(2, Value("OPEN")));
  };
  auto semi = std::make_unique<HashJoinOp>(
      std::make_unique<ScanOp>("customers", std::vector<int>{0}),
      open_orders(), std::vector<ExprPtr>{Col(0)},
      std::vector<ExprPtr>{Col(0)}, JoinType::kSemi, 1);
  auto semi_rows = RunPlan(semi.get(), &ctx);
  ASSERT_TRUE(semi_rows.ok());

  auto anti = std::make_unique<HashJoinOp>(
      std::make_unique<ScanOp>("customers", std::vector<int>{0}),
      open_orders(), std::vector<ExprPtr>{Col(0)},
      std::vector<ExprPtr>{Col(0)}, JoinType::kAnti, 1);
  auto anti_rows = RunPlan(anti.get(), &ctx);
  ASSERT_TRUE(anti_rows.ok());
  EXPECT_EQ(semi_rows->size() + anti_rows->size(), 10u);
  EXPECT_EQ(semi_rows->size(), 10u);  // every customer has an OPEN order
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, IndexJoinUsesIndexForSmallBuildSide) {
  auto ctx = Ctx();
  // Join orders against a tiny in-memory build side via the join index
  // filter (Section 5.1).
  std::vector<Row> build = {{Value(int64_t{5}), Value("x")},
                            {Value(int64_t{7}), Value("y")}};
  auto join = std::make_unique<IndexJoinOp>(
      "orders", std::vector<int>{0, 1}, /*probe_col=*/0,
      std::make_unique<ValuesOp>(build), Col(0));
  auto rows = RunPlan(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_TRUE(join->stats().used_index);
  EXPECT_EQ(join->stats().index_probes, 2u);
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, IndexJoinFallsBackForLargeBuildSide) {
  auto ctx = Ctx();
  std::vector<Row> build;
  for (int64_t i = 0; i < 150; ++i) build.push_back({Value(i)});
  auto join = std::make_unique<IndexJoinOp>(
      "orders", std::vector<int>{0}, /*probe_col=*/0,
      std::make_unique<ValuesOp>(build), Col(0), nullptr,
      /*max_key_fraction=*/0.05);
  auto rows = RunPlan(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 150u);
  EXPECT_FALSE(join->stats().used_index)
      << "too many keys: must fall back to hash join over a scan";
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, SortOrderAndProject) {
  auto ctx = Ctx();
  auto scan = std::make_unique<ScanOp>(
      "orders", std::vector<int>{0, 3},
      FilterCmp(0, CmpOp::kLt, Value(int64_t{10})));
  auto project = std::make_unique<ProjectOp>(
      std::move(scan),
      std::vector<ExprPtr>{Col(0), Mul(Col(1), Lit(Value(2.0)))});
  auto sort = std::make_unique<SortOp>(
      std::move(project), std::vector<SortKey>{{Col(1), true}, {Col(0), false}});
  auto rows = RunPlan(sort.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 10u);
  EXPECT_EQ((*rows)[0][1], Value(18.0));  // amount 9 * 2
  EXPECT_EQ((*rows)[9][1], Value(0.0));
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, EmptyAggregateProducesOneRow) {
  auto ctx = Ctx();
  auto scan = std::make_unique<ScanOp>(
      "orders", std::vector<int>{0},
      FilterEq(0, Value(int64_t{99999})));  // matches nothing
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  aggs.push_back({AggKind::kSum, Col(0)});
  auto agg = std::make_unique<AggregateOp>(std::move(scan),
                                           std::vector<ExprPtr>{}, std::move(aggs));
  auto rows = RunPlan(agg.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value(int64_t{0}));
  EXPECT_TRUE((*rows)[0][1].is_null());
  partition_->EndRead(ctx.txn);
}

TEST_F(QueryTest, CountDistinct) {
  auto ctx = Ctx();
  auto scan = std::make_unique<ScanOp>("orders", std::vector<int>{1});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCountDistinct, Col(0)});
  auto agg = std::make_unique<AggregateOp>(std::move(scan),
                                           std::vector<ExprPtr>{}, std::move(aggs));
  auto rows = RunPlan(agg.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], Value(int64_t{10}));
  partition_->EndRead(ctx.txn);
}

}  // namespace
}  // namespace s2
