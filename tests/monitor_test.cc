#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/flight_recorder.h"
#include "common/journal.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/monitor.h"
#include "common/profile.h"
#include "common/trace_export.h"
#include "engine/database.h"
#include "engine/system_tables.h"
#include "query/plan.h"
#include "test_util.h"

namespace s2 {
namespace {

// ----------------------------------------------------------------
// JSON escaping (shared helper used by every JSON producer)
// ----------------------------------------------------------------

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nnext\ttab\rret"), "line\\nnext\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(JsonQuote("k\"v"), "\"k\\\"v\"");
}

TEST(JsonEscapeTest, MetricsAndProfileDumpsStayEscaped) {
  S2_COUNTER("s2_test_escape\"metric").Add();
  std::string json = MetricsRegistry::Global()->DumpJson();
  EXPECT_NE(json.find("s2_test_escape\\\"metric"), std::string::npos);

  ProfileCollector collector("root\"span");
  collector.FinishRoot();
  std::string pjson = collector.ToJson();
  EXPECT_NE(pjson.find("root\\\"span"), std::string::npos);
}

// ----------------------------------------------------------------
// TraceBuffer drop-window accounting
// ----------------------------------------------------------------

TEST(TraceWindowTest, SnapshotResetsDroppedWindow) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 5; ++i) {
    buffer.Emit("test", "e" + std::to_string(i), 0, 0);
  }
  EXPECT_EQ(buffer.dropped(), 3u);
  EXPECT_EQ(buffer.dropped_since_last_snapshot(), 3u);
  (void)buffer.Snapshot();
  EXPECT_EQ(buffer.dropped_since_last_snapshot(), 0u);
  EXPECT_EQ(buffer.dropped(), 3u) << "cumulative count is not reset";
  // The ring is still full, so each later emit overwrites one event —
  // but the losses belong to the new window, not the snapshotted one.
  buffer.Emit("test", "late", 0, 0);
  buffer.Emit("test", "late2", 0, 0);
  buffer.Emit("test", "late3", 0, 0);
  EXPECT_EQ(buffer.dropped_since_last_snapshot(), 3u);
  EXPECT_EQ(buffer.dropped(), 6u);
}

// ----------------------------------------------------------------
// MonitorService sampling + watchdog rules (injected clock)
// ----------------------------------------------------------------

TEST(MonitorServiceTest, SamplesRegistryIntoBoundedRings) {
  FaultInjectionEnv fenv;
  fenv.FreezeClockAt(1'000'000'000);

  MonitorOptions opts;
  opts.env = &fenv;
  opts.ring_capacity = 3;
  MonitorService monitor(opts);

  S2_COUNTER("s2_test_mon_sampled_total").Add(7);
  for (int i = 0; i < 5; ++i) {
    monitor.TickOnce();
    fenv.AdvanceClock(100'000'000);
  }
  EXPECT_EQ(monitor.ticks(), 5u);

  std::vector<MonitorPoint> points = monitor.Series("s2_test_mon_sampled_total");
  ASSERT_EQ(points.size(), 3u) << "ring capacity bounds retention";
  // Oldest two points fell off; timestamps follow the injected clock.
  EXPECT_EQ(points[0].ts_ns, 1'200'000'000u);
  EXPECT_EQ(points[2].ts_ns, 1'400'000'000u);
  EXPECT_GE(points[0].value, 7.0);
  EXPECT_EQ(monitor.LatestOr("s2_test_mon_sampled_total", -1.0),
            points[2].value);
  EXPECT_EQ(monitor.LatestOr("s2_no_such_series", -1.0), -1.0);
}

TEST(MonitorServiceTest, RatePerSecUsesInjectedTimestamps) {
  FaultInjectionEnv fenv;
  fenv.FreezeClockAt(0);
  MonitorOptions opts;
  opts.env = &fenv;
  MonitorService monitor(opts);

  Counter& counter = S2_COUNTER("s2_test_mon_rate_total");
  for (int i = 0; i < 4; ++i) {
    counter.Add(10);
    monitor.TickOnce();
    fenv.AdvanceClock(1'000'000'000);  // 1s per tick
  }
  // 30 increments between the first and last retained sample over 3s.
  EXPECT_NEAR(monitor.RatePerSec("s2_test_mon_rate_total"), 10.0, 0.01);
}

TEST(MonitorServiceTest, WatchdogDebouncesFiresAndClears) {
  FaultInjectionEnv fenv;
  fenv.FreezeClockAt(5'000'000'000);
  MonitorOptions opts;
  opts.env = &fenv;
  MonitorService monitor(opts);

  double observed = 0.0;
  monitor.AddRule({"test_rule", [&observed] { return observed; },
                   /*threshold=*/10.0, WatchdogCmp::kAbove, /*for_ticks=*/2});

  uint64_t journal_start = EventJournal::Global()->next_seq();

  observed = 50.0;
  monitor.TickOnce();  // breach 1: debounced, not yet firing
  EXPECT_FALSE(monitor.AnyFiring());
  fenv.AdvanceClock(100'000'000);
  monitor.TickOnce();  // breach 2: fires
  ASSERT_TRUE(monitor.AnyFiring());

  std::vector<WatchdogStatus> statuses = monitor.RuleStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].name, "test_rule");
  EXPECT_TRUE(statuses[0].firing);
  EXPECT_EQ(statuses[0].breach_ticks, 2);
  EXPECT_EQ(statuses[0].fire_count, 1u);
  EXPECT_EQ(statuses[0].fired_since_ns, 5'100'000'000u);
  EXPECT_EQ(statuses[0].last_observed, 50.0);

  fenv.AdvanceClock(900'000'000);
  observed = 1.0;
  monitor.TickOnce();  // first healthy tick clears
  EXPECT_FALSE(monitor.AnyFiring());
  statuses = monitor.RuleStatuses();
  EXPECT_FALSE(statuses[0].firing);
  EXPECT_EQ(statuses[0].breach_ticks, 0);
  EXPECT_EQ(statuses[0].fire_count, 1u) << "lifetime count survives the clear";

  // Both transitions were journaled with rule name and observed values.
  bool saw_fired = false, saw_cleared = false;
  for (const JournalEvent& ev : EventJournal::Global()->Snapshot()) {
    if (ev.seq < journal_start || ev.category != "watchdog") continue;
    if (ev.name == "rule_fired" &&
        ev.detail.find("rule=test_rule") != std::string::npos) {
      EXPECT_NE(ev.detail.find("threshold=10"), std::string::npos);
      EXPECT_NE(ev.detail.find("observed=50"), std::string::npos);
      saw_fired = true;
    }
    if (ev.name == "rule_cleared" &&
        ev.detail.find("rule=test_rule") != std::string::npos) {
      EXPECT_NE(ev.detail.find("duration_ns=900000000"), std::string::npos);
      saw_cleared = true;
    }
  }
  EXPECT_TRUE(saw_fired);
  EXPECT_TRUE(saw_cleared);
}

TEST(MonitorServiceTest, BackgroundLoopTicksOnExecutor) {
  MonitorOptions opts;
  opts.interval_ns = 2'000'000;  // 2ms
  MonitorService monitor(opts);
  monitor.Start();
  EXPECT_TRUE(monitor.running());
  // Wait for a few real-time ticks.
  for (int i = 0; i < 1000 && monitor.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monitor.Stop();
  EXPECT_FALSE(monitor.running());
  EXPECT_GE(monitor.ticks(), 3u);
  uint64_t ticks_after_stop = monitor.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(monitor.ticks(), ticks_after_stop);
}

// ----------------------------------------------------------------
// Event journal
// ----------------------------------------------------------------

TEST(EventJournalTest, RingKeepsNewestAndCountsDrops) {
  EventJournal journal(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    journal.Append("test", "e" + std::to_string(i), "", /*ts_ns=*/100 + i);
  }
  EXPECT_EQ(journal.next_seq(), 10u);
  EXPECT_EQ(journal.dropped(), 6u);
  std::vector<JournalEvent> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  EXPECT_EQ(events.front().seq, 6u);
  std::vector<JournalEvent> tail = journal.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].name, "e8");
  EXPECT_EQ(tail[1].name, "e9");
}

TEST(EventJournalTest, FileSinkWritesJsonLines) {
  auto dir = MakeTempDir("s2-journal");
  ASSERT_TRUE(dir.ok());
  std::string path = *dir + "/journal.jsonl";

  EventJournal journal(8);
  journal.AttachFile(Env::Default(), path);
  journal.Append("test", "hello", "k=v \"quoted\"", /*ts_ns=*/42);
  journal.Append("test", "world", "", /*ts_ns=*/43);
  EXPECT_TRUE(journal.file_sink_healthy());

  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents->find("\"name\":\"hello\""), std::string::npos);
  EXPECT_NE(contents->find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(std::count(contents->begin(), contents->end(), '\n'), 2);
  (void)RemoveDirRecursive(*dir);
}

// ----------------------------------------------------------------
// Chrome trace export
// ----------------------------------------------------------------

TEST(ChromeTraceTest, BuildsTraceEventsAndProfileLanes) {
  TraceBuffer buffer(16);
  buffer.Emit("exec", "task-a", 1'000'000, 2'000'000);
  buffer.Emit("exec", "task-b", 2'000'000, 500'000);

  ProfileCollector collector("query");
  ProfileNode* p0 = collector.StartSpan(collector.root(), "partition-0", "");
  collector.FinishSpan(p0);
  ProfileNode* p1 = collector.StartSpan(collector.root(), "partition-1", "");
  collector.FinishSpan(p1);
  collector.FinishRoot();

  ChromeTraceBuilder builder;
  builder.AddTraceEvents(buffer.Snapshot(), /*pid=*/1, "trace_buffer");
  builder.AddProfileTree(*collector.root(), /*pid=*/2, "query");
  std::string json = builder.Finish();

  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("task-a"), std::string::npos);
  EXPECT_NE(json.find("partition-0"), std::string::npos);
  EXPECT_NE(json.find("partition-1"), std::string::npos);
  // Metadata events name processes; fan-out children get their own lanes.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced brackets as a cheap well-formedness check (no raw quotes can
  // unbalance them because every string goes through JsonEscape).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ----------------------------------------------------------------
// End-to-end: fault-injected replication stall fires watchdogs
// ----------------------------------------------------------------

TableOptions ItemsTable() {
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64},
                     {"name", DataType::kString},
                     {"price", DataType::kDouble}});
  t.unique_key = {0};
  t.segment_rows = 64;
  t.flush_threshold = 64;
  return t;
}

class MonitorIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-monitor");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::string dir_;
};

TEST_F(MonitorIntegrationTest, BlobStallFiresReplicationAndUploadWatchdogs) {
  uint64_t seed = TestSeed(7);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));

  FaultInjectionEnv fenv;
  fenv.FreezeClockAt(1'000'000'000);
  LocalDirBlobStore blob(dir_ + "/blob", &fenv);

  DatabaseOptions opts;
  opts.dir = dir_ + "/db";
  opts.blob = &blob;
  opts.env = &fenv;
  opts.num_partitions = 1;
  opts.ha_replicas = 0;
  opts.enable_monitor = true;
  opts.watchdog.replication_lag_bytes = 1024;
  opts.watchdog.upload_queue_age_ns = 2'000'000'000;  // 2s on the env clock
  opts.watchdog.for_ticks = 2;
  auto db_or = Database::Open(std::move(opts));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();
  MonitorService* monitor = db->monitor();
  ASSERT_NE(monitor, nullptr);

  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());

  // Freeze the blob store: every PUT under the blob root fails. Local
  // writes keep working — steady state tolerates a blob outage.
  fenv.InjectFault(EnvOp::kWrite, "/blob",
                   {FaultSpec::Mode::kError, /*skip=*/0,
                    /*count=*/1'000'000, seed});

  std::vector<Row> rows;
  int n = 200 + static_cast<int>(seed % 32);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value(i), Value("name-" + std::to_string(i)), Value(0.5)});
  }
  ASSERT_TRUE(db->Insert("items", rows).ok())
      << "local writes keep working through the blob outage";
  // Maintain flushes the rowstore into data files (enqueueing uploads),
  // then reports the failed trailing blob-upload step; the files stay
  // queued with their first-enqueue timestamps.
  EXPECT_FALSE(db->Maintain().ok()) << "uploads must fail while frozen";
  EXPECT_FALSE(db->Checkpoint().ok());
  EXPECT_GT(db->cluster()->partition(0)->files()->PendingUploads(), 0u);

  uint64_t journal_start = EventJournal::Global()->next_seq();

  // Let the pending uploads age past the threshold on the injected clock,
  // then tick through the debounce window.
  fenv.AdvanceClock(3'000'000'000);
  monitor->TickOnce();
  EXPECT_FALSE(monitor->AnyFiring()) << "for_ticks=2 debounces one tick";
  fenv.AdvanceClock(100'000'000);
  monitor->TickOnce();

  bool lag_firing = false, age_firing = false;
  for (const WatchdogStatus& st : monitor->RuleStatuses()) {
    if (st.name == "replication_lag") lag_firing = st.firing;
    if (st.name == "upload_queue_age") age_firing = st.firing;
  }
  EXPECT_TRUE(lag_firing) << "durable log bytes never reached blob storage";
  EXPECT_TRUE(age_firing);

  int fired_events = 0;
  for (const JournalEvent& ev : EventJournal::Global()->Snapshot()) {
    if (ev.seq >= journal_start && ev.category == "watchdog" &&
        ev.name == "rule_fired") {
      ++fired_events;
    }
  }
  EXPECT_GE(fired_events, 2);

  // Unfreeze: drain the queue and upload the log tail; rules clear on the
  // first healthy tick.
  fenv.ClearFaults();
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->cluster()->partition(0)->files()->PendingUploads(), 0u);
  fenv.AdvanceClock(100'000'000);
  monitor->TickOnce();
  EXPECT_FALSE(monitor->AnyFiring());

  bool saw_clear = false;
  for (const JournalEvent& ev : EventJournal::Global()->Snapshot()) {
    if (ev.seq >= journal_start && ev.category == "watchdog" &&
        ev.name == "rule_cleared") {
      saw_clear = true;
    }
  }
  EXPECT_TRUE(saw_clear);
}

// ----------------------------------------------------------------
// Flight recorder bundle + system tables
// ----------------------------------------------------------------

TEST_F(MonitorIntegrationTest, FlightRecorderBundleIsComplete) {
  MemBlobStore blob;
  DatabaseOptions opts;
  opts.dir = dir_ + "/db";
  opts.blob = &blob;
  opts.num_partitions = 2;
  opts.enable_monitor = true;
  opts.slow_query_ns = 1;  // profile + retain every query
  auto db_or = Database::Open(std::move(opts));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or->get();

  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value(i), Value("n" + std::to_string(i)), Value(1.0)});
  }
  ASSERT_TRUE(db->Insert("items", rows).ok());
  ASSERT_TRUE(db->Maintain().ok());
  auto q = db->Query(
      [] { return std::make_unique<ScanOp>("items", std::vector<int>{0}); });
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(db->SlowQueries().empty());

  for (int i = 0; i < 3; ++i) db->monitor()->TickOnce();

  std::string bundle = dir_ + "/bundle";
  ASSERT_TRUE(db->DumpFlightRecorder(bundle).ok());

  Env* env = Env::Default();
  for (const char* file :
       {"metrics.prom", "metrics.json", "monitor_history.json",
        "watchdogs.json", "journal.jsonl", "trace.json", "manifest.json",
        "system_tables.json", "slow_queries.json", "engine_trace.json"}) {
    EXPECT_TRUE(env->FileExists(bundle + "/" + file)) << file;
  }

  // History has >= 2 series with >= 3 points each (acceptance criterion).
  int series_with_3 = 0;
  for (const std::string& name : db->monitor()->SeriesNames()) {
    if (db->monitor()->Series(name).size() >= 3) ++series_with_3;
  }
  EXPECT_GE(series_with_3, 2);
  auto history = env->ReadFileToString(bundle + "/monitor_history.json");
  ASSERT_TRUE(history.ok());
  EXPECT_NE(history->find("\"ticks\":3"), std::string::npos);
  EXPECT_NE(history->find("s2_flush_total"), std::string::npos);

  // The journal recorded lifecycle events (flushes at minimum).
  auto journal = env->ReadFileToString(bundle + "/journal.jsonl");
  ASSERT_TRUE(journal.ok());
  EXPECT_NE(journal->find("\"category\":\"storage\""), std::string::npos);

  // The trace is a chrome trace_event document with engine content.
  auto trace = env->ReadFileToString(bundle + "/engine_trace.json");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace->find("slow_query#"), std::string::npos);
  EXPECT_EQ(std::count(trace->begin(), trace->end(), '{'),
            std::count(trace->begin(), trace->end(), '}'));

  // System tables include the monitor tables.
  auto tables = env->ReadFileToString(bundle + "/system_tables.json");
  ASSERT_TRUE(tables.ok());
  EXPECT_NE(tables->find("\"monitor.history\""), std::string::npos);
  EXPECT_NE(tables->find("\"monitor.watchdogs\""), std::string::npos);

  SystemTables sys(db->cluster(), db->monitor());
  SystemTableDump history_table = sys.History();
  EXPECT_GE(history_table.rows.size(), 6u);
  SystemTableDump watchdogs = sys.Watchdogs();
  EXPECT_EQ(watchdogs.rows.size(), 6u) << "six standard rules installed";
}

}  // namespace
}  // namespace s2
