// Parallel execution layer: scatter-gather queries, parallel segment
// scans, and background maintenance all share one Executor. These tests
// check the two properties the refactor must preserve:
//   1) determinism: a parallel scatter query returns byte-identical rows,
//      in the same order, as the serial execution of the same query;
//   2) safety: scatter queries racing writers and Maintain() never fail,
//      corrupt data, or deadlock (exercised under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "engine/database.h"
#include "exec/filter.h"
#include "query/plan.h"

namespace s2 {
namespace {

TableOptions ItemsTable() {
  TableOptions opts;
  opts.schema = Schema({{"id", DataType::kInt64},
                        {"cat", DataType::kString},
                        {"score", DataType::kDouble}});
  opts.indexes = {{0}};
  opts.unique_key = {0};
  // Small segments so a modest dataset spreads over many morsels.
  opts.segment_rows = 64;
  opts.flush_threshold = 64;
  return opts;
}

Row ItemRow(int64_t i) {
  return {Value(i), Value("cat" + std::to_string(i % 7)),
          Value(static_cast<double>(i) * 0.5)};
}

std::string EncodeRows(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) out += EncodeKey(row);
  return out;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-parallel-exec");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::unique_ptr<Database> OpenDb(const std::string& subdir,
                                   size_t exec_threads) {
    DatabaseOptions opts;
    opts.dir = dir_ + "/" + subdir;
    opts.num_partitions = 4;
    opts.num_exec_threads = exec_threads;
    auto db = Database::Open(opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) return nullptr;
    EXPECT_TRUE((*db)->CreateTable("items", ItemsTable(), {0}).ok());
    return std::move(*db);
  }

  static PlanPtr ScanPlan() {
    // Filter + projection so the parallel scan exercises zone maps,
    // filters and the ordered batch sequencer, not just a row copy.
    return std::make_unique<ScanOp>(
        "items", std::vector<int>{0, 1, 2},
        FilterBetween(0, Value(int64_t{100}), Value(int64_t{1800})));
  }

  std::string dir_;
};

TEST_F(ParallelExecTest, ParallelScatterMatchesSerialByteForByte) {
  auto serial = OpenDb("serial", 1);
  auto parallel = OpenDb("parallel", 4);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  // Identical insert/maintain sequences produce identical physical layout
  // (same segments on the same partitions), so the comparison checks pure
  // execution-order determinism.
  std::vector<Row> batch;
  for (int64_t i = 0; i < 2000; ++i) {
    batch.push_back(ItemRow(i));
    if (batch.size() == 100) {
      ASSERT_TRUE(serial->Insert("items", batch).ok());
      ASSERT_TRUE(parallel->Insert("items", batch).ok());
      batch.clear();
    }
  }
  ASSERT_TRUE(serial->Maintain().ok());
  ASSERT_TRUE(parallel->Maintain().ok());
  // A rowstore tail on top of the flushed segments.
  for (int64_t i = 2000; i < 2030; ++i) {
    ASSERT_TRUE(serial->Insert("items", {ItemRow(i)}).ok());
    ASSERT_TRUE(parallel->Insert("items", {ItemRow(i)}).ok());
  }

  auto serial_rows = serial->Query(ScanPlan);
  auto parallel_rows = parallel->Query(ScanPlan);
  ASSERT_TRUE(serial_rows.ok()) << serial_rows.status().ToString();
  ASSERT_TRUE(parallel_rows.ok()) << parallel_rows.status().ToString();
  EXPECT_EQ(serial_rows->size(), 1701u);
  ASSERT_EQ(serial_rows->size(), parallel_rows->size());
  EXPECT_EQ(EncodeRows(*serial_rows), EncodeRows(*parallel_rows));
}

TEST_F(ParallelExecTest, ConcurrentScatterWritersAndMaintain) {
  auto db = OpenDb("stress", 4);
  ASSERT_NE(db, nullptr);

  constexpr int kWriters = 2;
  constexpr int kRowsPerWriter = 600;
  constexpr int kReaders = 2;

  std::atomic<bool> writers_done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Disjoint key ranges: writers never conflict on the unique key.
      for (int64_t i = 0; i < kRowsPerWriter; ++i) {
        int64_t id = static_cast<int64_t>(w) * kRowsPerWriter + i;
        if (!db->Insert("items", {ItemRow(id)}).ok()) failures.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      size_t last = 0;
      while (!writers_done.load()) {
        auto rows = db->Query([] {
          return std::make_unique<ScanOp>("items", std::vector<int>{0});
        });
        if (!rows.ok()) {
          failures.fetch_add(1);
          break;
        }
        // Snapshot reads: committed rows never disappear.
        if (rows->size() < last) failures.fetch_add(1);
        last = rows->size();
      }
    });
  }
  threads.emplace_back([&] {
    while (!writers_done.load()) {
      if (!db->Maintain().ok()) {
        failures.fetch_add(1);
        break;
      }
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(db->Maintain().ok());
  auto rows = db->Query([] {
    return std::make_unique<ScanOp>("items", std::vector<int>{0});
  });
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), static_cast<size_t>(kWriters) * kRowsPerWriter);
}

}  // namespace
}  // namespace s2
