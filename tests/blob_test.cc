#include <gtest/gtest.h>

#include <memory>

#include "blob/blob_store.h"
#include "blob/data_file_store.h"
#include "common/env.h"

namespace s2 {
namespace {

std::shared_ptr<const std::string> Bytes(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

TEST(MemBlobStoreTest, PutGetDeleteList) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("a/1", "one").ok());
  ASSERT_TRUE(blob.Put("a/2", "two").ok());
  ASSERT_TRUE(blob.Put("b/1", "three").ok());

  EXPECT_EQ(*blob.Get("a/1"), "one");
  EXPECT_TRUE(blob.Get("a/9").status().IsNotFound());
  EXPECT_TRUE(blob.Exists("b/1"));

  auto listed = blob.List("a/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"a/1", "a/2"}));

  ASSERT_TRUE(blob.Delete("a/1").ok());
  EXPECT_FALSE(blob.Exists("a/1"));
}

TEST(MemBlobStoreTest, OutageInjection) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("k", "v").ok());
  blob.set_available(false);
  EXPECT_TRUE(blob.Put("k2", "v").IsUnavailable());
  EXPECT_TRUE(blob.Get("k").status().IsUnavailable());
  blob.set_available(true);
  EXPECT_EQ(*blob.Get("k"), "v");
}

TEST(MemBlobStoreTest, StatsCount) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("k", "12345").ok());
  (void)*blob.Get("k");
  EXPECT_EQ(blob.stats().puts.load(), 1u);
  EXPECT_EQ(blob.stats().gets.load(), 1u);
  EXPECT_EQ(blob.stats().bytes_uploaded.load(), 5u);
  EXPECT_EQ(blob.stats().bytes_downloaded.load(), 5u);
}

TEST(LocalDirBlobStoreTest, RoundTrip) {
  auto dir = MakeTempDir("s2-blobdir");
  ASSERT_TRUE(dir.ok());
  LocalDirBlobStore blob(*dir);
  ASSERT_TRUE(blob.Put("db/part0/file_1", "contents").ok());
  EXPECT_EQ(*blob.Get("db/part0/file_1"), "contents");
  EXPECT_TRUE(blob.Exists("db/part0/file_1"));
  auto listed = blob.List("db/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 1u);
  ASSERT_TRUE(blob.Delete("db/part0/file_1").ok());
  EXPECT_FALSE(blob.Exists("db/part0/file_1"));
  (void)RemoveDirRecursive(*dir);
}

DataFileStoreOptions SyncOptions() {
  DataFileStoreOptions opts;
  opts.blob_prefix = "part0/";
  opts.background_uploads = false;
  return opts;
}

TEST(DataFileStoreTest, WriteIsLocalUploadIsAsync) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("data1")).ok());
  // Commit path: zero blob writes so far.
  EXPECT_EQ(blob.stats().puts.load(), 0u);
  EXPECT_EQ(store.PendingUploads(), 1u);
  EXPECT_TRUE(store.IsLocal("f1"));

  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_EQ(blob.stats().puts.load(), 1u);
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_TRUE(blob.Exists("part0/f1"));
}

TEST(DataFileStoreTest, ReadThroughAfterEviction) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 10;  // tiny cache forces eviction
  DataFileStore store(&blob, opts);
  ASSERT_TRUE(store.Write("f1", Bytes(std::string(8, 'a'))).ok());
  ASSERT_TRUE(store.Write("f2", Bytes(std::string(8, 'b'))).ok());
  // Not yet uploaded: both pinned despite cache pressure.
  EXPECT_TRUE(store.IsLocal("f1"));
  EXPECT_TRUE(store.IsLocal("f2"));

  ASSERT_TRUE(store.DrainUploads().ok());
  store.EvictCold();
  // Cache budget is 10 bytes; at least one file must have been evicted.
  EXPECT_TRUE(!store.IsLocal("f1") || !store.IsLocal("f2"));

  auto f1 = store.Read("f1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(**f1, std::string(8, 'a'));
  EXPECT_GE(store.stats().blob_fetches.load() +
                store.stats().local_hits.load(),
            1u);
}

TEST(DataFileStoreTest, UploadFailureKeepsFilePinned) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 1;  // pressure on, but unuploaded files pinned
  DataFileStore store(&blob, opts);
  blob.set_available(false);
  ASSERT_TRUE(store.Write("f1", Bytes("important")).ok());
  EXPECT_TRUE(store.DrainUploads().IsUnavailable());
  // Blob outage must not lose the file or evict it.
  EXPECT_TRUE(store.IsLocal("f1"));
  EXPECT_EQ(**store.Read("f1"), "important");

  blob.set_available(true);
  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_TRUE(blob.Exists("part0/f1"));
}

TEST(DataFileStoreTest, SteadyStateSurvivesOutageWithinWorkingSet) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("hot", Bytes("hot-data")).ok());
  ASSERT_TRUE(store.DrainUploads().ok());

  blob.set_available(false);
  // Reads within the cached working set keep working through the outage.
  auto r = store.Read("hot");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, "hot-data");
  // New writes also keep working (local-first, upload deferred).
  ASSERT_TRUE(store.Write("new", Bytes("new-data")).ok());
  EXPECT_EQ(**store.Read("new"), "new-data");
}

TEST(DataFileStoreTest, RemoveKeepsBlobHistory) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("v")).ok());
  ASSERT_TRUE(store.DrainUploads().ok());
  ASSERT_TRUE(store.Remove("f1").ok());
  EXPECT_FALSE(store.IsLocal("f1"));
  // History retained in blob for PITR.
  EXPECT_TRUE(blob.Exists("part0/f1"));
  // And still readable (re-fetched from history).
  EXPECT_EQ(**store.Read("f1"), "v");
}

TEST(DataFileStoreTest, DuplicateWriteRejected) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("v")).ok());
  EXPECT_TRUE(store.Write("f1", Bytes("w")).IsAlreadyExists());
}

TEST(DataFileStoreTest, WorksWithoutBlobStore) {
  DataFileStore store(nullptr, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("local-only")).ok());
  EXPECT_EQ(**store.Read("f1"), "local-only");
  EXPECT_TRUE(store.DrainUploads().ok());
  EXPECT_TRUE(store.Read("missing").status().IsNotFound());
}

TEST(MemBlobStoreTest, ScriptedFailureSchedule) {
  MemBlobStore blob;
  blob.ScriptPutFailures({true, false, true});
  EXPECT_TRUE(blob.Put("a", "1").IsUnavailable());
  EXPECT_TRUE(blob.Put("b", "2").ok());
  EXPECT_TRUE(blob.Put("c", "3").IsUnavailable());
  EXPECT_TRUE(blob.Put("d", "4").ok());  // schedule exhausted: back to normal
  EXPECT_FALSE(blob.Exists("a"));        // failed puts store nothing
  EXPECT_TRUE(blob.Exists("b"));
  EXPECT_EQ(blob.stats().puts.load(), 2u);  // only successes counted

  blob.FailNextGets(1);
  EXPECT_TRUE(blob.Get("b").status().IsUnavailable());
  EXPECT_EQ(*blob.Get("b"), "2");
}

// The first N uploads fail on a script; every DrainUploads retry makes
// progress and once the schedule is exhausted all files land in blob
// storage — each uploaded exactly once, never dropped, never duplicated.
TEST(DataFileStoreTest, ScriptedPutFailuresRetryUploadsExactlyOnce) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  blob.FailNextPuts(3);
  int failed_drains = 0;
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = store.DrainUploads();
    if (s.ok()) break;
    EXPECT_TRUE(s.IsUnavailable());
    ++failed_drains;
  }
  ASSERT_TRUE(s.ok()) << "DrainUploads never succeeded: " << s.ToString();
  EXPECT_EQ(failed_drains, 3);  // one parked drain per scripted failure
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(store.stats().files_uploaded.load(), 5u);
  EXPECT_EQ(blob.stats().puts.load(), 5u);  // exactly once each
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(blob.Exists("part0/f" + std::to_string(i)));
  }
}

// Background-upload flavor: the pump hits a scripted failure, parks (no
// busy retry loop against a down blob store), and later retries triggered
// by Write/DrainUploads finish the job exactly once.
TEST(DataFileStoreTest, BackgroundPumpParksOnFailureThenRecovers) {
  MemBlobStore blob;
  DataFileStoreOptions opts;
  opts.blob_prefix = "p/";
  opts.background_uploads = true;
  DataFileStore store(&blob, opts);
  blob.FailNextPuts(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  // The background pump and these drains race for the scripted failures;
  // regardless of interleaving, a few retries must finish the uploads.
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = store.DrainUploads();
    if (s.ok()) break;
    EXPECT_TRUE(s.IsUnavailable());
  }
  ASSERT_TRUE(s.ok()) << "uploads never recovered: " << s.ToString();
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(store.stats().files_uploaded.load(), 4u);
  EXPECT_EQ(blob.stats().puts.load(), 4u);  // exactly once each
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(blob.Exists("p/f" + std::to_string(i)));
  }
}

TEST(DataFileStoreTest, BackgroundUploaderDrains) {
  MemBlobStore blob;
  DataFileStoreOptions opts;
  opts.blob_prefix = "p/";
  opts.background_uploads = true;
  DataFileStore store(&blob, opts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(blob.stats().puts.load(), 20u);
}

}  // namespace
}  // namespace s2
