#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blob/blob_store.h"
#include "blob/data_file_store.h"
#include "common/env.h"

namespace s2 {
namespace {

std::shared_ptr<const std::string> Bytes(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

TEST(MemBlobStoreTest, PutGetDeleteList) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("a/1", "one").ok());
  ASSERT_TRUE(blob.Put("a/2", "two").ok());
  ASSERT_TRUE(blob.Put("b/1", "three").ok());

  EXPECT_EQ(*blob.Get("a/1"), "one");
  EXPECT_TRUE(blob.Get("a/9").status().IsNotFound());
  EXPECT_TRUE(blob.Exists("b/1"));

  auto listed = blob.List("a/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"a/1", "a/2"}));

  ASSERT_TRUE(blob.Delete("a/1").ok());
  EXPECT_FALSE(blob.Exists("a/1"));
}

TEST(MemBlobStoreTest, OutageInjection) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("k", "v").ok());
  blob.set_available(false);
  EXPECT_TRUE(blob.Put("k2", "v").IsUnavailable());
  EXPECT_TRUE(blob.Get("k").status().IsUnavailable());
  blob.set_available(true);
  EXPECT_EQ(*blob.Get("k"), "v");
}

TEST(MemBlobStoreTest, StatsCount) {
  MemBlobStore blob;
  ASSERT_TRUE(blob.Put("k", "12345").ok());
  (void)*blob.Get("k");
  EXPECT_EQ(blob.stats().puts.load(), 1u);
  EXPECT_EQ(blob.stats().gets.load(), 1u);
  EXPECT_EQ(blob.stats().bytes_uploaded.load(), 5u);
  EXPECT_EQ(blob.stats().bytes_downloaded.load(), 5u);
}

TEST(LocalDirBlobStoreTest, RoundTrip) {
  auto dir = MakeTempDir("s2-blobdir");
  ASSERT_TRUE(dir.ok());
  LocalDirBlobStore blob(*dir);
  ASSERT_TRUE(blob.Put("db/part0/file_1", "contents").ok());
  EXPECT_EQ(*blob.Get("db/part0/file_1"), "contents");
  EXPECT_TRUE(blob.Exists("db/part0/file_1"));
  auto listed = blob.List("db/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 1u);
  ASSERT_TRUE(blob.Delete("db/part0/file_1").ok());
  EXPECT_FALSE(blob.Exists("db/part0/file_1"));
  (void)RemoveDirRecursive(*dir);
}

DataFileStoreOptions SyncOptions() {
  DataFileStoreOptions opts;
  opts.blob_prefix = "part0/";
  opts.background_uploads = false;
  return opts;
}

TEST(DataFileStoreTest, WriteIsLocalUploadIsAsync) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("data1")).ok());
  // Commit path: zero blob writes so far.
  EXPECT_EQ(blob.stats().puts.load(), 0u);
  EXPECT_EQ(store.PendingUploads(), 1u);
  EXPECT_TRUE(store.IsLocal("f1"));

  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_EQ(blob.stats().puts.load(), 1u);
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_TRUE(blob.Exists("part0/f1"));
}

TEST(DataFileStoreTest, ReadThroughAfterEviction) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 10;  // tiny cache forces eviction
  DataFileStore store(&blob, opts);
  ASSERT_TRUE(store.Write("f1", Bytes(std::string(8, 'a'))).ok());
  ASSERT_TRUE(store.Write("f2", Bytes(std::string(8, 'b'))).ok());
  // Not yet uploaded: both pinned despite cache pressure.
  EXPECT_TRUE(store.IsLocal("f1"));
  EXPECT_TRUE(store.IsLocal("f2"));

  ASSERT_TRUE(store.DrainUploads().ok());
  store.EvictCold();
  // Cache budget is 10 bytes; at least one file must have been evicted.
  EXPECT_TRUE(!store.IsLocal("f1") || !store.IsLocal("f2"));

  auto f1 = store.Read("f1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(**f1, std::string(8, 'a'));
  EXPECT_GE(store.stats().blob_fetches.load() +
                store.stats().local_hits.load(),
            1u);
}

TEST(DataFileStoreTest, UploadFailureKeepsFilePinned) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 1;  // pressure on, but unuploaded files pinned
  DataFileStore store(&blob, opts);
  blob.set_available(false);
  ASSERT_TRUE(store.Write("f1", Bytes("important")).ok());
  EXPECT_TRUE(store.DrainUploads().IsUnavailable());
  // Blob outage must not lose the file or evict it.
  EXPECT_TRUE(store.IsLocal("f1"));
  EXPECT_EQ(**store.Read("f1"), "important");

  blob.set_available(true);
  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_TRUE(blob.Exists("part0/f1"));
}

TEST(DataFileStoreTest, SteadyStateSurvivesOutageWithinWorkingSet) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("hot", Bytes("hot-data")).ok());
  ASSERT_TRUE(store.DrainUploads().ok());

  blob.set_available(false);
  // Reads within the cached working set keep working through the outage.
  auto r = store.Read("hot");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, "hot-data");
  // New writes also keep working (local-first, upload deferred).
  ASSERT_TRUE(store.Write("new", Bytes("new-data")).ok());
  EXPECT_EQ(**store.Read("new"), "new-data");
}

TEST(DataFileStoreTest, RemoveKeepsBlobHistory) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("v")).ok());
  ASSERT_TRUE(store.DrainUploads().ok());
  ASSERT_TRUE(store.Remove("f1").ok());
  EXPECT_FALSE(store.IsLocal("f1"));
  // History retained in blob for PITR.
  EXPECT_TRUE(blob.Exists("part0/f1"));
  // And still readable (re-fetched from history).
  EXPECT_EQ(**store.Read("f1"), "v");
}

TEST(DataFileStoreTest, DuplicateWriteRejected) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("v")).ok());
  EXPECT_TRUE(store.Write("f1", Bytes("w")).IsAlreadyExists());
}

TEST(DataFileStoreTest, WorksWithoutBlobStore) {
  DataFileStore store(nullptr, SyncOptions());
  ASSERT_TRUE(store.Write("f1", Bytes("local-only")).ok());
  EXPECT_EQ(**store.Read("f1"), "local-only");
  EXPECT_TRUE(store.DrainUploads().ok());
  EXPECT_TRUE(store.Read("missing").status().IsNotFound());
}

TEST(MemBlobStoreTest, ScriptedFailureSchedule) {
  MemBlobStore blob;
  blob.ScriptPutFailures({true, false, true});
  EXPECT_TRUE(blob.Put("a", "1").IsUnavailable());
  EXPECT_TRUE(blob.Put("b", "2").ok());
  EXPECT_TRUE(blob.Put("c", "3").IsUnavailable());
  EXPECT_TRUE(blob.Put("d", "4").ok());  // schedule exhausted: back to normal
  EXPECT_FALSE(blob.Exists("a"));        // failed puts store nothing
  EXPECT_TRUE(blob.Exists("b"));
  EXPECT_EQ(blob.stats().puts.load(), 2u);  // only successes counted

  blob.FailNextGets(1);
  EXPECT_TRUE(blob.Get("b").status().IsUnavailable());
  EXPECT_EQ(*blob.Get("b"), "2");
}

// The first N uploads fail on a script; every DrainUploads retry makes
// progress and once the schedule is exhausted all files land in blob
// storage — each uploaded exactly once, never dropped, never duplicated.
TEST(DataFileStoreTest, ScriptedPutFailuresRetryUploadsExactlyOnce) {
  MemBlobStore blob;
  DataFileStore store(&blob, SyncOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  blob.FailNextPuts(3);
  int failed_drains = 0;
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = store.DrainUploads();
    if (s.ok()) break;
    EXPECT_TRUE(s.IsUnavailable());
    ++failed_drains;
  }
  ASSERT_TRUE(s.ok()) << "DrainUploads never succeeded: " << s.ToString();
  EXPECT_EQ(failed_drains, 3);  // one parked drain per scripted failure
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(store.stats().files_uploaded.load(), 5u);
  EXPECT_EQ(blob.stats().puts.load(), 5u);  // exactly once each
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(blob.Exists("part0/f" + std::to_string(i)));
  }
}

// Background-upload flavor: the pump hits a scripted failure, parks (no
// busy retry loop against a down blob store), and later retries triggered
// by Write/DrainUploads finish the job exactly once.
TEST(DataFileStoreTest, BackgroundPumpParksOnFailureThenRecovers) {
  MemBlobStore blob;
  DataFileStoreOptions opts;
  opts.blob_prefix = "p/";
  opts.background_uploads = true;
  DataFileStore store(&blob, opts);
  blob.FailNextPuts(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  // The background pump and these drains race for the scripted failures;
  // regardless of interleaving, a few retries must finish the uploads.
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = store.DrainUploads();
    if (s.ok()) break;
    EXPECT_TRUE(s.IsUnavailable());
  }
  ASSERT_TRUE(s.ok()) << "uploads never recovered: " << s.ToString();
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(store.stats().files_uploaded.load(), 4u);
  EXPECT_EQ(blob.stats().puts.load(), 4u);  // exactly once each
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(blob.Exists("p/f" + std::to_string(i)));
  }
}

TEST(DataFileStoreTest, BackgroundUploaderDrains) {
  MemBlobStore blob;
  DataFileStoreOptions opts;
  opts.blob_prefix = "p/";
  opts.background_uploads = true;
  DataFileStore store(&blob, opts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Write("f" + std::to_string(i), Bytes("data")).ok());
  }
  ASSERT_TRUE(store.DrainUploads().ok());
  EXPECT_EQ(store.PendingUploads(), 0u);
  EXPECT_EQ(blob.stats().puts.load(), 20u);
}

// Regression: concurrent cold reads of the same file must coalesce into one
// blob Get (single-flight), even with a slow blob backend.
TEST(DataFileStoreTest, ConcurrentColdReadsSingleFlight) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 4;  // smaller than the file: evictable once cold
  DataFileStore store(&blob, opts);
  const std::string payload(64, 'x');
  ASSERT_TRUE(store.Write("cold", Bytes(payload)).ok());
  ASSERT_TRUE(store.DrainUploads().ok());
  store.EvictCold();
  ASSERT_FALSE(store.IsLocal("cold"));
  uint64_t gets_before = blob.stats().gets.load();

  blob.set_get_latency_us(20000);  // 20ms: plenty of overlap for 8 readers
  constexpr int kReaders = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto r = store.Read("cold");
      if (r.ok() && **r == payload) ok_count.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(ok_count.load(), kReaders);
  // The leader's fetch served everyone: exactly one blob Get.
  EXPECT_EQ(blob.stats().gets.load() - gets_before, 1u);
  EXPECT_GE(store.stats().coalesced_reads.load(),
            static_cast<uint64_t>(kReaders - 1));
}

// A failed single-flight fetch must propagate the error to every waiter and
// leave the store usable (the next read retries).
TEST(DataFileStoreTest, SingleFlightPropagatesFetchError) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  opts.local_cache_bytes = 1;
  DataFileStore store(&blob, opts);
  ASSERT_TRUE(store.Write("f", Bytes(std::string(32, 'z'))).ok());
  ASSERT_TRUE(store.DrainUploads().ok());
  store.EvictCold();
  ASSERT_FALSE(store.IsLocal("f"));

  blob.set_get_latency_us(5000);
  blob.FailNextGets(1);  // the leader's Get fails; followers share the error
  constexpr int kReaders = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      if (!store.Read("f").ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();
  // All readers in the failed flight saw the error... unless a late reader
  // started a second (successful) flight after the first completed; either
  // way at least the leader failed and the store must recover below.
  EXPECT_GE(failures.load(), 1);

  blob.set_get_latency_us(0);
  auto r = store.Read("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, std::string(32, 'z'));
}

// Stress: cold reads racing evictions and writes with a slow blob backend.
// Checks single-fetch behaviour in aggregate, cached_bytes_ accounting, the
// cache budget, and that nothing deadlocks.
TEST(DataFileStoreTest, ConcurrentColdReadEvictionStress) {
  MemBlobStore blob;
  auto opts = SyncOptions();
  const size_t file_size = 128;
  const int num_files = 8;
  opts.local_cache_bytes = 2 * file_size;  // holds ~2 of 8 files
  DataFileStore store(&blob, opts);
  std::vector<std::string> names;
  for (int i = 0; i < num_files; ++i) {
    names.push_back("f" + std::to_string(i));
    ASSERT_TRUE(
        store.Write(names.back(), Bytes(std::string(file_size, 'a' + i)))
            .ok());
  }
  ASSERT_TRUE(store.DrainUploads().ok());
  store.EvictCold();
  EXPECT_LE(store.CachedBytes(), opts.local_cache_bytes);

  blob.set_get_latency_us(500);
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 40;
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        // Deterministic per-thread pattern spreading load over all files.
        const std::string& name = names[(t * 3 + i) % num_files];
        auto r = store.Read(name);
        if (!r.ok() ||
            (*r)->front() != static_cast<char>('a' + (t * 3 + i) % num_files)) {
          errors.fetch_add(1);
        }
        if (i % 16 == 0) store.EvictCold();
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(errors.load(), 0);

  // cached_bytes_ must equal the sum of resident file sizes...
  size_t resident = 0;
  store.ForEachFile([&](const std::string&,
                        std::shared_ptr<const std::string> data) {
    resident += data->size();
  });
  EXPECT_EQ(store.CachedBytes(), resident);
  // ...and after a final eviction pass the budget holds again.
  store.EvictCold();
  EXPECT_LE(store.CachedBytes(), opts.local_cache_bytes);

  // Single-flight in aggregate: every blob Get was a real miss, never more
  // Gets than reads issued, and the store still serves reads afterwards.
  blob.set_get_latency_us(0);
  for (const auto& name : names) {
    auto r = store.Read(name);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->size(), file_size);
  }
}

}  // namespace
}  // namespace s2
