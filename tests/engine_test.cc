#include <gtest/gtest.h>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/metrics.h"
#include "engine/database.h"
#include "query/plan.h"

namespace s2 {
namespace {

TableOptions ItemsTable() {
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64},
                     {"name", DataType::kString},
                     {"price", DataType::kDouble}});
  t.unique_key = {0};
  t.indexes = {{0}};
  t.segment_rows = 128;
  t.flush_threshold = 128;
  return t;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-engine");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursive(dir_); }

  std::unique_ptr<Database> Open(EngineProfile profile,
                                 BlobStore* blob = nullptr) {
    DatabaseOptions opts;
    opts.dir = dir_ + "/" + std::to_string(count_++);
    opts.blob = blob;
    opts.profile = profile;
    auto db = Database::Open(opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  size_t CountRows(Database* db) {
    auto rows = db->Query([] {
      return std::make_unique<ScanOp>("items", std::vector<int>{0});
    });
    EXPECT_TRUE(rows.ok());
    return rows->size();
  }

  std::string dir_;
  int count_ = 0;
};

TEST_F(EngineTest, UnifiedProfileRoundTrip) {
  auto db = Open(EngineProfile::kUnified);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back({Value(i), Value("n" + std::to_string(i)), Value(1.0)});
  }
  ASSERT_TRUE(db->Insert("items", rows).ok());
  ASSERT_TRUE(db->Maintain().ok());
  EXPECT_EQ(CountRows(db.get()), 500u);
  // Data moved into columnstore segments.
  auto table = *db->cluster()->partition(0)->GetTable("items");
  EXPECT_GT(table->NumSegments(), 0u);
}

TEST_F(EngineTest, RowstoreProfileNeverFlushes) {
  auto db = Open(EngineProfile::kOperationalRowstore);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back({Value(i), Value("n"), Value(1.0)});
  }
  ASSERT_TRUE(db->Insert("items", rows).ok());
  ASSERT_TRUE(db->Maintain().ok());
  auto table = *db->cluster()->partition(0)->GetTable("items");
  EXPECT_EQ(table->NumSegments(), 0u)
      << "CDB profile keeps all data in the rowstore";
  EXPECT_EQ(CountRows(db.get()), 500u);
  // Unique keys still enforced (it's an operational database).
  EXPECT_TRUE(db->Insert("items", {{Value(int64_t{1}), Value("dup"),
                                    Value(0.0)}})
                  .IsAlreadyExists());
}

TEST_F(EngineTest, WarehouseProfileDropsUniqueEnforcement) {
  MemBlobStore blob;
  auto db = Open(EngineProfile::kCloudWarehouse, &blob);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  ASSERT_TRUE(
      db->Insert("items", {{Value(int64_t{1}), Value("a"), Value(1.0)}}).ok());
  // The paper: CDWs lack enforced unique constraints — duplicates load.
  ASSERT_TRUE(
      db->Insert("items", {{Value(int64_t{1}), Value("b"), Value(2.0)}}).ok());
  EXPECT_EQ(CountRows(db.get()), 2u);
}

TEST_F(EngineTest, WarehouseProfileCommitsThroughBlob) {
  MemBlobStore blob;
  auto db = Open(EngineProfile::kCloudWarehouse, &blob);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  uint64_t puts_before = blob.stats().puts.load();
  ASSERT_TRUE(
      db->Insert("items", {{Value(int64_t{1}), Value("a"), Value(1.0)}}).ok());
  EXPECT_GT(blob.stats().puts.load(), puts_before)
      << "CDW baseline persists to blob storage on the commit path";
}

TEST_F(EngineTest, UnifiedCommitsNeverTouchBlob) {
  MemBlobStore blob;
  auto db = Open(EngineProfile::kUnified, &blob);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  uint64_t puts_before = blob.stats().puts.load();
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db->Insert("items", {{Value(i), Value("x"), Value(1.0)}}).ok());
  }
  EXPECT_EQ(blob.stats().puts.load(), puts_before);
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_GT(blob.stats().puts.load(), puts_before);
}

TEST_F(EngineTest, BlobOutageDoesNotBlockUnifiedCommits) {
  MemBlobStore blob;
  auto db = Open(EngineProfile::kUnified, &blob);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  blob.set_available(false);
  // Steady-state writes keep working through a blob outage (Section 3.1).
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        db->Insert("items", {{Value(i), Value("x"), Value(1.0)}}).ok());
  }
  ASSERT_TRUE(db->Maintain().IsUnavailable())
      << "only the background upload path observes the outage";
  EXPECT_EQ(CountRows(db.get()), 300u);
  blob.set_available(true);
  EXPECT_TRUE(db->Maintain().ok());
}

TEST_F(EngineTest, TransactionAcrossTables) {
  auto db = Open(EngineProfile::kUnified);
  ASSERT_TRUE(db->CreateTable("items", ItemsTable(), {0}).ok());
  TableOptions audit;
  audit.schema = Schema({{"seq", DataType::kInt64},
                         {"what", DataType::kString}});
  audit.unique_key = {0};
  ASSERT_TRUE(db->CreateTable("audit", audit, {0}).ok());

  auto txn = db->Begin();
  auto h = txn.On(0);
  ASSERT_TRUE(txn.table(0, "items")
                  ->InsertRows(h.id, h.read_ts,
                               {{Value(int64_t{1}), Value("a"), Value(1.0)}})
                  .ok());
  ASSERT_TRUE(txn.table(0, "audit")
                  ->InsertRows(h.id, h.read_ts,
                               {{Value(int64_t{1}), Value("insert item 1")}})
                  .ok());
  txn.Abort();
  EXPECT_EQ(CountRows(db.get()), 0u) << "abort must span both tables";

  auto txn2 = db->Begin();
  auto h2 = txn2.On(0);
  ASSERT_TRUE(txn2.table(0, "items")
                  ->InsertRows(h2.id, h2.read_ts,
                               {{Value(int64_t{1}), Value("a"), Value(1.0)}})
                  .ok());
  ASSERT_TRUE(txn2.table(0, "audit")
                  ->InsertRows(h2.id, h2.read_ts,
                               {{Value(int64_t{1}), Value("insert item 1")}})
                  .ok());
  ASSERT_TRUE(txn2.Commit().ok());
  EXPECT_EQ(CountRows(db.get()), 1u);
}

// Acceptance for the metrics layer: after a write + flush + checkpoint +
// workspace-read workload, DumpMetrics reports non-empty counters and sane
// latency quantiles for log commit, flush, blob put/get, and cache
// hit/miss.
TEST_F(EngineTest, DumpMetricsCoversEngineLayers) {
  MetricsRegistry::Global()->ResetForTest();
  MemBlobStore blob;
  DatabaseOptions opts;
  opts.dir = dir_ + "/metrics";
  opts.blob = &blob;
  opts.profile = EngineProfile::kUnified;
  opts.num_partitions = 2;   // scatter queries run as executor tasks
  opts.num_exec_threads = 4;  // force a real pool even on 1-core machines
  {
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->CreateTable("items", ItemsTable(), {0}).ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 600; ++i) {
      rows.push_back({Value(i), Value("name" + std::to_string(i)),
                      Value(static_cast<double>(i))});
    }
    ASSERT_TRUE((*db)->Insert("items", rows).ok());
    ASSERT_TRUE((*db)->Maintain().ok());    // flush + merge
    ASSERT_TRUE((*db)->Checkpoint().ok());  // blob puts
    // A fresh read-only workspace restores from blob storage: its
    // data-file reads are cold (cache misses + blob gets).
    auto ws = (*db)->CreateWorkspace();
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    auto ws_rows = (*db)->Query(
        [] { return std::make_unique<ScanOp>("items", std::vector<int>{0}); },
        *ws);
    ASSERT_TRUE(ws_rows.ok());
    EXPECT_EQ(ws_rows->size(), 600u);
  }
  // Reopen in the same directory: recovery replays the log, and its
  // data-file reads are served by the local disk cache (cache hits).
  {
    auto db2 = Database::Open(opts);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    EXPECT_EQ(CountRows(db2->get()), 600u);
  }
  // Both databases are closed: executor shutdown drained every queued
  // task, so the task counter is deterministic here.

  MetricsRegistry* reg = MetricsRegistry::Global();
  EXPECT_GT(reg->counter("s2_log_commit_total")->value(), 0u);
  EXPECT_GT(reg->counter("s2_txn_begin_total")->value(), 0u);
  EXPECT_GT(reg->counter("s2_flush_total")->value(), 0u);
  EXPECT_GT(reg->counter("s2_blob_put_total")->value(), 0u);
  EXPECT_GT(reg->counter("s2_blob_get_total")->value(), 0u);
  EXPECT_GT(reg->counter("s2_exec_tasks_total")->value(), 0u);
  // Cache hits: memory hits + local-disk hits both count (recovery reads
  // land on disk; repeated reads of resident files land in memory).
  EXPECT_GT(reg->counter("s2_cache_mem_hits_total")->value() +
                reg->counter("s2_cache_disk_hits_total")->value(),
            0u);
  EXPECT_GT(reg->counter("s2_cache_misses_total")->value(), 0u);

  for (const char* h : {"s2_log_commit_ns", "s2_flush_ns", "s2_blob_put_ns",
                        "s2_blob_get_ns", "s2_txn_commit_ns"}) {
    Histogram* hist = reg->histogram(h);
    EXPECT_GT(hist->count(), 0u) << h;
    EXPECT_GT(hist->Quantile(0.5), 0u) << h;
    EXPECT_LE(hist->Quantile(0.5), hist->Quantile(0.99)) << h;
    EXPECT_LE(hist->Quantile(0.99), hist->max()) << h;
  }

  // The text dump carries every layer's metrics.
  std::string text = Database::DumpMetrics();
  for (const char* name :
       {"s2_log_commit_ns", "s2_log_commit_total", "s2_flush_ns",
        "s2_blob_put_ns", "s2_blob_get_ns", "s2_cache_misses_total",
        "s2_txn_commit_ns", "s2_exec_tasks_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name << "\n" << text;
  }
  std::string json = Database::DumpMetricsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"s2_log_commit_ns\""), std::string::npos);
}

}  // namespace
}  // namespace s2
