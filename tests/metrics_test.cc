#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace s2 {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global()->ResetForTest();
    TraceBuffer::Global()->Clear();
    TraceBuffer::Global()->set_enabled(false);
  }
};

TEST_F(MetricsTest, CounterBasics) {
  Counter* c = MetricsRegistry::Global()->counter("test_counter_total");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(MetricsRegistry::Global()->counter("test_counter_total"), c);
}

TEST_F(MetricsTest, GaugeBasics) {
  Gauge* g = MetricsRegistry::Global()->gauge("test_gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST_F(MetricsTest, ResetKeepsPointersValid) {
  Counter* c = MetricsRegistry::Global()->counter("test_reset_total");
  c->Add(5);
  MetricsRegistry::Global()->ResetForTest();
  EXPECT_EQ(c->value(), 0u);  // same object, zeroed
  c->Add(1);
  EXPECT_EQ(MetricsRegistry::Global()->counter("test_reset_total")->value(),
            1u);
}

TEST_F(MetricsTest, HistogramBucketErrorBound) {
  // Every value must land in a bucket whose representative is within
  // ~1/kSub relative error.
  for (uint64_t v :
       {uint64_t{1}, uint64_t{7}, uint64_t{8}, uint64_t{100}, uint64_t{1000},
        uint64_t{123456}, uint64_t{87654321}, uint64_t{1} << 40}) {
    size_t b = Histogram::BucketFor(v);
    ASSERT_LT(b, Histogram::kBuckets);
    uint64_t mid = Histogram::BucketMid(b);
    double rel = std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
                 static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / Histogram::kSub + 1e-9)
        << "v=" << v << " bucket=" << b << " mid=" << mid;
  }
}

TEST_F(MetricsTest, HistogramQuantilesAreSane) {
  Histogram h;
  // Uniform 1..1000: p50 ~ 500, p99 ~ 990, max exactly 1000.
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.95)), 950.0, 950.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.99)), 990.0, 990.0 * 0.15);
  // Quantiles never exceed the observed max.
  EXPECT_LE(h.Quantile(1.0), h.max());
  // Monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST_F(MetricsTest, HistogramSkewedDistribution) {
  Histogram h;
  // 99 fast ops at ~100ns, one slow outlier at 1ms.
  for (int i = 0; i < 99; ++i) h.Record(100);
  h.Record(1000000);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 100.0, 15.0);
  EXPECT_EQ(h.Quantile(1.0), 1000000u);
  EXPECT_GE(h.Quantile(0.999), 900000u);
}

TEST_F(MetricsTest, HistogramConcurrentRecord) {
  Histogram h;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.max(), static_cast<uint64_t>(kPerThread));
}

TEST_F(MetricsTest, ScopedTimerRecordsAndCancels) {
  Histogram h;
  {
    ScopedTimer t(&h);
    (void)t;
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimer t(&h);
    t.Cancel();
  }
  EXPECT_EQ(h.count(), 1u);  // cancelled timer did not record
}

TEST_F(MetricsTest, MacrosCacheHandles) {
  S2_COUNTER("test_macro_total").Add(3);
  S2_COUNTER("test_macro_total").Add(4);
  EXPECT_EQ(MetricsRegistry::Global()->counter("test_macro_total")->value(),
            7u);
  S2_GAUGE("test_macro_gauge").Set(-5);
  EXPECT_EQ(MetricsRegistry::Global()->gauge("test_macro_gauge")->value(), -5);
  S2_HISTOGRAM("test_macro_ns").Record(123);
  EXPECT_EQ(MetricsRegistry::Global()->histogram("test_macro_ns")->count(),
            1u);
}

TEST_F(MetricsTest, DumpContainsAllMetricKinds) {
  MetricsRegistry::Global()->counter("dump_counter_total")->Add(7);
  MetricsRegistry::Global()->gauge("dump_gauge")->Set(-2);
  MetricsRegistry::Global()->histogram("dump_ns")->Record(1000);

  std::string text = MetricsRegistry::Global()->Dump();
  EXPECT_NE(text.find("dump_counter_total 7"), std::string::npos) << text;
  EXPECT_NE(text.find("dump_gauge -2"), std::string::npos) << text;
  EXPECT_NE(text.find("dump_ns{quantile=\"0.5\"}"), std::string::npos) << text;
  EXPECT_NE(text.find("dump_ns_count 1"), std::string::npos) << text;

  std::string json = MetricsRegistry::Global()->DumpJson();
  EXPECT_NE(json.find("\"dump_counter_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dump_gauge\":-2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dump_ns\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  // Must parse as one object: balanced braces, no trailing comma.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find(",}"), std::string::npos) << json;
}

TEST_F(MetricsTest, TraceBufferDisabledByDefault) {
  bool evaluated = false;
  S2_TRACE_EVENT("test", (evaluated = true, std::string("detail")));
  EXPECT_FALSE(evaluated);  // detail expression not evaluated when disabled
  EXPECT_TRUE(TraceBuffer::Global()->Snapshot().empty());
}

TEST_F(MetricsTest, TraceSpanAndEvent) {
  TraceBuffer::Global()->set_enabled(true);
  {
    S2_TRACE_SPAN(span, "test.span", std::string("k=1"));
    span.AppendDetail(" extra");
  }
  S2_TRACE_EVENT("test.event", std::string("instant"));
  auto events = TraceBuffer::Global()->Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].category, "test.span");
  EXPECT_EQ(events[0].detail, "k=1 extra");
  EXPECT_STREQ(events[1].category, "test.event");
  EXPECT_EQ(events[1].duration_ns, 0u);
  // Oldest-first ordering by sequence.
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST_F(MetricsTest, TraceRingWrapsKeepingNewest) {
  TraceBuffer::Global()->set_enabled(true);
  const size_t total = TraceBuffer::kCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    TraceBuffer::Global()->Emit("wrap", std::to_string(i), i, 0);
  }
  auto events = TraceBuffer::Global()->Snapshot();
  ASSERT_EQ(events.size(), TraceBuffer::kCapacity);
  // The oldest kept event is total - kCapacity; the newest is total - 1.
  EXPECT_EQ(events.front().detail,
            std::to_string(total - TraceBuffer::kCapacity));
  EXPECT_EQ(events.back().detail, std::to_string(total - 1));
}

TEST_F(MetricsTest, TraceRingCountsDrops) {
  TraceBuffer::Global()->set_enabled(true);
  EXPECT_EQ(TraceBuffer::Global()->dropped(), 0u);
  for (size_t i = 0; i < TraceBuffer::kCapacity + 37; ++i) {
    TraceBuffer::Global()->Emit("drop", "", i, 0);
  }
  EXPECT_EQ(TraceBuffer::Global()->dropped(), 37u);
  // The loss is also visible in the metrics dump.
  EXPECT_EQ(
      MetricsRegistry::Global()->counter("s2_trace_dropped_total")->value(),
      37u);
  EXPECT_NE(MetricsRegistry::Global()->Dump().find("s2_trace_dropped_total"),
            std::string::npos);
  TraceBuffer::Global()->Clear();
  EXPECT_EQ(TraceBuffer::Global()->dropped(), 0u);
}

TEST_F(MetricsTest, EmptyHistogramQuantileIsZero) {
  Histogram* h = MetricsRegistry::Global()->histogram("empty_ns");
  EXPECT_EQ(h->count(), 0u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h->Quantile(q), 0u) << "q=" << q;
  }
  h->Record(500);
  h->Reset();
  EXPECT_EQ(h->Quantile(0.5), 0u) << "reset histogram reads as empty";
}

TEST_F(MetricsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(EscapePrometheusLabel("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapePrometheusLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePrometheusLabel("a\nb"), "a\\nb");
  EXPECT_EQ(EscapePrometheusLabel("\\\"\n"), "\\\\\\\"\\n");
}

}  // namespace
}  // namespace s2
