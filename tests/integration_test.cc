// End-to-end failure-injection and durability tests: crash-restart at
// arbitrary log truncation points, blob outages mid-workload, recovery
// idempotence, and workload-vs-model checks across restarts.

#include <gtest/gtest.h>

#include "test_util.h"

#include <map>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/rng.h"
#include "query/plan.h"
#include "storage/partition.h"

namespace s2 {
namespace {

Schema LedgerSchema() {
  return Schema({{"account", DataType::kInt64},
                 {"owner", DataType::kString},
                 {"balance", DataType::kDouble}});
}

TableOptions LedgerTable() {
  TableOptions t;
  t.schema = LedgerSchema();
  t.unique_key = {0};
  t.indexes = {{0}, {1}};
  t.sort_key = {0};
  t.segment_rows = 32;
  t.flush_threshold = 32;
  t.max_sorted_runs = 3;
  return t;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-integration");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override {
    partition_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  void Open(Lsn recover_to = 0) {
    PartitionOptions opts;
    opts.dir = dir_ + "/part";
    opts.blob = &blob_;
    opts.blob_prefix = "p/";
    opts.background_uploads = false;
    opts.auto_maintain = true;
    opts.recover_to_lsn = recover_to;
    partition_ = std::make_unique<Partition>(opts);
    ASSERT_TRUE(partition_->Init().ok());
  }

  std::map<int64_t, double> Balances() {
    auto table = partition_->GetTable("ledger");
    std::map<int64_t, double> out;
    // A torn log cut before the DDL commit legitimately recovers to a
    // state without the table: zero rows.
    if (!table.ok()) return out;
    auto h = partition_->Begin();
    (*table)->ScanRowstore(h.id, h.read_ts,
                           [&](const Row& row, const RowLocation&) {
                             out[row[0].as_int()] = row[2].as_double();
                             return true;
                           });
    auto segments = (*table)->GetSegments(h.read_ts);
    EXPECT_TRUE(segments.ok());
    for (const SegmentSnapshot& snap : *segments) {
      for (uint32_t r = 0; r < snap.segment->num_rows(); ++r) {
        if (snap.deletes != nullptr && snap.deletes->Get(r)) continue;
        Row row = *snap.segment->ReadRow(r);
        out[row[0].as_int()] = row[2].as_double();
      }
    }
    partition_->EndRead(h.id);
    return out;
  }

  std::string dir_;
  MemBlobStore blob_;
  std::unique_ptr<Partition> partition_;
};

// Random committed workload, then a crash (reopen). The recovered state
// must exactly equal the model. Repeated with maintenance interleaved so
// flush/merge/metadata records all get replayed.
TEST_F(IntegrationTest, CrashRecoveryMatchesModelAcrossManyRestarts) {
  Open();
  auto table = partition_->CreateTable("ledger", LedgerTable());
  ASSERT_TRUE(table.ok());
  std::map<int64_t, double> model;
  const uint64_t seed = TestSeed(2024);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);

  for (int epoch = 0; epoch < 5; ++epoch) {
    UnifiedTable* ledger = *partition_->GetTable("ledger");
    for (int op = 0; op < 120; ++op) {
      int64_t account = static_cast<int64_t>(rng.Uniform(60));
      double amount = static_cast<double>(rng.Uniform(1000));
      auto h = partition_->Begin();
      Status s;
      int kind = static_cast<int>(rng.Uniform(3));
      if (kind == 0) {
        s = ledger
                ->InsertRows(h.id, h.read_ts,
                             {{Value(account), Value("o"), Value(amount)}})
                .status();
        if (s.ok() && partition_->Commit(h.id).ok()) model[account] = amount;
      } else if (kind == 1) {
        s = ledger->UpdateByKey(h.id, h.read_ts, {Value(account)},
                                {Value(account), Value("o"), Value(amount)});
        if (s.ok() && partition_->Commit(h.id).ok()) model[account] = amount;
      } else {
        s = ledger->DeleteByKey(h.id, h.read_ts, {Value(account)});
        if (s.ok() && partition_->Commit(h.id).ok()) model.erase(account);
      }
      if (!s.ok()) partition_->Abort(h.id);
    }
    if (epoch % 2 == 0) {
      ASSERT_TRUE(partition_->Maintain().ok());
    }
    if (epoch == 2) {
      ASSERT_TRUE(partition_->WriteSnapshot().ok());
    }
    // Crash and recover.
    Open();
    auto balances = Balances();
    ASSERT_EQ(balances.size(), model.size()) << "epoch " << epoch;
    for (const auto& [account, amount] : model) {
      ASSERT_EQ(balances.count(account), 1u)
          << "epoch " << epoch << " account " << account;
      EXPECT_DOUBLE_EQ(balances[account], amount);
    }
  }
}

// Recovery must be idempotent: recovering twice from the same on-disk
// state yields the same data.
TEST_F(IntegrationTest, RecoveryIsIdempotent) {
  Open();
  ASSERT_TRUE(partition_->CreateTable("ledger", LedgerTable()).ok());
  UnifiedTable* ledger = *partition_->GetTable("ledger");
  for (int64_t i = 0; i < 100; ++i) {
    auto h = partition_->Begin();
    ASSERT_TRUE(
        ledger->InsertRows(h.id, h.read_ts, {{Value(i), Value("o"), Value(1.0)}})
            .ok());
    ASSERT_TRUE(partition_->Commit(h.id).ok());
  }
  ASSERT_TRUE(partition_->Maintain().ok());
  Open();
  auto first = Balances();
  Open();
  auto second = Balances();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 100u);
}

// Chop the log at arbitrary byte positions ("crash mid-write"): recovery
// must never fail and must recover a consistent prefix (a subset of
// committed transactions, each applied atomically).
TEST_F(IntegrationTest, TornLogPrefixRecoversConsistently) {
  Open();
  ASSERT_TRUE(partition_->CreateTable("ledger", LedgerTable()).ok());
  UnifiedTable* ledger = *partition_->GetTable("ledger");
  // Each transaction inserts TWO accounts (2k, 2k+1): atomicity visible.
  for (int64_t k = 0; k < 50; ++k) {
    auto h = partition_->Begin();
    ASSERT_TRUE(ledger
                    ->InsertRows(h.id, h.read_ts,
                                 {{Value(2 * k), Value("a"), Value(1.0)},
                                  {Value(2 * k + 1), Value("b"), Value(1.0)}})
                    .ok());
    ASSERT_TRUE(partition_->Commit(h.id).ok());
  }
  partition_.reset();

  std::string log_path = dir_ + "/part/log";
  std::string full_log = *ReadFileToString(log_path);
  const uint64_t seed = TestSeed(77);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    size_t cut = rng.Uniform(full_log.size() + 1);
    ASSERT_TRUE(WriteFileAtomic(log_path, full_log.substr(0, cut)).ok());
    Open();
    auto balances = Balances();
    // Atomic prefix: both rows of a transaction or neither.
    for (int64_t k = 0; k < 50; ++k) {
      EXPECT_EQ(balances.count(2 * k), balances.count(2 * k + 1))
          << "cut=" << cut << " txn " << k << " applied partially";
    }
    partition_.reset();
  }
  // Restore the full log for TearDown hygiene.
  ASSERT_TRUE(WriteFileAtomic(log_path, full_log).ok());
}

// A blob outage in the middle of a workload must not lose data or block
// commits; uploads resume when the blob comes back.
TEST_F(IntegrationTest, BlobOutageMidWorkload) {
  Open();
  ASSERT_TRUE(partition_->CreateTable("ledger", LedgerTable()).ok());
  UnifiedTable* ledger = *partition_->GetTable("ledger");
  auto insert_range = [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      auto h = partition_->Begin();
      ASSERT_TRUE(ledger
                      ->InsertRows(h.id, h.read_ts,
                                   {{Value(i), Value("o"), Value(1.0)}})
                      .ok());
      ASSERT_TRUE(partition_->Commit(h.id).ok());
    }
  };
  insert_range(0, 100);
  ASSERT_TRUE(partition_->UploadToBlob().ok());

  blob_.set_available(false);
  insert_range(100, 200);  // keeps working: local commit path
  EXPECT_TRUE(partition_->UploadToBlob().IsUnavailable());
  blob_.set_available(true);
  ASSERT_TRUE(partition_->UploadToBlob().ok());

  // Everything recoverable, and blob history is contiguous again.
  Open();
  EXPECT_EQ(Balances().size(), 200u);
}

// PITR property: restoring to the LSN captured after transaction k yields
// exactly the first k transactions' effects.
TEST_F(IntegrationTest, PitrSweepMatchesHistory) {
  Open();
  ASSERT_TRUE(partition_->CreateTable("ledger", LedgerTable()).ok());
  UnifiedTable* ledger = *partition_->GetTable("ledger");
  std::vector<Lsn> checkpoints;
  for (int64_t i = 0; i < 40; ++i) {
    auto h = partition_->Begin();
    ASSERT_TRUE(ledger
                    ->InsertRows(h.id, h.read_ts,
                                 {{Value(i), Value("o"), Value(1.0)}})
                    .ok());
    ASSERT_TRUE(partition_->Commit(h.id).ok());
    checkpoints.push_back(partition_->log()->durable_lsn());
  }
  for (size_t k : {size_t{0}, size_t{9}, size_t{24}, size_t{39}}) {
    Open(checkpoints[k]);
    EXPECT_EQ(Balances().size(), k + 1) << "PITR to txn " << k;
  }
}

}  // namespace
}  // namespace s2
