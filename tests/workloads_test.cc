#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/env.h"
#include "engine/database.h"
#include "workloads/tpcc.h"
#include "workloads/tpch.h"
#include "workloads/tpch_schema.h"

namespace s2 {
namespace {

class TpccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-tpcc");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    DatabaseOptions opts;
    opts.dir = dir_;
    opts.num_partitions = 2;
    opts.num_nodes = 1;
    opts.ha_replicas = 0;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    scale_.warehouses = 2;
    scale_.districts_per_warehouse = 3;
    scale_.customers_per_district = 30;
    scale_.items = 100;
    scale_.initial_orders_per_district = 10;
    ASSERT_TRUE(tpcc::CreateTables(db_.get()).ok());
    ASSERT_TRUE(tpcc::Load(db_.get(), scale_).ok());
  }
  void TearDown() override {
    db_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  // Sums a double column over all rows of a table across partitions.
  double SumColumn(const std::string& table, int col) {
    auto rows = db_->Query([&] {
      return std::make_unique<ScanOp>(table, std::vector<int>{col});
    });
    EXPECT_TRUE(rows.ok());
    double total = 0;
    for (const Row& row : *rows) total += row[0].AsNumeric();
    return total;
  }

  size_t CountRows(const std::string& table) {
    auto rows = db_->Query([&] {
      return std::make_unique<ScanOp>(table, std::vector<int>{0});
    });
    EXPECT_TRUE(rows.ok());
    return rows->size();
  }

  std::string dir_;
  tpcc::Scale scale_;
  std::unique_ptr<Database> db_;
};

TEST_F(TpccTest, LoadPopulationCounts) {
  EXPECT_EQ(CountRows("warehouse"), 2u);
  EXPECT_EQ(CountRows("district"), 6u);
  EXPECT_EQ(CountRows("customer"), 180u);
  EXPECT_EQ(CountRows("stock"), 200u);
  // Item is replicated to both partitions.
  EXPECT_EQ(CountRows("item"), 200u);
  EXPECT_EQ(CountRows("orders"), 60u);
}

TEST_F(TpccTest, TransactionsRunAndPreserveInvariants) {
  tpcc::Counters counters;
  tpcc::Worker worker(db_.get(), scale_, 123, &counters);
  int attempts = 300;
  for (int i = 0; i < attempts; ++i) {
    (void)worker.RunOne();  // aborts (1% rollbacks, conflicts) are fine
  }
  EXPECT_GT(counters.new_orders.load(), 50u);
  EXPECT_GT(counters.payments.load(), 50u);
  EXPECT_LT(counters.aborts.load(), static_cast<uint64_t>(attempts) / 4);

  // Invariant: for every district, d_next_o_id - 1 == max(o_id).
  auto districts = db_->Query([] {
    return std::make_unique<ScanOp>("district", std::vector<int>{0, 1, 5});
  });
  ASSERT_TRUE(districts.ok());
  auto orders = db_->Query([] {
    return std::make_unique<ScanOp>("orders", std::vector<int>{0, 1, 2});
  });
  ASSERT_TRUE(orders.ok());
  std::map<std::pair<int64_t, int64_t>, int64_t> max_o;
  for (const Row& row : *orders) {
    auto key = std::make_pair(row[0].as_int(), row[1].as_int());
    max_o[key] = std::max(max_o[key], row[2].as_int());
  }
  for (const Row& row : *districts) {
    auto key = std::make_pair(row[0].as_int(), row[1].as_int());
    EXPECT_EQ(row[2].as_int() - 1, max_o[key])
        << "district (" << key.first << "," << key.second << ")";
  }

  // Invariant: warehouse YTD == 300000 (initial) + sum of payments into it.
  // Cross-check against district YTDs: sum(d_ytd) per warehouse tracks
  // w_ytd (both start at 30000*D / 300000 and receive the same payments).
  auto warehouses = db_->Query([] {
    return std::make_unique<ScanOp>("warehouse", std::vector<int>{0, 3});
  });
  ASSERT_TRUE(warehouses.ok());
  auto district_ytd = db_->Query([] {
    return std::make_unique<ScanOp>("district", std::vector<int>{0, 4});
  });
  ASSERT_TRUE(district_ytd.ok());
  std::map<int64_t, double> dsum;
  for (const Row& row : *district_ytd) {
    dsum[row[0].as_int()] += row[1].as_double();
  }
  for (const Row& row : *warehouses) {
    double w_ytd = row[1].as_double();
    double d_total = dsum[row[0].as_int()];
    EXPECT_NEAR(w_ytd - 300000.0,
                d_total - 30000.0 * scale_.districts_per_warehouse, 1e-6)
        << "warehouse " << row[0].as_int();
  }

  // Every order has its orderlines: spot-check counts match o_ol_cnt.
  auto order_meta = db_->Query([] {
    return std::make_unique<ScanOp>("orders", std::vector<int>{0, 1, 2, 6});
  });
  auto lines = db_->Query([] {
    return std::make_unique<ScanOp>("orderline", std::vector<int>{0, 1, 2});
  });
  std::map<std::tuple<int64_t, int64_t, int64_t>, int64_t> line_count;
  for (const Row& row : *lines) {
    ++line_count[{row[0].as_int(), row[1].as_int(), row[2].as_int()}];
  }
  for (const Row& row : *order_meta) {
    auto key = std::make_tuple(row[0].as_int(), row[1].as_int(),
                               row[2].as_int());
    EXPECT_EQ(line_count[key], row[3].as_int());
  }
}

class TpchTest : public ::testing::Test {
 protected:
  static constexpr double kSf = 0.002;  // ~3000 orders, ~12000 lineitems

  void SetUp() override {
    auto dir = MakeTempDir("s2-tpch");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    DatabaseOptions opts;
    opts.dir = dir_;
    opts.num_partitions = 1;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(tpch::CreateTables(db_.get()).ok());
    ASSERT_TRUE(tpch::Load(db_.get(), kSf).ok());
  }
  void TearDown() override {
    db_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  std::vector<Row> Table(const std::string& name, std::vector<int> cols) {
    auto rows = db_->Query([&] {
      return std::make_unique<ScanOp>(name, cols);
    });
    EXPECT_TRUE(rows.ok());
    return *rows;
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(TpchTest, DateArithmetic) {
  EXPECT_EQ(tpch::DateAddDays(19981201, -90), 19980902);
  EXPECT_EQ(tpch::DateAddDays(19931231, 1), 19940101);
  EXPECT_EQ(tpch::DateAddDays(19960228, 1), 19960229);  // leap year
  EXPECT_EQ(tpch::DateAddMonths(19930701, 3), 19931001);
  EXPECT_EQ(tpch::DateAddMonths(19951201, 2), 19960201);
  EXPECT_EQ(tpch::DateAddMonths(19960131, 1), 19960229);
  EXPECT_EQ(tpch::DateYear(19970615), 1997);
}

TEST_F(TpchTest, Q1MatchesBruteForce) {
  auto result = tpch::RunQuery(db_.get(), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->size(), 0u);

  // Brute force from a raw scan.
  namespace l = tpch::lineitem;
  auto rows = Table("lineitem", {l::kQuantity, l::kExtendedPrice,
                                 l::kDiscount, l::kReturnFlag, l::kLineStatus,
                                 l::kShipDate});
  std::map<std::pair<std::string, std::string>,
           std::pair<double, int64_t>>
      expect;  // (sum_qty, count)
  for (const Row& row : rows) {
    if (row[5].as_int() > tpch::DateAddDays(19981201, -90)) continue;
    auto& slot = expect[{row[3].as_string(), row[4].as_string()}];
    slot.first += row[0].as_double();
    slot.second += 1;
  }
  ASSERT_EQ(result->size(), expect.size());
  for (const Row& row : *result) {
    auto key = std::make_pair(row[0].as_string(), row[1].as_string());
    ASSERT_TRUE(expect.count(key)) << key.first << key.second;
    EXPECT_NEAR(row[2].as_double(), expect[key].first, 1e-6);
    EXPECT_EQ(row[9].as_int(), expect[key].second);  // count(*)
  }
}

TEST_F(TpchTest, Q6MatchesBruteForce) {
  auto result = tpch::RunQuery(db_.get(), 6);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);

  namespace l = tpch::lineitem;
  auto rows = Table("lineitem", {l::kShipDate, l::kDiscount, l::kQuantity,
                                 l::kExtendedPrice});
  double expect = 0;
  for (const Row& row : rows) {
    int64_t ship = row[0].as_int();
    double disc = row[1].as_double();
    if (ship >= 19940101 && ship <= 19941231 && disc >= 0.05 - 1e-9 &&
        disc <= 0.07 + 1e-9 && row[2].as_double() < 24) {
      expect += row[3].as_double() * disc;
    }
  }
  if ((*result)[0][0].is_null()) {
    EXPECT_EQ(expect, 0.0);
  } else {
    EXPECT_NEAR((*result)[0][0].as_double(), expect, 1e-6);
  }
}

TEST_F(TpchTest, Q13MatchesBruteForce) {
  auto result = tpch::RunQuery(db_.get(), 13);
  ASSERT_TRUE(result.ok());
  namespace o = tpch::orders;
  namespace c = tpch::customer;
  auto orders = Table("orders", {o::kCustKey, o::kComment});
  auto customers = Table("customer", {c::kCustKey});
  std::map<int64_t, int64_t> per_customer;
  for (const Row& row : customers) per_customer[row[0].as_int()] = 0;
  for (const Row& row : orders) {
    if (LikeMatch(row[1].as_string(), "%special%requests%")) continue;
    ++per_customer[row[0].as_int()];
  }
  std::map<int64_t, int64_t> dist;
  for (auto& [cust, count] : per_customer) ++dist[count];
  ASSERT_EQ(result->size(), dist.size());
  for (const Row& row : *result) {
    EXPECT_EQ(row[1].as_int(), dist[row[0].as_int()])
        << "c_count " << row[0].as_int();
  }
}

TEST_F(TpchTest, AllQueriesRunWithoutError) {
  for (int q = 1; q <= 22; ++q) {
    auto result = tpch::RunQuery(db_.get(), q);
    EXPECT_TRUE(result.ok()) << "Q" << q << ": "
                             << result.status().ToString();
  }
}

TEST_F(TpchTest, Q4SemiJoinSanity) {
  // Q4 counts orders per priority: total must not exceed the number of
  // orders in the window, and every count is positive.
  auto result = tpch::RunQuery(db_.get(), 4);
  ASSERT_TRUE(result.ok());
  for (const Row& row : *result) {
    EXPECT_GT(row[1].as_int(), 0);
  }
}

}  // namespace
}  // namespace s2
