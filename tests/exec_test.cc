#include <gtest/gtest.h>

#include "test_util.h"

#include <set>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "exec/filter.h"
#include "exec/table_scanner.h"
#include "storage/partition.h"

namespace s2 {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"category", DataType::kString},
                 {"price", DataType::kDouble},
                 {"qty", DataType::kInt64}});
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-exec");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    PartitionOptions opts;
    opts.dir = dir_;
    opts.background_uploads = false;
    opts.auto_maintain = false;
    partition_ = std::make_unique<Partition>(opts);
    ASSERT_TRUE(partition_->Init().ok());

    TableOptions table_opts;
    table_opts.schema = TestSchema();
    table_opts.sort_key = {0};
    table_opts.indexes = {{0}, {1}};
    table_opts.unique_key = {0};
    table_opts.segment_rows = 256;
    table_opts.flush_threshold = 256;
    auto table = partition_->CreateTable("items", table_opts);
    ASSERT_TRUE(table.ok());
    table_ = *table;

    // 1000 rows: ids 0..999, category cat0..cat9, price = id*0.5,
    // qty = id % 100. 768 rows flushed into 3 segments, 232 in rowstore.
    Rng rng(7);
    for (int64_t i = 0; i < 1000; ++i) {
      auto h = partition_->Begin();
      auto r = table_->InsertRows(
          h.id, h.read_ts,
          {{Value(i), Value("cat" + std::to_string(i % 10)), Value(i * 0.5),
            Value(i % 100)}});
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(partition_->Commit(h.id).ok());
      if ((i + 1) % 256 == 0) {
        ASSERT_TRUE(table_->FlushRowstore().ok());
      }
    }
    ASSERT_GE(table_->NumSegments(), 3u);
  }

  void TearDown() override {
    partition_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  // Runs a scan and returns the matched ids (column 0 must be projected
  // first).
  std::multiset<int64_t> RunScan(const ScanOptions& base_options,
                                 ScanStats* stats_out = nullptr) {
    ScanOptions options = base_options;
    if (options.projection.empty()) options.projection = {0};
    TableScanner scanner(table_, options);
    auto h = partition_->Begin();
    std::multiset<int64_t> ids;
    Status s = scanner.Scan(h.id, h.read_ts, [&](const ScanBatch& batch) {
      for (size_t i = 0; i < batch.num_rows; ++i) {
        ids.insert(batch.columns[0].IntAt(i));
      }
      return true;
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    partition_->EndRead(h.id);
    if (stats_out != nullptr) *stats_out = scanner.stats();
    return ids;
  }

  // Brute-force expected ids for a filter.
  std::multiset<int64_t> Expected(const FilterNode* filter) {
    std::multiset<int64_t> ids;
    for (int64_t i = 0; i < 1000; ++i) {
      Row row = {Value(i), Value("cat" + std::to_string(i % 10)),
                 Value(i * 0.5), Value(i % 100)};
      if (filter == nullptr || filter->EvalRow(row)) ids.insert(i);
    }
    return ids;
  }

  std::string dir_;
  std::unique_ptr<Partition> partition_;
  UnifiedTable* table_ = nullptr;
};

TEST_F(ExecTest, FullScanReturnsAllRows) {
  ScanOptions options;
  EXPECT_EQ(RunScan(options).size(), 1000u);
}

TEST_F(ExecTest, EqFilterViaIndex) {
  auto filter = FilterEq(0, Value(int64_t{500}));
  ScanOptions options;
  options.filter = filter.get();
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  EXPECT_EQ(ids, (std::multiset<int64_t>{500}));
  // id=500 only exists in one segment: the others are eliminated by the
  // index or zone maps, not scanned.
  EXPECT_GT(stats.segments_skipped_zone + stats.segments_skipped_index, 0u);
}

TEST_F(ExecTest, RangeFilterUsesZoneMaps) {
  auto filter = FilterBetween(0, Value(int64_t{100}), Value(int64_t{150}));
  ScanOptions options;
  options.filter = filter.get();
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  EXPECT_EQ(ids, Expected(filter.get()));
  // Sort key is id, so most segments fall outside [100, 150].
  EXPECT_GT(stats.segments_skipped_zone, 0u);
}

TEST_F(ExecTest, CategoryFilterMatchesBruteForce) {
  auto filter = FilterEq(1, Value("cat3"));
  ScanOptions options;
  options.filter = filter.get();
  auto ids = RunScan(options);
  EXPECT_EQ(ids, Expected(filter.get()));
  EXPECT_EQ(ids.size(), 100u);
}

TEST_F(ExecTest, AndOrTreeMatchesBruteForce) {
  // (category = cat1 OR category = cat2) AND qty < 50 AND id >= 100
  std::vector<std::unique_ptr<FilterNode>> or_children;
  or_children.push_back(FilterEq(1, Value("cat1")));
  or_children.push_back(FilterEq(1, Value("cat2")));
  std::vector<std::unique_ptr<FilterNode>> and_children;
  and_children.push_back(FilterOr(std::move(or_children)));
  and_children.push_back(FilterCmp(3, CmpOp::kLt, Value(int64_t{50})));
  and_children.push_back(FilterCmp(0, CmpOp::kGe, Value(int64_t{100})));
  auto filter = FilterAnd(std::move(and_children));

  ScanOptions options;
  options.filter = filter.get();
  EXPECT_EQ(RunScan(options), Expected(filter.get()));
}

TEST_F(ExecTest, InListFilter) {
  auto filter =
      FilterIn(0, {Value(int64_t{1}), Value(int64_t{500}), Value(int64_t{999}),
                   Value(int64_t{12345})});
  ScanOptions options;
  options.filter = filter.get();
  auto ids = RunScan(options);
  EXPECT_EQ(ids, (std::multiset<int64_t>{1, 500, 999}));
}

TEST_F(ExecTest, HugeInListDisablesIndex) {
  // An IN list with more keys than the index-key budget must fall back to
  // scanning (Section 5.1) and still return correct results.
  std::vector<Value> keys;
  for (int64_t i = 0; i < 400; i += 2) keys.push_back(Value(i));
  auto filter = FilterIn(0, std::move(keys));
  ScanOptions options;
  options.filter = filter.get();
  options.max_index_key_fraction = 0.01;  // 256-row segments: max ~3 keys
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  EXPECT_EQ(ids, Expected(filter.get()));
  EXPECT_EQ(stats.index_filter_uses, 0u)
      << "index must be dynamically disabled for huge key sets";
}

TEST_F(ExecTest, ProjectionMaterializesRequestedColumns) {
  auto filter = FilterEq(0, Value(int64_t{42}));
  ScanOptions options;
  options.filter = filter.get();
  options.projection = {0, 2, 1};
  TableScanner scanner(table_, options);
  auto h = partition_->Begin();
  int rows = 0;
  ASSERT_TRUE(scanner
                  .Scan(h.id, h.read_ts,
                        [&](const ScanBatch& batch) {
                          EXPECT_EQ(batch.columns.size(), 3u);
                          for (size_t i = 0; i < batch.num_rows; ++i) {
                            EXPECT_EQ(batch.columns[0].IntAt(i), 42);
                            EXPECT_EQ(batch.columns[1].DoubleAt(i), 21.0);
                            EXPECT_EQ(batch.columns[2].StringAt(i), "cat2");
                            ++rows;
                          }
                          return true;
                        })
                  .ok());
  EXPECT_EQ(rows, 1);
  partition_->EndRead(h.id);
}

TEST_F(ExecTest, EncodedFilterUsedOnDictionaryColumn) {
  // category has 10 distinct values over 256-row segments: dictionary
  // encoded, and a non-index scan over it should use encoded execution.
  auto filter = FilterEq(1, Value("cat5"));
  ScanOptions options;
  options.filter = filter.get();
  options.use_secondary_index = false;  // force the filter path
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  EXPECT_EQ(ids, Expected(filter.get()));
  EXPECT_GT(stats.encoded_filter_uses, 0u);
}

TEST_F(ExecTest, DisablingEncodedStillCorrect) {
  auto filter = FilterEq(1, Value("cat5"));
  ScanOptions options;
  options.filter = filter.get();
  options.use_secondary_index = false;
  options.use_encoded_filters = false;
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  EXPECT_EQ(ids, Expected(filter.get()));
  EXPECT_EQ(stats.encoded_filter_uses, 0u);
  EXPECT_GT(stats.regular_filter_uses, 0u);
}

TEST_F(ExecTest, AllTogglesOffStillCorrect) {
  std::vector<std::unique_ptr<FilterNode>> and_children;
  and_children.push_back(FilterCmp(0, CmpOp::kLt, Value(int64_t{300})));
  and_children.push_back(FilterEq(1, Value("cat1")));
  auto filter = FilterAnd(std::move(and_children));
  ScanOptions options;
  options.filter = filter.get();
  options.use_zone_maps = false;
  options.use_secondary_index = false;
  options.use_encoded_filters = false;
  options.use_group_filter = false;
  options.adaptive_reorder = false;
  EXPECT_EQ(RunScan(options), Expected(filter.get()));
}

TEST_F(ExecTest, EarlyStopOnLimit) {
  ScanOptions options;
  options.block_rows = 64;
  TableScanner scanner(table_, options);
  auto h = partition_->Begin();
  size_t rows = 0;
  ASSERT_TRUE(scanner
                  .Scan(h.id, h.read_ts,
                        [&](const ScanBatch& batch) {
                          rows += batch.num_rows;
                          return rows < 100;
                        })
                  .ok());
  EXPECT_LT(rows, 1000u);
  partition_->EndRead(h.id);
}

TEST_F(ExecTest, ScanSeesConsistentSnapshotDuringWrites) {
  auto snap = partition_->Begin();
  // Delete some rows after the snapshot was taken.
  for (int64_t id : {10, 20, 30}) {
    auto h = partition_->Begin();
    ASSERT_TRUE(table_->DeleteByKey(h.id, h.read_ts, {Value(id)}).ok());
    ASSERT_TRUE(partition_->Commit(h.id).ok());
  }
  ScanOptions options;
  options.projection = {0};
  TableScanner scanner(table_, options);
  std::multiset<int64_t> ids;
  ASSERT_TRUE(scanner
                  .Scan(snap.id, snap.read_ts,
                        [&](const ScanBatch& batch) {
                          for (size_t i = 0; i < batch.num_rows; ++i) {
                            ids.insert(batch.columns[0].IntAt(i));
                          }
                          return true;
                        })
                  .ok());
  EXPECT_EQ(ids.size(), 1000u) << "snapshot scan must not see later deletes";
  partition_->EndRead(snap.id);

  ScanOptions fresh;
  EXPECT_EQ(RunScan(fresh).size(), 997u);
}

// Property sweep: random filter trees match brute force with every toggle
// combination.
class ExecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_F(ExecTest, RandomFilterTreesMatchBruteForce) {
  const uint64_t seed = TestSeed(99);
  SCOPED_TRACE("S2_TEST_SEED=" + std::to_string(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 25; ++trial) {
    // Build a random tree of depth <= 2.
    auto make_leaf = [&]() -> std::unique_ptr<FilterNode> {
      switch (rng.Uniform(4)) {
        case 0:
          return FilterEq(0, Value(static_cast<int64_t>(rng.Uniform(1100))));
        case 1:
          return FilterEq(
              1, Value("cat" + std::to_string(rng.Uniform(12))));
        case 2: {
          int64_t lo = static_cast<int64_t>(rng.Uniform(1000));
          return FilterBetween(0, Value(lo),
                               Value(lo + static_cast<int64_t>(
                                              rng.Uniform(300))));
        }
        default:
          return FilterCmp(3, rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGe,
                           Value(static_cast<int64_t>(rng.Uniform(100))));
      }
    };
    std::vector<std::unique_ptr<FilterNode>> children;
    size_t n = 2 + rng.Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) {
        std::vector<std::unique_ptr<FilterNode>> sub;
        sub.push_back(make_leaf());
        sub.push_back(make_leaf());
        children.push_back(rng.Bernoulli(0.5) ? FilterOr(std::move(sub))
                                              : FilterAnd(std::move(sub)));
      } else {
        children.push_back(make_leaf());
      }
    }
    auto filter = rng.Bernoulli(0.7) ? FilterAnd(std::move(children))
                                     : FilterOr(std::move(children));
    ScanOptions options;
    options.filter = filter.get();
    options.block_rows = 128;
    EXPECT_EQ(RunScan(options), Expected(filter.get()))
        << "trial " << trial;
  }
}

// The trace ring lets a test reconstruct which strategy the scanner picked
// for each segment: skipped segments log strategy=skip_zone/skip_index,
// scanned segments log a per-segment summary with rows_out.
TEST_F(ExecTest, TraceReconstructsScanStrategyDecisions) {
  TraceBuffer* trace = TraceBuffer::Global();
  trace->Clear();
  trace->set_enabled(true);

  // ids are the sort key, so a tight range lets zone maps drop the
  // segments that cannot contain ids 100..150.
  auto filter = FilterBetween(0, Value(int64_t{100}), Value(int64_t{150}));
  ScanOptions options;
  options.filter = filter.get();
  options.use_secondary_index = false;  // force the zone-map path
  ScanStats stats;
  auto ids = RunScan(options, &stats);
  trace->set_enabled(false);

  EXPECT_EQ(ids, Expected(filter.get()));
  EXPECT_GT(stats.segments_skipped_zone, 0u);

  size_t skip_events = 0;
  size_t summary_events = 0;
  for (const TraceEvent& ev : trace->Snapshot()) {
    if (std::string(ev.category) != "scan.segment") continue;
    if (ev.detail.find("strategy=skip_zone") != std::string::npos) {
      ++skip_events;
    } else if (ev.detail.find("rows_out=") != std::string::npos) {
      ++summary_events;
    }
  }
  trace->Clear();
  EXPECT_EQ(skip_events, stats.segments_skipped_zone)
      << "every zone-skip decision must be traceable";
  EXPECT_GT(summary_events, 0u)
      << "scanned segments must log a per-segment summary";
}

// The residual clause order is recomputed only when clause estimates drift
// materially, not once per row block.
TEST_F(ExecTest, AdaptiveReorderSortsSparingly) {
  // Two non-indexable residual clauses (price and qty are not indexed).
  std::vector<std::unique_ptr<FilterNode>> and_children;
  and_children.push_back(FilterCmp(2, CmpOp::kLt, Value(350.0)));
  and_children.push_back(FilterCmp(3, CmpOp::kGe, Value(int64_t{10})));
  auto filter = FilterAnd(std::move(and_children));

  ScanOptions options;
  options.filter = filter.get();
  options.block_rows = 32;  // many blocks per segment
  ScanStats stats;
  EXPECT_EQ(RunScan(options, &stats), Expected(filter.get()));
  EXPECT_GE(stats.reorder_sorts, 1u)
      << "adaptive reorder must establish an initial clause order";

  ScanOptions no_adapt = options;
  no_adapt.adaptive_reorder = false;
  ScanStats stats_off;
  EXPECT_EQ(RunScan(no_adapt, &stats_off), Expected(filter.get()));
  EXPECT_EQ(stats_off.reorder_sorts, 0u)
      << "no sorting when adaptive reorder is disabled";
}

}  // namespace
}  // namespace s2
