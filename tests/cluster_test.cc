#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "blob/blob_store.h"
#include "cluster/cluster.h"
#include "common/env.h"
#include "query/plan.h"

namespace s2 {
namespace {

TableOptions AccountsTable() {
  TableOptions opts;
  opts.schema = Schema({{"id", DataType::kInt64},
                        {"owner", DataType::kString},
                        {"balance", DataType::kDouble}});
  opts.indexes = {{0}};
  opts.unique_key = {0};
  opts.segment_rows = 64;
  opts.flush_threshold = 64;
  return opts;
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("s2-cluster");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override {
    cluster_.reset();
    (void)RemoveDirRecursive(dir_);
  }

  void Start(int partitions = 4, int nodes = 2, int replicas = 1) {
    ClusterOptions opts;
    opts.dir = dir_;
    opts.num_partitions = partitions;
    opts.num_nodes = nodes;
    opts.ha_replicas = replicas;
    opts.blob = &blob_;
    opts.auto_maintain = false;
    cluster_ = std::make_unique<Cluster>(opts);
    ASSERT_TRUE(cluster_->Start().ok());
    ASSERT_TRUE(cluster_->CreateTable("accounts", AccountsTable(), {0}).ok());
  }

  void InsertAccounts(int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(cluster_
                      ->InsertRows("accounts",
                                   {{Value(i), Value("u" + std::to_string(i)),
                                     Value(i * 10.0)}})
                      .ok());
    }
  }

  // Counts rows across partitions (or a workspace).
  size_t TotalRows(int workspace = -1) {
    auto rows = cluster_->ScatterQuery(
        [] {
          return std::make_unique<ScanOp>("accounts", std::vector<int>{0});
        },
        workspace);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->size() : 0;
  }

  std::string dir_;
  MemBlobStore blob_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, RowsSpreadAcrossPartitions) {
  Start();
  InsertAccounts(200);
  EXPECT_EQ(TotalRows(), 200u);
  // Every partition should own some rows under hash sharding.
  int nonempty = 0;
  for (int p = 0; p < cluster_->num_partitions(); ++p) {
    auto t = cluster_->partition(p)->GetTable("accounts");
    ASSERT_TRUE(t.ok());
    if ((*t)->ApproxRowCount() > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 4);
}

TEST_F(ClusterTest, RoutingIsDeterministic) {
  Start();
  Row row = {Value(int64_t{42}), Value("x"), Value(0.0)};
  auto p1 = cluster_->PartitionForRow("accounts", row);
  auto p2 = cluster_->PartitionForRow("accounts", row);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST_F(ClusterTest, MultiPartitionTransaction) {
  Start();
  InsertAccounts(20);
  // Move balance between two accounts on (very likely) different
  // partitions.
  auto txn = cluster_->BeginTxn();
  int p_from = *cluster_->PartitionForRow(
      "accounts", {Value(int64_t{1}), Value(""), Value(0.0)});
  int p_to = *cluster_->PartitionForRow(
      "accounts", {Value(int64_t{2}), Value(""), Value(0.0)});
  auto h_from = txn.On(p_from);
  auto h_to = txn.On(p_to);
  ASSERT_TRUE(txn.table(p_from, "accounts")
                  ->UpdateByKey(h_from.id, h_from.read_ts, {Value(int64_t{1})},
                                {Value(int64_t{1}), Value("u1"), Value(0.0)})
                  .ok());
  ASSERT_TRUE(txn.table(p_to, "accounts")
                  ->UpdateByKey(h_to.id, h_to.read_ts, {Value(int64_t{2})},
                                {Value(int64_t{2}), Value("u2"), Value(30.0)})
                  .ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(TotalRows(), 20u);
}

TEST_F(ClusterTest, ReplicasApplyContinuously) {
  Start(/*partitions=*/2, /*nodes=*/2, /*replicas=*/1);
  InsertAccounts(50);
  // Kill node 0; partitions mastered there fail over.
  cluster_->KillNode(0);
  auto promoted = cluster_->RunFailureDetector();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_GE(*promoted, 1);
  // All data still present after failover.
  EXPECT_EQ(TotalRows(), 50u);
  // And the cluster still accepts writes.
  ASSERT_TRUE(cluster_
                  ->InsertRows("accounts",
                               {{Value(int64_t{1000}), Value("after"),
                                 Value(1.0)}})
                  .ok());
  EXPECT_EQ(TotalRows(), 51u);
}

TEST_F(ClusterTest, CommitFailsWhenAllReplicasDown) {
  Start(/*partitions=*/1, /*nodes=*/2, /*replicas=*/1);
  InsertAccounts(5);
  // The replica lives on node 1; kill it. Without any acking replica the
  // commit must fail (durability requires >= 1 ack).
  cluster_->KillNode(1);
  Status s = cluster_->InsertRows(
      "accounts", {{Value(int64_t{100}), Value("x"), Value(0.0)}});
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST_F(ClusterTest, WorkspaceServesIsolatedReads) {
  Start(/*partitions=*/2, /*nodes=*/2, /*replicas=*/1);
  InsertAccounts(100);
  ASSERT_TRUE(cluster_->UploadAllToBlob().ok());

  auto ws = cluster_->CreateWorkspace();
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(TotalRows(*ws), 100u)
      << "workspace bootstrapped from blob + log tail sees all data";

  // New writes stream to the workspace asynchronously.
  for (int64_t i = 100; i < 120; ++i) {
    ASSERT_TRUE(cluster_
                    ->InsertRows("accounts",
                                 {{Value(i), Value("w"), Value(0.0)}})
                    .ok());
  }
  // Wait for the async apply thread to drain (the paper reports <1ms of
  // lag; give it a generous bound here).
  for (int spin = 0; spin < 2000 && cluster_->WorkspaceLagBytes(*ws) > 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(cluster_->WorkspaceLagBytes(*ws), 0u)
      << "every durable byte should be applied once the stream drains";
  EXPECT_EQ(TotalRows(*ws), 120u);
}

TEST_F(ClusterTest, WorkspaceDoesNotGateCommits) {
  Start(/*partitions=*/1, /*nodes=*/2, /*replicas=*/1);
  InsertAccounts(10);
  ASSERT_TRUE(cluster_->UploadAllToBlob().ok());
  auto ws = cluster_->CreateWorkspace();
  ASSERT_TRUE(ws.ok());
  // Writes succeed regardless of workspace state (it never acks).
  ASSERT_TRUE(cluster_
                  ->InsertRows("accounts",
                               {{Value(int64_t{500}), Value("y"), Value(0.0)}})
                  .ok());
}

TEST_F(ClusterTest, PointInTimeRestoreFromBlobHistory) {
  Start(/*partitions=*/1, /*nodes=*/2, /*replicas=*/1);
  InsertAccounts(30);
  ASSERT_TRUE(cluster_->UploadAllToBlob().ok());
  Lsn checkpoint = cluster_->partition(0)->log()->durable_lsn();

  for (int64_t i = 30; i < 60; ++i) {
    ASSERT_TRUE(cluster_
                    ->InsertRows("accounts",
                                 {{Value(i), Value("late"), Value(0.0)}})
                    .ok());
  }
  ASSERT_TRUE(cluster_->UploadAllToBlob().ok());

  // Restore partition 0 to the checkpoint, into a fresh directory.
  auto restored =
      cluster_->RestorePartitionToLsn(0, checkpoint, dir_ + "/pitr");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto table = (*restored)->GetTable("accounts");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->ApproxRowCount(), 30u)
      << "PITR state excludes post-checkpoint writes";
}

TEST_F(ClusterTest, ScatterQueryWithAggregation) {
  Start();
  InsertAccounts(100);
  // Scatter: per-partition partial sums; gather: combine here.
  auto partials = cluster_->ScatterQuery([] {
    auto scan = std::make_unique<ScanOp>("accounts", std::vector<int>{2});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggKind::kSum, Col(0)});
    aggs.push_back({AggKind::kCount, nullptr});
    return std::make_unique<AggregateOp>(std::move(scan),
                                         std::vector<ExprPtr>{},
                                         std::move(aggs));
  });
  ASSERT_TRUE(partials.ok());
  ASSERT_EQ(partials->size(), 4u);
  double total = 0;
  int64_t count = 0;
  for (const Row& row : *partials) {
    if (!row[0].is_null()) total += row[0].as_double();
    count += row[1].as_int();
  }
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(total, 10.0 * (99 * 100 / 2));
}

}  // namespace
}  // namespace s2
