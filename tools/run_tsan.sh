#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs
# them. Scope is limited to the tests that exercise the shared executor
# (parallel scatter queries, morsel scans, maintenance, uploads) so the
# TSan build stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build build-tsan -j"$(nproc)" \
  --target common_test blob_test parallel_exec_test cluster_test

export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
for t in common_test blob_test parallel_exec_test cluster_test; do
  echo "=== tsan: $t ==="
  "./build-tsan/tests/$t"
done
echo "tsan: all clean"
