#!/usr/bin/env bash
# Builds the full test suite under AddressSanitizer + UBSan and runs it via
# ctest. Catches heap misuse and UB (signed overflow, bad shifts, misaligned
# loads) that the plain RelWithDebInfo build would miss.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build build-asan-ubsan -j"$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"
ctest --test-dir build-asan-ubsan --output-on-failure -j"$(nproc)"
echo "asan+ubsan: all clean"
