// Ablation: row-level locking via move transactions vs naive segment-level
// metadata locking (paper Section 4.2).
//
// "A user transaction running update or delete operations would acquire
// the lock on the metadata row of a modified segment to install a new
// version of the deleted bit vector, blocking other modifications on the
// same segment (1 million rows) until the user transaction commits or
// rolls back."
//
// We measure exactly that blocking: transaction A updates row 1 of a
// segment and stays open for `hold_ms`; transaction B then updates a
// DIFFERENT row of the SAME segment. With S2DB's move-transaction design B
// completes immediately; under the naive design (simulated by a
// per-segment mutex held until commit) B waits out A's entire lifetime.

#include <atomic>
#include <mutex>
#include <thread>

#include "bench_util.h"
#include "engine/database.h"

namespace s2 {
namespace {

constexpr int64_t kRows = 8192;

struct Blocked {
  double b_latency_ms = 0;   // how long txn B took
  double a_lifetime_ms = 0;  // how long txn A stayed open
};

Blocked RunOnce(bool naive_segment_lock, int hold_ms) {
  bench::ScratchDir dir("s2-rowlock");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.auto_maintain = false;
  auto db = Database::Open(opts);
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
  t.indexes = {{0}};
  t.unique_key = {0};
  t.segment_rows = kRows;  // one segment holds every row
  t.flush_threshold = kRows;
  if (!db.ok() || !(*db)->CreateTable("t", t, {0}).ok()) return {};
  Partition* partition = (*db)->cluster()->partition(0);
  UnifiedTable* table = *partition->GetTable("t");
  {
    std::vector<Row> batch;
    for (int64_t i = 0; i < kRows; ++i) batch.push_back({Value(i), Value(i)});
    auto h = partition->Begin();
    if (!table->InsertRows(h.id, h.read_ts, batch).ok()) return {};
    if (!partition->Commit(h.id).ok()) return {};
  }
  (void)table->FlushRowstore();

  std::mutex segment_metadata_lock;
  std::atomic<bool> a_holding{false};
  Blocked result;

  std::thread txn_a([&] {
    bench::Timer a_timer;
    std::unique_lock<std::mutex> naive;
    if (naive_segment_lock) {
      naive = std::unique_lock<std::mutex>(segment_metadata_lock);
    }
    auto h = partition->Begin();
    // Updates row 0 (installs a deleted bit on the shared segment) and
    // keeps the transaction open, as a long user transaction would.
    (void)table->UpdateByKey(h.id, h.read_ts, {Value(int64_t{0})},
                             {Value(int64_t{0}), Value(int64_t{100})});
    a_holding = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    (void)partition->Commit(h.id);
    result.a_lifetime_ms = a_timer.Seconds() * 1000;
  });

  while (!a_holding.load()) std::this_thread::yield();
  bench::Timer b_timer;
  {
    std::unique_lock<std::mutex> naive;
    if (naive_segment_lock) {
      naive = std::unique_lock<std::mutex>(segment_metadata_lock);
    }
    auto h = partition->Begin();
    Status s = table->UpdateByKey(h.id, h.read_ts, {Value(int64_t{7})},
                                  {Value(int64_t{7}), Value(int64_t{200})});
    if (s.ok()) {
      (void)partition->Commit(h.id);
    } else {
      partition->Abort(h.id);
    }
  }
  result.b_latency_ms = b_timer.Seconds() * 1000;
  txn_a.join();
  return result;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  bench::PrintHeader(
      "Ablation: move-transaction row-level locking vs naive segment-level "
      "locking (latency of an update to a DIFFERENT row of the same "
      "segment while another transaction holds its update open)");

  printf("%-14s %26s %28s\n", "A holds (ms)", "B latency, row-level (ms)",
         "B latency, segment-level (ms)");
  for (int hold_ms : {20, 50, 100}) {
    auto row_level = RunOnce(false, hold_ms);
    auto naive = RunOnce(true, hold_ms);
    printf("%-14d %26.2f %28.2f\n", hold_ms, row_level.b_latency_ms,
           naive.b_latency_ms);
  }
  printf("\nShape: with move transactions B's latency is independent of A's "
         "lifetime (the move commits immediately; only the one moved row "
         "stays locked). Naive segment-level locking blocks B for A's "
         "entire open duration — the contention Section 4.2 designs "
         "away.\n");
  return 0;
}
