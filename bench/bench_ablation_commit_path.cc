// Ablation: asynchronous vs synchronous blob commit (paper Section 3.1).
//
// The paper's core separation-of-storage claim: committing on local
// storage and uploading to blob asynchronously gives low, predictable
// write latency, while cloud-data-warehouse designs that must persist to
// blob before acknowledging pay the blob round-trip on every commit. A
// MemBlobStore with injected per-operation latency stands in for S3.

#include <algorithm>

#include "bench_util.h"
#include "blob/blob_store.h"
#include "engine/database.h"

namespace s2 {
namespace {

struct LatencyStats {
  double avg_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t blob_puts_during_commits = 0;
};

LatencyStats RunCommits(EngineProfile profile, uint64_t blob_latency_us,
                        int commits) {
  bench::ScratchDir dir("s2-commitpath");
  MemBlobStore blob;
  blob.set_put_latency_us(blob_latency_us);
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.blob = &blob;
  opts.profile = profile;
  opts.background_uploads = true;
  auto db = Database::Open(opts);
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64}, {"v", DataType::kString}});
  t.indexes = {{0}};
  t.segment_rows = 1024;
  t.flush_threshold = 1024;
  if (!db.ok() || !(*db)->CreateTable("t", t, {0}).ok()) return {};

  std::vector<double> latencies;
  uint64_t puts_before = blob.stats().puts.load();
  for (int i = 0; i < commits; ++i) {
    bench::Timer timer;
    Status s = (*db)->Insert(
        "t", {{Value(static_cast<int64_t>(i)), Value("payload")}});
    if (!s.ok()) break;
    latencies.push_back(timer.Seconds() * 1e6);
  }
  uint64_t puts_after = blob.stats().puts.load();

  std::sort(latencies.begin(), latencies.end());
  LatencyStats stats;
  if (!latencies.empty()) {
    double sum = 0;
    for (double v : latencies) sum += v;
    stats.avg_us = sum / static_cast<double>(latencies.size());
    stats.p50_us = latencies[latencies.size() / 2];
    stats.p99_us = latencies[latencies.size() * 99 / 100];
  }
  stats.blob_puts_during_commits = puts_after - puts_before;
  return stats;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  int commits = bench::EnvInt("S2_BENCH_COMMITS", 2000);
  uint64_t blob_us =
      static_cast<uint64_t>(bench::EnvInt("S2_BENCH_BLOB_LATENCY_US", 2000));
  bench::PrintHeader(
      "Ablation: commit path — async blob upload (S2DB) vs sync blob "
      "commit (CDW baseline)");
  printf("Injected blob PUT latency: %llu us; %d single-row autocommit "
         "inserts per engine\n\n",
         static_cast<unsigned long long>(blob_us), commits);

  // Commit-latency history per phase (the s2_txn_commit_ns series shows
  // each engine's latency distribution separately instead of one blended
  // end-of-run summary).
  MonitorService monitor;
  monitor.TickOnce();
  auto async = RunCommits(EngineProfile::kUnified, blob_us, commits);
  monitor.TickOnce();
  auto sync = RunCommits(EngineProfile::kCloudWarehouse, blob_us, commits);
  monitor.TickOnce();

  printf("%-28s %12s %12s %12s %18s\n", "Engine", "avg (us)", "p50 (us)",
         "p99 (us)", "blob PUTs inline");
  printf("%-28s %12.1f %12.1f %12.1f %18llu\n", "S2DB (async upload)",
         async.avg_us, async.p50_us, async.p99_us,
         static_cast<unsigned long long>(async.blob_puts_during_commits));
  printf("%-28s %12.1f %12.1f %12.1f %18llu\n", "CDW (sync blob commit)",
         sync.avg_us, sync.p50_us, sync.p99_us,
         static_cast<unsigned long long>(sync.blob_puts_during_commits));

  printf("\nShape: S2DB commit latency is independent of blob latency "
         "(%.1fx lower p50 here); the paper's design argument in one "
         "number.\n",
         async.p50_us > 0 ? sync.p50_us / async.p50_us : 0);

  char json[512];
  snprintf(json, sizeof(json),
           "{\"bench\":\"ablation_commit_path\","
           "\"async\":{\"avg_us\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
           "\"blob_puts\":%llu},"
           "\"sync\":{\"avg_us\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
           "\"blob_puts\":%llu}}",
           async.avg_us, async.p50_us, async.p99_us,
           static_cast<unsigned long long>(async.blob_puts_during_commits),
           sync.avg_us, sync.p50_us, sync.p99_us,
           static_cast<unsigned long long>(sync.blob_puts_during_commits));
  printf("\n%s\n", json);
  bench::WriteBenchJson("ablation_commit_path", json);
  bench::WriteBenchMonitorHistory("ablation_commit_path", monitor);
  return 0;
}
