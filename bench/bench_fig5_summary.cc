// Reproduces Figure 5 of the paper: a summary chart of TPC-C and TPC-H
// throughput per product (higher is better). The bars here are printed as
// normalized ASCII bars: for each benchmark the best product = 100.
//
// Paper shape: on TPC-C, S2DB ~= CDB while the CDWs cannot run it at all;
// on TPC-H, S2DB ~= CDW1/CDW2 while CDB is orders of magnitude behind.
// S2DB is the only engine with a full bar on both sides — the paper's
// HTAP thesis in one figure.

#include <thread>

#include "bench_util.h"
#include "engine/database.h"
#include "exec/filter.h"
#include "workloads/tpcc.h"
#include "workloads/tpch.h"

namespace s2 {
namespace {

double TpccThroughput(EngineProfile profile, double seconds) {
  if (profile == EngineProfile::kCloudWarehouse) return -1;  // unsupported
  bench::ScratchDir dir("s2-fig5-tpcc");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.profile = profile;
  auto db = Database::Open(opts);
  tpcc::Scale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.initial_orders_per_district = 10;
  if (!db.ok() || !tpcc::CreateTables(db->get()).ok() ||
      !tpcc::Load(db->get(), scale).ok()) {
    return 0;
  }
  tpcc::Counters counters;
  tpcc::Worker worker(db->get(), scale, 7, &counters);
  bench::Timer timer;
  while (timer.Seconds() < seconds) (void)worker.RunOne();
  return static_cast<double>(counters.new_orders.load()) * 60.0 /
         timer.Seconds();
}

double TpchThroughput(EngineProfile profile, double sf) {
  bench::ScratchDir dir("s2-fig5-tpch");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.profile = profile;
  auto db = Database::Open(opts);
  if (!db.ok() || !tpch::CreateTables(db->get()).ok() ||
      !tpch::Load(db->get(), sf).ok()) {
    return 0;
  }
  for (int q = 1; q <= 22; ++q) (void)tpch::RunQuery(db->get(), q);  // warm
  bench::Timer timer;
  for (int q = 1; q <= 22; ++q) {
    auto rows = tpch::RunQuery(db->get(), q);
    if (!rows.ok()) return 0;
  }
  return 22.0 / timer.Seconds();
}

// Scatter-gather scaling: the same scan-heavy query on a 4-partition
// database with a 1-thread vs an N-thread executor. Rows must come back
// byte-identical; on multi-core hosts the wall-clock ratio shows the
// executor-layer speedup.
bench::ScatterScaling ScatterSpeedup(size_t threads) {
  bench::ScratchDir serial_dir("s2-fig5-scatter1");
  bench::ScratchDir parallel_dir("s2-fig5-scatterN");
  int rows = bench::EnvInt("S2_BENCH_SCATTER_ROWS", 40000);

  auto open = [&](const std::string& dir, size_t nthreads) {
    DatabaseOptions opts;
    opts.dir = dir;
    opts.num_partitions = 4;
    opts.num_exec_threads = nthreads;
    auto db = Database::Open(opts);
    if (!db.ok()) return std::unique_ptr<Database>();
    TableOptions topts;
    topts.schema = Schema({{"id", DataType::kInt64},
                           {"cat", DataType::kInt64},
                           {"score", DataType::kDouble}});
    topts.segment_rows = 4096;
    topts.flush_threshold = 4096;
    if (!(*db)->CreateTable("pts", topts, {0}).ok()) {
      return std::unique_ptr<Database>();
    }
    std::vector<Row> batch;
    for (int64_t i = 0; i < rows; ++i) {
      batch.push_back({Value(i), Value(i % 97),
                       Value(static_cast<double>(i) * 0.25)});
      if (batch.size() == 2048) {
        if (!(*db)->Insert("pts", batch).ok()) return std::unique_ptr<Database>();
        batch.clear();
      }
    }
    if (!batch.empty() && !(*db)->Insert("pts", batch).ok()) {
      return std::unique_ptr<Database>();
    }
    if (!(*db)->Maintain().ok()) return std::unique_ptr<Database>();
    return std::move(*db);
  };

  auto serial = open(serial_dir.path(), 1);
  auto parallel = open(parallel_dir.path(), threads);
  if (serial == nullptr || parallel == nullptr) return {};

  auto factory = [] {
    return std::make_unique<ScanOp>(
        "pts", std::vector<int>{0, 2},
        FilterCmp(1, CmpOp::kLt, Value(int64_t{80})));
  };
  auto encode = [](const std::vector<Row>& out) {
    std::string s;
    for (const Row& row : out) s += EncodeKey(row);
    return s;
  };
  int iters = bench::EnvInt("S2_BENCH_SCATTER_ITERS", 5);
  return bench::MeasureScatterScaling(serial.get(), parallel.get(), factory,
                                      encode, iters);
}

void PrintBar(const char* product, double value, double best,
              const char* note) {
  if (value < 0) {
    printf("  %-8s %-52s %s\n", product, "(not supported)", note);
    return;
  }
  int width = best > 0 ? static_cast<int>(50.0 * value / best) : 0;
  std::string bar(static_cast<size_t>(width), '#');
  printf("  %-8s %-52s %6.1f%%\n", product, bar.c_str(),
         best > 0 ? 100.0 * value / best : 0.0);
  (void)note;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  double seconds = bench::EnvDouble("S2_BENCH_SECONDS", 4.0);
  double sf = bench::EnvDouble("S2_BENCH_TPCH_SF", 0.005);
  bench::PrintHeader(
      "Figure 5: TPC-C and TPC-H throughput summary (normalized bars, "
      "higher is better)");

  double tpcc_s2 = TpccThroughput(EngineProfile::kUnified, seconds);
  double tpcc_cdb =
      TpccThroughput(EngineProfile::kOperationalRowstore, seconds);
  double tpcc_cdw = TpccThroughput(EngineProfile::kCloudWarehouse, seconds);
  double best_tpcc = std::max(tpcc_s2, tpcc_cdb);
  printf("\nTPC-C throughput (tpmC):\n");
  PrintBar("S2DB", tpcc_s2, best_tpcc, "");
  PrintBar("CDB", tpcc_cdb, best_tpcc, "");
  PrintBar("CDW1/2", tpcc_cdw, best_tpcc,
           "(no unique constraints / row-level locks)");

  double tpch_s2 = TpchThroughput(EngineProfile::kUnified, sf);
  double tpch_cdw = TpchThroughput(EngineProfile::kCloudWarehouse, sf);
  double tpch_cdb = TpchThroughput(EngineProfile::kOperationalRowstore, sf);
  double best_tpch = std::max({tpch_s2, tpch_cdw, tpch_cdb});
  printf("\nTPC-H throughput (QPS):\n");
  PrintBar("S2DB", tpch_s2, best_tpch, "");
  PrintBar("CDW1/2", tpch_cdw, best_tpch, "");
  PrintBar("CDB", tpch_cdb, best_tpch, "");

  printf("\nPaper shape: only S2DB posts a full-strength bar on BOTH "
         "benchmarks.\n");
  printf("Measured: S2DB at %.0f%% of best on TPC-C and %.0f%% of best on "
         "TPC-H; CDB at %.0f%% of best TPC-H.\n",
         best_tpcc > 0 ? 100.0 * tpcc_s2 / best_tpcc : 0,
         best_tpch > 0 ? 100.0 * tpch_s2 / best_tpch : 0,
         best_tpch > 0 ? 100.0 * tpch_cdb / best_tpch : 0);

  size_t scatter_threads = static_cast<size_t>(
      bench::EnvInt("S2_BENCH_SCATTER_THREADS", 4));
  bench::ScatterScaling scatter = ScatterSpeedup(scatter_threads);
  printf("\nScatter-gather executor scaling (%zu partitions, %zu threads):\n",
         size_t{4}, scatter_threads);
  printf("  serial %.3f ms/query, parallel %.3f ms/query, speedup %.2fx, "
         "rows %zu, identical=%s\n",
         scatter.serial_seconds * 1e3, scatter.parallel_seconds * 1e3,
         scatter.speedup, scatter.rows, scatter.identical ? "yes" : "NO");

  // Machine-readable summary (one line, greppable from CI logs); the same
  // object lands in BENCH_fig5_summary.json with a "metrics" field.
  char json[1024];
  snprintf(json, sizeof(json),
           "{\"bench\":\"fig5_summary\","
           "\"tpcc_tpmc\":{\"s2db\":%.1f,\"cdb\":%.1f,\"cdw\":%.1f},"
           "\"tpch_qps\":{\"s2db\":%.3f,\"cdw\":%.3f,\"cdb\":%.3f},"
           "\"scatter_speedup\":{\"threads\":%zu,\"serial_s\":%.6f,"
           "\"parallel_s\":%.6f,\"speedup\":%.3f,\"rows\":%zu,"
           "\"identical\":%s}}",
           tpcc_s2, tpcc_cdb, tpcc_cdw, tpch_s2, tpch_cdw, tpch_cdb,
           scatter_threads, scatter.serial_seconds, scatter.parallel_seconds,
           scatter.speedup, scatter.rows, scatter.identical ? "true" : "false");
  printf("\n%s\n", json);
  bench::WriteBenchJson("fig5_summary", json);
  return 0;
}
