// Reproduces Table 2 of the paper: TPC-H summary — geomean query runtime,
// "cost" per query (runtime x a cluster price), and throughput (QPS) for
// S2DB vs. two cloud-data-warehouse baselines and the CDB rowstore
// baseline.
//
// Paper shape to reproduce: S2DB ~ CDW1/CDW2 on the analytics benchmark
// (S2DB slightly ahead), while CDB is orders of magnitude slower ("did not
// finish within 24 hours" at 1TB; here it is run with a per-query timeout
// multiple and reported as DNF when it blows past it).
//
// Scaled down to SF ~0.01 on a simulated single node; absolute times are
// not the paper's, the ordering and ratios are the claim.

#include "bench_util.h"
#include "engine/database.h"
#include "engine/system_tables.h"
#include "workloads/tpch.h"

namespace s2 {
namespace {

using bench::EnvDouble;
using bench::GeoMean;
using bench::PrintHeader;
using bench::ScratchDir;
using bench::Timer;

struct ProductResult {
  std::string name;
  double price_per_hour;
  std::vector<double> query_seconds;  // empty slot = did not run
  bool finished = true;
};

std::unique_ptr<Database> OpenAndLoad(EngineProfile profile, double sf,
                                      const std::string& dir) {
  DatabaseOptions opts;
  opts.dir = dir;
  opts.num_partitions = 1;
  opts.profile = profile;
  auto db = Database::Open(opts);
  if (!db.ok()) return nullptr;
  if (!tpch::CreateTables(db->get()).ok()) return nullptr;
  if (!tpch::Load(db->get(), sf).ok()) return nullptr;
  return std::move(*db);
}

ProductResult RunAll(const std::string& name, EngineProfile profile,
                     double price, double sf, double timeout_factor) {
  ScratchDir dir(("s2-tpch-" + name).c_str());
  ProductResult result;
  result.name = name;
  result.price_per_hour = price;
  auto db = OpenAndLoad(profile, sf, dir.path());
  if (db == nullptr) {
    result.finished = false;
    return result;
  }
  // One cold pass for caching/compilation parity with the paper's method,
  // then a timed warm pass.
  double budget = 0;
  for (int q = 1; q <= 22; ++q) {
    Timer cold;
    auto warmup = tpch::RunQuery(db.get(), q);
    if (!warmup.ok()) {
      result.finished = false;
      return result;
    }
    budget += cold.Seconds();
  }
  // The DNF cutoff: `timeout_factor` x the reference pass of the unified
  // engine, passed in by the caller via `timeout_factor` multiples of this
  // product's own cold pass.
  double cutoff = budget * timeout_factor;
  Timer total;
  for (int q = 1; q <= 22; ++q) {
    Timer t;
    auto rows = tpch::RunQuery(db.get(), q);
    if (!rows.ok()) {
      result.finished = false;
      return result;
    }
    result.query_seconds.push_back(t.Seconds());
    if (total.Seconds() > cutoff && cutoff > 0) {
      result.finished = false;  // treat as "did not finish"
      return result;
    }
  }
  // Introspection artifact: the loaded database's system-table snapshot
  // (segment catalog, LSM state, cache residency) next to the timings.
  bench::WriteBenchFile("BENCH_table2_tpch.system." + name + ".txt",
                        SystemTables(db->cluster()).ToText());
  return result;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  double sf = bench::EnvDouble("S2_BENCH_TPCH_SF", 0.01);
  PrintHeader("Table 2: TPC-H summary (scaled down)");

  // Per-phase metric history: one sample before the runs and one after
  // each product, written next to the end-of-run metric averages.
  MonitorService monitor;
  monitor.TickOnce();

  // Cluster prices mirror the paper's near-equal configurations
  // ($16.50 / $16.00 / $16.30 / $13.92 per hour).
  auto s2db = RunAll("S2DB", EngineProfile::kUnified, 16.50, sf, 0);
  monitor.TickOnce();
  // CDW1/CDW2: same warehouse profile with slightly different scan tuning
  // stands in for two vendors (both lack the OLTP machinery).
  auto cdw1 = RunAll("CDW1", EngineProfile::kCloudWarehouse, 16.00, sf, 0);
  monitor.TickOnce();
  auto cdw2 = RunAll("CDW2", EngineProfile::kCloudWarehouse, 16.30, sf, 0);
  monitor.TickOnce();
  // CDB: rowstore engine; allowed 50x the warm budget before being called
  // DNF (the paper gave it 24 hours vs ~5 minutes).
  auto cdb = RunAll("CDB", EngineProfile::kOperationalRowstore, 13.92, sf, 50);
  monitor.TickOnce();

  printf("%-8s %14s %16s %16s %12s\n", "Product", "price ($/h)",
         "geomean (sec)", "geomean (cents)", "QPS");
  for (const auto& result : {s2db, cdw1, cdw2, cdb}) {
    if (!result.finished || result.query_seconds.size() < 22) {
      printf("%-8s %14.2f %16s %16s %12s\n", result.name.c_str(),
             result.price_per_hour, "DNF", "-", "-");
      continue;
    }
    double geomean = bench::GeoMean(result.query_seconds);
    double cents = geomean * result.price_per_hour / 3600.0 * 100.0;
    double total = 0;
    for (double s : result.query_seconds) total += s;
    printf("%-8s %14.2f %16.4f %16.5f %12.3f\n", result.name.c_str(),
           result.price_per_hour, geomean, cents, 22.0 / total);
  }

  printf("\nPaper reference (Table 2, 1TB): S2DB 8.57s geomean vs CDW1 "
         "10.31s / CDW2 10.06s; CDB did not finish in 24h.\n");
  if (s2db.finished && cdw1.finished) {
    printf("Shape check: CDW1/S2DB geomean ratio = %.2f (paper 1.20); CDB "
           "%s\n",
           bench::GeoMean(cdw1.query_seconds) /
               bench::GeoMean(s2db.query_seconds),
           cdb.finished ? "finished (expected slower or DNF)" : "DNF");
    if (cdb.finished) {
      printf("CDB/S2DB geomean ratio = %.1fx slower\n",
             bench::GeoMean(cdb.query_seconds) /
                 bench::GeoMean(s2db.query_seconds));
    }
  }

  char json[512];
  snprintf(json, sizeof(json),
           "{\"bench\":\"table2_tpch\","
           "\"s2db_geomean_s\":%.6f,\"cdw1_geomean_s\":%.6f,"
           "\"cdw2_geomean_s\":%.6f,\"cdb_geomean_s\":%.6f,"
           "\"cdb_finished\":%s}",
           bench::GeoMean(s2db.query_seconds),
           bench::GeoMean(cdw1.query_seconds),
           bench::GeoMean(cdw2.query_seconds),
           cdb.finished ? bench::GeoMean(cdb.query_seconds) : 0.0,
           cdb.finished ? "true" : "false");
  printf("\n%s\n", json);
  bench::WriteBenchJson("table2_tpch", json);
  bench::WriteBenchMonitorHistory("table2_tpch", monitor);
  return 0;
}
