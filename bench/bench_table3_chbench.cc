// Reproduces Table 3 of the paper: CH-benCHmark mixed workloads — TPC-C
// transactional workers (TWs) and TPC-H-style analytical workers (AWs)
// over the same tables, in five configurations:
//
//   1. TWs alone                       -> peak TpmC
//   2. AWs alone                       -> peak QPS
//   3. TWs + AWs sharing one workspace -> both degrade (~50% in the paper)
//   4. TWs + AWs in separate read-only workspace -> TWs recover to ~case 1,
//      AWs recover to ~case 2 (paper: -20% from replication apply cost)
//   5. Same as 4 with the blob store disabled -> async uploads are ~free
//
// Note: the paper doubles the hardware in cases 4/5 (a second 2-leaf
// workspace). In this in-process simulation the workspace isolates engine
// resources (locks, maintenance, snapshots) but not physical CPUs, so on a
// small host the recovery in case 4 is visible but less total than the
// paper's hardware-doubled setup.

#include "bench_util.h"
#include "blob/blob_store.h"
#include "workloads/chbench.h"

namespace s2 {
namespace {

struct CaseResult {
  double tpmc = 0;
  double qps = 0;
};

CaseResult RunCase(int tw, int aw, bool separate_workspace, bool use_blob,
                   int duration_ms) {
  bench::ScratchDir dir("s2-chbench");
  MemBlobStore blob;
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.num_partitions = 2;
  opts.blob = use_blob ? &blob : nullptr;
  opts.background_uploads = use_blob;
  auto db = Database::Open(opts);
  if (!db.ok()) return {};
  tpcc::Scale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.initial_orders_per_district = bench::EnvInt("S2_BENCH_INITIAL_ORDERS", 150);
  if (!tpcc::CreateTables(db->get()).ok() ||
      !tpcc::Load(db->get(), scale).ok()) {
    return {};
  }

  int workspace = -1;
  if (separate_workspace) {
    if (!(*db)->Checkpoint().ok()) return {};
    auto ws = (*db)->CreateWorkspace();
    if (!ws.ok()) {
      fprintf(stderr, "workspace: %s\n", ws.status().ToString().c_str());
      return {};
    }
    workspace = *ws;
  }

  chbench::MixedCounters counters;
  bench::Timer timer;
  chbench::RunMixed(db->get(), scale, tw, aw, workspace, duration_ms,
                    &counters);
  double elapsed = timer.Seconds();
  CaseResult result;
  result.tpmc = static_cast<double>(counters.tpcc.new_orders.load()) * 60.0 /
                elapsed;
  result.qps =
      static_cast<double>(counters.analytical_queries.load()) / elapsed;
  return result;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  int duration_ms =
      static_cast<int>(bench::EnvDouble("S2_BENCH_SECONDS", 4.0) * 1000);
  int tw = bench::EnvInt("S2_BENCH_TW", 1);
  int aw = bench::EnvInt("S2_BENCH_AW", 1);

  bench::PrintHeader("Table 3: CH-benCHmark mixed workloads (scaled down)");
  printf("(TW = transactional worker running the TPC-C mix; AW = analytical "
         "worker cycling CH queries)\n\n");

  auto case1 = RunCase(tw, 0, false, true, duration_ms);
  auto case2 = RunCase(0, aw, false, true, duration_ms);
  auto case3 = RunCase(tw, aw, false, true, duration_ms);
  auto case4 = RunCase(tw, aw, true, true, duration_ms);
  auto case5 = RunCase(tw, aw, true, false, duration_ms);

  printf("%-4s %-44s %14s %12s\n", "Case", "Configuration", "TpmC", "QPS");
  printf("%-4d %-44s %14.0f %12s\n", 1, "TWs only", case1.tpmc, "-");
  printf("%-4d %-44s %14s %12.2f\n", 2, "AWs only", "-", case2.qps);
  printf("%-4d %-44s %14.0f %12.2f\n", 3, "TWs + AWs, shared workspace",
         case3.tpmc, case3.qps);
  printf("%-4d %-44s %14.0f %12.2f\n", 4,
         "TWs + AWs, separate read-only workspace", case4.tpmc, case4.qps);
  printf("%-4d %-44s %14.0f %12.2f\n", 5,
         "TWs + AWs, separate workspace, no blob", case5.tpmc, case5.qps);

  printf("\nPaper reference (Table 3, 1000 warehouses): 7530 TpmC / 0.076 "
         "QPS isolated; shared workspace halves both (3950 / 0.039); a "
         "separate workspace restores TWs (7454) and most of AWs (0.062); "
         "disabling blob changes little (7545 / 0.065).\n");
  printf("Shape checks: case3/case1 TpmC = %.2f (paper 0.52); case4/case1 "
         "TpmC = %.2f (paper 0.99); case4/case2 QPS = %.2f (paper 0.82); "
         "case5/case4 TpmC = %.2f (paper 1.01)\n",
         case1.tpmc > 0 ? case3.tpmc / case1.tpmc : 0,
         case1.tpmc > 0 ? case4.tpmc / case1.tpmc : 0,
         case2.qps > 0 ? case4.qps / case2.qps : 0,
         case4.tpmc > 0 ? case5.tpmc / case4.tpmc : 0);

  char json[512];
  snprintf(json, sizeof(json),
           "{\"bench\":\"table3_chbench\","
           "\"case1_tpmc\":%.1f,\"case2_qps\":%.4f,\"case3_tpmc\":%.1f,"
           "\"case3_qps\":%.4f,\"case4_tpmc\":%.1f,\"case4_qps\":%.4f,"
           "\"case5_tpmc\":%.1f,\"case5_qps\":%.4f}",
           case1.tpmc, case2.qps, case3.tpmc, case3.qps, case4.tpmc,
           case4.qps, case5.tpmc, case5.qps);
  printf("\n%s\n", json);
  bench::WriteBenchJson("table3_chbench", json);
  return 0;
}
