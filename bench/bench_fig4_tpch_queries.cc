// Reproduces Figure 4 of the paper: per-query TPC-H runtimes for S2DB and
// the two cloud-data-warehouse baselines (lower is better). The paper's
// figure shows S2DB competitive on every query with no pathological
// outliers; the same per-query series is printed here at laptop scale.

#include "bench_util.h"
#include "engine/database.h"
#include "workloads/tpch.h"

namespace s2 {
namespace {

std::vector<double> RunSeries(EngineProfile profile, double sf,
                              const char* tag) {
  bench::ScratchDir dir("s2-fig4");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.num_partitions = 1;
  opts.profile = profile;
  auto db = Database::Open(opts);
  std::vector<double> seconds(23, 0.0);
  if (!db.ok() || !tpch::CreateTables(db->get()).ok() ||
      !tpch::Load(db->get(), sf).ok()) {
    fprintf(stderr, "%s: setup failed\n", tag);
    return seconds;
  }
  for (int q = 1; q <= 22; ++q) (void)tpch::RunQuery(db->get(), q);  // warm
  for (int q = 1; q <= 22; ++q) {
    bench::Timer t;
    auto rows = tpch::RunQuery(db->get(), q);
    seconds[q] = rows.ok() ? t.Seconds() : -1;
  }
  return seconds;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  double sf = bench::EnvDouble("S2_BENCH_TPCH_SF", 0.01);
  bench::PrintHeader("Figure 4: TPC-H per-query runtimes (seconds, lower is "
                     "better; scaled down)");
  auto s2db = RunSeries(EngineProfile::kUnified, sf, "S2DB");
  auto cdw1 = RunSeries(EngineProfile::kCloudWarehouse, sf, "CDW1");
  auto cdw2 = RunSeries(EngineProfile::kCloudWarehouse, sf, "CDW2");

  printf("%-6s %12s %12s %12s %10s\n", "Query", "S2DB", "CDW1", "CDW2",
         "S2DB wins");
  int wins = 0;
  for (int q = 1; q <= 22; ++q) {
    bool win = s2db[q] <= std::min(cdw1[q], cdw2[q]);
    wins += win ? 1 : 0;
    printf("Q%-5d %12.4f %12.4f %12.4f %10s\n", q, s2db[q], cdw1[q], cdw2[q],
           win ? "yes" : "");
  }
  printf("\nS2DB fastest or tied on %d/22 queries. Paper shape: S2DB "
         "competitive across the board (overall geomean ~17%% ahead of the "
         "CDWs at 1TB).\n",
         wins);
  return 0;
}
