// Ablation: adaptive filter execution (paper Section 5.2) — clause
// reordering by (1-P)/cost, encoded filters, and secondary-index filters,
// each toggled independently on the same query.
//
// The query: a cheap, highly selective integer equality AND an expensive,
// barely selective IN-list over a wide string column, written in the WRONG
// order. Static evaluation pays the expensive clause on every row;
// adaptive execution learns to run the selective clause first.

#include "bench_util.h"
#include "engine/database.h"
#include "exec/table_scanner.h"

namespace s2 {
namespace {

constexpr int64_t kRows = 200000;

double RunScan(UnifiedTable* table, Partition* partition,
               const ScanOptions& base, const FilterNode* filter,
               int repeats, ScanStats* stats_out) {
  bench::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    ScanOptions options = base;
    options.filter = filter;
    options.projection = {0};
    TableScanner scanner(table, options);
    auto h = partition->Begin();
    (void)scanner.Scan(h.id, h.read_ts,
                       [](const ScanBatch&) { return true; });
    if (stats_out != nullptr) *stats_out = scanner.stats();
    partition->EndRead(h.id);
  }
  return timer.Seconds() / repeats * 1000.0;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  int repeats = bench::EnvInt("S2_BENCH_REPEATS", 5);
  bench::PrintHeader(
      "Ablation: adaptive query execution (filter reordering / encoded "
      "filters / index filters)");

  bench::ScratchDir dir("s2-adaptive");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.auto_maintain = false;
  auto db = Database::Open(opts);
  TableOptions t;
  t.schema = Schema({{"id", DataType::kInt64},
                     {"payload", DataType::kString},
                     {"bucket", DataType::kInt64}});
  t.indexes = {{0}};
  t.unique_key = {0};
  t.segment_rows = 65536;
  t.flush_threshold = 65536;
  t.sort_key = {};  // no sort key: zone maps can't save the bad plan
  if (!db.ok() || !(*db)->CreateTable("t", t, {0}).ok()) return 1;
  Partition* partition = (*db)->cluster()->partition(0);
  UnifiedTable* table = *partition->GetTable("t");
  for (int64_t i = 0; i < kRows; i += 4096) {
    std::vector<Row> batch;
    for (int64_t j = i; j < i + 4096 && j < kRows; ++j) {
      batch.push_back({Value(j % 977),  // many duplicates; index selective
                       Value("payload-string-" + std::to_string(j % 23)),
                       Value(j % 7)});
    }
    auto h = partition->Begin();
    if (!table->InsertRows(h.id, h.read_ts, batch,
                           DupPolicy::kSkip).ok()) {
      return 1;
    }
    if (!partition->Commit(h.id).ok()) return 1;
    if (table->NeedsFlush()) (void)table->FlushRowstore();
  }
  (void)table->FlushRowstore();

  // Expensive barely-selective clause FIRST, cheap selective clause LAST.
  auto build_filter = [] {
    std::vector<Value> wide;
    for (int i = 0; i < 22; ++i) {
      wide.push_back(Value("payload-string-" + std::to_string(i)));
    }
    std::vector<std::unique_ptr<FilterNode>> conj;
    conj.push_back(FilterIn(1, std::move(wide)));      // passes ~96%
    conj.push_back(FilterEq(2, Value(int64_t{3})));    // passes ~14%
    conj.push_back(FilterEq(0, Value(int64_t{123})));  // passes ~0.1%
    return FilterAnd(std::move(conj));
  };
  auto filter = build_filter();

  struct Config {
    const char* name;
    bool reorder, encoded, index;
  };
  Config configs[] = {
      {"all static (given clause order)", false, false, false},
      {"+ adaptive reordering", true, false, false},
      {"+ encoded filters", true, true, false},
      {"+ secondary-index filter (full adaptive)", true, true, true},
  };
  printf("%-44s %12s %10s\n", "Configuration", "ms/scan", "vs static");
  double baseline = 0;
  for (const Config& config : configs) {
    ScanOptions options;
    options.adaptive_reorder = config.reorder;
    options.use_encoded_filters = config.encoded;
    options.use_secondary_index = config.index;
    options.use_zone_maps = false;
    ScanStats stats;
    double ms = RunScan(table, partition, options, filter.get(), repeats,
                        &stats);
    if (baseline == 0) baseline = ms;
    printf("%-44s %12.3f %9.2fx\n", config.name, ms,
           ms > 0 ? baseline / ms : 0);
  }
  printf("\nShape: each Section 5 mechanism compounds — reordering runs the "
         "selective clause first, encoded filters skip decoding the wide "
         "string column, and the index filter skips non-matching rows "
         "entirely.\n");
  return 0;
}
