#ifndef S2_BENCH_BENCH_UTIL_H_
#define S2_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/monitor.h"

namespace s2 {
namespace bench {

/// Wall-clock timer in seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Reads an environment knob with a default (benches scale via env vars so
/// CI smoke runs stay fast: S2_BENCH_SCALE=... etc.).
inline double EnvDouble(const char* name, double def) {
  const char* v = getenv(name);
  return v == nullptr ? def : atof(v);
}
inline int EnvInt(const char* name, int def) {
  const char* v = getenv(name);
  return v == nullptr ? def : atoi(v);
}

inline double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Scratch directory for one bench run, removed at destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* prefix) {
    auto dir = MakeTempDir(prefix);
    if (dir.ok()) path_ = *dir;
  }
  ~ScratchDir() {
    if (!path_.empty()) (void)RemoveDirRecursive(path_);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Writes `content` to a file in the current working directory (bench
/// artifacts: CI uploads every BENCH_* file).
inline void WriteBenchFile(const std::string& path,
                           const std::string& content) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return;
  fwrite(content.data(), 1, content.size(), f);
  if (content.empty() || content.back() != '\n') fputc('\n', f);
  fclose(f);
  printf("Wrote %s\n", path.c_str());
}

/// Build provenance for this bench binary, stamped by the build system
/// (see bench/CMakeLists.txt): git commit, build type, sanitizer flags.
inline std::string ProvenanceJson() {
#ifdef S2_GIT_SHA
  const char* sha = S2_GIT_SHA;
#else
  const char* sha = "unknown";
#endif
#ifdef S2_BUILD_TYPE
  const char* build_type = S2_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
#ifdef S2_SANITIZE_FLAGS
  const char* sanitize = S2_SANITIZE_FLAGS;
#else
  const char* sanitize = "";
#endif
  return std::string("{\"git_sha\":\"") + sha + "\",\"build_type\":\"" +
         build_type + "\",\"sanitizer\":\"" + sanitize + "\"}";
}

/// Writes the bench's machine-readable summary object to BENCH_<name>.json
/// in the current working directory, with build provenance and the
/// process-wide metrics dump embedded as fields (spliced in before the
/// closing brace), plus the same dump as a Prometheus-style
/// BENCH_<name>.metrics.prom snapshot. `summary_json` is the same one-line
/// JSON object the bench prints.
inline void WriteBenchJson(const std::string& name, std::string summary_json) {
  size_t brace = summary_json.rfind('}');
  if (brace == std::string::npos) return;
  summary_json.insert(brace,
                      ",\"provenance\":" + ProvenanceJson() +
                          ",\"metrics\":" +
                          MetricsRegistry::Global()->DumpJson());
  WriteBenchFile("BENCH_" + name + ".json", summary_json);
  WriteBenchFile("BENCH_" + name + ".metrics.prom",
                 MetricsRegistry::Global()->Dump());
}

/// Writes the monitor's sampled time-series next to the other snapshots
/// (BENCH_<name>.monitor.json): per-phase metric history that the
/// end-of-run averages in BENCH_<name>.json hide. Benches tick the monitor
/// at phase boundaries.
inline void WriteBenchMonitorHistory(const std::string& name,
                                     const MonitorService& monitor) {
  WriteBenchFile("BENCH_" + name + ".monitor.json", monitor.HistoryJson());
}

inline void PrintHeader(const char* title) {
  printf("\n================================================================\n");
  printf("%s\n", title);
  printf("================================================================\n");
}

/// Result of a scatter-gather scaling measurement: the same query run on
/// two identically loaded databases, one with a 1-thread executor and one
/// with an N-thread executor.
struct ScatterScaling {
  double serial_seconds = 0;
  double parallel_seconds = 0;
  double speedup = 0;       // serial / parallel wall time
  bool identical = false;   // parallel rows byte-identical to serial
  size_t rows = 0;          // rows returned per query
};

/// Times `iters` ScatterQuery rounds on each database and checks that the
/// parallel executor returns byte-identical rows in the same order as the
/// serial one. `db` is any object with Query(factory) -> Result<rows>
/// (Database), and `encode` turns one result set into a comparable string.
template <typename DB, typename Factory, typename Encode>
ScatterScaling MeasureScatterScaling(DB* serial_db, DB* parallel_db,
                                     const Factory& factory,
                                     const Encode& encode, int iters) {
  ScatterScaling out;
  auto serial_rows = serial_db->Query(factory);
  auto parallel_rows = parallel_db->Query(factory);
  if (!serial_rows.ok() || !parallel_rows.ok()) return out;
  out.rows = serial_rows->size();
  out.identical = encode(*serial_rows) == encode(*parallel_rows);
  {
    Timer t;
    for (int i = 0; i < iters; ++i) (void)serial_db->Query(factory);
    out.serial_seconds = t.Seconds() / iters;
  }
  {
    Timer t;
    for (int i = 0; i < iters; ++i) (void)parallel_db->Query(factory);
    out.parallel_seconds = t.Seconds() / iters;
  }
  out.speedup =
      out.parallel_seconds > 0 ? out.serial_seconds / out.parallel_seconds : 0;
  return out;
}

}  // namespace bench
}  // namespace s2

#endif  // S2_BENCH_BENCH_UTIL_H_
