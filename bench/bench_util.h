#ifndef S2_BENCH_BENCH_UTIL_H_
#define S2_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"

namespace s2 {
namespace bench {

/// Wall-clock timer in seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Reads an environment knob with a default (benches scale via env vars so
/// CI smoke runs stay fast: S2_BENCH_SCALE=... etc.).
inline double EnvDouble(const char* name, double def) {
  const char* v = getenv(name);
  return v == nullptr ? def : atof(v);
}
inline int EnvInt(const char* name, int def) {
  const char* v = getenv(name);
  return v == nullptr ? def : atoi(v);
}

inline double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Scratch directory for one bench run, removed at destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* prefix) {
    auto dir = MakeTempDir(prefix);
    if (dir.ok()) path_ = *dir;
  }
  ~ScratchDir() {
    if (!path_.empty()) (void)RemoveDirRecursive(path_);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline void PrintHeader(const char* title) {
  printf("\n================================================================\n");
  printf("%s\n", title);
  printf("================================================================\n");
}

}  // namespace bench
}  // namespace s2

#endif  // S2_BENCH_BENCH_UTIL_H_
