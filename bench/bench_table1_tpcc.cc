// Reproduces Table 1 of "Cloud-Native Transactions and Analytics in
// SingleStore" (SIGMOD '22): TPC-C throughput of S2DB's unified table
// storage vs. a rowstore-based cloud operational database (CDB), plus an
// S2DB scaling row with more warehouses/partitions.
//
// Paper shape to reproduce: S2DB (columnar-based unified storage) is
// competitive with the rowstore CDB at equal scale, and S2DB throughput
// scales roughly linearly with warehouses/compute.
//
// Scaled down: W warehouses instead of 1000/10000, wall-clock seconds
// instead of full TPC-C measurement intervals. Absolute tpmC is not
// comparable to the paper's hardware.

#include <thread>

#include "bench_util.h"
#include "engine/database.h"
#include "workloads/tpcc.h"

namespace s2 {
namespace {

using bench::EnvDouble;
using bench::EnvInt;
using bench::ScratchDir;
using bench::Timer;

struct RunResult {
  double tpmc = 0;
  double total_txn_per_s = 0;
  uint64_t aborts = 0;
};

RunResult RunTpcc(EngineProfile profile, int warehouses, int partitions,
                  int workers, double seconds) {
  ScratchDir dir("s2-bench-tpcc");
  DatabaseOptions opts;
  opts.dir = dir.path();
  opts.num_partitions = partitions;
  opts.profile = profile;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return {};
  }
  tpcc::Scale scale;
  scale.warehouses = warehouses;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 60;
  scale.items = 200;
  scale.initial_orders_per_district = 10;
  if (!tpcc::CreateTables(db->get()).ok() ||
      !tpcc::Load(db->get(), scale).ok()) {
    fprintf(stderr, "load failed\n");
    return {};
  }

  tpcc::Counters counters;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      tpcc::Worker worker(db->get(), scale, 1000 + t, &counters);
      while (!stop.load(std::memory_order_relaxed)) (void)worker.RunOne();
    });
  }
  Timer timer;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop = true;
  for (auto& t : threads) t.join();
  double elapsed = timer.Seconds();

  RunResult result;
  result.tpmc =
      static_cast<double>(counters.new_orders.load()) * 60.0 / elapsed;
  result.total_txn_per_s =
      static_cast<double>(counters.total()) / elapsed;
  result.aborts = counters.aborts.load();
  return result;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  double seconds = bench::EnvDouble("S2_BENCH_SECONDS", 5.0);
  // Default one worker per two hardware threads: on an oversubscribed host
  // scheduler noise and lock convoys swamp the engine comparison.
  int default_workers =
      std::max(1u, std::thread::hardware_concurrency() / 2);
  int workers = bench::EnvInt("S2_BENCH_WORKERS", default_workers);
  int w_small = bench::EnvInt("S2_BENCH_WAREHOUSES", 2);
  int w_big = w_small * 4;

  bench::PrintHeader(
      "Table 1: TPC-C throughput (scaled down; shape: S2DB ~= CDB at equal "
      "scale, S2DB scales with warehouses)");

  auto cdb = RunTpcc(EngineProfile::kOperationalRowstore, w_small, 1, workers,
                     seconds);
  auto s2_small =
      RunTpcc(EngineProfile::kUnified, w_small, 1, workers, seconds);
  auto s2_big =
      RunTpcc(EngineProfile::kUnified, w_big, 4, workers, seconds);

  printf("%-28s %12s %12s %14s %10s\n", "Product", "warehouses", "tpmC",
         "txn/s (all)", "aborts");
  printf("%-28s %12d %12.0f %14.1f %10llu\n", "CDB (rowstore baseline)",
         w_small, cdb.tpmc, cdb.total_txn_per_s,
         static_cast<unsigned long long>(cdb.aborts));
  printf("%-28s %12d %12.0f %14.1f %10llu\n", "S2DB (unified storage)",
         w_small, s2_small.tpmc, s2_small.total_txn_per_s,
         static_cast<unsigned long long>(s2_small.aborts));
  printf("%-28s %12d %12.0f %14.1f %10llu\n", "S2DB (scaled out)", w_big,
         s2_big.tpmc, s2_big.total_txn_per_s,
         static_cast<unsigned long long>(s2_big.aborts));

  printf("\nPaper reference (Table 1): CDB 12582 tpmC and S2DB 12556 tpmC at "
         "1000 warehouses (97.8%% vs 97.7%% of max);\n"
         "S2DB 121432 tpmC at 10000 warehouses / 8x vCPU (linear scaling).\n");
  printf("Shape checks: S2DB/CDB tpmC ratio = %.2f (paper ~1.0); "
         "S2DB scaled/S2DB ratio = %.2f\n",
         cdb.tpmc > 0 ? s2_small.tpmc / cdb.tpmc : 0,
         s2_small.tpmc > 0 ? s2_big.tpmc / s2_small.tpmc : 0);

  char json[512];
  snprintf(json, sizeof(json),
           "{\"bench\":\"table1_tpcc\",\"warehouses\":%d,"
           "\"cdb_tpmc\":%.1f,\"s2db_tpmc\":%.1f,\"s2db_scaled_tpmc\":%.1f,"
           "\"s2db_aborts\":%llu}",
           w_small, cdb.tpmc, s2_small.tpmc, s2_big.tpmc,
           static_cast<unsigned long long>(s2_small.aborts));
  printf("\n%s\n", json);
  bench::WriteBenchJson("table1_tpcc", json);
  return 0;
}
