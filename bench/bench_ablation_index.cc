// Ablation: the two-level secondary index (paper Section 4.1).
//
// Compares three point-lookup strategies as the segment count N grows:
//   - two-level:   global hash-table LSM -> per-segment postings
//                  (O(log N) hash-table probes)
//   - per-segment: probe every segment's inverted index (O(N) probes; the
//                  bloom-filter/per-segment-structure family)
//   - full scan:   no index at all (zone maps still on)
//
// Paper shape: the two-level lookup cost stays ~flat as segments grow
// while per-segment probing grows linearly and scans grow with data size.

#include "bench_util.h"
#include "engine/database.h"
#include "exec/table_scanner.h"
#include "index/inverted_index.h"

namespace s2 {
namespace {

double LookupTwoLevel(UnifiedTable* table, Partition* partition, int64_t key,
                      int iterations) {
  bench::Timer timer;
  for (int i = 0; i < iterations; ++i) {
    auto h = partition->Begin();
    int found = 0;
    (void)table->LookupByIndex(h.id, h.read_ts, {0},
                               {Value(key + i % 1000)},
                               [&](const Row&, const RowLocation&) {
                                 ++found;
                                 return true;
                               });
    partition->EndRead(h.id);
  }
  return timer.Seconds() / iterations * 1e6;
}

double LookupPerSegment(UnifiedTable* table, Partition* partition,
                        int64_t key, int iterations) {
  bench::Timer timer;
  for (int i = 0; i < iterations; ++i) {
    auto h = partition->Begin();
    auto segments = table->GetSegments(h.read_ts);
    if (segments.ok()) {
      Value v(key + i % 1000);
      for (const SegmentSnapshot& snap : *segments) {
        auto block = snap.segment->aux_block(
            InvertedIndexBuilder::BlockName(0));
        if (!block.ok()) continue;
        auto reader = InvertedIndexReader::Open(*block);
        if (!reader.ok()) continue;
        auto postings = reader->Lookup(v);
        if (postings.ok() && postings->Valid()) {
          // matched; a real read would fetch the row
        }
      }
    }
    partition->EndRead(h.id);
  }
  return timer.Seconds() / iterations * 1e6;
}

double LookupFullScan(UnifiedTable* table, Partition* partition, int64_t key,
                      int iterations) {
  bench::Timer timer;
  for (int i = 0; i < iterations; ++i) {
    auto filter = FilterEq(0, Value(key + i % 1000));
    ScanOptions options;
    options.filter = filter.get();
    options.use_secondary_index = false;
    options.use_zone_maps = false;
    options.projection = {0};
    TableScanner scanner(table, options);
    auto h = partition->Begin();
    (void)scanner.Scan(h.id, h.read_ts,
                       [](const ScanBatch&) { return true; });
    partition->EndRead(h.id);
  }
  return timer.Seconds() / iterations * 1e6;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  int iterations = bench::EnvInt("S2_BENCH_LOOKUPS", 200);
  bench::PrintHeader(
      "Ablation: two-level secondary index vs per-segment probing vs scan "
      "(point lookup latency, us)");

  printf("%-10s %10s %14s %14s %14s %12s\n", "segments", "rows",
         "two-level", "per-segment", "full scan", "idx tables");
  for (int target_segments : {4, 16, 64}) {
    bench::ScratchDir dir("s2-idx-ablation");
    DatabaseOptions opts;
    opts.dir = dir.path();
    opts.auto_maintain = false;
    auto db = Database::Open(opts);
    TableOptions t;
    t.schema = Schema({{"id", DataType::kInt64}, {"v", DataType::kString}});
    t.indexes = {{0}};
    t.unique_key = {0};
    t.segment_rows = 2048;
    t.flush_threshold = 2048;
    t.max_sorted_runs = 1000;  // disable merging: hold segment count fixed
    if (!db.ok() || !(*db)->CreateTable("t", t, {0}).ok()) return 1;
    Partition* partition = (*db)->cluster()->partition(0);
    UnifiedTable* table = *partition->GetTable("t");
    int64_t rows = int64_t{2048} * target_segments;
    for (int64_t i = 0; i < rows; i += 512) {
      std::vector<Row> batch;
      for (int64_t j = i; j < i + 512; ++j) {
        batch.push_back({Value(j), Value("v" + std::to_string(j))});
      }
      auto h = partition->Begin();
      if (!table->InsertRows(h.id, h.read_ts, batch).ok()) return 1;
      if (!partition->Commit(h.id).ok()) return 1;
      if (table->NeedsFlush()) (void)table->FlushRowstore();
    }
    (void)table->FlushRowstore();

    double two_level = LookupTwoLevel(table, partition, 1, iterations);
    double per_segment = LookupPerSegment(table, partition, 1, iterations);
    double scan = LookupFullScan(table, partition, 1, iterations);
    printf("%-10zu %10lld %14.2f %14.2f %14.2f %12zu\n", table->NumSegments(),
           static_cast<long long>(rows), two_level, per_segment, scan,
           table->IndexProbeTables(0));
  }
  printf("\nShape: two-level lookup stays ~flat (probes O(log N) hash "
         "tables); per-segment probing grows with the segment count; scans "
         "grow with data volume.\n");
  return 0;
}
