// Ablation: encoded filter execution (paper Sections 2.1.2 / 5.2) —
// evaluating predicates directly on dictionary codes vs decoding every
// value first. Micro-benchmark via google-benchmark on one segment scan.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/env.h"
#include "engine/database.h"
#include "exec/table_scanner.h"

namespace s2 {
namespace {

struct Fixture {
  std::string dir;
  std::unique_ptr<Database> db;
  Partition* partition = nullptr;
  UnifiedTable* table = nullptr;
  std::unique_ptr<FilterNode> filter;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto f = new Fixture();
      f->dir = *MakeTempDir("s2-encoded");
      DatabaseOptions opts;
      opts.dir = f->dir;
      opts.auto_maintain = false;
      f->db = std::move(Database::Open(opts)).value();
      TableOptions t;
      t.schema = Schema({{"id", DataType::kInt64},
                         {"category", DataType::kString}});
      t.segment_rows = 65536;
      t.flush_threshold = 65536;
      (void)f->db->CreateTable("t", t, {0});
      f->partition = f->db->cluster()->partition(0);
      f->table = *f->partition->GetTable("t");
      for (int64_t i = 0; i < 131072; i += 4096) {
        std::vector<Row> batch;
        for (int64_t j = i; j < i + 4096; ++j) {
          batch.push_back(
              {Value(j), Value("category-" + std::to_string(j % 16))});
        }
        auto h = f->partition->Begin();
        (void)f->table->InsertRows(h.id, h.read_ts, batch);
        (void)f->partition->Commit(h.id);
        if (f->table->NeedsFlush()) (void)f->table->FlushRowstore();
      }
      (void)f->table->FlushRowstore();
      f->filter = FilterEq(1, Value("category-7"));
      return f;
    }();
    return *fixture;
  }
};

void BM_FilterScan(benchmark::State& state, bool encoded) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    ScanOptions options;
    options.filter = f.filter.get();
    options.projection = {0};
    options.use_encoded_filters = encoded;
    options.use_secondary_index = false;
    options.use_zone_maps = false;
    TableScanner scanner(f.table, options);
    auto h = f.partition->Begin();
    size_t rows = 0;
    (void)scanner.Scan(h.id, h.read_ts, [&](const ScanBatch& batch) {
      rows += batch.num_rows;
      return true;
    });
    f.partition->EndRead(h.id);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 131072);
}

void BM_EncodedFilter(benchmark::State& state) { BM_FilterScan(state, true); }
void BM_RegularFilter(benchmark::State& state) { BM_FilterScan(state, false); }

BENCHMARK(BM_EncodedFilter);
BENCHMARK(BM_RegularFilter);

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  printf("\nAblation: encoded filter execution on a dictionary column "
         "(paper Sections 2.1.2/5.2). Expect EncodedFilter to beat "
         "RegularFilter: it evaluates the predicate once per dictionary "
         "entry and tests rows via their codes, never decoding strings.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
