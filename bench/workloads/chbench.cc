#include "workloads/chbench.h"

#include <chrono>
#include <map>
#include <thread>
#include <vector>

namespace s2 {
namespace chbench {

namespace {

// TPC-C orderline columns (see tpcc.cc): ol_w_id, ol_d_id, ol_o_id,
// ol_number, ol_i_id, ol_supply_w_id, ol_quantity, ol_amount,
// ol_delivery_d.
enum Ol {
  kOlW = 0,
  kOlD = 1,
  kOlO = 2,
  kOlNumber = 3,
  kOlItem = 4,
  kOlSupplyW = 5,
  kOlQty = 6,
  kOlAmount = 7,
  kOlDeliveryD = 8
};
// orders: o_w_id, o_d_id, o_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt.
enum O { kOW = 0, kOD = 1, kOId = 2, kOC = 3, kOEntry = 4, kOCarrier = 5,
         kOOlCnt = 6 };

/// CH-Q1 (adapted TPC-H Q1): per ol_number totals over delivered lines.
PlanPtr Ch1() {
  auto scan = std::make_unique<ScanOp>(
      "orderline", std::vector<int>{kOlNumber, kOlQty, kOlAmount},
      FilterCmp(kOlDeliveryD, CmpOp::kGt, Value(int64_t{0})));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(1)});
  aggs.push_back({AggKind::kSum, Col(2)});
  aggs.push_back({AggKind::kCount, nullptr});
  return std::make_unique<AggregateOp>(std::move(scan),
                                       std::vector<ExprPtr>{Col(0)},
                                       std::move(aggs));
}

/// CH-Q6 (adapted TPC-H Q6): revenue of mid-quantity lines.
PlanPtr Ch6() {
  std::vector<std::unique_ptr<FilterNode>> conj;
  conj.push_back(FilterBetween(kOlQty, Value(int64_t{3}), Value(int64_t{8})));
  auto scan = std::make_unique<ScanOp>(
      "orderline", std::vector<int>{kOlAmount}, FilterAnd(std::move(conj)));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(0)});
  return std::make_unique<AggregateOp>(std::move(scan),
                                       std::vector<ExprPtr>{},
                                       std::move(aggs));
}

/// CH-Q3-like: revenue of undelivered orders per (w, d, o).
PlanPtr Ch3() {
  auto neworder =
      std::make_unique<ScanOp>("neworder", std::vector<int>{0, 1, 2});
  auto lines = std::make_unique<ScanOp>(
      "orderline", std::vector<int>{kOlW, kOlD, kOlO, kOlAmount});
  auto join = std::make_unique<HashJoinOp>(
      std::move(lines), std::move(neworder),
      std::vector<ExprPtr>{Col(0), Col(1), Col(2)},
      std::vector<ExprPtr>{Col(0), Col(1), Col(2)}, JoinType::kSemi, 3);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(3)});
  auto agg = std::make_unique<AggregateOp>(
      std::move(join), std::vector<ExprPtr>{Col(0), Col(1), Col(2)},
      std::move(aggs));
  auto sort = std::make_unique<SortOp>(
      std::move(agg), std::vector<SortKey>{{Col(3), true}});
  return std::make_unique<LimitOp>(std::move(sort), 10);
}

/// CH-Q12-like: order counts per carrier with line statistics.
PlanPtr Ch12() {
  auto orders = std::make_unique<ScanOp>(
      "orders", std::vector<int>{kOW, kOD, kOId, kOCarrier});
  auto lines = std::make_unique<ScanOp>(
      "orderline", std::vector<int>{kOlW, kOlD, kOlO, kOlQty});
  auto join = std::make_unique<HashJoinOp>(
      std::move(lines), std::move(orders),
      std::vector<ExprPtr>{Col(0), Col(1), Col(2)},
      std::vector<ExprPtr>{Col(0), Col(1), Col(2)}, JoinType::kInner, 4);
  // cols: 0..3 line, 4..6 order keys, 7 carrier
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  aggs.push_back({AggKind::kSum, Col(3)});
  return std::make_unique<AggregateOp>(std::move(join),
                                       std::vector<ExprPtr>{Col(7)},
                                       std::move(aggs));
}

/// CH-Q18-like: customers with large undelivered order value.
PlanPtr Ch18() {
  auto lines = std::make_unique<ScanOp>(
      "orderline", std::vector<int>{kOlW, kOlD, kOlO, kOlAmount});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(3)});
  auto per_order = std::make_unique<AggregateOp>(
      std::move(lines), std::vector<ExprPtr>{Col(0), Col(1), Col(2)},
      std::move(aggs));
  auto big = std::make_unique<FilterOp>(
      std::move(per_order), Gt(Col(3), Lit(Value(20000.0))));
  auto sort = std::make_unique<SortOp>(
      std::move(big), std::vector<SortKey>{{Col(3), true}});
  return std::make_unique<LimitOp>(std::move(sort), 20);
}

PlanPtr BuildQuery(int q) {
  switch (q) {
    case 1: return Ch1();
    case 2: return Ch6();
    case 3: return Ch3();
    case 4: return Ch12();
    default: return Ch18();
  }
}

}  // namespace

Result<std::vector<Row>> RunAnalyticalQuery(Database* db, int q,
                                            int workspace) {
  // Scatter per partition (tables are co-sharded by warehouse, so each
  // partition computes an exact partial) and gather here.
  S2_ASSIGN_OR_RETURN(std::vector<Row> partials,
                      db->Query([&] { return BuildQuery(q); }, workspace));
  // Gather: group-merge partial rows (group cols lead, numeric aggregates
  // combine by sum; count also sums). For limit-style queries the merge is
  // a harmless re-sort superset.
  if (partials.empty()) return partials;
  size_t width = partials[0].size();
  (void)width;
  std::map<std::string, Row> merged;
  for (Row& row : partials) {
    // Heuristic: all leading non-double columns form the key.
    size_t key_end = 0;
    while (key_end < row.size() && !row[key_end].is_double()) ++key_end;
    std::string key;
    for (size_t i = 0; i < key_end; ++i) row[i].EncodeTo(&key);
    auto [it, inserted] = merged.try_emplace(key, row);
    if (!inserted) {
      for (size_t i = key_end; i < row.size(); ++i) {
        if (row[i].is_null()) continue;
        if (it->second[i].is_null()) {
          it->second[i] = row[i];
        } else {
          it->second[i] = Value(it->second[i].AsNumeric() +
                                row[i].AsNumeric());
        }
      }
    }
  }
  std::vector<Row> out;
  out.reserve(merged.size());
  for (auto& [key, row] : merged) out.push_back(std::move(row));
  return out;
}

void RunMixed(Database* db, const tpcc::Scale& scale, int tw, int aw,
              int analytics_workspace, int duration_ms,
              MixedCounters* counters, uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < tw; ++t) {
    threads.emplace_back([&, t] {
      tpcc::Worker worker(db, scale, seed + t, &counters->tpcc);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)worker.RunOne();
      }
    });
  }
  for (int a = 0; a < aw; ++a) {
    threads.emplace_back([&, a] {
      int q = 1 + (a % kNumQueries);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = RunAnalyticalQuery(db, q, analytics_workspace);
        if (result.ok()) {
          counters->analytical_queries.fetch_add(1);
        } else {
          counters->analytical_errors.fetch_add(1);
        }
        q = q % kNumQueries + 1;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
}

}  // namespace chbench
}  // namespace s2
