#ifndef S2_BENCH_WORKLOADS_TPCH_SCHEMA_H_
#define S2_BENCH_WORKLOADS_TPCH_SCHEMA_H_

// Column indices for the TPC-H tables as created by tpch::CreateTables.
// Query plans reference columns by index; these constants keep the 22
// hand-built plans readable and mistake-resistant.

namespace s2 {
namespace tpch {

namespace region {
enum : int { kRegionKey = 0, kName = 1 };
}
namespace nation {
enum : int { kNationKey = 0, kName = 1, kRegionKey = 2 };
}
namespace supplier {
enum : int {
  kSuppKey = 0,
  kName = 1,
  kAddress = 2,
  kNationKey = 3,
  kPhone = 4,
  kAcctBal = 5,
  kComment = 6
};
}
namespace customer {
enum : int {
  kCustKey = 0,
  kName = 1,
  kAddress = 2,
  kNationKey = 3,
  kPhone = 4,
  kAcctBal = 5,
  kMktSegment = 6,
  kComment = 7
};
}
namespace part {
enum : int {
  kPartKey = 0,
  kName = 1,
  kMfgr = 2,
  kBrand = 3,
  kType = 4,
  kSize = 5,
  kContainer = 6,
  kRetailPrice = 7
};
}
namespace partsupp {
enum : int { kPartKey = 0, kSuppKey = 1, kAvailQty = 2, kSupplyCost = 3 };
}
namespace orders {
enum : int {
  kOrderKey = 0,
  kCustKey = 1,
  kOrderStatus = 2,
  kTotalPrice = 3,
  kOrderDate = 4,
  kOrderPriority = 5,
  kClerk = 6,
  kShipPriority = 7,
  kComment = 8
};
}
namespace lineitem {
enum : int {
  kOrderKey = 0,
  kPartKey = 1,
  kSuppKey = 2,
  kLineNumber = 3,
  kQuantity = 4,
  kExtendedPrice = 5,
  kDiscount = 6,
  kTax = 7,
  kReturnFlag = 8,
  kLineStatus = 9,
  kShipDate = 10,
  kCommitDate = 11,
  kReceiptDate = 12,
  kShipInstruct = 13,
  kShipMode = 14
};
}

}  // namespace tpch
}  // namespace s2

#endif  // S2_BENCH_WORKLOADS_TPCH_SCHEMA_H_
