#include "workloads/tpcc.h"

#include <algorithm>
#include <set>

namespace s2 {
namespace tpcc {

namespace {

constexpr int64_t kInvalidItem = 999999999;

/// Keep the write-optimized level 0 small under heavy OLTP churn ("this
/// write-optimized store is kept small relative to the table size").
void Tune(TableOptions* t) {
  t->flush_threshold = 4096;
  t->segment_rows = 16384;
}

TableOptions WarehouseTable() {
  TableOptions t;
  t.schema = Schema({{"w_id", DataType::kInt64},
                     {"w_name", DataType::kString},
                     {"w_tax", DataType::kDouble},
                     {"w_ytd", DataType::kDouble}});
  t.unique_key = {0};
  t.indexes = {{0}};
  Tune(&t);
  return t;
}

TableOptions DistrictTable() {
  TableOptions t;
  t.schema = Schema({{"d_w_id", DataType::kInt64},
                     {"d_id", DataType::kInt64},
                     {"d_name", DataType::kString},
                     {"d_tax", DataType::kDouble},
                     {"d_ytd", DataType::kDouble},
                     {"d_next_o_id", DataType::kInt64}});
  t.unique_key = {0, 1};
  t.indexes = {{0, 1}};
  Tune(&t);
  return t;
}

TableOptions CustomerTable() {
  TableOptions t;
  t.schema = Schema({{"c_w_id", DataType::kInt64},
                     {"c_d_id", DataType::kInt64},
                     {"c_id", DataType::kInt64},
                     {"c_last", DataType::kString},
                     {"c_first", DataType::kString},
                     {"c_balance", DataType::kDouble},
                     {"c_ytd_payment", DataType::kDouble},
                     {"c_payment_cnt", DataType::kInt64},
                     {"c_data", DataType::kString}});
  t.unique_key = {0, 1, 2};
  t.indexes = {{0, 1, 2}, {0, 1, 3}};  // by id and by last name
  Tune(&t);
  return t;
}

TableOptions HistoryTable() {
  TableOptions t;
  t.schema = Schema({{"h_w_id", DataType::kInt64},
                     {"h_d_id", DataType::kInt64},
                     {"h_c_id", DataType::kInt64},
                     {"h_amount", DataType::kDouble},
                     {"h_data", DataType::kString}});
  Tune(&t);
  return t;
}

TableOptions NewOrderTable() {
  TableOptions t;
  t.schema = Schema({{"no_w_id", DataType::kInt64},
                     {"no_d_id", DataType::kInt64},
                     {"no_o_id", DataType::kInt64}});
  t.unique_key = {0, 1, 2};
  t.indexes = {{0, 1, 2}};
  Tune(&t);
  return t;
}

TableOptions OrdersTable() {
  TableOptions t;
  t.schema = Schema({{"o_w_id", DataType::kInt64},
                     {"o_d_id", DataType::kInt64},
                     {"o_id", DataType::kInt64},
                     {"o_c_id", DataType::kInt64},
                     {"o_entry_d", DataType::kInt64},
                     {"o_carrier_id", DataType::kInt64},
                     {"o_ol_cnt", DataType::kInt64}});
  t.unique_key = {0, 1, 2};
  t.indexes = {{0, 1, 2}, {0, 1, 3}};  // by id and by customer
  Tune(&t);
  return t;
}

TableOptions OrderLineTable() {
  TableOptions t;
  t.schema = Schema({{"ol_w_id", DataType::kInt64},
                     {"ol_d_id", DataType::kInt64},
                     {"ol_o_id", DataType::kInt64},
                     {"ol_number", DataType::kInt64},
                     {"ol_i_id", DataType::kInt64},
                     {"ol_supply_w_id", DataType::kInt64},
                     {"ol_quantity", DataType::kInt64},
                     {"ol_amount", DataType::kDouble},
                     {"ol_delivery_d", DataType::kInt64}});
  t.unique_key = {0, 1, 2, 3};
  t.indexes = {{0, 1, 2, 3}, {0, 1, 2}};
  t.sort_key = {0, 1, 2};
  Tune(&t);
  return t;
}

TableOptions ItemTable() {
  TableOptions t;
  t.schema = Schema({{"i_id", DataType::kInt64},
                     {"i_name", DataType::kString},
                     {"i_price", DataType::kDouble},
                     {"i_data", DataType::kString}});
  t.unique_key = {0};
  t.indexes = {{0}};
  Tune(&t);
  return t;
}

TableOptions StockTable() {
  TableOptions t;
  t.schema = Schema({{"s_w_id", DataType::kInt64},
                     {"s_i_id", DataType::kInt64},
                     {"s_quantity", DataType::kInt64},
                     {"s_ytd", DataType::kInt64},
                     {"s_order_cnt", DataType::kInt64}});
  t.unique_key = {0, 1};
  t.indexes = {{0, 1}};
  Tune(&t);
  return t;
}

}  // namespace

Status CreateTables(Database* db) {
  // Everything shards by warehouse id so TPC-C's hot path stays
  // single-partition; the item catalog is replicated at load time.
  S2_RETURN_NOT_OK(db->CreateTable("warehouse", WarehouseTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("district", DistrictTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("customer", CustomerTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("history", HistoryTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("neworder", NewOrderTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("orders", OrdersTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("orderline", OrderLineTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("item", ItemTable(), {0}));
  S2_RETURN_NOT_OK(db->CreateTable("stock", StockTable(), {0}));
  return Status::OK();
}

Status Load(Database* db, const Scale& scale, uint64_t seed) {
  Rng rng(seed);
  Cluster* cluster = db->cluster();

  // Item catalog, replicated to every partition (read-only after load).
  for (int p = 0; p < cluster->num_partitions(); ++p) {
    auto txn = db->Begin();
    auto h = txn.On(p);
    UnifiedTable* item = txn.table(p, "item");
    std::vector<Row> rows;
    for (int64_t i = 1; i <= scale.items; ++i) {
      rows.push_back({Value(i), Value("item-" + std::to_string(i)),
                      Value(1.0 + (i % 100)),
                      Value(i % 10 == 0 ? "ORIGINAL" : "plain")});
      if (rows.size() >= 1000) {
        auto r = item->InsertRows(h.id, h.read_ts, rows);
        if (!r.ok()) {
          txn.Abort();
          return r.status();
        }
        rows.clear();
      }
    }
    if (!rows.empty()) {
      auto r = item->InsertRows(h.id, h.read_ts, rows);
      if (!r.ok()) {
        txn.Abort();
        return r.status();
      }
    }
    S2_RETURN_NOT_OK(txn.Commit());
  }

  static const char* kLastNames[] = {"BAR",   "OUGHT", "ABLE",  "PRI",
                                     "PRES",  "ESE",   "ANTI",  "CALLY",
                                     "ATION", "EING"};
  for (int64_t w = 1; w <= scale.warehouses; ++w) {
    S2_RETURN_NOT_OK(db->Insert(
        "warehouse",
        {{Value(w), Value("wh-" + std::to_string(w)),
          Value(rng.NextDouble() * 0.2), Value(300000.0)}}));
    // Stock for every item.
    std::vector<Row> stock_rows;
    for (int64_t i = 1; i <= scale.items; ++i) {
      stock_rows.push_back({Value(w), Value(i),
                            Value(rng.UniformRange(10, 100)), Value(int64_t{0}),
                            Value(int64_t{0})});
      if (stock_rows.size() >= 2000) {
        S2_RETURN_NOT_OK(db->Insert("stock", stock_rows));
        stock_rows.clear();
      }
    }
    if (!stock_rows.empty()) S2_RETURN_NOT_OK(db->Insert("stock", stock_rows));

    for (int64_t d = 1; d <= scale.districts_per_warehouse; ++d) {
      int64_t next_o_id = scale.initial_orders_per_district + 1;
      S2_RETURN_NOT_OK(db->Insert(
          "district",
          {{Value(w), Value(d), Value("dist-" + std::to_string(d)),
            Value(rng.NextDouble() * 0.2), Value(30000.0), Value(next_o_id)}}));
      std::vector<Row> customers;
      for (int64_t c = 1; c <= scale.customers_per_district; ++c) {
        std::string last = kLastNames[(c - 1) % 10];
        last += kLastNames[((c - 1) / 10) % 10];
        customers.push_back({Value(w), Value(d), Value(c), Value(last),
                             Value("first" + std::to_string(c)),
                             Value(-10.0), Value(10.0), Value(int64_t{1}),
                             Value(rng.NextString(30, 60))});
        if (customers.size() >= 1000) {
          S2_RETURN_NOT_OK(db->Insert("customer", customers));
          customers.clear();
        }
      }
      if (!customers.empty()) S2_RETURN_NOT_OK(db->Insert("customer", customers));

      // Initial orders: every customer id once, shuffled; the last third
      // are undelivered (rows in neworder).
      std::vector<Row> orders, orderlines, neworders;
      for (int64_t o = 1; o <= scale.initial_orders_per_district; ++o) {
        int64_t c =
            rng.UniformRange(1, scale.customers_per_district);
        int64_t ol_cnt = rng.UniformRange(5, 15);
        bool undelivered = o > scale.initial_orders_per_district * 2 / 3;
        orders.push_back({Value(w), Value(d), Value(o), Value(c),
                          Value(int64_t{20260101}),
                          Value(undelivered ? int64_t{0}
                                            : rng.UniformRange(1, 10)),
                          Value(ol_cnt)});
        if (undelivered) {
          neworders.push_back({Value(w), Value(d), Value(o)});
        }
        for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
          orderlines.push_back(
              {Value(w), Value(d), Value(o), Value(ol),
               Value(rng.UniformRange(1, scale.items)), Value(w),
               Value(int64_t{5}), Value(rng.NextDouble() * 9999),
               Value(undelivered ? int64_t{0} : int64_t{20260101})});
        }
      }
      S2_RETURN_NOT_OK(db->Insert("orders", orders));
      S2_RETURN_NOT_OK(db->Insert("orderline", orderlines));
      if (!neworders.empty()) S2_RETURN_NOT_OK(db->Insert("neworder", neworders));
    }
  }
  return db->Maintain();
}

Worker::Worker(Database* db, const Scale& scale, uint64_t seed,
               Counters* counters)
    : db_(db), scale_(scale), rng_(seed), counters_(counters) {}

Status Worker::RunOne() {
  uint64_t dice = rng_.Uniform(100);
  Status s;
  if (dice < 45) {
    s = NewOrder();
    if (s.ok()) counters_->new_orders.fetch_add(1);
  } else if (dice < 88) {
    s = Payment();
    if (s.ok()) counters_->payments.fetch_add(1);
  } else if (dice < 92) {
    s = OrderStatus();
    if (s.ok()) counters_->order_status.fetch_add(1);
  } else if (dice < 96) {
    s = Delivery();
    if (s.ok()) counters_->deliveries.fetch_add(1);
  } else {
    s = StockLevel();
    if (s.ok()) counters_->stock_levels.fetch_add(1);
  }
  if (!s.ok()) counters_->aborts.fetch_add(1);
  return s;
}

Status Worker::NewOrder() {
  Cluster* cluster = db_->cluster();
  int64_t w = RandomWarehouse();
  int64_t d = RandomDistrict();
  int64_t c = RandomCustomer();
  int home = cluster->PartitionForKey({Value(w)});

  auto txn = db_->Begin();
  auto abort = [&](Status s) {
    txn.Abort();
    return s;
  };
  auto h = txn.On(home);

  // District: read and bump d_next_o_id (the hot row-lock path).
  UnifiedTable* district = txn.table(home, "district");
  Row drow;
  bool found = false;
  S2_RETURN_NOT_OK(district->LookupByIndex(
      h.id, h.read_ts, {0, 1}, {Value(w), Value(d)},
      [&](const Row& row, const RowLocation&) {
        drow = row;
        found = true;
        return false;
      }));
  if (!found) return abort(Status::NotFound("district missing"));
  int64_t o_id = drow[5].as_int();
  double d_tax = drow[3].as_double();
  Row new_drow = drow;
  new_drow[5] = Value(o_id + 1);
  Status s = district->UpdateByKey(h.id, h.read_ts, {Value(w), Value(d)},
                                   new_drow);
  if (!s.ok()) return abort(s);

  // Number of lines; 1% of transactions reference an invalid item and
  // roll back per the spec.
  int64_t ol_cnt = rng_.UniformRange(5, 15);
  bool rollback = rng_.Uniform(100) == 0;

  UnifiedTable* orders = txn.table(home, "orders");
  UnifiedTable* neworder = txn.table(home, "neworder");
  UnifiedTable* orderline = txn.table(home, "orderline");
  UnifiedTable* item = txn.table(home, "item");
  auto r = orders->InsertRows(
      h.id, h.read_ts,
      {{Value(w), Value(d), Value(o_id), Value(c), Value(int64_t{20260701}),
        Value(int64_t{0}), Value(ol_cnt)}});
  if (!r.ok()) return abort(r.status());
  r = neworder->InsertRows(h.id, h.read_ts,
                           {{Value(w), Value(d), Value(o_id)}});
  if (!r.ok()) return abort(r.status());

  for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
    int64_t i_id =
        (rollback && ol == ol_cnt) ? kInvalidItem : RandomItem();
    // 1% of lines are supplied by a remote warehouse.
    int64_t supply_w = w;
    if (scale_.warehouses > 1 && rng_.Uniform(100) == 0) {
      do {
        supply_w = RandomWarehouse();
      } while (supply_w == w);
    }
    Row item_row;
    found = false;
    S2_RETURN_NOT_OK(item->LookupByIndex(h.id, h.read_ts, {0}, {Value(i_id)},
                                         [&](const Row& row,
                                             const RowLocation&) {
                                           item_row = row;
                                           found = true;
                                           return false;
                                         }));
    if (!found) return abort(Status::Aborted("invalid item rollback"));
    double price = item_row[2].as_double();

    int supply_part = cluster->PartitionForKey({Value(supply_w)});
    auto hs = txn.On(supply_part);
    UnifiedTable* stock = txn.table(supply_part, "stock");
    Row stock_row;
    found = false;
    S2_RETURN_NOT_OK(stock->LookupByIndex(
        hs.id, hs.read_ts, {0, 1}, {Value(supply_w), Value(i_id)},
        [&](const Row& row, const RowLocation&) {
          stock_row = row;
          found = true;
          return false;
        }));
    if (!found) return abort(Status::NotFound("stock missing"));
    int64_t quantity = rng_.UniformRange(1, 10);
    Row new_stock = stock_row;
    int64_t s_quantity = stock_row[2].as_int();
    new_stock[2] = Value(s_quantity >= quantity + 10
                             ? s_quantity - quantity
                             : s_quantity - quantity + 91);
    new_stock[3] = Value(stock_row[3].as_int() + quantity);
    new_stock[4] = Value(stock_row[4].as_int() + 1);
    s = stock->UpdateByKey(hs.id, hs.read_ts, {Value(supply_w), Value(i_id)},
                           new_stock);
    if (!s.ok()) return abort(s);

    r = orderline->InsertRows(
        h.id, h.read_ts,
        {{Value(w), Value(d), Value(o_id), Value(ol), Value(i_id),
          Value(supply_w), Value(quantity),
          Value(price * static_cast<double>(quantity) * (1.0 + d_tax)),
          Value(int64_t{0})}});
    if (!r.ok()) return abort(r.status());
  }
  return txn.Commit();
}

Status Worker::Payment() {
  Cluster* cluster = db_->cluster();
  int64_t w = RandomWarehouse();
  int64_t d = RandomDistrict();
  // 85% local customer; 15% remote warehouse/district.
  int64_t c_w = w, c_d = d;
  if (scale_.warehouses > 1 && rng_.Uniform(100) < 15) {
    do {
      c_w = RandomWarehouse();
    } while (c_w == w);
    c_d = RandomDistrict();
  }
  double amount = 1.0 + rng_.NextDouble() * 4999.0;

  auto txn = db_->Begin();
  auto abort = [&](Status s) {
    txn.Abort();
    return s;
  };
  int home = cluster->PartitionForKey({Value(w)});
  auto h = txn.On(home);

  UnifiedTable* warehouse = txn.table(home, "warehouse");
  Row wrow;
  bool found = false;
  S2_RETURN_NOT_OK(warehouse->LookupByIndex(h.id, h.read_ts, {0}, {Value(w)},
                                            [&](const Row& row,
                                                const RowLocation&) {
                                              wrow = row;
                                              found = true;
                                              return false;
                                            }));
  if (!found) return abort(Status::NotFound("warehouse missing"));
  Row new_wrow = wrow;
  new_wrow[3] = Value(wrow[3].as_double() + amount);
  Status s = warehouse->UpdateByKey(h.id, h.read_ts, {Value(w)}, new_wrow);
  if (!s.ok()) return abort(s);

  UnifiedTable* district = txn.table(home, "district");
  Row drow;
  found = false;
  S2_RETURN_NOT_OK(district->LookupByIndex(
      h.id, h.read_ts, {0, 1}, {Value(w), Value(d)},
      [&](const Row& row, const RowLocation&) {
        drow = row;
        found = true;
        return false;
      }));
  if (!found) return abort(Status::NotFound("district missing"));
  Row new_drow = drow;
  new_drow[4] = Value(drow[4].as_double() + amount);
  s = district->UpdateByKey(h.id, h.read_ts, {Value(w), Value(d)}, new_drow);
  if (!s.ok()) return abort(s);

  // Customer on (possibly remote) partition; 60% by last name, 40% by id.
  int cust_part = cluster->PartitionForKey({Value(c_w)});
  auto hc = txn.On(cust_part);
  UnifiedTable* customer = txn.table(cust_part, "customer");
  Row crow;
  if (rng_.Uniform(100) < 60) {
    static const char* kLastNames[] = {"BAR",   "OUGHT", "ABLE",  "PRI",
                                       "PRES",  "ESE",   "ANTI",  "CALLY",
                                       "ATION", "EING"};
    int64_t c = RandomCustomer();
    std::string last = kLastNames[(c - 1) % 10];
    last += kLastNames[((c - 1) / 10) % 10];
    // Collect the matches and take the middle one, per the spec.
    std::vector<Row> matches;
    S2_RETURN_NOT_OK(customer->LookupByIndex(
        hc.id, hc.read_ts, {0, 1, 3}, {Value(c_w), Value(c_d), Value(last)},
        [&](const Row& row, const RowLocation&) {
          matches.push_back(row);
          return true;
        }));
    if (matches.empty()) return abort(Status::NotFound("no such last name"));
    std::sort(matches.begin(), matches.end(),
              [](const Row& a, const Row& b) {
                return a[4].as_string() < b[4].as_string();
              });
    crow = matches[matches.size() / 2];
  } else {
    int64_t c = RandomCustomer();
    found = false;
    S2_RETURN_NOT_OK(customer->LookupByIndex(
        hc.id, hc.read_ts, {0, 1, 2}, {Value(c_w), Value(c_d), Value(c)},
        [&](const Row& row, const RowLocation&) {
          crow = row;
          found = true;
          return false;
        }));
    if (!found) return abort(Status::NotFound("customer missing"));
  }
  Row new_crow = crow;
  new_crow[5] = Value(crow[5].as_double() - amount);
  new_crow[6] = Value(crow[6].as_double() + amount);
  new_crow[7] = Value(crow[7].as_int() + 1);
  s = customer->UpdateByKey(hc.id, hc.read_ts,
                            {crow[0], crow[1], crow[2]}, new_crow);
  if (!s.ok()) return abort(s);

  UnifiedTable* history = txn.table(home, "history");
  auto r = history->InsertRows(
      h.id, h.read_ts,
      {{Value(w), Value(d), crow[2], Value(amount), Value("payment")}});
  if (!r.ok()) return abort(r.status());
  return txn.Commit();
}

Status Worker::OrderStatus() {
  Cluster* cluster = db_->cluster();
  int64_t w = RandomWarehouse();
  int64_t d = RandomDistrict();
  int64_t c = RandomCustomer();
  int home = cluster->PartitionForKey({Value(w)});
  auto txn = db_->Begin();
  auto h = txn.On(home);

  // Most recent order of the customer.
  UnifiedTable* orders = txn.table(home, "orders");
  int64_t last_o_id = -1;
  Status s = orders->LookupByIndex(
      h.id, h.read_ts, {0, 1, 3}, {Value(w), Value(d), Value(c)},
      [&](const Row& row, const RowLocation&) {
        last_o_id = std::max(last_o_id, row[2].as_int());
        return true;
      });
  if (!s.ok()) {
    txn.Abort();
    return s;
  }
  if (last_o_id >= 0) {
    UnifiedTable* orderline = txn.table(home, "orderline");
    int lines = 0;
    s = orderline->LookupByIndex(h.id, h.read_ts, {0, 1, 2},
                                 {Value(w), Value(d), Value(last_o_id)},
                                 [&](const Row&, const RowLocation&) {
                                   ++lines;
                                   return true;
                                 });
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
  }
  return txn.Commit();
}

Status Worker::Delivery() {
  Cluster* cluster = db_->cluster();
  int64_t w = RandomWarehouse();
  int home = cluster->PartitionForKey({Value(w)});
  auto txn = db_->Begin();
  auto abort = [&](Status s) {
    txn.Abort();
    return s;
  };
  auto h = txn.On(home);
  UnifiedTable* neworder = txn.table(home, "neworder");
  UnifiedTable* orders = txn.table(home, "orders");
  UnifiedTable* orderline = txn.table(home, "orderline");
  UnifiedTable* customer = txn.table(home, "customer");
  int64_t carrier = rng_.UniformRange(1, 10);

  for (int64_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
    // Oldest undelivered order for this district.
    int64_t o_id = -1;
    S2_RETURN_NOT_OK(neworder->LookupByIndex(
        h.id, h.read_ts, {0, 1}, {Value(w), Value(d)},
        [&](const Row& row, const RowLocation&) {
          int64_t candidate = row[2].as_int();
          if (o_id < 0 || candidate < o_id) o_id = candidate;
          return true;
        }));
    if (o_id < 0) continue;  // district fully delivered
    Status s = neworder->DeleteByKey(h.id, h.read_ts,
                                     {Value(w), Value(d), Value(o_id)});
    if (!s.ok()) return abort(s);

    Row orow;
    bool found = false;
    S2_RETURN_NOT_OK(orders->LookupByIndex(
        h.id, h.read_ts, {0, 1, 2}, {Value(w), Value(d), Value(o_id)},
        [&](const Row& row, const RowLocation&) {
          orow = row;
          found = true;
          return false;
        }));
    if (!found) return abort(Status::NotFound("order missing"));
    Row new_orow = orow;
    new_orow[5] = Value(carrier);
    s = orders->UpdateByKey(h.id, h.read_ts,
                            {Value(w), Value(d), Value(o_id)}, new_orow);
    if (!s.ok()) return abort(s);

    double total = 0;
    std::vector<Row> lines;
    S2_RETURN_NOT_OK(orderline->LookupByIndex(
        h.id, h.read_ts, {0, 1, 2}, {Value(w), Value(d), Value(o_id)},
        [&](const Row& row, const RowLocation&) {
          lines.push_back(row);
          return true;
        }));
    for (const Row& line : lines) {
      total += line[7].as_double();
      Row new_line = line;
      new_line[8] = Value(int64_t{20260701});
      s = orderline->UpdateByKey(
          h.id, h.read_ts, {line[0], line[1], line[2], line[3]}, new_line);
      if (!s.ok()) return abort(s);
    }

    int64_t c = orow[3].as_int();
    Row crow;
    found = false;
    S2_RETURN_NOT_OK(customer->LookupByIndex(
        h.id, h.read_ts, {0, 1, 2}, {Value(w), Value(d), Value(c)},
        [&](const Row& row, const RowLocation&) {
          crow = row;
          found = true;
          return false;
        }));
    if (!found) return abort(Status::NotFound("customer missing"));
    Row new_crow = crow;
    new_crow[5] = Value(crow[5].as_double() + total);
    s = customer->UpdateByKey(h.id, h.read_ts,
                              {Value(w), Value(d), Value(c)}, new_crow);
    if (!s.ok()) return abort(s);
  }
  return txn.Commit();
}

Status Worker::StockLevel() {
  Cluster* cluster = db_->cluster();
  int64_t w = RandomWarehouse();
  int64_t d = RandomDistrict();
  int64_t threshold = rng_.UniformRange(10, 20);
  int home = cluster->PartitionForKey({Value(w)});
  auto txn = db_->Begin();
  auto h = txn.On(home);

  UnifiedTable* district = txn.table(home, "district");
  int64_t next_o_id = 0;
  S2_RETURN_NOT_OK(district->LookupByIndex(
      h.id, h.read_ts, {0, 1}, {Value(w), Value(d)},
      [&](const Row& row, const RowLocation&) {
        next_o_id = row[5].as_int();
        return false;
      }));

  // Items in the last 20 orders with stock below the threshold.
  UnifiedTable* orderline = txn.table(home, "orderline");
  UnifiedTable* stock = txn.table(home, "stock");
  std::set<int64_t> low_items;
  for (int64_t o = std::max<int64_t>(1, next_o_id - 20); o < next_o_id; ++o) {
    std::vector<int64_t> items;
    Status s = orderline->LookupByIndex(
        h.id, h.read_ts, {0, 1, 2}, {Value(w), Value(d), Value(o)},
        [&](const Row& row, const RowLocation&) {
          items.push_back(row[4].as_int());
          return true;
        });
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
    for (int64_t i_id : items) {
      Status ls = stock->LookupByIndex(
          h.id, h.read_ts, {0, 1}, {Value(w), Value(i_id)},
          [&](const Row& row, const RowLocation&) {
            if (row[2].as_int() < threshold) low_items.insert(i_id);
            return false;
          });
      if (!ls.ok()) {
        txn.Abort();
        return ls;
      }
    }
  }
  return txn.Commit();
}

}  // namespace tpcc
}  // namespace s2
