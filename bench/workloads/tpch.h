#ifndef S2_BENCH_WORKLOADS_TPCH_H_
#define S2_BENCH_WORKLOADS_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/plan.h"

namespace s2 {
namespace tpch {

/// Dates are stored as int64 YYYYMMDD (e.g. 19940101). Calendar-correct
/// day arithmetic for interval predicates.
int64_t DateAddDays(int64_t yyyymmdd, int days);
int64_t DateAddMonths(int64_t yyyymmdd, int months);
inline int64_t DateYear(int64_t yyyymmdd) { return yyyymmdd / 10000; }

/// Creates the eight TPC-H tables with production-style sort keys,
/// indexes, and shard keys.
Status CreateTables(Database* db);

/// Loads scale factor `sf` (SF 1.0 == 6M lineitems; use 0.01-0.05 for
/// laptop-scale runs). Deterministic per seed.
Status Load(Database* db, double sf, uint64_t seed = 7);

/// Runs query q (1-22) against a single-partition database and returns its
/// result rows. Queries are hand-built physical plans over the plan
/// operators (the paper's evaluation uses the standard TPC-H queries; a
/// SQL front end is out of scope).
Result<std::vector<Row>> RunQuery(Database* db, int q);

/// Number of rows the generator produced for a table at `sf`.
int64_t RowsFor(const std::string& table, double sf);

}  // namespace tpch
}  // namespace s2

#endif  // S2_BENCH_WORKLOADS_TPCH_H_
