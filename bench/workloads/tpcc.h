#ifndef S2_BENCH_WORKLOADS_TPCC_H_
#define S2_BENCH_WORKLOADS_TPCC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "engine/database.h"

namespace s2 {
namespace tpcc {

/// Scaled-down TPC-C sizing. The official spec uses 10 districts, 3000
/// customers per district, and 100k items; the defaults here shrink the
/// per-warehouse population so laptop-scale runs finish quickly while
/// keeping the access skew and transaction mix of the spec. The reported
/// metric is still new-order transactions per minute (tpmC).
struct Scale {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 300;
  int items = 1000;
  int initial_orders_per_district = 30;
};

/// Creates the nine TPC-C tables, sharded by warehouse id, with the
/// indexes, sort keys, and unique keys a production deployment would use.
Status CreateTables(Database* db);

/// Loads the initial population per `scale`. Deterministic for a seed.
Status Load(Database* db, const Scale& scale, uint64_t seed = 42);

/// Result counters for a driver run.
struct Counters {
  std::atomic<uint64_t> new_orders{0};
  std::atomic<uint64_t> payments{0};
  std::atomic<uint64_t> order_status{0};
  std::atomic<uint64_t> deliveries{0};
  std::atomic<uint64_t> stock_levels{0};
  std::atomic<uint64_t> aborts{0};

  uint64_t total() const {
    return new_orders + payments + order_status + deliveries + stock_levels;
  }
};

/// One TPC-C terminal: runs the standard transaction mix (45% new-order,
/// 43% payment, 4% each order-status / delivery / stock-level) against the
/// database. Thread-safe to run many workers concurrently.
class Worker {
 public:
  Worker(Database* db, const Scale& scale, uint64_t seed, Counters* counters);

  /// Runs exactly one randomly chosen transaction (with retry-on-abort
  /// left to the caller; an aborted transaction counts in
  /// counters->aborts and is not retried here).
  Status RunOne();

  // Individual transactions (exposed for tests).
  Status NewOrder();
  Status Payment();
  Status OrderStatus();
  Status Delivery();
  Status StockLevel();

 private:
  int64_t RandomWarehouse() { return rng_.UniformRange(1, scale_.warehouses); }
  int64_t RandomDistrict() {
    return rng_.UniformRange(1, scale_.districts_per_warehouse);
  }
  int64_t RandomCustomer() {
    return rng_.NonUniform(1023, 1, scale_.customers_per_district);
  }
  int64_t RandomItem() { return rng_.NonUniform(8191, 1, scale_.items); }

  Database* db_;
  Scale scale_;
  Rng rng_;
  Counters* counters_;
};

}  // namespace tpcc
}  // namespace s2

#endif  // S2_BENCH_WORKLOADS_TPCC_H_
