#include <algorithm>
#include <map>

#include "workloads/tpch.h"
#include "workloads/tpch_schema.h"

namespace s2 {
namespace tpch {

namespace {

namespace l = lineitem;
namespace o = orders;
namespace c = customer;
namespace p = part;
namespace ps = partsupp;
namespace su = supplier;
namespace na = nation;
namespace re = region;

using FNode = std::unique_ptr<FilterNode>;
using FList = std::vector<std::unique_ptr<FilterNode>>;

ExprPtr Revenue(int ep_col, int disc_col) {
  return Mul(Col(ep_col), Sub(Lit(Value(1.0)), Col(disc_col)));
}

/// Runs one plan against the (single-partition) database.
Result<std::vector<Row>> RunSingle(Database* db, PlanPtr plan) {
  PlanNode* raw = plan.get();
  return db->Query([&]() -> PlanPtr {
    (void)raw;
    return std::move(plan);
  });
}

PlanPtr Scan(const std::string& table, std::vector<int> cols,
             FNode filter = nullptr, ExprPtr post = nullptr) {
  return std::make_unique<ScanOp>(table, std::move(cols), std::move(filter),
                                  std::move(post));
}

PlanPtr Join(PlanPtr left, PlanPtr right, std::vector<ExprPtr> lk,
             std::vector<ExprPtr> rk, size_t right_width,
             JoinType type = JoinType::kInner) {
  return std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                      std::move(lk), std::move(rk), type,
                                      right_width);
}

PlanPtr Agg(PlanPtr child, std::vector<ExprPtr> keys,
            std::vector<AggSpec> aggs) {
  return std::make_unique<AggregateOp>(std::move(child), std::move(keys),
                                       std::move(aggs));
}

PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys));
}

PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs) {
  return std::make_unique<ProjectOp>(std::move(child), std::move(exprs));
}

PlanPtr Limit(PlanPtr child, size_t n) {
  return std::make_unique<LimitOp>(std::move(child), n);
}

PlanPtr Filter(PlanPtr child, ExprPtr pred) {
  return std::make_unique<FilterOp>(std::move(child), std::move(pred));
}

FNode AndF(FList children) { return FilterAnd(std::move(children)); }

ExprPtr Year(ExprPtr date) {
  return Div(date, Lit(Value(int64_t{10000})));
}

// --- Q1: pricing summary report ---
Result<std::vector<Row>> Q1(Database* db) {
  // l_shipdate <= date '1998-12-01' - interval '90' day
  auto scan = Scan("lineitem",
                   {l::kQuantity, l::kExtendedPrice, l::kDiscount, l::kTax,
                    l::kReturnFlag, l::kLineStatus},
                   FilterCmp(l::kShipDate, CmpOp::kLe,
                             Value(DateAddDays(19981201, -90))));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(0)});                       // sum_qty
  aggs.push_back({AggKind::kSum, Col(1)});                       // sum_base
  aggs.push_back({AggKind::kSum, Revenue(1, 2)});                // sum_disc
  aggs.push_back({AggKind::kSum, Mul(Revenue(1, 2),
                                     Add(Lit(Value(1.0)), Col(3)))});
  aggs.push_back({AggKind::kAvg, Col(0)});
  aggs.push_back({AggKind::kAvg, Col(1)});
  aggs.push_back({AggKind::kAvg, Col(2)});
  aggs.push_back({AggKind::kCount, nullptr});
  auto plan = Sort(Agg(std::move(scan), {Col(4), Col(5)}, std::move(aggs)),
                   {{Col(0), false}, {Col(1), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q2: minimum cost supplier ---
Result<std::vector<Row>> Q2(Database* db) {
  auto eu_suppliers = [&] {
    // supplier x nation x region(EUROPE):
    // out: s_suppkey, s_name, s_address, s_phone, s_acctbal, n_name
    auto nr = Join(Scan("nation", {na::kNationKey, na::kName, na::kRegionKey}),
                   Scan("region", {re::kRegionKey},
                        FilterEq(re::kName, Value("EUROPE"))),
                   {Col(2)}, {Col(0)}, 1);
    auto sj = Join(Scan("supplier",
                        {su::kSuppKey, su::kName, su::kAddress, su::kPhone,
                         su::kAcctBal, su::kNationKey}),
                   std::move(nr), {Col(5)}, {Col(0)}, 4);
    // cols: 0..5 supplier, 6 n_nationkey, 7 n_name, 8 n_regionkey, 9 r_key
    return Project(std::move(sj), {Col(0), Col(1), Col(2), Col(3), Col(4),
                                   Col(7)});
  };
  // partsupp joined with EU suppliers: ps_partkey, ps_supplycost, supplier...
  auto ps_eu = [&] {
    auto join = Join(Scan("partsupp", {ps::kPartKey, ps::kSuppKey,
                                       ps::kSupplyCost}),
                     eu_suppliers(), {Col(1)}, {Col(0)}, 6);
    // cols: 0 partkey, 1 suppkey, 2 cost, 3.. supplier cols (6)
    return join;
  };
  // Filtered parts: size = 15, type like '%BRASS' (post filter runs on the
  // projected row, so p_type is projected).
  auto parts_f = Scan("part", {p::kPartKey, p::kMfgr, p::kType},
                      FilterEq(p::kSize, Value(int64_t{15})),
                      Like(Col(2), "%BRASS"));

  // candidates: part x ps_eu
  auto cand = Join(std::move(parts_f), ps_eu(), {Col(0)}, {Col(0)}, 9);
  // cols: 0 p_partkey, 1 p_mfgr, 2 p_type, 3 ps_partkey, 4 ps_suppkey,
  //       5 ps_cost, 6 s_suppkey, 7 s_name, 8 s_address, 9 s_phone,
  //       10 s_acctbal, 11 n_name
  S2_ASSIGN_OR_RETURN(std::vector<Row> cand_rows,
                      RunSingle(db, std::move(cand)));
  // min cost per part, then keep rows at the min.
  std::map<int64_t, double> min_cost;
  for (const Row& row : cand_rows) {
    int64_t key = row[0].as_int();
    double cost = row[5].as_double();
    auto it = min_cost.find(key);
    if (it == min_cost.end() || cost < it->second) min_cost[key] = cost;
  }
  std::vector<Row> out;
  for (const Row& row : cand_rows) {
    if (row[5].as_double() == min_cost[row[0].as_int()]) {
      // s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone
      out.push_back({row[10], row[7], row[11], row[0], row[1], row[8],
                     row[9]});
    }
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    int cmp = a[0].Compare(b[0]);
    if (cmp != 0) return cmp > 0;  // s_acctbal desc
    cmp = a[2].Compare(b[2]);
    if (cmp != 0) return cmp < 0;
    cmp = a[1].Compare(b[1]);
    if (cmp != 0) return cmp < 0;
    return a[3].Compare(b[3]) < 0;
  });
  if (out.size() > 100) out.resize(100);
  return out;
}

// --- Q3: shipping priority ---
Result<std::vector<Row>> Q3(Database* db) {
  auto cust = Scan("customer", {c::kCustKey},
                   FilterEq(c::kMktSegment, Value("BUILDING")));
  auto ord = Scan("orders",
                  {o::kOrderKey, o::kCustKey, o::kOrderDate, o::kShipPriority},
                  FilterCmp(o::kOrderDate, CmpOp::kLt,
                            Value(int64_t{19950315})));
  auto co = Join(std::move(ord), std::move(cust), {Col(1)}, {Col(0)}, 1);
  auto line = Scan("lineitem",
                   {l::kOrderKey, l::kExtendedPrice, l::kDiscount},
                   FilterCmp(l::kShipDate, CmpOp::kGt,
                             Value(int64_t{19950315})));
  auto joined = Join(std::move(line), std::move(co), {Col(0)}, {Col(0)}, 5);
  // cols: 0 l_orderkey, 1 ep, 2 disc, 3 o_orderkey, 4 o_custkey,
  //       5 o_orderdate, 6 o_shippriority, 7 c_custkey
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Revenue(1, 2)});
  auto plan = Limit(
      Sort(Agg(std::move(joined), {Col(0), Col(5), Col(6)}, std::move(aggs)),
           {{Col(3), true}, {Col(1), false}}),
      10);
  return RunSingle(db, std::move(plan));
}

// --- Q4: order priority checking ---
Result<std::vector<Row>> Q4(Database* db) {
  auto ord = Scan("orders", {o::kOrderKey, o::kOrderPriority},
                  FilterBetween(o::kOrderDate, Value(int64_t{19930701}),
                                Value(DateAddDays(
                                    DateAddMonths(19930701, 3), -1))));
  // EXISTS lineitem with commitdate < receiptdate -> semi join.
  auto late = Scan("lineitem",
                   {l::kOrderKey, l::kCommitDate, l::kReceiptDate}, nullptr,
                   Lt(Col(1), Col(2)));
  auto semi = Join(std::move(ord), std::move(late), {Col(0)}, {Col(0)}, 3,
                   JoinType::kSemi);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  auto plan = Sort(Agg(std::move(semi), {Col(1)}, std::move(aggs)),
                   {{Col(0), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q5: local supplier volume ---
Result<std::vector<Row>> Q5(Database* db) {
  auto nr = Join(Scan("nation", {na::kNationKey, na::kName, na::kRegionKey}),
                 Scan("region", {re::kRegionKey},
                      FilterEq(re::kName, Value("ASIA"))),
                 {Col(2)}, {Col(0)}, 1);
  // suppliers in ASIA: s_suppkey, s_nationkey, n_name
  auto supp =
      Join(Scan("supplier", {su::kSuppKey, su::kNationKey}), std::move(nr),
           {Col(1)}, {Col(0)}, 4);
  auto supp_p = Project(std::move(supp), {Col(0), Col(1), Col(3)});
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey},
                  FilterBetween(o::kOrderDate, Value(int64_t{19940101}),
                                Value(int64_t{19941231})));
  auto cust = Scan("customer", {c::kCustKey, c::kNationKey});
  auto co = Join(std::move(ord), std::move(cust), {Col(1)}, {Col(0)}, 2);
  // cols: 0 o_orderkey, 1 o_custkey, 2 c_custkey, 3 c_nationkey
  auto line = Scan("lineitem", {l::kOrderKey, l::kSuppKey, l::kExtendedPrice,
                                l::kDiscount});
  auto lco = Join(std::move(line), std::move(co), {Col(0)}, {Col(0)}, 4);
  // cols: 0 l_ok, 1 l_sk, 2 ep, 3 disc, 4 o_ok, 5 o_ck, 6 c_ck, 7 c_nk
  // join with ASIA suppliers on (suppkey, c_nationkey == s_nationkey)
  auto full = Join(std::move(lco), std::move(supp_p), {Col(1), Col(7)},
                   {Col(0), Col(1)}, 3);
  // cols: ... 8 s_suppkey, 9 s_nationkey, 10 n_name
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Revenue(2, 3)});
  auto plan = Sort(Agg(std::move(full), {Col(10)}, std::move(aggs)),
                   {{Col(1), true}});
  return RunSingle(db, std::move(plan));
}

// --- Q6: forecasting revenue change ---
Result<std::vector<Row>> Q6(Database* db) {
  FList conj;
  conj.push_back(FilterBetween(l::kShipDate, Value(int64_t{19940101}),
                               Value(int64_t{19941231})));
  conj.push_back(FilterBetween(l::kDiscount, Value(0.05), Value(0.07)));
  conj.push_back(FilterCmp(l::kQuantity, CmpOp::kLt, Value(24.0)));
  auto scan = Scan("lineitem", {l::kExtendedPrice, l::kDiscount},
                   AndF(std::move(conj)));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Mul(Col(0), Col(1))});
  return RunSingle(db, Agg(std::move(scan), {}, std::move(aggs)));
}

// --- Q7: volume shipping ---
Result<std::vector<Row>> Q7(Database* db) {
  auto n_f = [](const char* a, const char* b) {
    FList disj;
    disj.push_back(FilterEq(na::kName, Value(a)));
    disj.push_back(FilterEq(na::kName, Value(b)));
    return FilterOr(std::move(disj));
  };
  auto supp = Join(Scan("supplier", {su::kSuppKey, su::kNationKey}),
                   Scan("nation", {na::kNationKey, na::kName},
                        n_f("FRANCE", "GERMANY")),
                   {Col(1)}, {Col(0)}, 2);
  auto supp_p = Project(std::move(supp), {Col(0), Col(3)});  // suppkey,n1name
  auto cust = Join(Scan("customer", {c::kCustKey, c::kNationKey}),
                   Scan("nation", {na::kNationKey, na::kName},
                        n_f("FRANCE", "GERMANY")),
                   {Col(1)}, {Col(0)}, 2);
  auto cust_p = Project(std::move(cust), {Col(0), Col(3)});  // custkey,n2name
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey});
  auto oc = Join(std::move(ord), std::move(cust_p), {Col(1)}, {Col(0)}, 2);
  // 0 o_ok, 1 o_ck, 2 c_ck, 3 n2name
  auto line = Scan("lineitem",
                   {l::kOrderKey, l::kSuppKey, l::kExtendedPrice, l::kDiscount,
                    l::kShipDate},
                   FilterBetween(l::kShipDate, Value(int64_t{19950101}),
                                 Value(int64_t{19961231})));
  auto lo = Join(std::move(line), std::move(oc), {Col(0)}, {Col(0)}, 4);
  // 0 l_ok,1 l_sk,2 ep,3 d,4 ship,5 o_ok,6 o_ck,7 c_ck,8 n2name
  auto full = Join(std::move(lo), std::move(supp_p), {Col(1)}, {Col(0)}, 2);
  // ... 9 s_suppkey, 10 n1name
  // (n1=FRANCE and n2=GERMANY) or (n1=GERMANY and n2=FRANCE)
  auto filtered = Filter(
      std::move(full),
      Or(And(Eq(Col(10), Lit(Value("FRANCE"))),
             Eq(Col(8), Lit(Value("GERMANY")))),
         And(Eq(Col(10), Lit(Value("GERMANY"))),
             Eq(Col(8), Lit(Value("FRANCE"))))));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Revenue(2, 3)});
  auto plan = Sort(Agg(std::move(filtered),
                       {Col(10), Col(8), Year(Col(4))}, std::move(aggs)),
                   {{Col(0), false}, {Col(1), false}, {Col(2), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q8: national market share ---
Result<std::vector<Row>> Q8(Database* db) {
  auto parts = Scan("part", {p::kPartKey},
                    FilterEq(p::kType, Value("ECONOMY ANODIZED STEEL")));
  auto line = Scan("lineitem", {l::kOrderKey, l::kPartKey, l::kSuppKey,
                                l::kExtendedPrice, l::kDiscount});
  auto lp = Join(std::move(line), std::move(parts), {Col(1)}, {Col(0)}, 1);
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey, o::kOrderDate},
                  FilterBetween(o::kOrderDate, Value(int64_t{19950101}),
                                Value(int64_t{19961231})));
  auto lpo = Join(std::move(lp), std::move(ord), {Col(0)}, {Col(0)}, 3);
  // 0 l_ok,1 l_pk,2 l_sk,3 ep,4 d,5 p_pk,6 o_ok,7 o_ck,8 o_date
  auto nr = Join(Scan("nation", {na::kNationKey, na::kRegionKey}),
                 Scan("region", {re::kRegionKey},
                      FilterEq(re::kName, Value("AMERICA"))),
                 {Col(1)}, {Col(0)}, 1);
  auto cust = Join(Scan("customer", {c::kCustKey, c::kNationKey}),
                   Project(std::move(nr), {Col(0)}), {Col(1)}, {Col(0)}, 1);
  auto lpoc =
      Join(std::move(lpo), Project(std::move(cust), {Col(0)}), {Col(7)},
           {Col(0)}, 1);
  // ... 9 c_custkey
  auto supp_nation = Join(Scan("supplier", {su::kSuppKey, su::kNationKey}),
                          Scan("nation", {na::kNationKey, na::kName}),
                          {Col(1)}, {Col(0)}, 2);
  auto full = Join(std::move(lpoc),
                   Project(std::move(supp_nation), {Col(0), Col(3)}),
                   {Col(2)}, {Col(0)}, 2);
  // ... 10 s_suppkey, 11 nation_name
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum,
                  CaseWhen({Eq(Col(11), Lit(Value("BRAZIL"))),
                            Revenue(3, 4), Lit(Value(0.0))})});
  aggs.push_back({AggKind::kSum, Revenue(3, 4)});
  auto grouped = Agg(std::move(full), {Year(Col(8))}, std::move(aggs));
  auto share = Project(std::move(grouped),
                       {Col(0), Div(Col(1), Col(2))});
  return RunSingle(db, Sort(std::move(share), {{Col(0), false}}));
}

// --- Q9: product type profit measure ---
Result<std::vector<Row>> Q9(Database* db) {
  auto parts = Scan("part", {p::kPartKey}, nullptr, nullptr);
  parts = Scan("part", {p::kPartKey, p::kName}, nullptr,
               Like(Col(1), "%green%"));
  auto line = Scan("lineitem", {l::kOrderKey, l::kPartKey, l::kSuppKey,
                                l::kQuantity, l::kExtendedPrice,
                                l::kDiscount});
  auto lp = Join(std::move(line), Project(std::move(parts), {Col(0)}),
                 {Col(1)}, {Col(0)}, 1);
  // 0 ok,1 pk,2 sk,3 qty,4 ep,5 d,6 p_pk
  auto lps = Join(std::move(lp),
                  Scan("partsupp", {ps::kPartKey, ps::kSuppKey,
                                    ps::kSupplyCost}),
                  {Col(1), Col(2)}, {Col(0), Col(1)}, 3);
  // ... 7 ps_pk, 8 ps_sk, 9 ps_cost
  auto lpso = Join(std::move(lps),
                   Scan("orders", {o::kOrderKey, o::kOrderDate}), {Col(0)},
                   {Col(0)}, 2);
  // ... 10 o_ok, 11 o_date
  auto supp_nation = Join(Scan("supplier", {su::kSuppKey, su::kNationKey}),
                          Scan("nation", {na::kNationKey, na::kName}),
                          {Col(1)}, {Col(0)}, 2);
  auto full = Join(std::move(lpso),
                   Project(std::move(supp_nation), {Col(0), Col(3)}),
                   {Col(2)}, {Col(0)}, 2);
  // ... 12 s_sk, 13 n_name
  // profit = ep*(1-d) - ps_cost*qty
  std::vector<AggSpec> aggs;
  aggs.push_back(
      {AggKind::kSum, Sub(Revenue(4, 5), Mul(Col(9), Col(3)))});
  auto plan = Sort(Agg(std::move(full), {Col(13), Year(Col(11))},
                       std::move(aggs)),
                   {{Col(0), false}, {Col(1), true}});
  return RunSingle(db, std::move(plan));
}

// --- Q10: returned item reporting ---
Result<std::vector<Row>> Q10(Database* db) {
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey},
                  FilterBetween(o::kOrderDate, Value(int64_t{19931001}),
                                Value(DateAddDays(
                                    DateAddMonths(19931001, 3), -1))));
  auto line = Scan("lineitem",
                   {l::kOrderKey, l::kExtendedPrice, l::kDiscount},
                   FilterEq(l::kReturnFlag, Value("R")));
  auto lo = Join(std::move(line), std::move(ord), {Col(0)}, {Col(0)}, 2);
  // 0 l_ok,1 ep,2 d,3 o_ok,4 o_ck
  auto cust = Scan("customer", {c::kCustKey, c::kName, c::kAcctBal, c::kPhone,
                                c::kNationKey, c::kAddress, c::kComment});
  auto loc = Join(std::move(lo), std::move(cust), {Col(4)}, {Col(0)}, 7);
  // ... 5 c_ck,6 c_name,7 bal,8 phone,9 nk,10 addr,11 comment
  auto full = Join(std::move(loc),
                   Scan("nation", {na::kNationKey, na::kName}), {Col(9)},
                   {Col(0)}, 2);
  // ... 12 n_nk, 13 n_name
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Revenue(1, 2)});
  auto plan = Limit(
      Sort(Agg(std::move(full),
               {Col(5), Col(6), Col(7), Col(8), Col(13), Col(10), Col(11)},
               std::move(aggs)),
           {{Col(7), true}}),
      20);
  return RunSingle(db, std::move(plan));
}

// --- Q11: important stock identification ---
Result<std::vector<Row>> Q11(Database* db) {
  auto german_ps = [&] {
    auto supp = Join(Scan("supplier", {su::kSuppKey, su::kNationKey}),
                     Scan("nation", {na::kNationKey},
                          FilterEq(na::kName, Value("GERMANY"))),
                     {Col(1)}, {Col(0)}, 1);
    return Join(Scan("partsupp", {ps::kPartKey, ps::kSuppKey, ps::kAvailQty,
                                  ps::kSupplyCost}),
                Project(std::move(supp), {Col(0)}), {Col(1)}, {Col(0)}, 1);
  };
  // Total value (scalar subquery).
  std::vector<AggSpec> total_aggs;
  total_aggs.push_back({AggKind::kSum, Mul(Col(3), Col(2))});
  S2_ASSIGN_OR_RETURN(std::vector<Row> total_rows,
                      RunSingle(db, Agg(german_ps(), {}, std::move(total_aggs))));
  double threshold = total_rows.empty() || total_rows[0][0].is_null()
                         ? 0.0
                         : total_rows[0][0].as_double() * 0.0001;

  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Mul(Col(3), Col(2))});
  auto grouped = Agg(german_ps(), {Col(0)}, std::move(aggs));
  auto having = Filter(std::move(grouped),
                       Gt(Col(1), Lit(Value(threshold))));
  return RunSingle(db, Sort(std::move(having), {{Col(1), true}}));
}

// --- Q12: shipping modes and order priority ---
Result<std::vector<Row>> Q12(Database* db) {
  FList conj;
  conj.push_back(FilterIn(l::kShipMode, {Value("MAIL"), Value("SHIP")}));
  conj.push_back(FilterBetween(l::kReceiptDate, Value(int64_t{19940101}),
                               Value(int64_t{19941231})));
  auto line = Scan("lineitem",
                   {l::kOrderKey, l::kShipMode, l::kShipDate, l::kCommitDate,
                    l::kReceiptDate},
                   AndF(std::move(conj)),
                   And(Lt(Col(3), Col(4)), Lt(Col(2), Col(3))));
  auto joined = Join(std::move(line),
                     Scan("orders", {o::kOrderKey, o::kOrderPriority}),
                     {Col(0)}, {Col(0)}, 2);
  // ... 5 o_ok, 6 priority
  auto is_high = Or(Eq(Col(6), Lit(Value("1-URGENT"))),
                    Eq(Col(6), Lit(Value("2-HIGH"))));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum,
                  CaseWhen({is_high, Lit(Value(int64_t{1})),
                            Lit(Value(int64_t{0}))})});
  aggs.push_back({AggKind::kSum,
                  CaseWhen({Or(Eq(Col(6), Lit(Value("1-URGENT"))),
                               Eq(Col(6), Lit(Value("2-HIGH")))),
                            Lit(Value(int64_t{0})),
                            Lit(Value(int64_t{1}))})});
  auto plan = Sort(Agg(std::move(joined), {Col(1)}, std::move(aggs)),
                   {{Col(0), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q13: customer distribution ---
Result<std::vector<Row>> Q13(Database* db) {
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey, o::kComment}, nullptr,
                  Not(Like(Col(2), "%special%requests%")));
  auto cust = Scan("customer", {c::kCustKey});
  auto lj = Join(std::move(cust), std::move(ord), {Col(0)}, {Col(1)}, 3,
                 JoinType::kLeft);
  // 0 c_ck, 1 o_ok (null when no order), 2 o_ck, 3 comment
  std::vector<AggSpec> count_orders;
  count_orders.push_back({AggKind::kCount, Col(1)});  // non-null orderkeys
  auto per_customer = Agg(std::move(lj), {Col(0)}, std::move(count_orders));
  std::vector<AggSpec> dist;
  dist.push_back({AggKind::kCount, nullptr});
  auto plan = Sort(Agg(std::move(per_customer), {Col(1)}, std::move(dist)),
                   {{Col(1), true}, {Col(0), true}});
  return RunSingle(db, std::move(plan));
}

// --- Q14: promotion effect ---
Result<std::vector<Row>> Q14(Database* db) {
  auto line = Scan("lineitem",
                   {l::kPartKey, l::kExtendedPrice, l::kDiscount},
                   FilterBetween(l::kShipDate, Value(int64_t{19950901}),
                                 Value(DateAddDays(
                                     DateAddMonths(19950901, 1), -1))));
  auto joined = Join(std::move(line), Scan("part", {p::kPartKey, p::kType}),
                     {Col(0)}, {Col(0)}, 2);
  // ... 3 p_pk, 4 type
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum,
                  CaseWhen({Like(Col(4), "PROMO%"), Revenue(1, 2),
                            Lit(Value(0.0))})});
  aggs.push_back({AggKind::kSum, Revenue(1, 2)});
  auto grouped = Agg(std::move(joined), {}, std::move(aggs));
  auto ratio = Project(std::move(grouped),
                       {Div(Mul(Lit(Value(100.0)), Col(0)), Col(1))});
  return RunSingle(db, std::move(ratio));
}

// --- Q15: top supplier ---
Result<std::vector<Row>> Q15(Database* db) {
  auto revenue_view = [&] {
    auto line = Scan("lineitem",
                     {l::kSuppKey, l::kExtendedPrice, l::kDiscount},
                     FilterBetween(l::kShipDate, Value(int64_t{19960101}),
                                   Value(DateAddDays(
                                       DateAddMonths(19960101, 3), -1))));
    std::vector<AggSpec> aggs;
    aggs.push_back({AggKind::kSum, Revenue(1, 2)});
    return Agg(std::move(line), {Col(0)}, std::move(aggs));
  };
  S2_ASSIGN_OR_RETURN(std::vector<Row> revenues, RunSingle(db, revenue_view()));
  double max_rev = 0;
  for (const Row& row : revenues) {
    if (!row[1].is_null()) max_rev = std::max(max_rev, row[1].as_double());
  }
  std::vector<Row> top;
  for (const Row& row : revenues) {
    if (!row[1].is_null() && row[1].as_double() >= max_rev * (1 - 1e-9)) {
      top.push_back(row);
    }
  }
  auto joined = Join(Scan("supplier", {su::kSuppKey, su::kName, su::kAddress,
                                       su::kPhone}),
                     std::make_unique<ValuesOp>(top), {Col(0)}, {Col(0)}, 2);
  auto plan = Sort(Project(std::move(joined),
                           {Col(0), Col(1), Col(2), Col(3), Col(5)}),
                   {{Col(0), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q16: parts/supplier relationship ---
Result<std::vector<Row>> Q16(Database* db) {
  FList size_in;
  for (int64_t s : {49, 14, 23, 45, 19, 3, 36, 9}) {
    size_in.push_back(FilterEq(p::kSize, Value(s)));
  }
  FList conj;
  conj.push_back(FilterOr(std::move(size_in)));
  auto parts = Scan("part", {p::kPartKey, p::kBrand, p::kType, p::kSize},
                    AndF(std::move(conj)),
                    And(Ne(Col(1), Lit(Value("Brand#45"))),
                        Not(Like(Col(2), "MEDIUM POLISHED%"))));
  auto joined =
      Join(Scan("partsupp", {ps::kPartKey, ps::kSuppKey}), std::move(parts),
           {Col(0)}, {Col(0)}, 4);
  // 0 ps_pk, 1 ps_sk, 2 p_pk, 3 brand, 4 type, 5 size
  auto complainers = Scan("supplier", {su::kSuppKey, su::kComment}, nullptr,
                          Like(Col(1), "%Customer%Complaints%"));
  auto clean = Join(std::move(joined), std::move(complainers), {Col(1)},
                    {Col(0)}, 2, JoinType::kAnti);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCountDistinct, Col(1)});
  auto plan = Sort(Agg(std::move(clean), {Col(3), Col(4), Col(5)},
                       std::move(aggs)),
                   {{Col(3), true}, {Col(0), false}, {Col(1), false},
                    {Col(2), false}});
  return RunSingle(db, std::move(plan));
}

// --- Q17: small-quantity-order revenue ---
Result<std::vector<Row>> Q17(Database* db) {
  FList conj;
  conj.push_back(FilterEq(p::kBrand, Value("Brand#23")));
  conj.push_back(FilterEq(p::kContainer, Value("MED BOX")));
  auto parts = Scan("part", {p::kPartKey}, AndF(std::move(conj)));
  auto line = Scan("lineitem", {l::kPartKey, l::kQuantity,
                                l::kExtendedPrice});
  auto joined = Join(std::move(line), std::move(parts), {Col(0)}, {Col(0)}, 1);
  S2_ASSIGN_OR_RETURN(std::vector<Row> rows, RunSingle(db, std::move(joined)));
  // avg quantity per part
  std::map<int64_t, std::pair<double, int64_t>> avg;
  for (const Row& row : rows) {
    auto& [sum, count] = avg[row[0].as_int()];
    sum += row[1].as_double();
    ++count;
  }
  double total = 0;
  for (const Row& row : rows) {
    auto& [sum, count] = avg[row[0].as_int()];
    if (row[1].as_double() < 0.2 * sum / static_cast<double>(count)) {
      total += row[2].as_double();
    }
  }
  return std::vector<Row>{{Value(total / 7.0)}};
}

// --- Q18: large volume customer ---
Result<std::vector<Row>> Q18(Database* db) {
  std::vector<AggSpec> qty_sum;
  qty_sum.push_back({AggKind::kSum, Col(1)});
  auto per_order = Agg(Scan("lineitem", {l::kOrderKey, l::kQuantity}),
                       {Col(0)}, std::move(qty_sum));
  auto big = Filter(std::move(per_order),
                    Gt(Col(1), Lit(Value(300.0))));
  auto ord = Scan("orders", {o::kOrderKey, o::kCustKey, o::kOrderDate,
                             o::kTotalPrice});
  auto ob = Join(std::move(ord), std::move(big), {Col(0)}, {Col(0)}, 2);
  // 0 o_ok,1 o_ck,2 date,3 totalprice,4 l_ok,5 sumqty
  auto full = Join(std::move(ob), Scan("customer", {c::kCustKey, c::kName}),
                   {Col(1)}, {Col(0)}, 2);
  // ... 6 c_ck, 7 c_name
  auto plan = Limit(Sort(Project(std::move(full),
                                 {Col(7), Col(6), Col(0), Col(2), Col(3),
                                  Col(5)}),
                         {{Col(4), true}, {Col(3), false}}),
                    100);
  return RunSingle(db, std::move(plan));
}

// --- Q19: discounted revenue ---
Result<std::vector<Row>> Q19(Database* db) {
  auto line = Scan("lineitem",
                   {l::kPartKey, l::kQuantity, l::kExtendedPrice, l::kDiscount,
                    l::kShipInstruct, l::kShipMode},
                   FilterIn(l::kShipMode, {Value("AIR"), Value("REG AIR")}),
                   Eq(Col(4), Lit(Value("DELIVER IN PERSON"))));
  auto joined = Join(std::move(line),
                     Scan("part", {p::kPartKey, p::kBrand, p::kContainer,
                                   p::kSize}),
                     {Col(0)}, {Col(0)}, 4);
  // 0 l_pk,1 qty,2 ep,3 d,4 instr,5 mode,6 p_pk,7 brand,8 container,9 size
  auto branch = [&](const char* brand, std::vector<const char*> containers,
                    double qlo, double qhi, int64_t size_hi) {
    ExprPtr in_container = Lit(Value(int64_t{0}));
    for (const char* cont : containers) {
      in_container = Or(std::move(in_container),
                        Eq(Col(8), Lit(Value(cont))));
    }
    return And(And(Eq(Col(7), Lit(Value(brand))), std::move(in_container)),
               And(And(Ge(Col(1), Lit(Value(qlo))),
                       Le(Col(1), Lit(Value(qhi)))),
                   And(Ge(Col(9), Lit(Value(int64_t{1}))),
                       Le(Col(9), Lit(Value(size_hi))))));
  };
  auto pred = Or(branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"},
                        1, 11, 5),
                 Or(branch("Brand#23",
                           {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10,
                           20, 10),
                    branch("Brand#34",
                           {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30,
                           15)));
  auto filtered = Filter(std::move(joined), std::move(pred));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Revenue(2, 3)});
  return RunSingle(db, Agg(std::move(filtered), {}, std::move(aggs)));
}

// --- Q20: potential part promotion ---
Result<std::vector<Row>> Q20(Database* db) {
  // Sum of 1994 lineitem quantity per (partkey, suppkey).
  std::vector<AggSpec> qty_sum;
  qty_sum.push_back({AggKind::kSum, Col(2)});
  auto shipped = Agg(Scan("lineitem", {l::kPartKey, l::kSuppKey, l::kQuantity},
                          FilterBetween(l::kShipDate, Value(int64_t{19940101}),
                                        Value(int64_t{19941231}))),
                     {Col(0), Col(1)}, std::move(qty_sum));
  // Forest parts.
  auto forest = Scan("part", {p::kPartKey, p::kName}, nullptr,
                     Like(Col(1), "forest%"));
  auto ps_forest = Join(Scan("partsupp", {ps::kPartKey, ps::kSuppKey,
                                          ps::kAvailQty}),
                        Project(std::move(forest), {Col(0)}), {Col(0)},
                        {Col(0)}, 1);
  // 0 ps_pk,1 ps_sk,2 avail,3 p_pk
  auto with_shipped = Join(std::move(ps_forest), std::move(shipped),
                           {Col(0), Col(1)}, {Col(0), Col(1)}, 3);
  // ... 4 l_pk, 5 l_sk, 6 sumqty
  auto qualifying = Filter(std::move(with_shipped),
                           Gt(Col(2), Mul(Lit(Value(0.5)), Col(6))));
  // Distinct supplier keys.
  std::vector<AggSpec> none;
  auto supp_keys = Agg(std::move(qualifying), {Col(1)}, std::move(none));
  // Suppliers in CANADA with those keys.
  auto canada = Join(Scan("supplier", {su::kSuppKey, su::kName, su::kAddress,
                                       su::kNationKey}),
                     Scan("nation", {na::kNationKey},
                          FilterEq(na::kName, Value("CANADA"))),
                     {Col(3)}, {Col(0)}, 1);
  auto result = Join(Project(std::move(canada), {Col(0), Col(1), Col(2)}),
                     std::move(supp_keys), {Col(0)}, {Col(0)}, 1,
                     JoinType::kSemi);
  return RunSingle(db,
                   Sort(Project(std::move(result), {Col(1), Col(2)}),
                        {{Col(0), false}}));
}

// --- Q21: suppliers who kept orders waiting ---
Result<std::vector<Row>> Q21(Database* db) {
  // Per order: distinct suppliers overall and distinct late suppliers.
  std::vector<AggSpec> all_supp;
  all_supp.push_back({AggKind::kCountDistinct, Col(1)});
  auto suppliers_per_order =
      Agg(Scan("lineitem", {l::kOrderKey, l::kSuppKey}), {Col(0)},
          std::move(all_supp));
  std::vector<AggSpec> late_supp;
  late_supp.push_back({AggKind::kCountDistinct, Col(1)});
  auto late_per_order =
      Agg(Scan("lineitem",
               {l::kOrderKey, l::kSuppKey, l::kCommitDate, l::kReceiptDate},
               nullptr, Gt(Col(3), Col(2))),
          {Col(0)}, std::move(late_supp));

  // Candidate late lineitems from Saudi suppliers on F orders.
  auto saudi = Join(Scan("supplier", {su::kSuppKey, su::kName,
                                      su::kNationKey}),
                    Scan("nation", {na::kNationKey},
                         FilterEq(na::kName, Value("SAUDI ARABIA"))),
                    {Col(2)}, {Col(0)}, 1);
  auto late_lines = Scan(
      "lineitem", {l::kOrderKey, l::kSuppKey, l::kCommitDate, l::kReceiptDate},
      nullptr, Gt(Col(3), Col(2)));
  auto ls = Join(std::move(late_lines),
                 Project(std::move(saudi), {Col(0), Col(1)}), {Col(1)},
                 {Col(0)}, 2);
  // 0 l_ok,1 l_sk,2 commit,3 receipt,4 s_sk,5 s_name
  auto lso = Join(std::move(ls),
                  Scan("orders", {o::kOrderKey},
                       FilterEq(o::kOrderStatus, Value("F"))),
                  {Col(0)}, {Col(0)}, 1);
  // ... 6 o_ok
  auto with_all = Join(std::move(lso), std::move(suppliers_per_order),
                       {Col(0)}, {Col(0)}, 2);
  // ... 7 ok, 8 count_all
  auto with_late = Join(std::move(with_all), std::move(late_per_order),
                        {Col(0)}, {Col(0)}, 2);
  // ... 9 ok, 10 count_late
  // exists other supplier (count_all >= 2), no other late supplier
  // (count_late == 1).
  auto filtered = Filter(std::move(with_late),
                         And(Ge(Col(8), Lit(Value(int64_t{2}))),
                             Eq(Col(10), Lit(Value(int64_t{1})))));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  auto plan = Limit(Sort(Agg(std::move(filtered), {Col(5)}, std::move(aggs)),
                         {{Col(1), true}, {Col(0), false}}),
                    100);
  return RunSingle(db, std::move(plan));
}

// --- Q22: global sales opportunity ---
Result<std::vector<Row>> Q22(Database* db) {
  std::vector<Value> codes = {Value("13"), Value("31"), Value("23"),
                              Value("29"), Value("30"), Value("18"),
                              Value("17")};
  auto code_pred = [&](int phone_col) {
    ExprPtr pred = Lit(Value(int64_t{0}));
    for (const Value& code : codes) {
      pred = Or(std::move(pred),
                Eq(Substr(Col(phone_col), 1, 2), Lit(code)));
    }
    return pred;
  };
  // Scalar: avg acctbal of positive-balance customers in those codes.
  std::vector<AggSpec> avg_aggs;
  avg_aggs.push_back({AggKind::kAvg, Col(0)});
  auto avg_plan =
      Agg(Scan("customer", {c::kAcctBal, c::kPhone},
               FilterCmp(c::kAcctBal, CmpOp::kGt, Value(0.0)), code_pred(1)),
          {}, std::move(avg_aggs));
  S2_ASSIGN_OR_RETURN(std::vector<Row> avg_rows,
                      RunSingle(db, std::move(avg_plan)));
  double avg_bal = avg_rows.empty() || avg_rows[0][0].is_null()
                       ? 0.0
                       : avg_rows[0][0].as_double();

  auto cust = Scan("customer", {c::kCustKey, c::kPhone, c::kAcctBal}, nullptr,
                   code_pred(1));
  auto rich = Filter(std::move(cust), Gt(Col(2), Lit(Value(avg_bal))));
  auto no_orders = Join(std::move(rich), Scan("orders", {o::kCustKey}),
                        {Col(0)}, {Col(0)}, 1, JoinType::kAnti);
  auto with_code = Project(std::move(no_orders),
                           {Substr(Col(1), 1, 2), Col(2)});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kCount, nullptr});
  aggs.push_back({AggKind::kSum, Col(1)});
  auto plan = Sort(Agg(std::move(with_code), {Col(0)}, std::move(aggs)),
                   {{Col(0), false}});
  return RunSingle(db, std::move(plan));
}

}  // namespace

Result<std::vector<Row>> RunQuery(Database* db, int q) {
  switch (q) {
    case 1: return Q1(db);
    case 2: return Q2(db);
    case 3: return Q3(db);
    case 4: return Q4(db);
    case 5: return Q5(db);
    case 6: return Q6(db);
    case 7: return Q7(db);
    case 8: return Q8(db);
    case 9: return Q9(db);
    case 10: return Q10(db);
    case 11: return Q11(db);
    case 12: return Q12(db);
    case 13: return Q13(db);
    case 14: return Q14(db);
    case 15: return Q15(db);
    case 16: return Q16(db);
    case 17: return Q17(db);
    case 18: return Q18(db);
    case 19: return Q19(db);
    case 20: return Q20(db);
    case 21: return Q21(db);
    case 22: return Q22(db);
    default:
      return Status::InvalidArgument("no such TPC-H query");
  }
}

}  // namespace tpch
}  // namespace s2
