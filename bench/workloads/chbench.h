#ifndef S2_BENCH_WORKLOADS_CHBENCH_H_
#define S2_BENCH_WORKLOADS_CHBENCH_H_

#include <atomic>
#include <cstdint>

#include "engine/database.h"
#include "workloads/tpcc.h"

namespace s2 {
namespace chbench {

/// CH-benCHmark (paper Section 6, Table 3): TPC-C transactions and TPC-H
/// style analytics running simultaneously over the *same* TPC-C tables.
/// The analytical side uses a representative subset of the CH query set,
/// adapted to the TPC-C schema and decomposed per partition (tables are
/// co-sharded by warehouse, so the scatter/gather split is exact).

/// Runs one analytical query (1..kNumQueries) against the masters
/// (workspace < 0) or a read-only workspace, returning the result rows.
Result<std::vector<Row>> RunAnalyticalQuery(Database* db, int q,
                                            int workspace = -1);
constexpr int kNumQueries = 5;

struct MixedCounters {
  tpcc::Counters tpcc;
  std::atomic<uint64_t> analytical_queries{0};
  std::atomic<uint64_t> analytical_errors{0};
};

/// Runs `duration_ms` of mixed load: `tw` transactional worker threads
/// (TPC-C mix) and `aw` analytical worker threads cycling through the CH
/// query set. Analytical workers target `analytics_workspace` when >= 0
/// (Table 3 test cases 4/5), else the primary workspace (test case 3).
void RunMixed(Database* db, const tpcc::Scale& scale, int tw, int aw,
              int analytics_workspace, int duration_ms,
              MixedCounters* counters, uint64_t seed = 99);

}  // namespace chbench
}  // namespace s2

#endif  // S2_BENCH_WORKLOADS_CHBENCH_H_
