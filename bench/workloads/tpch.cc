#include "workloads/tpch.h"

#include <algorithm>

#include "common/rng.h"
#include "workloads/tpch_schema.h"

namespace s2 {
namespace tpch {

namespace {

const int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysIn(int y, int m) {
  return m == 2 && IsLeap(y) ? 29 : kDaysInMonth[m - 1];
}

}  // namespace

int64_t DateAddDays(int64_t yyyymmdd, int days) {
  int y = static_cast<int>(yyyymmdd / 10000);
  int m = static_cast<int>((yyyymmdd / 100) % 100);
  int d = static_cast<int>(yyyymmdd % 100);
  d += days;
  while (d > DaysIn(y, m)) {
    d -= DaysIn(y, m);
    if (++m > 12) {
      m = 1;
      ++y;
    }
  }
  while (d < 1) {
    if (--m < 1) {
      m = 12;
      --y;
    }
    d += DaysIn(y, m);
  }
  return int64_t{y} * 10000 + m * 100 + d;
}

int64_t DateAddMonths(int64_t yyyymmdd, int months) {
  int y = static_cast<int>(yyyymmdd / 10000);
  int m = static_cast<int>((yyyymmdd / 100) % 100);
  int d = static_cast<int>(yyyymmdd % 100);
  int total = (y * 12 + (m - 1)) + months;
  y = total / 12;
  m = total % 12 + 1;
  d = std::min(d, DaysIn(y, m));
  return int64_t{y} * 10000 + m * 100 + d;
}

Status CreateTables(Database* db) {
  {
    TableOptions t;
    t.schema = Schema({{"r_regionkey", DataType::kInt64},
                       {"r_name", DataType::kString}});
    t.unique_key = {0};
    t.indexes = {{0}};
    S2_RETURN_NOT_OK(db->CreateTable("region", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"n_nationkey", DataType::kInt64},
                       {"n_name", DataType::kString},
                       {"n_regionkey", DataType::kInt64}});
    t.unique_key = {0};
    t.indexes = {{0}};
    S2_RETURN_NOT_OK(db->CreateTable("nation", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"s_suppkey", DataType::kInt64},
                       {"s_name", DataType::kString},
                       {"s_address", DataType::kString},
                       {"s_nationkey", DataType::kInt64},
                       {"s_phone", DataType::kString},
                       {"s_acctbal", DataType::kDouble},
                       {"s_comment", DataType::kString}});
    t.unique_key = {0};
    t.indexes = {{0}};
    S2_RETURN_NOT_OK(db->CreateTable("supplier", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"c_custkey", DataType::kInt64},
                       {"c_name", DataType::kString},
                       {"c_address", DataType::kString},
                       {"c_nationkey", DataType::kInt64},
                       {"c_phone", DataType::kString},
                       {"c_acctbal", DataType::kDouble},
                       {"c_mktsegment", DataType::kString},
                       {"c_comment", DataType::kString}});
    t.unique_key = {0};
    t.indexes = {{0}};
    S2_RETURN_NOT_OK(db->CreateTable("customer", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"p_partkey", DataType::kInt64},
                       {"p_name", DataType::kString},
                       {"p_mfgr", DataType::kString},
                       {"p_brand", DataType::kString},
                       {"p_type", DataType::kString},
                       {"p_size", DataType::kInt64},
                       {"p_container", DataType::kString},
                       {"p_retailprice", DataType::kDouble}});
    t.unique_key = {0};
    t.indexes = {{0}};
    S2_RETURN_NOT_OK(db->CreateTable("part", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"ps_partkey", DataType::kInt64},
                       {"ps_suppkey", DataType::kInt64},
                       {"ps_availqty", DataType::kInt64},
                       {"ps_supplycost", DataType::kDouble}});
    t.unique_key = {0, 1};
    t.indexes = {{0}, {1}};
    S2_RETURN_NOT_OK(db->CreateTable("partsupp", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"o_orderkey", DataType::kInt64},
                       {"o_custkey", DataType::kInt64},
                       {"o_orderstatus", DataType::kString},
                       {"o_totalprice", DataType::kDouble},
                       {"o_orderdate", DataType::kInt64},
                       {"o_orderpriority", DataType::kString},
                       {"o_clerk", DataType::kString},
                       {"o_shippriority", DataType::kInt64},
                       {"o_comment", DataType::kString}});
    t.unique_key = {0};
    t.indexes = {{0}, {1}};
    t.sort_key = {4};  // by order date: the classic warehouse sort key
    S2_RETURN_NOT_OK(db->CreateTable("orders", t, {0}));
  }
  {
    TableOptions t;
    t.schema = Schema({{"l_orderkey", DataType::kInt64},
                       {"l_partkey", DataType::kInt64},
                       {"l_suppkey", DataType::kInt64},
                       {"l_linenumber", DataType::kInt64},
                       {"l_quantity", DataType::kDouble},
                       {"l_extendedprice", DataType::kDouble},
                       {"l_discount", DataType::kDouble},
                       {"l_tax", DataType::kDouble},
                       {"l_returnflag", DataType::kString},
                       {"l_linestatus", DataType::kString},
                       {"l_shipdate", DataType::kInt64},
                       {"l_commitdate", DataType::kInt64},
                       {"l_receiptdate", DataType::kInt64},
                       {"l_shipinstruct", DataType::kString},
                       {"l_shipmode", DataType::kString}});
    t.unique_key = {0, 3};
    t.indexes = {{0}, {1}, {2}};
    t.sort_key = {10};  // by ship date
    S2_RETURN_NOT_OK(db->CreateTable("lineitem", t, {0}));
  }
  return Status::OK();
}

int64_t RowsFor(const std::string& table, double sf) {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return std::max<int64_t>(5, int64_t(10000 * sf));
  if (table == "customer") return std::max<int64_t>(10, int64_t(150000 * sf));
  if (table == "part") return std::max<int64_t>(10, int64_t(200000 * sf));
  if (table == "partsupp") return 4 * RowsFor("part", sf);
  if (table == "orders") return std::max<int64_t>(10, int64_t(1500000 * sf));
  if (table == "lineitem") return 4 * RowsFor("orders", sf);  // approx
  return 0;
}

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Region of each nation, per the spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kTypeSyl1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                           "PROMO"};
const char* kTypeSyl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                           "BRUSHED"};
const char* kTypeSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyl1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyl2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                                "CAN", "DRUM"};
const char* kNameWords[] = {"almond", "antique", "aquamarine", "azure",
                            "beige", "bisque", "black", "blanched", "blue",
                            "blush", "brown", "burlywood", "chartreuse",
                            "chocolate", "coral", "cornflower", "cream",
                            "cyan", "dark", "deep", "dim", "dodger",
                            "drab", "firebrick", "floral", "forest",
                            "frosted", "gainsboro", "ghost", "goldenrod",
                            "green", "grey", "honeydew", "hot", "indian",
                            "ivory", "khaki", "lace", "lavender", "lawn"};

std::string Phone(Rng* rng, int64_t nation) {
  char buf[20];
  snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
           static_cast<int>(10 + nation),
           static_cast<int>(rng->UniformRange(100, 999)),
           static_cast<int>(rng->UniformRange(100, 999)),
           static_cast<int>(rng->UniformRange(1000, 9999)));
  return buf;
}

int64_t RandomDate(Rng* rng) {
  // Uniform between 1992-01-01 and 1998-08-02 as days-from-epoch-ish.
  int days = static_cast<int>(rng->Uniform(2405));
  return DateAddDays(19920101, days);
}

Status InsertBatched(Database* db, const std::string& table,
                     std::vector<Row>* rows, bool force) {
  if (rows->empty()) return Status::OK();
  if (!force && rows->size() < 2000) return Status::OK();
  S2_RETURN_NOT_OK(db->Insert(table, *rows));
  rows->clear();
  return Status::OK();
}

}  // namespace

Status Load(Database* db, double sf, uint64_t seed) {
  Rng rng(seed);
  // Region & nation.
  {
    std::vector<Row> rows;
    for (int64_t r = 0; r < 5; ++r) rows.push_back({Value(r), Value(kRegions[r])});
    S2_RETURN_NOT_OK(db->Insert("region", rows));
    rows.clear();
    for (int64_t n = 0; n < 25; ++n) {
      rows.push_back({Value(n), Value(kNations[n]),
                      Value(int64_t{kNationRegion[n]})});
    }
    S2_RETURN_NOT_OK(db->Insert("nation", rows));
  }

  int64_t num_suppliers = RowsFor("supplier", sf);
  {
    std::vector<Row> rows;
    for (int64_t s = 1; s <= num_suppliers; ++s) {
      int64_t nation = rng.UniformRange(0, 24);
      // ~0.05% of suppliers have complaint comments (Q16).
      std::string comment = rng.Uniform(200) == 0
                                ? "wake Customer askjdhle Complaints sleep"
                                : rng.NextString(20, 40);
      rows.push_back({Value(s),
                      Value("Supplier#" + std::to_string(s)),
                      Value(rng.NextString(10, 30)), Value(nation),
                      Value(Phone(&rng, nation)),
                      Value(rng.NextDouble() * 11000.0 - 1000.0),
                      Value(std::move(comment))});
      S2_RETURN_NOT_OK(InsertBatched(db, "supplier", &rows, false));
    }
    S2_RETURN_NOT_OK(InsertBatched(db, "supplier", &rows, true));
  }

  int64_t num_customers = RowsFor("customer", sf);
  {
    std::vector<Row> rows;
    for (int64_t c = 1; c <= num_customers; ++c) {
      int64_t nation = rng.UniformRange(0, 24);
      std::string comment = rng.Uniform(50) == 0
                                ? "blithely special requests sleep furiously"
                                : rng.NextString(20, 40);
      rows.push_back({Value(c), Value("Customer#" + std::to_string(c)),
                      Value(rng.NextString(10, 30)), Value(nation),
                      Value(Phone(&rng, nation)),
                      Value(rng.NextDouble() * 11000.0 - 1000.0),
                      Value(kSegments[rng.Uniform(5)]),
                      Value(std::move(comment))});
      S2_RETURN_NOT_OK(InsertBatched(db, "customer", &rows, false));
    }
    S2_RETURN_NOT_OK(InsertBatched(db, "customer", &rows, true));
  }

  int64_t num_parts = RowsFor("part", sf);
  {
    std::vector<Row> part_rows;
    std::vector<Row> ps_rows;
    for (int64_t p = 1; p <= num_parts; ++p) {
      std::string type = std::string(kTypeSyl1[rng.Uniform(6)]) + " " +
                         kTypeSyl2[rng.Uniform(5)] + " " +
                         kTypeSyl3[rng.Uniform(5)];
      std::string name = std::string(kNameWords[rng.Uniform(40)]) + " " +
                         kNameWords[rng.Uniform(40)] + " " +
                         kNameWords[rng.Uniform(40)];
      std::string container = std::string(kContainerSyl1[rng.Uniform(5)]) +
                              " " + kContainerSyl2[rng.Uniform(8)];
      char brand[16];
      snprintf(brand, sizeof(brand), "Brand#%d%d",
               static_cast<int>(rng.UniformRange(1, 5)),
               static_cast<int>(rng.UniformRange(1, 5)));
      part_rows.push_back({Value(p), Value(std::move(name)),
                           Value("Manufacturer#" +
                                 std::to_string(rng.UniformRange(1, 5))),
                           Value(brand), Value(std::move(type)),
                           Value(rng.UniformRange(1, 50)),
                           Value(std::move(container)),
                           Value(900.0 + (p % 1000))});
      for (int64_t i = 0; i < 4; ++i) {
        int64_t supp = (p + i * (num_suppliers / 4 + 1)) % num_suppliers + 1;
        ps_rows.push_back({Value(p), Value(supp),
                           Value(rng.UniformRange(1, 9999)),
                           Value(1.0 + rng.NextDouble() * 999.0)});
      }
      S2_RETURN_NOT_OK(InsertBatched(db, "part", &part_rows, false));
      S2_RETURN_NOT_OK(InsertBatched(db, "partsupp", &ps_rows, false));
    }
    S2_RETURN_NOT_OK(InsertBatched(db, "part", &part_rows, true));
    S2_RETURN_NOT_OK(InsertBatched(db, "partsupp", &ps_rows, true));
  }

  int64_t num_orders = RowsFor("orders", sf);
  {
    std::vector<Row> order_rows;
    std::vector<Row> line_rows;
    for (int64_t o = 1; o <= num_orders; ++o) {
      int64_t cust = rng.UniformRange(1, num_customers);
      int64_t order_date = RandomDate(&rng);
      int64_t lines = rng.UniformRange(1, 7);
      double total = 0;
      std::string comment = rng.Uniform(100) == 0
                                ? "pending special requests haggle"
                                : rng.NextString(15, 30);
      for (int64_t l = 1; l <= lines; ++l) {
        int64_t part = rng.UniformRange(1, num_parts);
        int64_t supp = (part + (l % 4) * (num_suppliers / 4 + 1)) %
                           num_suppliers + 1;
        double qty = static_cast<double>(rng.UniformRange(1, 50));
        double price = qty * (900.0 + (part % 1000)) / 10.0;
        double discount = rng.UniformRange(0, 10) / 100.0;
        double tax = rng.UniformRange(0, 8) / 100.0;
        int64_t ship = DateAddDays(order_date, 1 + static_cast<int>(rng.Uniform(121)));
        int64_t commit = DateAddDays(order_date, 30 + static_cast<int>(rng.Uniform(61)));
        int64_t receipt = DateAddDays(ship, 1 + static_cast<int>(rng.Uniform(30)));
        const char* returnflag =
            receipt <= 19950617 ? (rng.Bernoulli(0.5) ? "R" : "A") : "N";
        const char* linestatus = ship > 19950617 ? "O" : "F";
        total += price * (1 + tax) * (1 - discount);
        line_rows.push_back(
            {Value(o), Value(part), Value(supp), Value(l), Value(qty),
             Value(price), Value(discount), Value(tax), Value(returnflag),
             Value(linestatus), Value(ship), Value(commit), Value(receipt),
             Value(kInstructs[rng.Uniform(4)]),
             Value(kShipModes[rng.Uniform(7)])});
      }
      order_rows.push_back(
          {Value(o), Value(cust),
           Value(order_date > 19950617 ? "O" : "F"), Value(total),
           Value(order_date), Value(kPriorities[rng.Uniform(5)]),
           Value("Clerk#" + std::to_string(rng.UniformRange(1, 1000))),
           Value(int64_t{0}), Value(std::move(comment))});
      S2_RETURN_NOT_OK(InsertBatched(db, "orders", &order_rows, false));
      S2_RETURN_NOT_OK(InsertBatched(db, "lineitem", &line_rows, false));
    }
    S2_RETURN_NOT_OK(InsertBatched(db, "orders", &order_rows, true));
    S2_RETURN_NOT_OK(InsertBatched(db, "lineitem", &line_rows, true));
  }
  return db->Maintain();
}

}  // namespace tpch
}  // namespace s2
