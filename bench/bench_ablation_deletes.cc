// Ablation: delete bit-vectors vs tombstone merge-on-read (paper Section
// 4, "no merge-based reconciliation during reads").
//
// S2DB marks deletes in a per-segment bit vector that a scan applies with
// one bit test per row. The common LSM alternative (RocksDB/Cassandra
// tombstones) reconciles every row against newer levels during reads. We
// measure our scan at increasing delete fractions and, as the tombstone
// stand-in, the same scan paying a per-row hash-set probe against a
// deleted-key set — the per-row reconciliation cost the paper avoids.

#include <unordered_set>

#include "bench_util.h"
#include "engine/database.h"
#include "exec/table_scanner.h"

namespace s2 {
namespace {

constexpr int64_t kRows = 200000;

double ScanRowsPerSec(UnifiedTable* table, Partition* partition,
                      const std::unordered_set<int64_t>* tombstones,
                      int repeats) {
  double total_rows = 0;
  bench::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    ScanOptions options;
    options.projection = {0};
    TableScanner scanner(table, options);
    auto h = partition->Begin();
    (void)scanner.Scan(h.id, h.read_ts, [&](const ScanBatch& batch) {
      if (tombstones != nullptr) {
        // Tombstone merge-on-read stand-in: per-row reconciliation probe.
        size_t survivors = 0;
        for (size_t i = 0; i < batch.num_rows; ++i) {
          if (tombstones->count(batch.columns[0].IntAt(i)) == 0) ++survivors;
        }
        total_rows += static_cast<double>(survivors);
      } else {
        total_rows += static_cast<double>(batch.num_rows);
      }
      return true;
    });
    partition->EndRead(h.id);
  }
  return total_rows / timer.Seconds();
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  int repeats = bench::EnvInt("S2_BENCH_REPEATS", 5);
  bench::PrintHeader(
      "Ablation: delete bit-vectors vs tombstone merge-on-read (scan "
      "rows/sec)");

  printf("%-16s %18s %22s %10s\n", "deleted rows", "bit-vector scan",
         "tombstone-probe scan", "ratio");
  for (double delete_fraction : {0.0, 0.05, 0.2}) {
    bench::ScratchDir dir("s2-del-ablation");
    DatabaseOptions opts;
    opts.dir = dir.path();
    opts.auto_maintain = false;
    auto db = Database::Open(opts);
    TableOptions t;
    t.schema = Schema({{"id", DataType::kInt64}, {"v", DataType::kInt64}});
    t.indexes = {{0}};
    t.unique_key = {0};
    t.segment_rows = 65536;
    t.flush_threshold = 65536;
    if (!db.ok() || !(*db)->CreateTable("t", t, {0}).ok()) return 1;
    Partition* partition = (*db)->cluster()->partition(0);
    UnifiedTable* table = *partition->GetTable("t");
    for (int64_t i = 0; i < kRows; i += 4096) {
      std::vector<Row> batch;
      for (int64_t j = i; j < i + 4096 && j < kRows; ++j) {
        batch.push_back({Value(j), Value(j * 7)});
      }
      auto h = partition->Begin();
      if (!table->InsertRows(h.id, h.read_ts, batch).ok()) return 1;
      if (!partition->Commit(h.id).ok()) return 1;
      if (table->NeedsFlush()) (void)table->FlushRowstore();
    }
    (void)table->FlushRowstore();

    // Delete a fraction (spread uniformly) through move transactions; the
    // tombstone set mirrors it for the stand-in scan.
    std::unordered_set<int64_t> tombstones;
    int64_t to_delete =
        static_cast<int64_t>(delete_fraction * static_cast<double>(kRows));
    int64_t stride = to_delete > 0 ? kRows / to_delete : 0;
    for (int64_t d = 0; d < to_delete; ++d) {
      int64_t id = d * stride;
      auto h = partition->Begin();
      if (table->DeleteByKey(h.id, h.read_ts, {Value(id)}).ok()) {
        (void)partition->Commit(h.id);
        tombstones.insert(id);
      } else {
        partition->Abort(h.id);
      }
    }
    (void)table->FlushRowstore();
    // Reclaim the moved rows' level-0 shells so the scan measures the
    // columnstore path, then warm the cache.
    table->Vacuum(partition->txns()->oldest_active());
    (void)ScanRowsPerSec(table, partition, nullptr, 1);

    double bitvec = ScanRowsPerSec(table, partition, nullptr, repeats);
    double tombstone = ScanRowsPerSec(table, partition, &tombstones, repeats);
    printf("%-16lld %18.0f %22.0f %9.2fx\n",
           static_cast<long long>(tombstones.size()), bitvec, tombstone,
           tombstone > 0 ? bitvec / tombstone : 0);
  }
  printf("\nShape: bit-vector scans keep full columnstore scan speed at any "
         "delete fraction; per-row reconciliation taxes every row (the "
         "paper's 8.6 cycles/row TPC-H Q1 budget leaves no room for it).\n");
  return 0;
}
