// Ablation: seekable column encodings (paper Section 2.1.2) — "the column
// encodings are each implemented to be seekable to allow efficient reads
// at a specific row offset without decoding all the rows". Measures point
// reads via ColumnReader::ValueAt against decoding the whole column, per
// encoding.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "encoding/encoding.h"

namespace s2 {
namespace {

constexpr uint32_t kRows = 65536;

std::unique_ptr<ColumnReader> Build(Encoding encoding, DataType type) {
  Rng rng(17);
  ColumnVector col(type);
  for (uint32_t i = 0; i < kRows; ++i) {
    if (type == DataType::kInt64) {
      switch (encoding) {
        case Encoding::kRle:
          col.AppendInt(static_cast<int64_t>(i / 100));
          break;
        case Encoding::kDict:
          col.AppendInt(static_cast<int64_t>(rng.Uniform(32)));
          break;
        default:
          col.AppendInt(static_cast<int64_t>(rng.Uniform(1000000)));
      }
    } else {
      if (encoding == Encoding::kDict) {
        col.AppendString("val-" + std::to_string(rng.Uniform(64)));
      } else {
        col.AppendString(rng.NextString(8, 40));
      }
    }
  }
  auto encoded = EncodeColumn(col, encoding);
  auto reader =
      OpenColumn(std::make_shared<const std::string>(std::move(*encoded)));
  return std::move(*reader);
}

void BM_Seek(benchmark::State& state, Encoding encoding, DataType type) {
  auto reader = Build(encoding, type);
  Rng rng(3);
  for (auto _ : state) {
    Value v = reader->ValueAt(static_cast<uint32_t>(rng.Uniform(kRows)));
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(EncodingName(encoding));
}

void BM_FullDecode(benchmark::State& state, Encoding encoding,
                   DataType type) {
  auto reader = Build(encoding, type);
  for (auto _ : state) {
    ColumnVector out(type);
    reader->DecodeAll(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(EncodingName(encoding));
}

BENCHMARK_CAPTURE(BM_Seek, int_plain, Encoding::kPlain, DataType::kInt64);
BENCHMARK_CAPTURE(BM_Seek, int_bitpack, Encoding::kBitPack, DataType::kInt64);
BENCHMARK_CAPTURE(BM_Seek, int_rle, Encoding::kRle, DataType::kInt64);
BENCHMARK_CAPTURE(BM_Seek, int_dict, Encoding::kDict, DataType::kInt64);
BENCHMARK_CAPTURE(BM_Seek, str_plain, Encoding::kPlain, DataType::kString);
BENCHMARK_CAPTURE(BM_Seek, str_dict, Encoding::kDict, DataType::kString);
BENCHMARK_CAPTURE(BM_Seek, str_lz, Encoding::kLz, DataType::kString);
BENCHMARK_CAPTURE(BM_FullDecode, int_bitpack, Encoding::kBitPack,
                  DataType::kInt64);
BENCHMARK_CAPTURE(BM_FullDecode, str_lz, Encoding::kLz, DataType::kString);

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  printf("\nAblation: seekable encodings (paper Section 2.1.2). A point "
         "read (BM_Seek) must cost microseconds or less — NOT a full "
         "column decode (BM_FullDecode) — for the columnstore to serve "
         "OLTP point queries. LZ seeks decompress one 16KB block, not the "
         "column.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
