#ifndef S2_TXN_TXN_MANAGER_H_
#define S2_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "common/types.h"

namespace s2 {

/// Partition-local transaction bookkeeping: txn ids, snapshot (read)
/// timestamps, commit timestamps, and the watermarks that drive garbage
/// collection. Implements partition-local snapshot isolation (paper Section
/// 2.1.2: "reads need to use partition-local snapshot isolation to
/// guarantee a consistent view of the table").
///
/// Visibility watermark: a new snapshot only sees commit timestamps whose
/// stamping has fully finished, so a scan never observes half of a commit.
class TxnManager {
 public:
  struct TxnHandle {
    TxnId id = 0;
    Timestamp read_ts = 0;
  };

  TxnManager() = default;

  /// Starts a transaction: fresh id, snapshot at the current watermark.
  TxnHandle Begin();

  /// Allocates the commit timestamp. The caller stamps its versions with it
  /// and then calls FinishCommit; the watermark does not pass this
  /// timestamp until then.
  Timestamp PrepareCommit(TxnId txn);

  /// Marks the commit fully applied; advances the visibility watermark.
  void FinishCommit(TxnId txn, Timestamp commit_ts);

  /// Ends a transaction without commit.
  void Abort(TxnId txn);

  /// Ends a read-only transaction (releases its snapshot for GC).
  void EndRead(TxnId txn);

  /// Latest timestamp at which every commit is fully visible.
  Timestamp watermark() const;

  /// Bumps the clock and watermark to at least `ts` (recovery: restored
  /// rows were stamped with explicit timestamps).
  void AdvanceTo(Timestamp ts);

  /// Oldest read snapshot still active (== watermark when none): versions
  /// below this can be purged.
  Timestamp oldest_active() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_txn_ = 1;
  Timestamp clock_ = 0;      // last allocated commit ts
  Timestamp watermark_ = 0;  // all commits <= watermark_ fully applied
  std::set<Timestamp> committing_;          // allocated, not yet finished
  std::multiset<Timestamp> active_reads_;   // snapshots of live txns
  std::map<TxnId, Timestamp> txn_reads_;    // txn -> its snapshot
};

}  // namespace s2

#endif  // S2_TXN_TXN_MANAGER_H_
