#include "txn/txn_manager.h"

#include "common/metrics.h"

namespace s2 {

TxnManager::TxnHandle TxnManager::Begin() {
  S2_COUNTER("s2_txn_begin_total").Add();
  std::lock_guard<std::mutex> lock(mu_);
  TxnHandle handle;
  handle.id = next_txn_++;
  handle.read_ts = watermark_;
  active_reads_.insert(handle.read_ts);
  txn_reads_[handle.id] = handle.read_ts;
  return handle;
}

Timestamp TxnManager::PrepareCommit(TxnId /*txn*/) {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp ts = ++clock_;
  committing_.insert(ts);
  return ts;
}

void TxnManager::FinishCommit(TxnId txn, Timestamp commit_ts) {
  S2_COUNTER("s2_txn_commit_total").Add();
  std::lock_guard<std::mutex> lock(mu_);
  committing_.erase(commit_ts);
  // Advance the watermark to just below the oldest still-stamping commit.
  watermark_ = committing_.empty() ? clock_ : *committing_.begin() - 1;
  auto it = txn_reads_.find(txn);
  if (it != txn_reads_.end()) {
    active_reads_.erase(active_reads_.find(it->second));
    txn_reads_.erase(it);
  }
}

void TxnManager::Abort(TxnId txn) {
  S2_COUNTER("s2_txn_abort_total").Add();
  EndRead(txn);
}

void TxnManager::EndRead(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txn_reads_.find(txn);
  if (it != txn_reads_.end()) {
    active_reads_.erase(active_reads_.find(it->second));
    txn_reads_.erase(it);
  }
}

void TxnManager::AdvanceTo(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clock_ < ts) clock_ = ts;
  if (watermark_ < ts && committing_.empty()) watermark_ = ts;
}

Timestamp TxnManager::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

Timestamp TxnManager::oldest_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_reads_.empty()) return watermark_;
  return std::min(watermark_, *active_reads_.begin());
}

}  // namespace s2
