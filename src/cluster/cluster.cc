#include "cluster/cluster.h"

#include "common/env.h"
#include "common/hash.h"
#include "common/journal.h"

namespace s2 {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  if (options_.num_nodes < 1) options_.num_nodes = 1;
  if (options_.num_partitions < 1) options_.num_partitions = 1;
  executor_ = std::make_unique<Executor>(options_.num_exec_threads);
}

Cluster::~Cluster() = default;

Status Cluster::Start() {
  node_alive_.assign(options_.num_nodes, true);
  sites_.resize(options_.num_partitions);
  masters_.resize(options_.num_partitions);
  master_node_.resize(options_.num_partitions);
  for (int p = 0; p < options_.num_partitions; ++p) {
    PartitionSite& site = sites_[p];
    site.master_node = p % options_.num_nodes;
    PartitionOptions popts;
    popts.dir = options_.dir + "/part" + std::to_string(p);
    popts.blob = options_.blob;
    popts.blob_prefix = PartitionPrefix(p);
    popts.cache_bytes = options_.cache_bytes;
    popts.auto_maintain = options_.auto_maintain;
    popts.background_uploads = options_.background_uploads;
    popts.sync_blob_commit = options_.sync_blob_commit;
    popts.executor = executor_.get();
    popts.env = options_.env;
    site.master = std::make_unique<Partition>(popts);
    S2_RETURN_NOT_OK(site.master->Init());
    masters_[p] = site.master.get();
    master_node_[p] = site.master_node;

    // Multicast data files to every attached replica (HA + workspaces).
    site.master->files()->SetFileHook(
        [this, p](const std::string& name,
                  std::shared_ptr<const std::string> data) {
          std::vector<ReplicaPartition*> receivers;
          {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto& replica : sites_[p].replicas) {
              receivers.push_back(replica.get());
            }
            for (auto& ws : workspaces_) {
              receivers.push_back(ws.replicas[p].get());
            }
          }
          for (ReplicaPartition* r : receivers) r->OnDataFile(name, data);
        });

    for (int r = 0; r < options_.ha_replicas; ++r) {
      int node = (p + 1 + r) % options_.num_nodes;
      S2_RETURN_NOT_OK(ProvisionReplica(p, node));
    }
  }
  return Status::OK();
}

Status Cluster::ProvisionReplica(int partition_id, int node_id) {
  ReplicaOptions ropts;
  ropts.dir = options_.dir + "/replica" + std::to_string(next_replica_dir_++);
  ropts.blob = options_.blob;
  ropts.blob_prefix = PartitionPrefix(partition_id);
  ropts.ack_commits = true;
  ropts.env = options_.env;
  auto replica = std::make_unique<ReplicaPartition>(ropts);
  S2_RETURN_NOT_OK(replica->Init());
  S2_RETURN_NOT_OK(WireReplica(partition_id, replica.get()));
  S2_JOURNAL("cluster", "replica_attach",
             "partition=" + std::to_string(partition_id) +
                 " node=" + std::to_string(node_id) + " dir=" + ropts.dir);
  std::lock_guard<std::mutex> lock(mu_);
  sites_[partition_id].replicas.push_back(std::move(replica));
  sites_[partition_id].replica_nodes.push_back(node_id);
  return Status::OK();
}

Status Cluster::WireReplica(int partition_id, ReplicaPartition* replica) {
  return masters_[partition_id]->log()->AddSink(replica);
}

Status Cluster::CreateTable(const std::string& name,
                            const TableOptions& options,
                            std::vector<int> shard_key) {
  for (int p = 0; p < options_.num_partitions; ++p) {
    S2_RETURN_NOT_OK(masters_[p]->CreateTable(name, options).status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  shard_keys_[name] = std::move(shard_key);
  return Status::OK();
}

Result<int> Cluster::PartitionForRow(const std::string& table,
                                     const Row& row) const {
  std::vector<int> shard_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shard_keys_.find(table);
    if (it == shard_keys_.end()) {
      return Status::NotFound("no sharded table " + table);
    }
    shard_key = it->second;
  }
  Row values;
  if (shard_key.empty()) {
    values = row;
  } else {
    for (int c : shard_key) values.push_back(row[c]);
  }
  return PartitionForKey(values);
}

int Cluster::PartitionForKey(const Row& shard_values) const {
  uint64_t h = Hash64(EncodeKey(shard_values));
  return static_cast<int>(h % static_cast<uint64_t>(options_.num_partitions));
}

// --- Txn ---

TxnManager::TxnHandle Cluster::Txn::On(int partition_id) {
  auto it = handles_.find(partition_id);
  if (it != handles_.end()) return it->second;
  TxnManager::TxnHandle h = cluster_->partition(partition_id)->Begin();
  handles_[partition_id] = h;
  return h;
}

UnifiedTable* Cluster::Txn::table(int partition_id, const std::string& name) {
  auto t = cluster_->partition(partition_id)->GetTable(name);
  return t.ok() ? *t : nullptr;
}

Status Cluster::Txn::Commit() {
  if (done_) return Status::OK();
  done_ = true;
  Status first_error;
  for (auto& [pid, handle] : handles_) {
    ProfileScope scope(profile_,
                       profile_ != nullptr ? profile_->root() : nullptr);
    ProfileSpan span("commit.partition");
    if (span.active()) span.SetDetail("p=" + std::to_string(pid));
    Status s = cluster_->partition(pid)->Commit(handle.id);
    if (!s.ok() && first_error.ok()) first_error = s;
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(cluster_->mu_);
      ++cluster_->sites_[pid].committed_txns;
    }
  }
  return first_error;
}

void Cluster::Txn::Abort() {
  if (done_) return;
  done_ = true;
  for (auto& [pid, handle] : handles_) {
    cluster_->partition(pid)->Abort(handle.id);
  }
}

Status Cluster::InsertRows(const std::string& table,
                           const std::vector<Row>& rows, DupPolicy policy) {
  // Group rows by target partition.
  std::map<int, std::vector<Row>> routed;
  for (const Row& row : rows) {
    S2_ASSIGN_OR_RETURN(int pid, PartitionForRow(table, row));
    routed[pid].push_back(row);
  }
  Txn txn = BeginTxn();
  for (auto& [pid, partition_rows] : routed) {
    TxnManager::TxnHandle h = txn.On(pid);
    UnifiedTable* t = txn.table(pid, table);
    if (t == nullptr) {
      txn.Abort();
      return Status::NotFound("no table " + table);
    }
    auto r = t->InsertRows(h.id, h.read_ts, partition_rows, policy);
    if (!r.ok()) {
      txn.Abort();
      return r.status();
    }
  }
  return txn.Commit();
}

Result<std::vector<Row>> Cluster::ScatterQuery(
    const std::function<PlanPtr()>& factory, int workspace_id,
    ProfileCollector* profile) {
  const int n = options_.num_partitions;
  // Resolve targets and instantiate per-partition plans up front, on the
  // caller's thread: the factory is caller-supplied and need not be
  // thread-safe.
  std::vector<Partition*> targets(static_cast<size_t>(n));
  std::vector<PlanPtr> plans(static_cast<size_t>(n));
  for (int p = 0; p < n; ++p) {
    targets[p] = workspace_id < 0 ? masters_[p]
                                  : WorkspacePartition(workspace_id, p);
    if (targets[p] == nullptr) {
      return Status::NotFound("no such workspace partition");
    }
    plans[p] = factory();
  }

  // Scatter: each partition's plan runs as an executor task; the cancel
  // token tears down in-flight siblings as soon as one partition fails.
  std::vector<std::vector<Row>> results(static_cast<size_t>(n));
  CancelToken cancel;
  auto run_one = [&](size_t p) -> Status {
    // Each partition task attaches to the profile root and opens its own
    // child span; nested scan/segment spans land under it, and the gather
    // step below observes one merged tree.
    ProfileScope scope(profile,
                       profile != nullptr ? profile->root() : nullptr);
    ProfileSpan part_span("partition");
    if (part_span.active()) part_span.SetDetail("p=" + std::to_string(p));
    Partition* partition = targets[p];
    QueryContext ctx;
    ctx.partition = partition;
    TxnManager::TxnHandle h = partition->Begin();
    ctx.txn = h.id;
    ctx.read_ts = h.read_ts;
    ctx.scan_options.executor = executor_.get();
    ctx.scan_options.cancel = &cancel;
    auto rows = RunPlan(plans[p].get(), &ctx);
    partition->EndRead(h.id);
    S2_RETURN_NOT_OK(rows.status());
    results[p] = std::move(*rows);
    part_span.Count("rows", static_cast<int64_t>(results[p].size()));
    return Status::OK();
  };
  Executor* ex = executor_.get();
  if (ex->num_threads() > 1 && n > 1) {
    S2_RETURN_NOT_OK(ex->ParallelFor(static_cast<size_t>(n), run_one,
                                     &cancel));
  } else {
    for (int p = 0; p < n; ++p) S2_RETURN_NOT_OK(run_one(p));
  }

  // Gather: concatenate in partition order so results are deterministic
  // and identical to the serial scatter.
  size_t total = 0;
  for (const auto& rows : results) total += rows.size();
  std::vector<Row> out;
  out.reserve(total);
  for (auto& rows : results) {
    for (Row& row : rows) out.push_back(std::move(row));
  }
  return out;
}

// --- High availability ---

void Cluster::KillNode(int node_id) {
  S2_JOURNAL("cluster", "node_killed", "node=" + std::to_string(node_id));
  std::lock_guard<std::mutex> lock(mu_);
  node_alive_[node_id] = false;
  // Replicas hosted on the dead node stop acking.
  for (PartitionSite& site : sites_) {
    for (size_t r = 0; r < site.replicas.size(); ++r) {
      if (site.replica_nodes[r] == node_id) site.replicas[r]->down = true;
    }
  }
}

bool Cluster::NodeAlive(int node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_alive_[node_id];
}

Result<int> Cluster::RunFailureDetector() {
  int promoted = 0;
  for (int p = 0; p < options_.num_partitions; ++p) {
    bool master_dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      master_dead = !node_alive_[master_node_[p]];
    }
    if (!master_dead) continue;
    // Promote the first replica on a live node.
    std::unique_ptr<ReplicaPartition> chosen;
    int chosen_node = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      PartitionSite& site = sites_[p];
      for (size_t r = 0; r < site.replicas.size(); ++r) {
        if (node_alive_[site.replica_nodes[r]]) {
          chosen = std::move(site.replicas[r]);
          chosen_node = site.replica_nodes[r];
          site.replicas.erase(site.replicas.begin() + static_cast<long>(r));
          site.replica_nodes.erase(site.replica_nodes.begin() +
                                   static_cast<long>(r));
          break;
        }
      }
      // Remaining replicas of this partition are stale relative to the new
      // master's log; drop them (auto-healing re-provisions below).
      site.replicas.clear();
      site.replica_nodes.clear();
    }
    if (chosen == nullptr) {
      return Status::Unavailable(
          "partition lost: no replica on a live node (all copies gone)");
    }
    S2_ASSIGN_OR_RETURN(Partition * new_master, chosen->Promote());
    S2_JOURNAL("cluster", "replica_promoted",
               "partition=" + std::to_string(p) +
                   " node=" + std::to_string(chosen_node));
    {
      std::lock_guard<std::mutex> lock(mu_);
      PartitionSite& site = sites_[p];
      site.master.reset();  // old master's process is gone
      site.promoted_holder = std::move(chosen);
      masters_[p] = new_master;
      master_node_[p] = chosen_node;
    }
    // Re-wire the file hook to the new master and heal replication.
    new_master->files()->SetFileHook(
        [this, p](const std::string& name,
                  std::shared_ptr<const std::string> data) {
          std::vector<ReplicaPartition*> receivers;
          {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto& replica : sites_[p].replicas) {
              receivers.push_back(replica.get());
            }
            for (auto& ws : workspaces_) {
              receivers.push_back(ws.replicas[p].get());
            }
          }
          for (ReplicaPartition* r : receivers) r->OnDataFile(name, data);
        });
    for (int r = 0; r < options_.ha_replicas; ++r) {
      int node = -1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (int candidate = 0; candidate < options_.num_nodes; ++candidate) {
          int n = (chosen_node + 1 + r + candidate) % options_.num_nodes;
          if (node_alive_[n] && n != chosen_node) {
            node = n;
            break;
          }
        }
      }
      if (node >= 0) S2_RETURN_NOT_OK(ProvisionReplica(p, node));
    }
    ++promoted;
  }
  return promoted;
}

// --- Separated storage & workspaces ---

Status Cluster::UploadAllToBlob() {
  for (int p = 0; p < options_.num_partitions; ++p) {
    S2_RETURN_NOT_OK(masters_[p]->WriteSnapshot());
  }
  return Status::OK();
}

Result<int> Cluster::CreateWorkspace() {
  WorkspaceState ws;
  for (int p = 0; p < options_.num_partitions; ++p) {
    ReplicaOptions ropts;
    ropts.dir =
        options_.dir + "/workspace" + std::to_string(next_replica_dir_++);
    ropts.blob = options_.blob;
    ropts.blob_prefix = PartitionPrefix(p);
    ropts.ack_commits = false;  // workspaces never gate commits
    ropts.env = options_.env;
    auto replica = std::make_unique<ReplicaPartition>(ropts);
    S2_RETURN_NOT_OK(replica->Init());
    // With a blob store the replica bootstrapped its data files from blob;
    // without one ("no blob store" configurations), seed them from the
    // master's local store before streaming the log.
    if (options_.blob == nullptr) {
      ReplicaPartition* raw = replica.get();
      masters_[p]->files()->ForEachFile(
          [raw](const std::string& name,
                std::shared_ptr<const std::string> data) {
            raw->OnDataFile(name, std::move(data));
          });
    }
    S2_RETURN_NOT_OK(WireReplica(p, replica.get()));
    ws.replicas.push_back(std::move(replica));
  }
  int workspace_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workspaces_.push_back(std::move(ws));
    workspace_id = static_cast<int>(workspaces_.size() - 1);
  }
  S2_JOURNAL("cluster", "workspace_create",
             "workspace=" + std::to_string(workspace_id) +
                 " partitions=" + std::to_string(options_.num_partitions));
  return workspace_id;
}

Partition* Cluster::WorkspacePartition(int workspace_id, int partition_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (workspace_id < 0 ||
      workspace_id >= static_cast<int>(workspaces_.size())) {
    return nullptr;
  }
  return workspaces_[workspace_id].replicas[partition_id]->partition();
}

uint64_t Cluster::WorkspaceLagBytes(int workspace_id) const {
  uint64_t max_lag = 0;
  for (int p = 0; p < options_.num_partitions; ++p) {
    Lsn durable;
    Lsn applied;
    {
      std::lock_guard<std::mutex> lock(mu_);
      durable = masters_[p]->log()->durable_lsn();
      applied = workspaces_[workspace_id].replicas[p]->applied_lsn();
    }
    if (durable > applied) max_lag = std::max(max_lag, durable - applied);
  }
  return max_lag;
}

Result<std::unique_ptr<Partition>> Cluster::RestorePartitionToLsn(
    int partition_id, Lsn lsn, const std::string& dir) {
  if (options_.blob == nullptr) {
    return Status::InvalidArgument("PITR requires a blob store");
  }
  return RestorePartitionFromBlob(options_.blob,
                                  PartitionPrefix(partition_id), dir, lsn,
                                  options_.env);
}

Status Cluster::Maintain(ProfileCollector* profile) {
  const int n = options_.num_partitions;
  auto run_one = [&](size_t p) -> Status {
    ProfileScope scope(profile,
                       profile != nullptr ? profile->root() : nullptr);
    ProfileSpan span("maintain.partition");
    if (span.active()) span.SetDetail("p=" + std::to_string(p));
    return masters_[p]->Maintain();
  };
  Executor* ex = executor_.get();
  if (ex->num_threads() > 1 && n > 1) {
    return ex->ParallelFor(static_cast<size_t>(n), run_one);
  }
  for (int p = 0; p < n; ++p) S2_RETURN_NOT_OK(run_one(static_cast<size_t>(p)));
  return Status::OK();
}

std::vector<Cluster::ReplicaState> Cluster::ReplicaStates() const {
  std::vector<ReplicaState> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < options_.num_partitions; ++p) {
    Lsn durable = masters_[p]->log()->durable_lsn();
    const PartitionSite& site = sites_[p];
    for (size_t r = 0; r < site.replicas.size(); ++r) {
      ReplicaState rs;
      rs.partition = p;
      rs.node = site.replica_nodes[r];
      rs.master_durable_lsn = durable;
      rs.applied_lsn = site.replicas[r]->applied_lsn();
      rs.txns_applied = site.replicas[r]->txns_applied();
      rs.down = site.replicas[r]->down;
      out.push_back(rs);
    }
    for (size_t w = 0; w < workspaces_.size(); ++w) {
      const ReplicaPartition* replica = workspaces_[w].replicas[p].get();
      ReplicaState rs;
      rs.partition = p;
      rs.workspace = static_cast<int>(w);
      rs.master_durable_lsn = durable;
      rs.applied_lsn = replica->applied_lsn();
      rs.txns_applied = replica->txns_applied();
      rs.down = replica->down;
      out.push_back(rs);
    }
  }
  return out;
}

uint64_t Cluster::ReplicationLagBytes() const {
  uint64_t max_lag = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < options_.num_partitions; ++p) {
    Lsn durable = masters_[p]->log()->durable_lsn();
    const PartitionSite& site = sites_[p];
    for (const auto& replica : site.replicas) {
      Lsn applied = replica->applied_lsn();
      if (durable > applied) max_lag = std::max(max_lag, durable - applied);
    }
    for (const auto& ws : workspaces_) {
      Lsn applied = ws.replicas[p]->applied_lsn();
      if (durable > applied) max_lag = std::max(max_lag, durable - applied);
    }
    if (options_.blob != nullptr) {
      // The blob log-tail is itself a replication consumer: workspaces and
      // PITR read the log from blob storage, so un-uploaded bytes are lag.
      Lsn uploaded = masters_[p]->LogUploadedLsn();
      if (durable > uploaded) {
        max_lag = std::max(max_lag, durable - uploaded);
      }
    }
  }
  return max_lag;
}

uint64_t Cluster::MaxUploadQueueAgeNs() const {
  uint64_t max_age = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < options_.num_partitions; ++p) {
    max_age = std::max(max_age, masters_[p]->files()->OldestPendingUploadAgeNs());
  }
  return max_age;
}

double Cluster::MaintenanceBacklog() const {
  double backlog = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < options_.num_partitions; ++p) {
    for (const std::string& name : masters_[p]->TableNames()) {
      auto table = masters_[p]->GetTable(name);
      if (!table.ok()) continue;
      const TableOptions& opts = (*table)->options();
      if (opts.flush_threshold > 0) {
        backlog += static_cast<double>((*table)->RowstoreRows()) /
                   static_cast<double>(opts.flush_threshold);
      }
      size_t runs = (*table)->DebugRuns().size();
      if (runs > opts.max_sorted_runs) {
        backlog += static_cast<double>(runs - opts.max_sorted_runs);
      }
    }
  }
  return backlog;
}

}  // namespace s2
