#ifndef S2_CLUSTER_REPLICA_H_
#define S2_CLUSTER_REPLICA_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blob/blob_store.h"
#include "log/partition_log.h"
#include "storage/partition.h"

namespace s2 {

struct ReplicaOptions {
  std::string dir;
  BlobStore* blob = nullptr;
  std::string blob_prefix;  // master partition's blob prefix
  /// Filesystem for the replica's local state. Not owned; null =
  /// Env::Default().
  Env* env = nullptr;
  /// True for HA replicas: OnPage returns true once the page is held in
  /// memory, which is what lets the master count it toward commit
  /// durability. False for read-only workspaces, which replicate
  /// asynchronously and "don't participate in acking commits" (paper
  /// Section 3.2).
  bool ack_commits = true;
};

/// A continuously-applied replica of one partition. Receives the master's
/// log pages (possibly out of order / duplicated on redelivery) and data
/// files, applies committed transactions incrementally, and can serve
/// snapshot reads at any time — a hot copy that "can pick up the query
/// workload immediately after a failover without needing any warm up".
///
/// Promotion writes the received log stream into this replica's own
/// directory so the promoted partition recovers exactly the replicated
/// prefix and then accepts new writes.
class ReplicaPartition : public ReplicationSink {
 public:
  explicit ReplicaPartition(ReplicaOptions options);
  ~ReplicaPartition() override;

  /// Initializes the replica's partition state. For workspaces, first
  /// bootstraps from blob storage (snapshot + uploaded log chunks), so only
  /// the log tail needs streaming from the master.
  Status Init();

  // ReplicationSink:
  bool OnPage(Lsn page_lsn, Slice page_bytes) override;

  /// Data-file replication hook (wired by the cluster).
  void OnDataFile(const std::string& name,
                  std::shared_ptr<const std::string> data);

  /// The queryable replica state. Reads only; writes are undefined.
  Partition* partition() { return partition_.get(); }

  /// Every byte below this log position has been applied.
  Lsn applied_lsn() const;

  /// How many transactions behind the master this replica has ever been at
  /// its worst (lag proxy used by the CH-benCHmark experiment).
  uint64_t txns_applied() const;

  /// Converts the replica into a standalone master partition rooted at its
  /// directory: persists the received stream as the partition log and
  /// re-opens. Returns the promoted partition (this object keeps owning
  /// it); the caller must stop feeding pages first.
  Result<Partition*> Promote();

  bool down = false;  // fault injection: drop pages & refuse acks

 private:
  void ApplyCompleteRecordsLocked();
  void AsyncApplyLoop();

  ReplicaOptions options_;
  std::unique_ptr<Partition> partition_;

  /// Workspaces apply asynchronously (a background thread drains the
  /// stream) so the master's commit path only pays for page buffering —
  /// "read-only workspaces ... replicate recently written data
  /// asynchronously from the primary".
  std::thread apply_thread_;
  std::condition_variable apply_cv_;
  bool shutdown_ = false;
  bool apply_pending_ = false;  // guarded by mu_

  mutable std::mutex mu_;
  std::string stream_;       // contiguous received log bytes
  Lsn stream_base_ = 0;      // log position of stream_[0]
  Lsn applied_ = 0;          // absolute position fully applied
  std::map<Lsn, std::string> out_of_order_;  // pages ahead of the stream
  std::map<TxnId, std::vector<std::pair<LogRecordType, std::string>>>
      pending_txns_;
  uint64_t txns_applied_ = 0;
};

/// Point-in-time restore from blob storage: builds a fresh partition in
/// `dir` from the newest blob snapshot at or below `to_lsn` plus uploaded
/// log chunks up to `to_lsn` (0 = everything available). This is the PITR
/// path: no explicit backups, just the blob history (paper Section 3.2).
Result<std::unique_ptr<Partition>> RestorePartitionFromBlob(
    BlobStore* blob, const std::string& blob_prefix, const std::string& dir,
    Lsn to_lsn, Env* env = nullptr);

}  // namespace s2

#endif  // S2_CLUSTER_REPLICA_H_
