#ifndef S2_CLUSTER_CLUSTER_H_
#define S2_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "cluster/replica.h"
#include "common/executor.h"
#include "common/profile.h"
#include "query/plan.h"
#include "storage/partition.h"
#include "storage/table_options.h"

namespace s2 {

struct ClusterOptions {
  std::string dir;
  /// Number of data partitions (the unit of distribution, Section 2).
  int num_partitions = 4;
  /// Simulated leaf nodes; partitions and their replicas spread over them.
  int num_nodes = 2;
  /// Synchronous HA replicas per partition (commit requires >= 1 ack when
  /// > 0).
  int ha_replicas = 1;
  BlobStore* blob = nullptr;
  /// Per-partition local data-file cache budget ("local disk" size).
  size_t cache_bytes = 256ull << 20;
  bool auto_maintain = true;
  bool background_uploads = false;
  /// Forwarded to every partition (CDW baseline).
  bool sync_blob_commit = false;
  /// Worker threads in the cluster's shared executor, used for query
  /// fan-out, parallel segment scans, maintenance and background uploads.
  /// 0 = hardware concurrency; 1 = fully serial execution.
  size_t num_exec_threads = 0;
  /// Filesystem for every partition's and replica's local state. Not
  /// owned; null = Env::Default().
  Env* env = nullptr;
};

/// An in-process simulated S2DB cluster: an aggregator (this object)
/// coordinating leaf nodes that each host master partitions and HA
/// replicas. Tables are hash-partitioned by a user-chosen shard key;
/// transactions route to partitions by shard key; commits replicate
/// synchronously to HA replicas; failovers promote replicas; read-only
/// workspaces replicate asynchronously for isolated analytics.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Status Start();

  /// Creates the table on every partition; rows route by `shard_key`
  /// (column indices). An empty shard key shards by the whole row.
  Status CreateTable(const std::string& name, const TableOptions& options,
                     std::vector<int> shard_key);

  int num_partitions() const { return options_.num_partitions; }

  /// Current master for a partition (changes after failover).
  Partition* partition(int id) { return masters_[id]; }

  /// Partition that owns a row of `table`.
  Result<int> PartitionForRow(const std::string& table, const Row& row) const;
  /// Partition for explicit shard-key values.
  int PartitionForKey(const Row& shard_values) const;

  // ----------------------------------------------------------------
  // Transactions
  // ----------------------------------------------------------------

  /// A (possibly multi-partition) transaction. Commit applies partition by
  /// partition — the paper does not describe distributed atomic commit and
  /// neither do we claim it; TPC-C shards by warehouse so the hot path is
  /// single-partition.
  class Txn {
   public:
    /// Begins lazily on the partition when first used.
    TxnManager::TxnHandle On(int partition_id);
    UnifiedTable* table(int partition_id, const std::string& name);

    Status Commit();
    void Abort();

    /// Attaches a profile: Commit() opens one child span per partition
    /// under the collector's root, capturing log/lock wait counters from
    /// the layers below. Not owned; must outlive the transaction.
    void SetProfile(ProfileCollector* profile) { profile_ = profile; }

   private:
    friend class Cluster;
    explicit Txn(Cluster* cluster) : cluster_(cluster) {}
    Cluster* cluster_;
    std::map<int, TxnManager::TxnHandle> handles_;
    ProfileCollector* profile_ = nullptr;
    bool done_ = false;
  };

  Txn BeginTxn() { return Txn(this); }

  /// Routes and inserts rows in one autocommit transaction.
  Status InsertRows(const std::string& table, const std::vector<Row>& rows,
                    DupPolicy policy = DupPolicy::kError);

  /// Runs `factory()`-built plans on every partition (or the given
  /// workspace's replicas) and concatenates row results — the shared-
  /// nothing scatter phase; callers apply the gather/combine step. With a
  /// profile, each partition task records a child span under the
  /// collector's root (merged on gather into one tree).
  Result<std::vector<Row>> ScatterQuery(
      const std::function<PlanPtr()>& factory, int workspace_id = -1,
      ProfileCollector* profile = nullptr);

  // ----------------------------------------------------------------
  // High availability
  // ----------------------------------------------------------------

  /// Fault injection: the node stops acking and serving.
  void KillNode(int node_id);
  bool NodeAlive(int node_id) const;

  /// The master aggregator's failure detector: promotes an HA replica for
  /// every partition whose master node died, then re-provisions fresh
  /// replicas on surviving nodes. Returns promoted partition count.
  Result<int> RunFailureDetector();

  int MasterNode(int partition_id) const { return master_node_[partition_id]; }

  // ----------------------------------------------------------------
  // Separated storage & workspaces
  // ----------------------------------------------------------------

  /// Pushes data files, log chunks and a snapshot to blob storage.
  Status UploadAllToBlob();

  /// Provisions a read-only workspace: one async replica per partition,
  /// bootstrapped from blob storage and streaming the log tail. Returns a
  /// workspace id for ScatterQuery.
  Result<int> CreateWorkspace();

  /// Replica of `partition_id` inside the workspace (read-only queries).
  Partition* WorkspacePartition(int workspace_id, int partition_id);

  /// Max log bytes any master is ahead of the workspace (replication lag;
  /// 0 = every durable byte has been applied).
  uint64_t WorkspaceLagBytes(int workspace_id) const;

  /// Point-in-time restore of one partition from blob history into `dir`.
  Result<std::unique_ptr<Partition>> RestorePartitionToLsn(
      int partition_id, Lsn lsn, const std::string& dir);

  /// Flush/merge/vacuum every partition; partitions run in parallel on the
  /// cluster executor. With a profile, each partition's maintenance task
  /// records a child span (flush/merge spans nest under it).
  Status Maintain(ProfileCollector* profile = nullptr);

  /// Live replication state of every HA and workspace replica, for the
  /// system-table introspection layer.
  struct ReplicaState {
    int partition = 0;
    /// Hosting node for HA replicas; -1 for workspace replicas.
    int node = -1;
    /// Workspace id; -1 for HA replicas.
    int workspace = -1;
    Lsn master_durable_lsn = 0;
    Lsn applied_lsn = 0;
    uint64_t txns_applied = 0;
    bool down = false;
  };
  std::vector<ReplicaState> ReplicaStates() const;

  // ----------------------------------------------------------------
  // Health signals (watchdog rule sources; see common/monitor.h)
  // ----------------------------------------------------------------

  /// Max bytes any replication consumer trails its primary's durable LSN:
  /// HA replicas, workspace replicas, and — when a blob store is
  /// configured — the blob log-tail upload per partition (the paper's
  /// Section 3 log-chunk replication path). Feeds the replication_lag
  /// watchdog rule.
  uint64_t ReplicationLagBytes() const;

  /// Age (env clock) of the oldest data file still waiting for its blob
  /// upload, across all master partitions. Feeds the upload_queue_age
  /// watchdog rule.
  uint64_t MaxUploadQueueAgeNs() const;

  /// Summed flush/merge pressure over every master table: rowstore rows as
  /// a fraction of the flush threshold, plus sorted runs in excess of the
  /// merge limit. Stays below ~1 per table when maintenance keeps up.
  double MaintenanceBacklog() const;

  /// The cluster-wide executor (scatter queries, parallel scans,
  /// maintenance, uploads).
  Executor* executor() { return executor_.get(); }

 private:
  struct PartitionSite {
    std::unique_ptr<Partition> master;
    int master_node = 0;
    std::vector<std::unique_ptr<ReplicaPartition>> replicas;
    std::vector<int> replica_nodes;
    /// After a failover the promoted ReplicaPartition owns the new master
    /// Partition; it is kept alive here.
    std::unique_ptr<ReplicaPartition> promoted_holder;
    uint64_t committed_txns = 0;  // coarse counter for lag computation
  };

  struct WorkspaceState {
    std::vector<std::unique_ptr<ReplicaPartition>> replicas;  // per partition
  };

  std::string PartitionPrefix(int id) const {
    return "part" + std::to_string(id) + "/";
  }
  Status WireReplica(int partition_id, ReplicaPartition* replica);
  Status ProvisionReplica(int partition_id, int node_id);

  ClusterOptions options_;
  /// Declared before sites_ so it is destroyed after them: partition
  /// destructors may wait on tasks still queued on this executor.
  std::unique_ptr<Executor> executor_;
  std::vector<bool> node_alive_;
  std::vector<PartitionSite> sites_;
  std::vector<Partition*> masters_;   // resolved current masters
  std::vector<int> master_node_;
  std::map<std::string, std::vector<int>> shard_keys_;
  std::vector<WorkspaceState> workspaces_;
  mutable std::mutex mu_;
  int next_replica_dir_ = 0;
};

}  // namespace s2

#endif  // S2_CLUSTER_CLUSTER_H_
