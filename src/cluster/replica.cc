#include "cluster/replica.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/env.h"
#include "log/snapshot.h"

namespace s2 {

namespace {

/// Downloads the newest snapshot <= to_lsn and all contiguous log chunks
/// from blob storage into `dir`, ready for Partition::Init recovery.
/// Returns the end position of the materialized log.
Result<Lsn> BootstrapFromBlob(BlobStore* blob, const std::string& blob_prefix,
                              const std::string& dir, Lsn to_lsn, Env* env) {
  if (env == nullptr) env = Env::Default();
  S2_RETURN_NOT_OK(env->CreateDirs(dir));
  Lsn limit = to_lsn == 0 ? ~Lsn{0} : to_lsn;

  // Snapshots.
  S2_ASSIGN_OR_RETURN(std::vector<std::string> snap_keys,
                      blob->List(blob_prefix + "snap/"));
  Lsn best_snap = 0;
  std::string best_key;
  for (const std::string& key : snap_keys) {
    std::string name = key.substr(key.find_last_of('/') + 1);
    auto lsn = SnapshotStore::ParseFileName(name);
    if (lsn.ok() && *lsn <= limit && (*lsn >= best_snap)) {
      best_snap = *lsn;
      best_key = key;
    }
  }
  if (!best_key.empty()) {
    S2_ASSIGN_OR_RETURN(std::string payload, blob->Get(best_key));
    SnapshotStore snapshots(dir + "/snapshots", env);
    S2_RETURN_NOT_OK(snapshots.Write(best_snap, payload));
  }

  // Log chunks: keys log/<from>-<to>; concatenate the contiguous prefix.
  S2_ASSIGN_OR_RETURN(std::vector<std::string> log_keys,
                      blob->List(blob_prefix + "log/"));
  std::vector<std::pair<Lsn, std::pair<Lsn, std::string>>> chunks;
  for (const std::string& key : log_keys) {
    std::string name = key.substr(key.find_last_of('/') + 1);
    uint64_t from = 0, to = 0;
    if (sscanf(name.c_str(), "%020" SCNu64 "-%020" SCNu64, &from, &to) == 2) {
      chunks.push_back({from, {to, key}});
    }
  }
  std::sort(chunks.begin(), chunks.end());
  std::string log_bytes;
  Lsn end = 0;
  for (const auto& [from, rest] : chunks) {
    if (from != end) break;  // gap: stop at the contiguous prefix
    S2_ASSIGN_OR_RETURN(std::string chunk, blob->Get(rest.second));
    log_bytes.append(chunk);
    end = rest.first;
  }
  if (!log_bytes.empty()) {
    S2_RETURN_NOT_OK(env->WriteFileAtomic(dir + "/log", log_bytes));
  }
  return end;
}

}  // namespace

ReplicaPartition::ReplicaPartition(ReplicaOptions options)
    : options_(std::move(options)) {}

ReplicaPartition::~ReplicaPartition() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  apply_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
}

void ReplicaPartition::AsyncApplyLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    apply_cv_.wait(lock, [this] { return shutdown_ || apply_pending_; });
    if (shutdown_) return;
    apply_pending_ = false;
    ApplyCompleteRecordsLocked();
  }
}

Status ReplicaPartition::Init() {
  if (!options_.ack_commits && options_.blob != nullptr) {
    // Workspace provisioning: bootstrap from blob storage so only the log
    // tail needs replication from the master (fast provisioning,
    // Section 3.1).
    S2_ASSIGN_OR_RETURN(Lsn end,
                        BootstrapFromBlob(options_.blob, options_.blob_prefix,
                                          options_.dir, /*to_lsn=*/0,
                                          options_.env));
    stream_base_ = end;
    applied_ = end;
  }
  PartitionOptions popts;
  popts.dir = options_.dir;
  popts.blob = options_.blob;
  popts.blob_prefix = options_.blob_prefix;
  popts.background_uploads = false;  // replicas never upload
  popts.auto_maintain = false;       // maintenance replicates from master
  popts.env = options_.env;
  partition_ = std::make_unique<Partition>(popts);
  S2_RETURN_NOT_OK(partition_->Init());
  if (!options_.ack_commits) {
    // Workspaces replicate asynchronously: apply on a background thread so
    // the master's commit path never waits for us.
    apply_thread_ = std::thread([this] { AsyncApplyLoop(); });
  }
  return Status::OK();
}

bool ReplicaPartition::OnPage(Lsn page_lsn, Slice page_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) return false;
  Lsn end = stream_base_ + stream_.size();
  if (page_lsn > end) {
    // Out-of-order delivery: hold until the gap fills ("log pages can be
    // replicated out-of-order").
    out_of_order_[page_lsn] = page_bytes.ToString();
    return true;  // held in memory: counts toward durability
  }
  if (page_lsn + page_bytes.size() > end) {
    // Append the new suffix (redeliveries may overlap).
    size_t skip = end - page_lsn;
    stream_.append(page_bytes.data() + skip, page_bytes.size() - skip);
  }
  // Drain any out-of-order pages that now connect.
  for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
    Lsn new_end = stream_base_ + stream_.size();
    if (it->first > new_end) break;
    if (it->first + it->second.size() > new_end) {
      size_t skip = new_end - it->first;
      stream_.append(it->second.data() + skip, it->second.size() - skip);
    }
    it = out_of_order_.erase(it);
  }
  if (options_.ack_commits) {
    // HA replicas apply inline: they must be hot for instant failover.
    ApplyCompleteRecordsLocked();
  } else {
    apply_pending_ = true;
    apply_cv_.notify_one();
  }
  return true;
}

void ReplicaPartition::ApplyCompleteRecordsLocked() {
  size_t offset = applied_ - stream_base_;
  Slice unapplied(stream_.data() + offset, stream_.size() - offset);
  size_t complete = PartitionLog::CompletePagePrefix(unapplied);
  if (complete == 0) return;
  Slice pages(unapplied.data(), complete);
  Status s = PartitionLog::ParseStream(
      pages, applied_, [&](Lsn, const LogRecord& rec) -> Status {
        switch (rec.type) {
          case LogRecordType::kCommit: {
            auto it = pending_txns_.find(rec.txn_id);
            if (it != pending_txns_.end()) {
              Status as = partition_->ApplyReplicated(it->second);
              pending_txns_.erase(it);
              ++txns_applied_;
              return as;
            }
            return Status::OK();
          }
          case LogRecordType::kAbort:
            pending_txns_.erase(rec.txn_id);
            return Status::OK();
          default:
            pending_txns_[rec.txn_id].emplace_back(rec.type, rec.payload);
            return Status::OK();
        }
      });
  if (s.ok()) applied_ += complete;
}

void ReplicaPartition::OnDataFile(const std::string& name,
                                  std::shared_ptr<const std::string> data) {
  if (down || partition_ == nullptr) return;
  Status s = partition_->files()->Write(name, std::move(data));
  (void)s;  // AlreadyExists on redelivery is fine
}

Lsn ReplicaPartition::applied_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

uint64_t ReplicaPartition::txns_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txns_applied_;
}

Result<Partition*> ReplicaPartition::Promote() {
  std::lock_guard<std::mutex> lock(mu_);
  // Persist the received stream as this partition's log: the promoted
  // master recovers the full replicated prefix, then accepts new writes.
  size_t complete = PartitionLog::CompletePagePrefix(
      Slice(stream_.data(), stream_.size()));
  Env* env = options_.env != nullptr ? options_.env : Env::Default();
  S2_RETURN_NOT_OK(env->AppendToFile(options_.dir + "/log",
                                     stream_.substr(0, complete),
                                     /*sync=*/false));
  partition_.reset();
  PartitionOptions popts;
  popts.dir = options_.dir;
  popts.blob = options_.blob;
  popts.blob_prefix = options_.blob_prefix;
  popts.background_uploads = false;
  popts.env = options_.env;
  partition_ = std::make_unique<Partition>(popts);
  S2_RETURN_NOT_OK(partition_->Init());
  return partition_.get();
}

Result<std::unique_ptr<Partition>> RestorePartitionFromBlob(
    BlobStore* blob, const std::string& blob_prefix, const std::string& dir,
    Lsn to_lsn, Env* env) {
  S2_RETURN_NOT_OK(
      BootstrapFromBlob(blob, blob_prefix, dir, to_lsn, env).status());
  PartitionOptions popts;
  popts.dir = dir;
  popts.blob = blob;
  popts.blob_prefix = blob_prefix;
  popts.background_uploads = false;
  popts.recover_to_lsn = to_lsn;
  popts.env = env;
  auto partition = std::make_unique<Partition>(popts);
  S2_RETURN_NOT_OK(partition->Init());
  return partition;
}

}  // namespace s2
