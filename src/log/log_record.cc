#include "log/log_record.h"

#include "common/coding.h"

namespace s2 {

void LogRecord::EncodeTo(std::string* dst) const {
  PutVarint64(dst, txn_id);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixed(dst, payload);
}

Result<LogRecord> LogRecord::DecodeFrom(Slice* input) {
  LogRecord rec;
  S2_ASSIGN_OR_RETURN(rec.txn_id, GetVarint64(input));
  if (input->empty()) return Status::Corruption("truncated log record type");
  rec.type = static_cast<LogRecordType>((*input)[0]);
  input->RemovePrefix(1);
  S2_ASSIGN_OR_RETURN(Slice payload, GetLengthPrefixed(input));
  rec.payload = payload.ToString();
  return rec;
}

}  // namespace s2
