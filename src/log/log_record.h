#ifndef S2_LOG_LOG_RECORD_H_
#define S2_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/types.h"

namespace s2 {

/// Log sequence number: byte offset in the partition's log stream. Data
/// files are named after the LSN at which they were created so they can be
/// considered as logically existing in the log stream (paper Section 3).
using Lsn = uint64_t;

/// Logical record kinds written by the storage layer. The log itself treats
/// payloads as opaque bytes; these tags let recovery dispatch.
enum class LogRecordType : uint8_t {
  kInsertRows = 1,      // rows inserted into the in-memory rowstore
  kDeleteRows = 2,      // rowstore rows deleted (by primary key)
  kSegmentFlush = 3,    // rowstore rows converted into a columnstore segment
  kMetadataUpdate = 4,  // segment delete-bitvector / metadata change
  kSegmentMerge = 5,    // LSM merge installed new segments, dropped old
  kCommit = 6,          // transaction commit marker
  kAbort = 7,           // transaction abort marker
  kDdl = 8,             // table created/dropped
};

/// One log record: transaction id, type tag, opaque payload.
struct LogRecord {
  TxnId txn_id = 0;
  LogRecordType type = LogRecordType::kCommit;
  std::string payload;

  /// Frame format: [txn varint][type u8][payload length-prefixed].
  void EncodeTo(std::string* dst) const;
  static Result<LogRecord> DecodeFrom(Slice* input);
};

}  // namespace s2

#endif  // S2_LOG_LOG_RECORD_H_
