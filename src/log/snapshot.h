#ifndef S2_LOG_SNAPSHOT_H_
#define S2_LOG_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "log/log_record.h"

namespace s2 {

class Env;

/// Stores rowstore snapshot files keyed by the log position they capture.
/// Recovery replays from the newest snapshot at or below the target LSN and
/// then applies the log from there ("fetch and replay the data from the
/// first snapshot file before LP in the log stream", paper Section 3.2).
///
/// Files live in a local directory as `snap_<lsn, zero padded>`, each
/// guarded by a CRC footer. The separated-storage uploader mirrors them to
/// blob storage.
class SnapshotStore {
 public:
  /// `env` null means Env::Default(); tests pass a FaultInjectionEnv.
  explicit SnapshotStore(std::string dir, Env* env = nullptr);

  /// Writes a snapshot of serialized state taken at `lsn`.
  Status Write(Lsn lsn, const std::string& state);

  /// Newest snapshot with snapshot_lsn <= lsn (lsn == max means latest).
  /// Returns (snapshot_lsn, state); NotFound when none qualify.
  Result<std::pair<Lsn, std::string>> LatestAtOrBelow(Lsn lsn) const;

  /// All snapshot LSNs, ascending.
  Result<std::vector<Lsn>> List() const;

  /// Drops snapshots strictly below `lsn` (local retention trimming; blob
  /// storage keeps history for PITR).
  Status TrimBelow(Lsn lsn);

  const std::string& dir() const { return dir_; }

  static std::string FileName(Lsn lsn);
  static Result<Lsn> ParseFileName(const std::string& name);

 private:
  std::string dir_;
  Env* env_;
};

}  // namespace s2

#endif  // S2_LOG_SNAPSHOT_H_
