#include "log/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/env.h"
#include "common/metrics.h"

namespace s2 {

SnapshotStore::SnapshotStore(std::string dir, Env* env)
    : dir_(std::move(dir)), env_(env != nullptr ? env : Env::Default()) {}

std::string SnapshotStore::FileName(Lsn lsn) {
  char buf[32];
  snprintf(buf, sizeof(buf), "snap_%020" PRIu64, lsn);
  return buf;
}

Result<Lsn> SnapshotStore::ParseFileName(const std::string& name) {
  uint64_t lsn = 0;
  int consumed = 0;
  // Anchor the match to the whole name: a stray "snap_<lsn>.tmp" left by a
  // crashed atomic write must not parse as a snapshot (it has no CRC footer
  // and would wedge recovery).
  if (sscanf(name.c_str(), "snap_%020" SCNu64 "%n", &lsn, &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return Status::InvalidArgument("not a snapshot file: " + name);
  }
  return lsn;
}

Status SnapshotStore::Write(Lsn lsn, const std::string& state) {
  S2_COUNTER("s2_snapshot_write_total").Add();
  S2_COUNTER("s2_snapshot_bytes_total").Add(state.size());
  S2_SCOPED_TIMER("s2_snapshot_write_ns");
  S2_RETURN_NOT_OK(env_->CreateDirs(dir_));
  std::string data = state;
  PutFixed32(&data, Crc32(state.data(), state.size()));
  return env_->WriteFileAtomic(dir_ + "/" + FileName(lsn), data);
}

Result<std::pair<Lsn, std::string>> SnapshotStore::LatestAtOrBelow(
    Lsn lsn) const {
  S2_ASSIGN_OR_RETURN(std::vector<Lsn> lsns, List());
  Lsn best = 0;
  bool found = false;
  for (Lsn s : lsns) {
    if (s <= lsn && (!found || s > best)) {
      best = s;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no snapshot at or below given lsn");
  S2_ASSIGN_OR_RETURN(std::string data,
                      env_->ReadFileToString(dir_ + "/" + FileName(best)));
  if (data.size() < 4) return Status::Corruption("snapshot too small");
  uint32_t crc = DecodeFixed32(data.data() + data.size() - 4);
  data.resize(data.size() - 4);
  if (Crc32(data.data(), data.size()) != crc) {
    return Status::Corruption("snapshot crc mismatch");
  }
  return std::make_pair(best, std::move(data));
}

Result<std::vector<Lsn>> SnapshotStore::List() const {
  std::vector<Lsn> out;
  if (!env_->FileExists(dir_)) return out;
  S2_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  for (const std::string& name : names) {
    auto lsn = ParseFileName(name);
    if (lsn.ok()) out.push_back(*lsn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status SnapshotStore::TrimBelow(Lsn lsn) {
  S2_ASSIGN_OR_RETURN(std::vector<Lsn> lsns, List());
  for (Lsn s : lsns) {
    if (s < lsn) {
      S2_RETURN_NOT_OK(env_->RemoveFile(dir_ + "/" + FileName(s)));
    }
  }
  return Status::OK();
}

}  // namespace s2
