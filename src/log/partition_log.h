#ifndef S2_LOG_PARTITION_LOG_H_
#define S2_LOG_PARTITION_LOG_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "log/log_record.h"

namespace s2 {

class Env;

/// Receives sealed log pages for replication. Implementations are HA
/// replicas (cluster module) or read-only workspace streams. Pages may be
/// delivered out of order relative to other pages ("log pages can be
/// replicated out-of-order and replicated early without waiting for
/// transaction commit", paper Section 3).
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;

  /// Delivers one sealed page located at byte offset `page_lsn` in the log
  /// stream. Returns true once the sink holds the page in memory (the ack
  /// that makes the page count toward durability).
  virtual bool OnPage(Lsn page_lsn, Slice page_bytes) = 0;
};

struct LogOptions {
  /// Directory holding this partition's log file.
  std::string dir;
  /// Target payload size before a page is sealed automatically.
  size_t page_size = 64 * 1024;
  /// fsync local disk on every commit. Off by default, matching the paper:
  /// cloud hosts lose local disks with the host, so S2DB relies on
  /// replication (not local fsync) for commit durability.
  bool sync_to_disk = false;
  /// Filesystem the log lives on. Not owned; null = Env::Default(). Tests
  /// inject a FaultInjectionEnv to fail/tear the append or drop the sync.
  Env* env = nullptr;
};

/// The per-partition write-ahead log. The log is the only file ever
/// updated (append-only); columnstore data files referenced from it are
/// immutable. Commit protocol: seal the current page, write it to local
/// disk, deliver it to every replication sink; the commit is durable once
/// at least one sink acked every page at or below it.
///
/// Thread-safe; appends serialize on an internal mutex.
class PartitionLog {
 public:
  /// Opens (or creates) the log in options.dir. Existing pages are scanned
  /// to recover next_lsn; a torn final page is truncated away.
  static Result<std::unique_ptr<PartitionLog>> Open(const LogOptions& options);

  ~PartitionLog();

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends a record to the open page and returns its LSN. Does not make
  /// the record durable; call Commit (or SealPage for mid-transaction bulk
  /// data, which replicates early).
  Lsn Append(const LogRecord& record);

  /// Appends a commit marker for `txn` and makes everything up to and
  /// including it durable per the commit protocol above.
  Status Commit(TxnId txn);

  /// Appends an abort marker (durability not required for aborts).
  void Abort(TxnId txn);

  /// Seals and replicates the current page without a commit. Used while
  /// streaming large transactions so replicas receive data early.
  Status SealPage();

  /// Registers a replication sink. Newly added sinks receive already-sealed
  /// pages so they can catch up, then stream new pages. Not owned.
  Status AddSink(ReplicationSink* sink);
  void RemoveSink(ReplicationSink* sink);

  /// All records strictly below this LSN are durable (locally written and
  /// acked by >=1 sink when sinks exist). This is the position below which
  /// log chunks may be uploaded to blob storage.
  Lsn durable_lsn() const;

  /// LSN the next appended record will receive.
  Lsn next_lsn() const;

  /// Replays records from the on-disk log in [from, to), in order, invoking
  /// `cb(lsn, record)`. `to` == 0 means "to the end".
  Status Replay(Lsn from, Lsn to,
                const std::function<Status(Lsn, const LogRecord&)>& cb) const;

  /// Reads raw sealed log bytes [from, to) for blob-chunk upload. `to` must
  /// be <= durable_lsn().
  Result<std::string> ReadRange(Lsn from, Lsn to) const;

  const std::string& path() const { return path_; }

  /// Parses the raw byte range of a log stream (as produced by ReadRange or
  /// page delivery) invoking cb per record. Used by replicas and restores
  /// that hold log bytes fetched from blob storage.
  static Status ParseStream(
      Slice bytes, Lsn base_lsn,
      const std::function<Status(Lsn, const LogRecord&)>& cb);

  /// Length of the prefix of `bytes` consisting of complete, checksummed
  /// pages (replicas apply only whole pages from the stream).
  static size_t CompletePagePrefix(Slice bytes);

 private:
  explicit PartitionLog(const LogOptions& options);

  // Seals current page under mu_ held.
  Status SealPageLocked();
  void RecomputeDurableLocked();

  LogOptions options_;
  std::string path_;
  Env* env_;  // resolved from options_.env at construction

  mutable std::mutex mu_;
  std::string page_buf_;     // open page payload
  Lsn page_start_ = 0;       // file offset where the open page will begin
  Lsn sealed_end_ = 0;       // file offset past the last sealed page
  Lsn durable_ = 0;
  std::vector<std::pair<Lsn, std::string>> pending_pages_;  // unacked pages
  std::vector<ReplicationSink*> sinks_;
};

}  // namespace s2

#endif  // S2_LOG_PARTITION_LOG_H_
