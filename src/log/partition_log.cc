#include "log/partition_log.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/env.h"
#include "common/metrics.h"

namespace s2 {

namespace {

constexpr uint32_t kPageMagic = 0x53326c67;  // "S2lg"
constexpr size_t kPageHeaderSize = 12;       // magic + size + crc

// Scans `bytes` and returns the length of the valid page prefix.
size_t ValidPrefix(Slice bytes) {
  size_t pos = 0;
  while (bytes.size() - pos >= kPageHeaderSize) {
    const char* p = bytes.data() + pos;
    if (DecodeFixed32(p) != kPageMagic) break;
    uint32_t payload_size = DecodeFixed32(p + 4);
    uint32_t crc = DecodeFixed32(p + 8);
    if (bytes.size() - pos - kPageHeaderSize < payload_size) break;
    if (Crc32(p + kPageHeaderSize, static_cast<size_t>(payload_size)) != crc) break;
    pos += kPageHeaderSize + payload_size;
  }
  return pos;
}

}  // namespace

PartitionLog::PartitionLog(const LogOptions& options)
    : options_(options),
      path_(options.dir + "/log"),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

PartitionLog::~PartitionLog() = default;

Result<std::unique_ptr<PartitionLog>> PartitionLog::Open(
    const LogOptions& options) {
  std::unique_ptr<PartitionLog> log(new PartitionLog(options));
  Env* env = log->env_;
  S2_RETURN_NOT_OK(env->CreateDirs(options.dir));
  if (env->FileExists(log->path_)) {
    S2_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(log->path_));
    size_t valid = ValidPrefix(bytes);
    if (valid < bytes.size()) {
      // Torn tail from a crash mid-append: drop it.
      S2_RETURN_NOT_OK(env->Truncate(log->path_, valid));
    }
    log->sealed_end_ = valid;
    log->page_start_ = valid;
    log->durable_ = valid;
  }
  return log;
}

Lsn PartitionLog::Append(const LogRecord& record) {
  S2_COUNTER("s2_log_append_total").Add();
  S2_SCOPED_TIMER("s2_log_append_ns");
  std::lock_guard<std::mutex> lock(mu_);
  Lsn lsn = page_start_ + kPageHeaderSize + page_buf_.size();
  record.EncodeTo(&page_buf_);
  if (page_buf_.size() >= options_.page_size) {
    // Soft page limit: seal and replicate early so replicas receive large
    // transactions' data before commit. Durability failures surface at
    // Commit; the page stays pending for redelivery until acked.
    (void)SealPageLocked();
  }
  return lsn;
}

Status PartitionLog::Commit(TxnId txn) {
  S2_COUNTER("s2_log_commit_total").Add();
  S2_SCOPED_TIMER("s2_log_commit_ns");
  std::lock_guard<std::mutex> lock(mu_);
  size_t pre_marker_size = page_buf_.size();
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  rec.EncodeTo(&page_buf_);
  Status s = SealPageLocked();
  if (!s.ok() && !page_buf_.empty()) {
    // The local append failed, so the page (and its commit marker) never
    // reached disk and page_buf_ was retained. Withdraw the marker: if the
    // buffered records are flushed by a later seal they must replay as an
    // uncommitted transaction, not silently commit one the caller was told
    // failed. (On a replication-ack failure the page is already on disk and
    // page_buf_ is empty, so this does not run.)
    page_buf_.resize(pre_marker_size);
  }
  return s;
}

void PartitionLog::Abort(TxnId txn) {
  S2_COUNTER("s2_log_abort_total").Add();
  std::lock_guard<std::mutex> lock(mu_);
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kAbort;
  rec.EncodeTo(&page_buf_);
}

Status PartitionLog::SealPage() {
  std::lock_guard<std::mutex> lock(mu_);
  return SealPageLocked();
}

Status PartitionLog::SealPageLocked() {
  // Redeliver any previously unacked pages first: durability advances only
  // through a contiguous acked prefix.
  for (auto it = pending_pages_.begin(); it != pending_pages_.end();) {
    bool acked = sinks_.empty();
    for (ReplicationSink* sink : sinks_) {
      if (sink->OnPage(it->first, Slice(it->second))) acked = true;
    }
    if (!acked) break;
    it = pending_pages_.erase(it);
  }

  if (!page_buf_.empty()) {
    S2_COUNTER("s2_log_seal_total").Add();
    S2_COUNTER("s2_log_page_bytes_total").Add(page_buf_.size());
    S2_SCOPED_TIMER("s2_log_seal_ns");
    std::string page;
    page.reserve(kPageHeaderSize + page_buf_.size());
    PutFixed32(&page, kPageMagic);
    PutFixed32(&page, static_cast<uint32_t>(page_buf_.size()));
    PutFixed32(&page, Crc32(page_buf_.data(), page_buf_.size()));
    page.append(page_buf_);

    Lsn page_lsn = page_start_;
    S2_RETURN_NOT_OK(env_->AppendToFile(path_, page, options_.sync_to_disk));
    sealed_end_ = page_start_ + page.size();
    page_start_ = sealed_end_;
    page_buf_.clear();

    // Synchronous in-memory replication: the page is durable once one sink
    // acks (or immediately when the partition has no replicas configured).
    bool acked = sinks_.empty();
    for (ReplicationSink* sink : sinks_) {
      if (sink->OnPage(page_lsn, Slice(page))) acked = true;
    }
    if (!acked) pending_pages_.emplace_back(page_lsn, std::move(page));
  }

  durable_ = pending_pages_.empty() ? sealed_end_ : pending_pages_.front().first;
  if (!pending_pages_.empty()) {
    return Status::Unavailable("no replica acked log page");
  }
  return Status::OK();
}

Status PartitionLog::AddSink(ReplicationSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  // Catch the sink up with all sealed pages (they parse as a page stream).
  if (sealed_end_ > 0) {
    S2_ASSIGN_OR_RETURN(std::string bytes, env_->ReadFileToString(path_));
    sink->OnPage(0, Slice(bytes.data(), sealed_end_));
  }
  sinks_.push_back(sink);
  return Status::OK();
}

void PartitionLog::RemoveSink(ReplicationSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

Lsn PartitionLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

Lsn PartitionLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_start_ + kPageHeaderSize + page_buf_.size();
}

Status PartitionLog::Replay(
    Lsn from, Lsn to,
    const std::function<Status(Lsn, const LogRecord&)>& cb) const {
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!env_->FileExists(path_)) return Status::OK();
    S2_ASSIGN_OR_RETURN(bytes, env_->ReadFileToString(path_));
    bytes.resize(std::min<size_t>(bytes.size(), sealed_end_));
  }
  return ParseStream(Slice(bytes), 0,
                     [&](Lsn lsn, const LogRecord& rec) -> Status {
                       if (lsn < from) return Status::OK();
                       if (to != 0 && lsn >= to) return Status::OK();
                       return cb(lsn, rec);
                     });
}

Result<std::string> PartitionLog::ReadRange(Lsn from, Lsn to) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (to > sealed_end_ || from > to) {
    return Status::InvalidArgument("log range outside sealed region");
  }
  S2_ASSIGN_OR_RETURN(std::string bytes, env_->ReadFileToString(path_));
  return bytes.substr(from, to - from);
}

size_t PartitionLog::CompletePagePrefix(Slice bytes) {
  return ValidPrefix(bytes);
}

Status PartitionLog::ParseStream(
    Slice bytes, Lsn base_lsn,
    const std::function<Status(Lsn, const LogRecord&)>& cb) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kPageHeaderSize) {
      return Status::Corruption("truncated log page header");
    }
    const char* p = bytes.data() + pos;
    if (DecodeFixed32(p) != kPageMagic) {
      return Status::Corruption("bad log page magic");
    }
    uint32_t payload_size = DecodeFixed32(p + 4);
    uint32_t crc = DecodeFixed32(p + 8);
    if (bytes.size() - pos - kPageHeaderSize < payload_size) {
      return Status::Corruption("truncated log page");
    }
    if (Crc32(p + kPageHeaderSize, static_cast<size_t>(payload_size)) != crc) {
      return Status::Corruption("log page crc mismatch");
    }
    Slice payload(p + kPageHeaderSize, payload_size);
    Lsn record_lsn = base_lsn + pos + kPageHeaderSize;
    while (!payload.empty()) {
      const char* rec_begin = payload.data();
      S2_ASSIGN_OR_RETURN(LogRecord rec, LogRecord::DecodeFrom(&payload));
      S2_RETURN_NOT_OK(cb(record_lsn, rec));
      record_lsn += static_cast<Lsn>(payload.data() - rec_begin);
    }
    pos += kPageHeaderSize + payload_size;
  }
  return Status::OK();
}

}  // namespace s2
