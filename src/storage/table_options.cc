#include "storage/table_options.h"

#include "common/coding.h"

namespace s2 {

namespace {

void EncodeIntVector(const std::vector<int>& v, std::string* dst) {
  PutVarint64(dst, v.size());
  for (int x : v) PutVarint64(dst, static_cast<uint64_t>(x));
}

Result<std::vector<int>> DecodeIntVector(Slice* input) {
  S2_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(input));
  std::vector<int> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    S2_ASSIGN_OR_RETURN(uint64_t x, GetVarint64(input));
    v.push_back(static_cast<int>(x));
  }
  return v;
}

}  // namespace

void TableOptions::EncodeTo(std::string* dst) const {
  PutVarint64(dst, schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    PutLengthPrefixed(dst, col.name);
    dst->push_back(static_cast<char>(col.type));
  }
  EncodeIntVector(sort_key, dst);
  PutVarint64(dst, indexes.size());
  for (const auto& index : indexes) EncodeIntVector(index, dst);
  EncodeIntVector(unique_key, dst);
  PutVarint64(dst, segment_rows);
  PutVarint64(dst, flush_threshold);
  PutVarint64(dst, max_sorted_runs);
}

Result<TableOptions> TableOptions::DecodeFrom(Slice* input) {
  TableOptions opts;
  S2_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint64(input));
  std::vector<ColumnDef> cols;
  cols.reserve(num_cols);
  for (uint64_t i = 0; i < num_cols; ++i) {
    S2_ASSIGN_OR_RETURN(Slice name, GetLengthPrefixed(input));
    if (input->empty()) return Status::Corruption("truncated table options");
    DataType type = static_cast<DataType>((*input)[0]);
    input->RemovePrefix(1);
    cols.push_back(ColumnDef{name.ToString(), type});
  }
  opts.schema = Schema(std::move(cols));
  S2_ASSIGN_OR_RETURN(opts.sort_key, DecodeIntVector(input));
  S2_ASSIGN_OR_RETURN(uint64_t num_indexes, GetVarint64(input));
  for (uint64_t i = 0; i < num_indexes; ++i) {
    S2_ASSIGN_OR_RETURN(std::vector<int> index, DecodeIntVector(input));
    opts.indexes.push_back(std::move(index));
  }
  S2_ASSIGN_OR_RETURN(opts.unique_key, DecodeIntVector(input));
  S2_ASSIGN_OR_RETURN(uint64_t segment_rows, GetVarint64(input));
  S2_ASSIGN_OR_RETURN(uint64_t flush_threshold, GetVarint64(input));
  S2_ASSIGN_OR_RETURN(uint64_t max_runs, GetVarint64(input));
  opts.segment_rows = static_cast<uint32_t>(segment_rows);
  opts.flush_threshold = static_cast<uint32_t>(flush_threshold);
  opts.max_sorted_runs = static_cast<size_t>(max_runs);
  return opts;
}

}  // namespace s2
