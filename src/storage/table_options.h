#ifndef S2_STORAGE_TABLE_OPTIONS_H_
#define S2_STORAGE_TABLE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace s2 {

/// How InsertRows treats a row whose unique key already exists (paper
/// Section 4.1.2's user-specified unique-key handling options).
enum class DupPolicy {
  kError = 0,    // report an error (default)
  kSkip = 1,     // SKIP DUPLICATE KEY ERRORS
  kReplace = 2,  // REPLACE: delete then insert the new row
  kUpdate = 3,   // ON DUPLICATE KEY UPDATE: overwrite with the new row
};

/// Definition of one unified table (paper Section 4). All column index
/// vectors refer to positions in `schema`.
struct TableOptions {
  Schema schema;

  /// Sort key: rows within each segment are fully sorted by these columns
  /// and the LSM maintains sorted runs across segments. Empty = no sort
  /// key (insertion order).
  std::vector<int> sort_key;

  /// Secondary indexes. A single entry with several columns is a
  /// multi-column index: per-column inverted indexes plus a tuple-level
  /// global index (Section 4.1.1).
  std::vector<std::vector<int>> indexes;

  /// Unique key, enforced through the secondary index machinery (Section
  /// 4.1.2). Empty = no uniqueness.
  std::vector<int> unique_key;

  /// Rows per columnstore segment (the paper's production default is ~1M;
  /// scaled down for laptop-scale experiments).
  uint32_t segment_rows = 64 * 1024;

  /// Rowstore row count that triggers a background flush into a segment.
  uint32_t flush_threshold = 64 * 1024;

  /// Maximum number of sorted runs before the merger kicks in.
  size_t max_sorted_runs = 8;

  void EncodeTo(std::string* dst) const;
  static Result<TableOptions> DecodeFrom(Slice* input);
};

/// Where one logical row currently lives: the level-0 rowstore (by hidden
/// rowid) or a columnstore segment (by id + offset).
struct RowLocation {
  bool in_rowstore = false;
  int64_t rowid = 0;       // valid when in_rowstore
  uint64_t segment_id = 0; // valid when !in_rowstore
  uint32_t row_offset = 0;
};

}  // namespace s2

#endif  // S2_STORAGE_TABLE_OPTIONS_H_
