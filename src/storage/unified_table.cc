#include "storage/unified_table.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/coding.h"
#include "common/hash.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "index/inverted_index.h"
#include "index/postings.h"

namespace s2 {

namespace {

constexpr char kFlagSystemRows = 1;

/// Tuple hash for multi-column index entries.
uint64_t TupleHash(const Row& row, const std::vector<int>& cols) {
  uint64_t h = 0xa17e5eed;
  for (int c : cols) h = HashCombine(h, row[c].Hash());
  return h;
}

}  // namespace

UnifiedTable::UnifiedTable(std::string name, TableOptions options,
                           PartitionLog* log, DataFileStore* files,
                           TxnManager* txns)
    : name_(std::move(name)),
      options_(std::move(options)),
      log_(log),
      files_(files),
      txns_(txns) {
  // Rowstore schema: user columns + hidden $rowid primary key.
  std::vector<ColumnDef> cols = options_.schema.columns();
  cols.push_back(ColumnDef{"$rowid", DataType::kInt64});
  rowstore_schema_ = Schema(cols);
  int rowid_col = static_cast<int>(options_.schema.num_columns());
  rowstore_ = std::make_unique<RowStoreTable>(rowstore_schema_,
                                              std::vector<int>{rowid_col});

  // Column-level indexes: one per distinct indexed column (secondary
  // indexes and the unique key share per-column structures, Section 4.1.1).
  std::vector<int> indexed_cols;
  auto add_col = [&](int c) {
    if (std::find(indexed_cols.begin(), indexed_cols.end(), c) ==
        indexed_cols.end()) {
      indexed_cols.push_back(c);
    }
  };
  for (const auto& index : options_.indexes) {
    for (int c : index) add_col(c);
  }
  for (int c : options_.unique_key) add_col(c);
  for (int c : indexed_cols) {
    IndexState state;
    state.cols = {c};
    state.global = std::make_unique<GlobalIndex>();
    state.global->set_live_check(
        [this](uint64_t id) { return SegmentLiveLatest(id); });
    column_indexes_.push_back(std::move(state));
  }

  // Tuple-level global indexes for multi-column indexes and the unique key.
  auto add_tuple = [&](const std::vector<int>& cols_vec) {
    if (cols_vec.size() < 2) return;
    for (const IndexState& t : tuple_indexes_) {
      if (t.cols == cols_vec) return;
    }
    IndexState state;
    state.cols = cols_vec;
    state.global = std::make_unique<GlobalIndex>();
    state.global->set_live_check(
        [this](uint64_t id) { return SegmentLiveLatest(id); });
    tuple_indexes_.push_back(std::move(state));
  };
  for (const auto& index : options_.indexes) add_tuple(index);
  add_tuple(options_.unique_key);

  // Rowstore-side secondary indexes mirror the declared indexes so point
  // reads seek in level 0 too.
  std::vector<std::vector<int>> rowstore_indexes = options_.indexes;
  if (!options_.unique_key.empty()) {
    bool present = false;
    for (const auto& index : rowstore_indexes) {
      if (index == options_.unique_key) present = true;
    }
    if (!present) rowstore_indexes.push_back(options_.unique_key);
  }
  for (const auto& index : rowstore_indexes) {
    rowstore_->AddSecondaryIndex(index);
    rowstore_index_cols_.push_back(index);
  }
}

UnifiedTable::~UnifiedTable() = default;

Row UnifiedTable::WithRowId(const Row& row, int64_t rowid) const {
  Row out = row;
  out.push_back(Value(rowid));
  return out;
}

bool UnifiedTable::SegmentLiveLatest(uint64_t id) const {
  // Leaf lock only: this is the global indexes' liveness callback and may
  // run while meta_mu_ is held by the caller.
  std::lock_guard<std::mutex> lock(live_mu_);
  return live_segments_.count(id) > 0;
}

Result<std::shared_ptr<Segment>> UnifiedTable::OpenSegmentLocked(
    SegmentEntry* entry) {
  if (entry->segment == nullptr) {
    S2_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> file,
                        files_->Read(entry->meta.file_name));
    S2_ASSIGN_OR_RETURN(entry->segment, Segment::Open(file));
  }
  if (!entry->indexed) {
    // Replicas may install segment metadata before the data file arrives
    // (async upload / streaming); register index entries at first open.
    (void)AddSegmentToIndexes(entry->meta.id, entry->segment);
    entry->indexed = true;
  }
  return entry->segment;
}

std::shared_ptr<const BitVector> UnifiedTable::DeletesAt(
    const SegmentEntry& entry, Timestamp ts) const {
  for (auto it = entry.delete_history.rbegin();
       it != entry.delete_history.rend(); ++it) {
    if (it->first <= ts) return it->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Result<size_t> UnifiedTable::InsertRows(TxnId txn, Timestamp read_ts,
                                        const std::vector<Row>& rows,
                                        DupPolicy policy) {
  for (const Row& row : rows) {
    if (row.size() != options_.schema.num_columns()) {
      return Status::InvalidArgument("row arity mismatch for " + name_);
    }
  }
  const bool unique = !options_.unique_key.empty();
  if (unique) {
    // Section 4.1.2 step 1: lock the unique key values for the whole batch
    // so concurrent inserts of the same value serialize.
    std::vector<std::string> keys;
    keys.reserve(rows.size());
    for (const Row& row : rows) {
      std::string key;
      for (int c : options_.unique_key) row[c].EncodeTo(&key);
      keys.push_back(std::move(key));
    }
    S2_RETURN_NOT_OK(key_locks_.LockAll(txn, std::move(keys)));
  }

  size_t applied = 0;
  std::string payload_rows;
  uint64_t payload_count = 0;
  for (const Row& row : rows) {
    if (unique) {
      Row key_values;
      for (int c : options_.unique_key) key_values.push_back(row[c]);
      RowLocation dup;
      S2_ASSIGN_OR_RETURN(bool found, FindDuplicate(txn, key_values, &dup));
      if (found) {
        switch (policy) {
          case DupPolicy::kError:
            return Status::AlreadyExists("duplicate unique key in " + name_);
          case DupPolicy::kSkip:
            continue;
          case DupPolicy::kUpdate:
            S2_RETURN_NOT_OK(UpdateLocated(txn, read_ts, dup, row));
            ++applied;
            continue;
          case DupPolicy::kReplace:
            S2_RETURN_NOT_OK(DeleteLocated(txn, read_ts, dup));
            break;  // fall through to the insert below
        }
      }
    }
    Row full = WithRowId(row, NextRowId());
    S2_RETURN_NOT_OK(rowstore_->Insert(txn, read_ts, full));
    for (const Value& v : full) v.EncodeTo(&payload_rows);
    ++payload_count;
    ++applied;
    stats_.rows_inserted.fetch_add(1);
  }

  if (payload_count > 0) {
    LogRecord rec;
    rec.txn_id = txn;
    rec.type = LogRecordType::kInsertRows;
    PutLengthPrefixed(&rec.payload, name_);
    rec.payload.push_back(0);  // flags: user rows
    PutVarint64(&rec.payload, payload_count);
    rec.payload.append(payload_rows);
    log_->Append(rec);
  }
  return applied;
}

Result<bool> UnifiedTable::FindDuplicate(TxnId txn, const Row& key_values,
                                         RowLocation* loc) {
  // Level 0: seek the rowstore secondary index at latest.
  int rs_index = -1;
  for (size_t i = 0; i < rowstore_index_cols_.size(); ++i) {
    if (rowstore_index_cols_[i] == options_.unique_key) {
      rs_index = static_cast<int>(i);
    }
  }
  bool found = false;
  if (rs_index >= 0) {
    S2_RETURN_NOT_OK(rowstore_->IndexSeek(
        rs_index, txn, kTsMax, key_values, [&](const Row& row) {
          loc->in_rowstore = true;
          loc->rowid = row.back().as_int();
          found = true;
          return false;
        }));
  }
  if (found) return true;

  // Columnstore: probe the global indexes. In the typical no-duplicate
  // case only the in-memory hash tables are touched (Section 4.1.2).
  S2_ASSIGN_OR_RETURN(
      bool seg_found,
      LookupSegmentsByCols(options_.unique_key, key_values, kTsMax,
                           [&](const Row&, uint64_t segment_id,
                               uint32_t offset) {
                             loc->in_rowstore = false;
                             loc->segment_id = segment_id;
                             loc->row_offset = offset;
                             return false;
                           }));
  return seg_found;
}

Status UnifiedTable::MoveRows(uint64_t segment_id,
                              const std::vector<uint32_t>& offsets) {
  // Autonomous "move transaction" (Section 4.2): copies the rows into the
  // rowstore and marks them deleted in segment metadata, committing
  // immediately since logical table content is unchanged.
  TxnManager::TxnHandle h = txns_->Begin();

  std::shared_ptr<Segment> segment;
  std::shared_ptr<const BitVector> latest;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = segments_.find(segment_id);
    if (it == segments_.end() || it->second.dropped_ts != kTsMax) {
      txns_->Abort(h.id);
      return Status::Aborted("segment merged away; retry");
    }
    auto opened = OpenSegmentLocked(&it->second);
    if (!opened.ok()) {
      txns_->Abort(h.id);
      return opened.status();
    }
    segment = *opened;
    latest = it->second.meta.deletes;
  }

  std::vector<uint32_t> to_move;
  for (uint32_t off : offsets) {
    if (latest == nullptr || !latest->Get(off)) to_move.push_back(off);
  }
  if (to_move.empty()) {
    // Everything already moved by concurrent movers; their copies carry
    // the rows now.
    txns_->Abort(h.id);
    return Status::OK();
  }

  std::string payload_rows;
  uint64_t moved_count = 0;
  std::vector<uint32_t> actually_moved;
  for (uint32_t off : to_move) {
    auto row = segment->ReadRow(off);
    if (!row.ok()) {
      rowstore_->AbortTxn(h.id);
      txns_->Abort(h.id);
      return row.status();
    }
    Row full = WithRowId(*row, MovedRowId(segment_id, off));
    Status st = rowstore_->InsertMoved(h.id, full);
    if (st.IsAlreadyExists()) continue;  // raced with another mover
    if (!st.ok()) {
      rowstore_->AbortTxn(h.id);
      txns_->Abort(h.id);
      return st;
    }
    for (const Value& v : full) v.EncodeTo(&payload_rows);
    ++moved_count;
    actually_moved.push_back(off);
    stats_.rows_moved.fetch_add(1);
  }
  if (moved_count == 0) {
    rowstore_->AbortTxn(h.id);
    txns_->Abort(h.id);
    return Status::OK();
  }

  // Install + log under the metadata lock so the logged bit vector matches
  // the installed one even with concurrent movers.
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = segments_.find(segment_id);
    if (it == segments_.end() || it->second.dropped_ts != kTsMax) {
      rowstore_->AbortTxn(h.id);
      txns_->Abort(h.id);
      return Status::Aborted("segment merged during move; retry");
    }
    SegmentEntry& entry = it->second;
    BitVector bv = entry.meta.deletes != nullptr
                       ? *entry.meta.deletes
                       : BitVector(entry.meta.num_rows);
    for (uint32_t off : actually_moved) bv.Set(off);
    auto new_deletes = std::make_shared<const BitVector>(std::move(bv));

    LogRecord rows_rec;
    rows_rec.txn_id = h.id;
    rows_rec.type = LogRecordType::kInsertRows;
    PutLengthPrefixed(&rows_rec.payload, name_);
    rows_rec.payload.push_back(kFlagSystemRows);
    PutVarint64(&rows_rec.payload, moved_count);
    rows_rec.payload.append(payload_rows);
    log_->Append(rows_rec);

    LogRecord meta_rec;
    meta_rec.txn_id = h.id;
    meta_rec.type = LogRecordType::kMetadataUpdate;
    PutLengthPrefixed(&meta_rec.payload, name_);
    PutVarint64(&meta_rec.payload, segment_id);
    new_deletes->EncodeTo(&meta_rec.payload);
    log_->Append(meta_rec);

    Status cs = log_->Commit(h.id);
    if (!cs.ok()) {
      rowstore_->AbortTxn(h.id);
      txns_->Abort(h.id);
      return cs;
    }
    Timestamp cts = txns_->PrepareCommit(h.id);
    rowstore_->CommitTxn(h.id, cts);
    entry.meta.deletes = new_deletes;
    entry.delete_history.emplace_back(cts, new_deletes);
    txns_->FinishCommit(h.id, cts);
  }
  return Status::OK();
}

Status UnifiedTable::DeleteLocated(TxnId txn, Timestamp read_ts,
                                   const RowLocation& loc) {
  int64_t rowid = loc.rowid;
  if (!loc.in_rowstore) {
    S2_RETURN_NOT_OK(MoveRows(loc.segment_id, {loc.row_offset}));
    rowid = MovedRowId(loc.segment_id, loc.row_offset);
  }
  Status st = rowstore_->DeleteLatest(txn, read_ts, {Value(rowid)});
  if (st.IsNotFound()) {
    // The caller located this row at its snapshot; it vanished at latest,
    // so a concurrent transaction deleted it: surface as a conflict.
    return Status::Aborted("row concurrently deleted");
  }
  S2_RETURN_NOT_OK(st);
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kDeleteRows;
  PutLengthPrefixed(&rec.payload, name_);
  PutVarint64(&rec.payload, 1);
  PutVarint64(&rec.payload, ZigZagEncode(rowid));
  log_->Append(rec);
  stats_.rows_deleted.fetch_add(1);
  return Status::OK();
}

Status UnifiedTable::UpdateLocated(TxnId txn, Timestamp read_ts,
                                   const RowLocation& loc,
                                   const Row& new_row) {
  if (new_row.size() != options_.schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  int64_t rowid = loc.rowid;
  if (!loc.in_rowstore) {
    S2_RETURN_NOT_OK(MoveRows(loc.segment_id, {loc.row_offset}));
    rowid = MovedRowId(loc.segment_id, loc.row_offset);
  }
  Row full = WithRowId(new_row, rowid);
  Status st = rowstore_->UpdateLatest(txn, read_ts, {Value(rowid)}, full);
  if (st.IsNotFound()) {
    return Status::Aborted("row concurrently deleted");
  }
  S2_RETURN_NOT_OK(st);
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kDeleteRows;
  PutLengthPrefixed(&rec.payload, name_);
  PutVarint64(&rec.payload, 1);
  PutVarint64(&rec.payload, ZigZagEncode(rowid));
  log_->Append(rec);
  LogRecord ins;
  ins.txn_id = txn;
  ins.type = LogRecordType::kInsertRows;
  PutLengthPrefixed(&ins.payload, name_);
  ins.payload.push_back(0);
  PutVarint64(&ins.payload, 1);
  for (const Value& v : full) v.EncodeTo(&ins.payload);
  log_->Append(ins);
  stats_.rows_updated.fetch_add(1);
  return Status::OK();
}

Status UnifiedTable::DeleteByKey(TxnId txn, Timestamp read_ts,
                                 const Row& key) {
  RowLocation loc;
  S2_ASSIGN_OR_RETURN(bool found, FindDuplicate(txn, key, &loc));
  if (!found) return Status::NotFound("no row with key in " + name_);
  return DeleteLocated(txn, read_ts, loc);
}

Status UnifiedTable::UpdateByKey(TxnId txn, Timestamp read_ts, const Row& key,
                                 const Row& new_row) {
  RowLocation loc;
  S2_ASSIGN_OR_RETURN(bool found, FindDuplicate(txn, key, &loc));
  if (!found) return Status::NotFound("no row with key in " + name_);
  return UpdateLocated(txn, read_ts, loc, new_row);
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void UnifiedTable::ScanRowstore(
    TxnId txn, Timestamp read_ts,
    const std::function<bool(const Row&, const RowLocation&)>& cb) const {
  rowstore_->Scan(txn, read_ts, [&](const Row& full) {
    Row user(full.begin(), full.end() - 1);
    RowLocation loc;
    loc.in_rowstore = true;
    loc.rowid = full.back().as_int();
    return cb(user, loc);
  });
}

Result<std::vector<SegmentSnapshot>> UnifiedTable::GetSegments(
    Timestamp read_ts) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<SegmentSnapshot> out;
  for (auto& [id, entry] : segments_) {
    if (entry.created_ts > read_ts) continue;
    if (entry.dropped_ts != kTsMax && entry.dropped_ts <= read_ts) continue;
    S2_ASSIGN_OR_RETURN(std::shared_ptr<Segment> segment,
                        OpenSegmentLocked(&entry));
    out.push_back(SegmentSnapshot{id, segment, DeletesAt(entry, read_ts)});
  }
  return out;
}

Result<std::vector<SegmentIndexMatch>> UnifiedTable::IndexLookupSegments(
    int col, const Value& value, Timestamp read_ts) {
  GlobalIndex* global = nullptr;
  for (IndexState& state : column_indexes_) {
    if (state.cols.size() == 1 && state.cols[0] == col) {
      global = state.global.get();
    }
  }
  if (global == nullptr) {
    return Status::InvalidArgument("column has no secondary index");
  }
  std::vector<IndexEntry> entries;
  global->Lookup(value.Hash(),
                 [&](const IndexEntry& e) { entries.push_back(e); });
  std::vector<SegmentIndexMatch> matches;
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (const IndexEntry& e : entries) {
    auto it = segments_.find(e.segment_id);
    if (it == segments_.end()) continue;
    SegmentEntry& entry = it->second;
    if (entry.created_ts > read_ts) continue;
    if (entry.dropped_ts != kTsMax && entry.dropped_ts <= read_ts) continue;
    S2_ASSIGN_OR_RETURN(std::shared_ptr<Segment> segment,
                        OpenSegmentLocked(&entry));
    matches.push_back(SegmentIndexMatch{
        SegmentSnapshot{e.segment_id, segment, DeletesAt(entry, read_ts)},
        e.postings_offset});
  }
  return matches;
}

size_t UnifiedTable::IndexProbeTables(int col) const {
  for (const IndexState& state : column_indexes_) {
    if (state.cols.size() == 1 && state.cols[0] == col) {
      return state.global->num_tables();
    }
  }
  return 0;
}

Result<bool> UnifiedTable::LookupSegmentsByCols(
    const std::vector<int>& cols, const Row& values, Timestamp read_ts,
    const std::function<bool(const Row&, uint64_t, uint32_t)>& cb) {
  // When a tuple-level index exists for these exact columns, use it to
  // skip segments lacking a full-tuple match (Section 4.1.1).
  std::unordered_set<uint64_t> tuple_segments;
  bool have_tuple = false;
  if (cols.size() >= 2) {
    for (IndexState& state : tuple_indexes_) {
      if (state.cols == cols) {
        have_tuple = true;
        uint64_t h = 0xa17e5eed;
        for (size_t i = 0; i < cols.size(); ++i) {
          h = HashCombine(h, values[i].Hash());
        }
        state.global->Lookup(h, [&](const IndexEntry& e) {
          tuple_segments.insert(e.segment_id);
        });
      }
    }
  }

  // Per-column matches grouped by segment.
  struct SegmentCandidate {
    SegmentSnapshot snapshot;
    std::vector<uint32_t> offsets;  // postings offsets, aligned with cols
  };
  std::unordered_map<uint64_t, SegmentCandidate> candidates;
  for (size_t i = 0; i < cols.size(); ++i) {
    S2_ASSIGN_OR_RETURN(std::vector<SegmentIndexMatch> matches,
                        IndexLookupSegments(cols[i], values[i], read_ts));
    std::unordered_set<uint64_t> seen;
    for (SegmentIndexMatch& match : matches) {
      uint64_t id = match.snapshot.id;
      if (have_tuple && tuple_segments.count(id) == 0) continue;
      seen.insert(id);
      auto [it, inserted] = candidates.try_emplace(id);
      if (inserted) {
        it->second.snapshot = std::move(match.snapshot);
        it->second.offsets.assign(cols.size(), 0);
      }
      it->second.offsets[i] = match.postings_offset;
    }
    // A segment must match every column; drop the rest.
    for (auto it = candidates.begin(); it != candidates.end();) {
      if (i == 0 || seen.count(it->first) > 0) {
        ++it;
      } else {
        it = candidates.erase(it);
      }
    }
    if (i > 0) {
      for (auto it = candidates.begin(); it != candidates.end();) {
        if (seen.count(it->first) == 0) {
          it = candidates.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  bool found_any = false;
  for (auto& [id, cand] : candidates) {
    // Intersect the per-column postings lists (hash collisions rejected by
    // the value check inside PostingsAt).
    std::vector<PostingsIterator> its;
    bool missing = false;
    for (size_t i = 0; i < cols.size(); ++i) {
      auto block = cand.snapshot.segment->aux_block(
          InvertedIndexBuilder::BlockName(cols[i]));
      if (!block.ok()) {
        missing = true;
        break;
      }
      S2_ASSIGN_OR_RETURN(InvertedIndexReader reader,
                          InvertedIndexReader::Open(*block));
      S2_ASSIGN_OR_RETURN(PostingsIterator it,
                          reader.PostingsAt(cand.offsets[i], values[i]));
      if (!it.Valid()) {
        missing = true;
        break;
      }
      its.push_back(std::move(it));
    }
    if (missing) continue;
    std::vector<uint32_t> rows;
    S2_RETURN_NOT_OK(IntersectPostings(std::move(its), &rows));
    for (uint32_t off : rows) {
      if (cand.snapshot.deletes != nullptr && cand.snapshot.deletes->Get(off)) {
        continue;
      }
      S2_ASSIGN_OR_RETURN(Row row, cand.snapshot.segment->ReadRow(off));
      found_any = true;
      if (!cb(row, id, off)) return true;
    }
  }
  return found_any;
}

Status UnifiedTable::LookupByIndex(
    TxnId txn, Timestamp read_ts, const std::vector<int>& index_cols,
    const Row& values,
    const std::function<bool(const Row&, const RowLocation&)>& cb) {
  if (index_cols.size() != values.size()) {
    return Status::InvalidArgument("index key arity mismatch");
  }
  // Level 0 first: exact rowstore index if declared, else filtered scan of
  // the (small, write-optimized) rowstore.
  int rs_index = -1;
  for (size_t i = 0; i < rowstore_index_cols_.size(); ++i) {
    if (rowstore_index_cols_[i] == index_cols) rs_index = static_cast<int>(i);
  }
  bool stopped = false;
  auto emit_rowstore = [&](const Row& full) {
    Row user(full.begin(), full.end() - 1);
    RowLocation loc;
    loc.in_rowstore = true;
    loc.rowid = full.back().as_int();
    if (!cb(user, loc)) {
      stopped = true;
      return false;
    }
    return true;
  };
  if (rs_index >= 0) {
    S2_RETURN_NOT_OK(
        rowstore_->IndexSeek(rs_index, txn, read_ts, values, emit_rowstore));
  } else {
    rowstore_->Scan(txn, read_ts, [&](const Row& full) {
      for (size_t i = 0; i < index_cols.size(); ++i) {
        if (full[index_cols[i]] != values[i]) return true;
      }
      return emit_rowstore(full);
    });
  }
  if (stopped) return Status::OK();

  // Columnstore via the two-level index.
  S2_ASSIGN_OR_RETURN(
      bool found,
      LookupSegmentsByCols(index_cols, values, read_ts,
                           [&](const Row& row, uint64_t segment_id,
                               uint32_t offset) {
                             RowLocation loc;
                             loc.in_rowstore = false;
                             loc.segment_id = segment_id;
                             loc.row_offset = offset;
                             return cb(row, loc);
                           }));
  (void)found;
  return Status::OK();
}

uint64_t UnifiedTable::ApproxRowCount() const {
  uint64_t count = rowstore_->num_nodes();
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (const auto& [id, entry] : segments_) {
    if (entry.dropped_ts == kTsMax) count += entry.meta.live_rows();
  }
  return count;
}

size_t UnifiedTable::NumSegments() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  size_t n = 0;
  for (const auto& [id, entry] : segments_) {
    if (entry.dropped_ts == kTsMax) ++n;
  }
  return n;
}

std::vector<UnifiedTable::SegmentDebugInfo> UnifiedTable::DebugSegments()
    const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<SegmentDebugInfo> out;
  out.reserve(segments_.size());
  for (const auto& [id, entry] : segments_) {
    SegmentDebugInfo info;
    info.id = id;
    info.file_name = entry.meta.file_name;
    info.num_rows = entry.meta.num_rows;
    info.deleted_rows = entry.meta.num_rows - entry.meta.live_rows();
    info.live = entry.dropped_ts == kTsMax;
    info.created_ts = entry.created_ts;
    for (size_t c = 0; c < entry.meta.stats.size(); ++c) {
      if (c > 0) info.min_max += ';';
      const ColumnStats& s = entry.meta.stats[c];
      info.min_max += s.min.ToString() + ".." + s.max.ToString();
    }
    if (entry.segment != nullptr) {
      for (size_t c = 0; c < entry.segment->num_columns(); ++c) {
        Result<const ColumnReader*> reader = entry.segment->column(c);
        if (!reader.ok()) continue;
        if (!info.encodings.empty()) info.encodings += ',';
        info.encodings += EncodingName((*reader)->encoding());
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<UnifiedTable::RunDebugInfo> UnifiedTable::DebugRuns() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::vector<RunDebugInfo> out;
  out.reserve(runs_.size());
  for (const SortedRun& run : runs_) {
    out.push_back({run.segment_ids.size(), run.total_rows});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

Result<std::pair<std::string, SegmentMeta>> UnifiedTable::BuildSegment(
    const std::vector<Row>& rows, uint64_t segment_id, Lsn lsn) {
  SegmentBuilder builder(options_.schema);
  for (const Row& row : rows) builder.AddRow(row);

  // Per-segment inverted indexes for every indexed column (built once at
  // segment creation; the segment is immutable afterwards).
  for (const IndexState& state : column_indexes_) {
    int col = state.cols[0];
    builder.AddAuxBlock(InvertedIndexBuilder::BlockName(col),
                        InvertedIndexBuilder::Build(builder.column_data(col)));
  }
  // Tuple hashes for multi-column indexes (segment-skipping aux data).
  for (size_t t = 0; t < tuple_indexes_.size(); ++t) {
    std::unordered_set<uint64_t> distinct;
    for (const Row& row : rows) {
      distinct.insert(TupleHash(row, tuple_indexes_[t].cols));
    }
    std::string block;
    PutVarint64(&block, distinct.size());
    for (uint64_t h : distinct) PutFixed64(&block, h);
    builder.AddAuxBlock("tup." + std::to_string(t), std::move(block));
  }

  S2_ASSIGN_OR_RETURN(std::string file, builder.Finish());
  SegmentMeta meta;
  meta.id = segment_id;
  meta.file_name = SegmentFileName(lsn, segment_id);
  meta.num_rows = static_cast<uint32_t>(rows.size());
  // Stats are parsed back from the footer when the file is opened; also
  // keep them in metadata for elimination without opening the file.
  S2_ASSIGN_OR_RETURN(auto opened,
                      Segment::Open(std::make_shared<const std::string>(file)));
  for (size_t c = 0; c < options_.schema.num_columns(); ++c) {
    meta.stats.push_back(opened->stats(c));
  }
  return std::make_pair(std::move(file), std::move(meta));
}

Status UnifiedTable::AddSegmentToIndexes(
    uint64_t segment_id, const std::shared_ptr<Segment>& segment) {
  for (IndexState& state : column_indexes_) {
    int col = state.cols[0];
    auto block = segment->aux_block(InvertedIndexBuilder::BlockName(col));
    if (!block.ok()) continue;
    S2_ASSIGN_OR_RETURN(InvertedIndexReader reader,
                        InvertedIndexReader::Open(*block));
    std::vector<IndexEntry> entries;
    reader.ForEachTerm([&](const Value& value, uint32_t offset) {
      entries.push_back(IndexEntry{value.Hash(), segment_id, offset});
    });
    state.global->AddSegment(segment_id, entries);
  }
  for (size_t t = 0; t < tuple_indexes_.size(); ++t) {
    auto block = segment->aux_block("tup." + std::to_string(t));
    if (!block.ok()) continue;
    Slice in = *block;
    S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&in));
    if (in.size() < count * 8) {
      return Status::Corruption("truncated tuple hash block");
    }
    std::vector<IndexEntry> entries;
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      entries.push_back(
          IndexEntry{DecodeFixed64(in.data() + i * 8), segment_id, 0});
    }
    tuple_indexes_[t].global->AddSegment(segment_id, entries);
  }
  return Status::OK();
}

Status UnifiedTable::RegisterSegment(SegmentMeta meta, Timestamp created_ts,
                                     bool new_sorted_run,
                                     const std::shared_ptr<Segment>& opened) {
  uint64_t id = meta.id;
  {
    std::lock_guard<std::mutex> live(live_mu_);
    live_segments_.insert(id);
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  SegmentEntry entry;
  entry.created_ts = created_ts;
  entry.segment = opened;
  entry.delete_history.emplace_back(created_ts, meta.deletes);
  uint64_t rows = meta.live_rows();
  entry.meta = std::move(meta);
  if (opened != nullptr) {
    S2_RETURN_NOT_OK(AddSegmentToIndexes(id, opened));
    entry.indexed = true;
  }
  segments_[id] = std::move(entry);
  if (new_sorted_run) {
    runs_.push_back(SortedRun{{id}, rows});
  }
  stats_.segments_created.fetch_add(1);
  // Keep id allocation ahead of replayed/restored segments.
  uint64_t next = next_segment_id_.load();
  while (id >= next &&
         !next_segment_id_.compare_exchange_weak(next, id + 1)) {
  }
  return Status::OK();
}

Result<size_t> UnifiedTable::FlushRowstore() {
  if (options_.flush_threshold == std::numeric_limits<uint32_t>::max()) {
    // Rowstore-only table (the CDB baseline profile): data never converts
    // to columnstore segments.
    return size_t{0};
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  ProfileSpan flush_span("flush");
  if (flush_span.active()) flush_span.SetDetail("table=" + name_);
  // Records into s2_flush_ns only on a successful flush (see the commit
  // tail); aborted/no-op flushes are not latency samples.
  ScopedTimer flush_timer(nullptr);
  TxnManager::TxnHandle h = txns_->Begin();

  // Collect committed rows visible at the flush snapshot.
  std::vector<std::pair<int64_t, Row>> candidates;
  rowstore_->Scan(h.id, h.read_ts, [&](const Row& full) {
    candidates.emplace_back(full.back().as_int(),
                            Row(full.begin(), full.end() - 1));
    return candidates.size() < options_.segment_rows;
  });
  if (candidates.empty()) {
    txns_->Abort(h.id);
    return size_t{0};
  }

  // Delete each row from level 0 in the flush transaction; rows locked by
  // concurrent writers or already changed are skipped (they stay for the
  // next flush).
  std::vector<Row> rows;
  std::vector<int64_t> rowids;
  for (auto& [rowid, row] : candidates) {
    Status st = rowstore_->DeleteLatest(h.id, h.read_ts, {Value(rowid)});
    if (!st.ok()) continue;
    rows.push_back(std::move(row));
    rowids.push_back(rowid);
  }
  if (rows.empty()) {
    rowstore_->AbortTxn(h.id);
    txns_->Abort(h.id);
    return size_t{0};
  }

  // Sort by the sort key; ties keep arrival order.
  if (!options_.sort_key.empty()) {
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (int c : options_.sort_key) {
        int cmp = rows[a][c].Compare(rows[b][c]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(rows.size());
    for (size_t i : order) sorted.push_back(std::move(rows[i]));
    rows = std::move(sorted);
  }

  // From here on any failure must abort the flush transaction: it holds
  // row locks (via DeleteLatest) that would otherwise leak forever, making
  // every later write to those rows time out.
  auto abort_flush = [&](const Status& s) -> Status {
    rowstore_->AbortTxn(h.id);
    txns_->Abort(h.id);
    return s;
  };
  uint64_t segment_id = next_segment_id_.fetch_add(1);
  Lsn lsn = log_->next_lsn();
  auto built_or = BuildSegment(rows, segment_id, lsn);
  if (!built_or.ok()) return abort_flush(built_or.status());
  auto& [file_bytes, meta] = *built_or;
  auto file = std::make_shared<const std::string>(std::move(file_bytes));
  Status ws = files_->Write(meta.file_name, file);
  if (!ws.ok()) return abort_flush(ws);
  auto opened_or = Segment::Open(file);
  if (!opened_or.ok()) {
    (void)files_->Remove(meta.file_name);
    return abort_flush(opened_or.status());
  }
  std::shared_ptr<Segment> opened = *opened_or;

  LogRecord rec;
  rec.txn_id = h.id;
  rec.type = LogRecordType::kSegmentFlush;
  PutLengthPrefixed(&rec.payload, name_);
  meta.EncodeTo(&rec.payload);
  PutVarint64(&rec.payload, rowids.size());
  for (int64_t rowid : rowids) PutVarint64(&rec.payload, ZigZagEncode(rowid));
  log_->Append(rec);

  Status cs = log_->Commit(h.id);
  if (!cs.ok()) {
    rowstore_->AbortTxn(h.id);
    txns_->Abort(h.id);
    (void)files_->Remove(meta.file_name);
    return cs;
  }
  Timestamp cts = txns_->PrepareCommit(h.id);
  rowstore_->CommitTxn(h.id, cts);
  S2_RETURN_NOT_OK(
      RegisterSegment(std::move(meta), cts, /*new_sorted_run=*/true, opened));
  txns_->FinishCommit(h.id, cts);
  stats_.flushes.fetch_add(1);
  S2_COUNTER("s2_flush_total").Add();
  S2_COUNTER("s2_flush_rows_total").Add(rows.size());
  S2_COUNTER("s2_flush_bytes_total").Add(file->size());
  S2_JOURNAL("storage", "flush",
             "table=" + name_ + " rows=" + std::to_string(rows.size()) +
                 " bytes=" + std::to_string(file->size()));
  S2_HISTOGRAM("s2_flush_ns").Record(flush_timer.ElapsedNs());
  flush_span.Count("rows", static_cast<int64_t>(rows.size()));
  flush_span.Count("bytes", static_cast<int64_t>(file->size()));
  // Reclaim the flushed nodes once no active snapshot can still see them;
  // this is what keeps the write-optimized level 0 small.
  rowstore_->Purge(txns_->oldest_active());
  return rows.size();
}

Result<bool> UnifiedTable::MaybeMergeRuns() {
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  ProfileSpan merge_span("merge");
  if (merge_span.active()) merge_span.SetDetail("table=" + name_);
  ScopedTimer merge_timer(nullptr);  // records only when a merge happened

  // Pick the merge inputs and snapshot their delete vectors.
  std::vector<size_t> picked;
  std::vector<uint64_t> old_ids;
  std::vector<MergeInput> inputs;
  std::vector<std::shared_ptr<const BitVector>> scanned_deletes;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    picked = PickRunsToMerge(runs_, options_.max_sorted_runs);
    if (picked.empty()) return false;
    for (size_t r : picked) {
      for (uint64_t id : runs_[r].segment_ids) {
        auto it = segments_.find(id);
        if (it == segments_.end()) continue;
        S2_ASSIGN_OR_RETURN(std::shared_ptr<Segment> segment,
                            OpenSegmentLocked(&it->second));
        old_ids.push_back(id);
        inputs.push_back(MergeInput{segment, it->second.meta.deletes});
        scanned_deletes.push_back(it->second.meta.deletes);
      }
    }
  }
  if (inputs.empty()) return false;

  // The heavy merge runs without any table lock (paper Section 4.2: merges
  // must not block concurrent updates; moves landing meanwhile are
  // reconciled below via the row mapping).
  SegmentMerger merger(options_.schema, options_.sort_key,
                       options_.segment_rows);
  RowMapping mapping;
  S2_ASSIGN_OR_RETURN(std::vector<std::vector<Row>> chunks,
                      merger.MergeRows(inputs, &mapping));

  TxnManager::TxnHandle h = txns_->Begin();
  Lsn lsn = log_->next_lsn();
  std::vector<SegmentMeta> new_metas;
  std::vector<std::shared_ptr<Segment>> new_opened;
  // A failure while materializing the merged segments must abort the merge
  // transaction (a leaked active txn pins vacuum/purge forever) and remove
  // the files already written.
  auto abort_merge = [&](const Status& s) -> Status {
    txns_->Abort(h.id);
    for (const SegmentMeta& meta : new_metas) {
      (void)files_->Remove(meta.file_name);
    }
    return s;
  };
  for (const std::vector<Row>& chunk : chunks) {
    uint64_t segment_id = next_segment_id_.fetch_add(1);
    auto built_or = BuildSegment(chunk, segment_id, lsn);
    if (!built_or.ok()) return abort_merge(built_or.status());
    auto& [file_bytes, meta] = *built_or;
    auto file = std::make_shared<const std::string>(std::move(file_bytes));
    Status ws = files_->Write(meta.file_name, file);
    if (!ws.ok()) return abort_merge(ws);
    auto opened_or = Segment::Open(file);
    if (!opened_or.ok()) {
      (void)files_->Remove(meta.file_name);
      return abort_merge(opened_or.status());
    }
    new_metas.push_back(std::move(meta));
    new_opened.push_back(std::move(*opened_or));
  }

  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    // Reconcile deletes that landed after our scan: map each newly set bit
    // through the row mapping onto the new segments (Section 4.2's "apply
    // all segment merges between the scan timestamp and the commit
    // timestamp to the deleted bits" — seen from the merge's side).
    std::vector<BitVector> new_deletes;
    new_deletes.reserve(new_metas.size());
    for (const SegmentMeta& meta : new_metas) {
      new_deletes.emplace_back(meta.num_rows);
    }
    bool any_new_delete = false;
    for (size_t i = 0; i < old_ids.size(); ++i) {
      auto it = segments_.find(old_ids[i]);
      if (it == segments_.end()) continue;
      const auto& current = it->second.meta.deletes;
      if (current == scanned_deletes[i] || current == nullptr) continue;
      for (uint32_t off = 0; off < current->size(); ++off) {
        bool now = current->Get(off);
        bool before =
            scanned_deletes[i] != nullptr && scanned_deletes[i]->Get(off);
        if (now && !before) {
          auto [seg_idx, new_off] = mapping.where[i][off];
          if (seg_idx != RowMapping::kDropped) {
            new_deletes[seg_idx].Set(new_off);
            any_new_delete = true;
          }
        }
      }
    }
    for (size_t s = 0; s < new_metas.size(); ++s) {
      if (any_new_delete && !new_deletes[s].NoneSet()) {
        new_metas[s].deletes =
            std::make_shared<const BitVector>(std::move(new_deletes[s]));
      }
    }

    LogRecord rec;
    rec.txn_id = h.id;
    rec.type = LogRecordType::kSegmentMerge;
    PutLengthPrefixed(&rec.payload, name_);
    PutVarint64(&rec.payload, old_ids.size());
    for (uint64_t id : old_ids) PutVarint64(&rec.payload, id);
    PutVarint64(&rec.payload, new_metas.size());
    for (const SegmentMeta& meta : new_metas) meta.EncodeTo(&rec.payload);
    log_->Append(rec);
    Status cs = log_->Commit(h.id);
    if (!cs.ok()) {
      txns_->Abort(h.id);
      for (const SegmentMeta& meta : new_metas) {
        (void)files_->Remove(meta.file_name);
      }
      return cs;
    }
    Timestamp cts = txns_->PrepareCommit(h.id);

    // Install: drop old, add new, rebuild run bookkeeping. New segments
    // register their index entries before becoming visible; old ones turn
    // dead in the liveness set so index lookups skip them lazily.
    {
      std::lock_guard<std::mutex> live(live_mu_);
      for (uint64_t id : old_ids) live_segments_.erase(id);
      for (const SegmentMeta& meta : new_metas) {
        live_segments_.insert(meta.id);
      }
    }
    for (uint64_t id : old_ids) {
      auto it = segments_.find(id);
      if (it != segments_.end()) it->second.dropped_ts = cts;
    }
    SortedRun merged_run;
    for (size_t s = 0; s < new_metas.size(); ++s) {
      SegmentEntry entry;
      entry.created_ts = cts;
      entry.segment = new_opened[s];
      entry.delete_history.emplace_back(cts, new_metas[s].deletes);
      uint64_t id = new_metas[s].id;
      merged_run.segment_ids.push_back(id);
      merged_run.total_rows += new_metas[s].live_rows();
      entry.meta = new_metas[s];
      S2_RETURN_NOT_OK(AddSegmentToIndexes(id, new_opened[s]));
      entry.indexed = true;
      segments_[id] = std::move(entry);
      stats_.segments_created.fetch_add(1);
    }
    std::sort(picked.begin(), picked.end());
    for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
      runs_.erase(runs_.begin() + static_cast<long>(*it));
    }
    if (!merged_run.segment_ids.empty()) runs_.push_back(merged_run);

    txns_->FinishCommit(h.id, cts);
  }
  for (IndexState& state : column_indexes_) state.global->Maintain();
  for (IndexState& state : tuple_indexes_) state.global->Maintain();
  stats_.merges.fetch_add(1);
  S2_COUNTER("s2_merge_total").Add();
  S2_HISTOGRAM("s2_merge_ns").Record(merge_timer.ElapsedNs());
  S2_JOURNAL("storage", "merge",
             "table=" + name_ +
                 " segments_in=" + std::to_string(old_ids.size()) +
                 " segments_out=" + std::to_string(new_metas.size()));
  merge_span.Count("segments_in", static_cast<int64_t>(old_ids.size()));
  merge_span.Count("segments_out", static_cast<int64_t>(new_metas.size()));
  return true;
}

void UnifiedTable::Vacuum(Timestamp oldest_active) {
  rowstore_->Purge(oldest_active);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    for (auto it = segments_.begin(); it != segments_.end();) {
      SegmentEntry& entry = it->second;
      // Trim delete-vector history no snapshot can read anymore (keep the
      // newest version at or below the horizon).
      while (entry.delete_history.size() > 1 &&
             entry.delete_history[1].first <= oldest_active) {
        entry.delete_history.erase(entry.delete_history.begin());
      }
      if (entry.dropped_ts <= oldest_active) {
        (void)files_->Remove(entry.meta.file_name);
        it = segments_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (IndexState& state : column_indexes_) state.global->Maintain();
  for (IndexState& state : tuple_indexes_) state.global->Maintain();
}

// ---------------------------------------------------------------------------
// Commit integration
// ---------------------------------------------------------------------------

void UnifiedTable::StampCommit(TxnId txn, Timestamp commit_ts) {
  rowstore_->CommitTxn(txn, commit_ts);
  // Apply staged replay operations (segment installs) at the commit ts.
  std::vector<StagedOp> staged;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = staged_.find(txn);
    if (it != staged_.end()) {
      staged = std::move(it->second);
      staged_.erase(it);
    }
  }
  for (StagedOp& op : staged) {
    switch (op.kind) {
      case StagedOp::kFlush: {
        auto file = files_->Read(op.meta.file_name);
        std::shared_ptr<Segment> opened;
        if (file.ok()) {
          auto seg = Segment::Open(*file);
          if (seg.ok()) opened = *seg;
        }
        SegmentMeta meta_copy = op.meta;
        (void)RegisterSegment(std::move(meta_copy), commit_ts,
                              /*new_sorted_run=*/true, opened);
        break;
      }
      case StagedOp::kMetadataUpdate: {
        std::lock_guard<std::mutex> lock(meta_mu_);
        auto it = segments_.find(op.segment_id);
        if (it != segments_.end()) {
          it->second.meta.deletes = op.deletes;
          it->second.delete_history.emplace_back(commit_ts, op.deletes);
        }
        break;
      }
      case StagedOp::kMerge: {
        // Drop old segments, register new ones as one run.
        {
          std::lock_guard<std::mutex> live(live_mu_);
          for (uint64_t id : op.old_ids) live_segments_.erase(id);
        }
        {
          std::lock_guard<std::mutex> lock(meta_mu_);
          std::unordered_set<uint64_t> old_set(op.old_ids.begin(),
                                               op.old_ids.end());
          for (uint64_t id : op.old_ids) {
            auto it = segments_.find(id);
            if (it != segments_.end()) it->second.dropped_ts = commit_ts;
          }
          for (auto it = runs_.begin(); it != runs_.end();) {
            bool overlaps = false;
            for (uint64_t id : it->segment_ids) {
              if (old_set.count(id) > 0) overlaps = true;
            }
            it = overlaps ? runs_.erase(it) : it + 1;
          }
        }
        SortedRun run;
        for (SegmentMeta& meta : op.new_metas) {
          auto file = files_->Read(meta.file_name);
          std::shared_ptr<Segment> opened;
          if (file.ok()) {
            auto seg = Segment::Open(*file);
            if (seg.ok()) opened = *seg;
          }
          uint64_t id = meta.id;
          run.segment_ids.push_back(id);
          run.total_rows += meta.live_rows();
          (void)RegisterSegment(std::move(meta), commit_ts,
                                /*new_sorted_run=*/false, opened);
        }
        {
          std::lock_guard<std::mutex> lock(meta_mu_);
          if (!run.segment_ids.empty()) runs_.push_back(run);
        }
        break;
      }
    }
  }
  key_locks_.UnlockAll(txn);
}

void UnifiedTable::AbortTxn(TxnId txn) {
  rowstore_->AbortTxn(txn);
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    staged_.erase(txn);
  }
  key_locks_.UnlockAll(txn);
}

// ---------------------------------------------------------------------------
// Snapshot & replay
// ---------------------------------------------------------------------------

void UnifiedTable::SerializeState(std::string* dst) const {
  options_.EncodeTo(dst);
  PutVarint64(dst, static_cast<uint64_t>(next_rowid_.load()));
  PutVarint64(dst, next_segment_id_.load());
  std::string rowstore_snap =
      rowstore_->SerializeSnapshot(txns_->watermark());
  PutLengthPrefixed(dst, rowstore_snap);
  std::lock_guard<std::mutex> lock(meta_mu_);
  uint64_t live = 0;
  for (const auto& [id, entry] : segments_) {
    if (entry.dropped_ts == kTsMax) ++live;
  }
  PutVarint64(dst, live);
  for (const auto& [id, entry] : segments_) {
    if (entry.dropped_ts == kTsMax) entry.meta.EncodeTo(dst);
  }
  PutVarint64(dst, runs_.size());
  for (const SortedRun& run : runs_) {
    PutVarint64(dst, run.segment_ids.size());
    for (uint64_t id : run.segment_ids) PutVarint64(dst, id);
    PutVarint64(dst, run.total_rows);
  }
}

Status UnifiedTable::RestoreState(Slice* input) {
  // `options_` was already decoded by the caller to construct the table;
  // skip past it.
  S2_RETURN_NOT_OK(TableOptions::DecodeFrom(input).status());
  S2_ASSIGN_OR_RETURN(uint64_t next_rowid, GetVarint64(input));
  S2_ASSIGN_OR_RETURN(uint64_t next_segment, GetVarint64(input));
  next_rowid_.store(static_cast<int64_t>(next_rowid));
  next_segment_id_.store(next_segment);
  S2_ASSIGN_OR_RETURN(Slice rowstore_snap, GetLengthPrefixed(input));
  S2_RETURN_NOT_OK(rowstore_->RestoreSnapshot(rowstore_snap, 1));
  S2_ASSIGN_OR_RETURN(uint64_t num_segments, GetVarint64(input));
  for (uint64_t s = 0; s < num_segments; ++s) {
    S2_ASSIGN_OR_RETURN(SegmentMeta meta, SegmentMeta::DecodeFrom(input));
    S2_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> file,
                        files_->Read(meta.file_name));
    S2_ASSIGN_OR_RETURN(std::shared_ptr<Segment> opened, Segment::Open(file));
    S2_RETURN_NOT_OK(RegisterSegment(std::move(meta), /*created_ts=*/0,
                                     /*new_sorted_run=*/false, opened));
  }
  S2_ASSIGN_OR_RETURN(uint64_t num_runs, GetVarint64(input));
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (uint64_t r = 0; r < num_runs; ++r) {
    SortedRun run;
    S2_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(input));
    for (uint64_t i = 0; i < n; ++i) {
      S2_ASSIGN_OR_RETURN(uint64_t id, GetVarint64(input));
      run.segment_ids.push_back(id);
    }
    S2_ASSIGN_OR_RETURN(run.total_rows, GetVarint64(input));
    runs_.push_back(std::move(run));
  }
  return Status::OK();
}

Status UnifiedTable::ReplayInsert(TxnId txn, Slice payload) {
  if (payload.empty()) return Status::Corruption("empty insert payload");
  bool system = (payload[0] & kFlagSystemRows) != 0;
  payload.RemovePrefix(1);
  S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&payload));
  for (uint64_t i = 0; i < count; ++i) {
    Row row;
    row.reserve(rowstore_schema_.num_columns());
    for (size_t c = 0; c < rowstore_schema_.num_columns(); ++c) {
      S2_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&payload));
      row.push_back(std::move(v));
    }
    int64_t rowid = row.back().as_int();
    uint64_t next = static_cast<uint64_t>(next_rowid_.load());
    if (rowid >= 0 && static_cast<uint64_t>(rowid) >= next &&
        static_cast<uint64_t>(rowid) < (uint64_t{1} << 62)) {
      next_rowid_.store(rowid + 1);
    }
    Status st = system ? rowstore_->InsertMoved(txn, row)
                       : rowstore_->Insert(txn, kTsMax, row);
    if (st.IsAlreadyExists() && system) continue;
    S2_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status UnifiedTable::ReplayDelete(TxnId txn, Slice payload) {
  S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&payload));
  for (uint64_t i = 0; i < count; ++i) {
    S2_ASSIGN_OR_RETURN(uint64_t z, GetVarint64(&payload));
    int64_t rowid = ZigZagDecode(z);
    S2_RETURN_NOT_OK(rowstore_->DeleteLatest(txn, kTsMax, {Value(rowid)}));
  }
  return Status::OK();
}

Status UnifiedTable::ReplaySegmentFlush(TxnId txn, Slice payload) {
  S2_ASSIGN_OR_RETURN(SegmentMeta meta, SegmentMeta::DecodeFrom(&payload));
  S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&payload));
  for (uint64_t i = 0; i < count; ++i) {
    S2_ASSIGN_OR_RETURN(uint64_t z, GetVarint64(&payload));
    int64_t rowid = ZigZagDecode(z);
    S2_RETURN_NOT_OK(rowstore_->DeleteLatest(txn, kTsMax, {Value(rowid)}));
  }
  StagedOp op;
  op.kind = StagedOp::kFlush;
  op.meta = std::move(meta);
  std::lock_guard<std::mutex> lock(meta_mu_);
  staged_[txn].push_back(std::move(op));
  return Status::OK();
}

Status UnifiedTable::ReplayMetadataUpdate(TxnId txn, Slice payload,
                                          Timestamp /*commit_ts*/) {
  S2_ASSIGN_OR_RETURN(uint64_t segment_id, GetVarint64(&payload));
  S2_ASSIGN_OR_RETURN(BitVector bv, BitVector::DecodeFrom(&payload));
  StagedOp op;
  op.kind = StagedOp::kMetadataUpdate;
  op.segment_id = segment_id;
  op.deletes = std::make_shared<const BitVector>(std::move(bv));
  std::lock_guard<std::mutex> lock(meta_mu_);
  staged_[txn].push_back(std::move(op));
  return Status::OK();
}

Status UnifiedTable::ReplaySegmentMerge(TxnId txn, Slice payload) {
  StagedOp op;
  op.kind = StagedOp::kMerge;
  S2_ASSIGN_OR_RETURN(uint64_t num_old, GetVarint64(&payload));
  for (uint64_t i = 0; i < num_old; ++i) {
    S2_ASSIGN_OR_RETURN(uint64_t id, GetVarint64(&payload));
    op.old_ids.push_back(id);
  }
  S2_ASSIGN_OR_RETURN(uint64_t num_new, GetVarint64(&payload));
  for (uint64_t i = 0; i < num_new; ++i) {
    S2_ASSIGN_OR_RETURN(SegmentMeta meta, SegmentMeta::DecodeFrom(&payload));
    op.new_metas.push_back(std::move(meta));
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  staged_[txn].push_back(std::move(op));
  return Status::OK();
}

}  // namespace s2
