#ifndef S2_STORAGE_UNIFIED_TABLE_H_
#define S2_STORAGE_UNIFIED_TABLE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "blob/data_file_store.h"
#include "columnstore/merger.h"
#include "columnstore/segment.h"
#include "columnstore/segment_meta.h"
#include "common/result.h"
#include "common/types.h"
#include "index/global_index.h"
#include "index/key_lock_manager.h"
#include "log/partition_log.h"
#include "rowstore/rowstore_table.h"
#include "storage/table_options.h"
#include "txn/txn_manager.h"

namespace s2 {

/// A consistent view of one columnstore segment at a snapshot: the opened
/// immutable file plus the delete bit-vector version visible at the
/// snapshot timestamp.
struct SegmentSnapshot {
  uint64_t id = 0;
  std::shared_ptr<Segment> segment;
  std::shared_ptr<const BitVector> deletes;  // null == nothing deleted
};

/// An index hit within one segment: where to read the postings list.
struct SegmentIndexMatch {
  SegmentSnapshot snapshot;
  uint32_t postings_offset = 0;
};

/// Running counters for benchmarks and tests.
struct TableStats {
  std::atomic<uint64_t> rows_inserted{0};
  std::atomic<uint64_t> rows_deleted{0};
  std::atomic<uint64_t> rows_updated{0};
  std::atomic<uint64_t> rows_moved{0};       // move-transaction copies
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> merges{0};
  std::atomic<uint64_t> segments_created{0};
};

/// Unified table storage (paper Section 4): a columnstore LSM whose level 0
/// is the in-memory MVCC rowstore, with delete bit-vectors instead of
/// tombstones, two-level secondary indexes, uniqueness enforcement, and
/// row-level locking via move transactions.
///
/// The table does not own transactions: callers begin/commit through the
/// Partition, which stamps rowstore versions across all its tables and
/// writes the log commit record. Everything the table logs is replayable
/// (see Partition recovery).
class UnifiedTable {
 public:
  UnifiedTable(std::string name, TableOptions options, PartitionLog* log,
               DataFileStore* files, TxnManager* txns);
  ~UnifiedTable();

  UnifiedTable(const UnifiedTable&) = delete;
  UnifiedTable& operator=(const UnifiedTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return options_.schema; }
  const TableOptions& options() const { return options_; }
  const TableStats& stats() const { return stats_; }

  // ------------------------------------------------------------------
  // Writes (called within a Partition transaction)
  // ------------------------------------------------------------------

  /// Inserts a batch. With a unique key, performs the Section 4.1.2
  /// procedure: lock key values, probe the indexes for duplicates, then
  /// apply `policy` to conflicting rows. Returns the number of rows
  /// actually inserted/updated.
  Result<size_t> InsertRows(TxnId txn, Timestamp read_ts,
                            const std::vector<Row>& rows,
                            DupPolicy policy = DupPolicy::kError);

  /// Deletes/updates one located row. Rows in segments are first moved to
  /// the rowstore by an autonomous move transaction (Section 4.2).
  Status DeleteLocated(TxnId txn, Timestamp read_ts, const RowLocation& loc);
  Status UpdateLocated(TxnId txn, Timestamp read_ts, const RowLocation& loc,
                       const Row& new_row);

  /// Convenience: locate by unique key (latest state) then delete/update.
  Status DeleteByKey(TxnId txn, Timestamp read_ts, const Row& key);
  Status UpdateByKey(TxnId txn, Timestamp read_ts, const Row& key,
                     const Row& new_row);

  // ------------------------------------------------------------------
  // Reads
  // ------------------------------------------------------------------

  /// Point/seek read through the secondary index machinery: rowstore index
  /// seek + global index -> per-segment postings. `index_cols` must equal
  /// one of the declared indexes (or the unique key, or a prefix subset of
  /// a multi-column index — per-column indexes are consulted
  /// independently). cb returns false to stop.
  Status LookupByIndex(TxnId txn, Timestamp read_ts,
                       const std::vector<int>& index_cols, const Row& values,
                       const std::function<bool(const Row&,
                                                const RowLocation&)>& cb);

  /// Scans the level-0 rowstore (visible rows), yielding user rows and
  /// their locations.
  void ScanRowstore(TxnId txn, Timestamp read_ts,
                    const std::function<bool(const Row&, const RowLocation&)>&
                        cb) const;

  /// Segment set visible at the snapshot, with per-segment delete vectors.
  Result<std::vector<SegmentSnapshot>> GetSegments(Timestamp read_ts);

  /// Global-index probe for one column value: returns matches restricted
  /// to segments visible at read_ts. The caller reads postings from each
  /// match's segment inverted index.
  Result<std::vector<SegmentIndexMatch>> IndexLookupSegments(
      int col, const Value& value, Timestamp read_ts);

  /// Number of distinct hash-table probes a point lookup on `col` costs
  /// right now (the O(log N) the paper contrasts with O(N) per-segment
  /// checks).
  size_t IndexProbeTables(int col) const;

  /// Approximate total live rows (rowstore + segments) at latest.
  uint64_t ApproxRowCount() const;

  size_t NumSegments() const;
  size_t RowstoreRows() const { return rowstore_->num_nodes(); }

  // ------------------------------------------------------------------
  // Introspection (the engine's SystemTables layer renders these)
  // ------------------------------------------------------------------

  /// One catalog row per known segment (live and recently merged-away):
  /// metadata the zone maps use plus, when the segment file is open, its
  /// per-column encodings.
  struct SegmentDebugInfo {
    uint64_t id = 0;
    std::string file_name;
    uint32_t num_rows = 0;
    uint32_t deleted_rows = 0;
    bool live = true;  // false once merged away (awaiting vacuum)
    Timestamp created_ts = 0;
    std::string min_max;    // per-column "min..max" joined with ';'
    std::string encodings;  // per-column encodings when open, else empty
  };
  std::vector<SegmentDebugInfo> DebugSegments() const;

  /// Shape of the sorted-run tree (LSM state above level 0).
  struct RunDebugInfo {
    size_t num_segments = 0;
    uint64_t total_rows = 0;
  };
  std::vector<RunDebugInfo> DebugRuns() const;

  // ------------------------------------------------------------------
  // Maintenance (autonomous transactions)
  // ------------------------------------------------------------------

  /// Converts up to segment_rows committed rowstore rows into a segment.
  /// Returns the number of rows flushed (0 when nothing to flush).
  Result<size_t> FlushRowstore();

  /// Whether a flush is warranted per the flush threshold.
  bool NeedsFlush() const {
    return rowstore_->num_nodes() >= options_.flush_threshold;
  }

  /// Runs one round of LSM merging if the run count exceeds the budget.
  /// Returns true if a merge happened.
  Result<bool> MaybeMergeRuns();

  /// Background index maintenance + version GC below `oldest_active`.
  void Vacuum(Timestamp oldest_active);

  // ------------------------------------------------------------------
  // Commit integration (called by Partition)
  // ------------------------------------------------------------------

  void StampCommit(TxnId txn, Timestamp commit_ts);
  void AbortTxn(TxnId txn);

  // ------------------------------------------------------------------
  // Snapshot & replay (called by Partition recovery)
  // ------------------------------------------------------------------

  void SerializeState(std::string* dst) const;
  Status RestoreState(Slice* input);

  Status ReplayInsert(TxnId txn, Slice payload);
  Status ReplayDelete(TxnId txn, Slice payload);
  Status ReplaySegmentFlush(TxnId txn, Slice payload);
  Status ReplayMetadataUpdate(TxnId txn, Slice payload,
                              Timestamp commit_ts);
  Status ReplaySegmentMerge(TxnId txn, Slice payload);

 private:
  struct SegmentEntry {
    SegmentMeta meta;  // meta.deletes mirrors the latest delete version
    Timestamp created_ts = 0;
    Timestamp dropped_ts = kTsMax;
    std::shared_ptr<Segment> segment;  // lazily opened
    /// Whether global-index entries were registered (replicas may install
    /// metadata before the data file arrives; indexing then happens at
    /// first open).
    bool indexed = false;
    // Delete vector history, ascending commit ts (for snapshot reads).
    std::vector<std::pair<Timestamp, std::shared_ptr<const BitVector>>>
        delete_history;
  };

  struct IndexState {
    std::vector<int> cols;  // single column, or a tuple for multi-col
    std::unique_ptr<GlobalIndex> global;
  };

  // Hidden rowid construction. Fresh inserts get sequential ids; moved
  // rows get a deterministic id derived from their segment location, so
  // concurrent movers of the same row collide on the same rowstore key
  // (the rowstore primary key acts as the row-lock manager, Section 4.2).
  int64_t NextRowId() { return next_rowid_.fetch_add(1); }
  static int64_t MovedRowId(uint64_t segment_id, uint32_t offset) {
    return static_cast<int64_t>((uint64_t{1} << 62) | (segment_id << 24) |
                                offset);
  }

  Row WithRowId(const Row& row, int64_t rowid) const;

  Result<std::shared_ptr<Segment>> OpenSegmentLocked(SegmentEntry* entry);
  std::shared_ptr<const BitVector> DeletesAt(const SegmentEntry& entry,
                                             Timestamp ts) const;

  /// Latest-state duplicate probe for uniqueness enforcement.
  Result<bool> FindDuplicate(TxnId txn, const Row& key_values,
                             RowLocation* loc);

  /// Moves segment rows into the rowstore in an autonomous transaction
  /// that commits immediately (logical table content unchanged). The
  /// caller then mutates the moved copies under their own row locks.
  Status MoveRows(uint64_t segment_id,
                  const std::vector<uint32_t>& offsets);

  /// Index-driven segment-row lookup shared by LookupByIndex and
  /// uniqueness checks: per-column global index probes narrowed by the
  /// tuple index, postings intersection, delete-bit check. cb gets
  /// (row, segment_id, offset) and returns false to stop; returns whether
  /// any row was found.
  Result<bool> LookupSegmentsByCols(
      const std::vector<int>& cols, const Row& values, Timestamp read_ts,
      const std::function<bool(const Row&, uint64_t, uint32_t)>& cb);

  /// Installs a freshly built segment (flush/merge/replay share this).
  Status RegisterSegment(SegmentMeta meta, Timestamp created_ts,
                         bool new_sorted_run,
                         const std::shared_ptr<Segment>& opened);

  /// Builds file bytes + aux index blocks for `rows` (already sorted), and
  /// the metadata. Returns (file bytes, meta).
  Result<std::pair<std::string, SegmentMeta>> BuildSegment(
      const std::vector<Row>& rows, uint64_t segment_id, Lsn lsn);

  /// Rebuilds global-index entries for a segment from its aux blocks.
  Status AddSegmentToIndexes(uint64_t segment_id,
                             const std::shared_ptr<Segment>& segment);

  bool SegmentLiveLatest(uint64_t id) const;

  std::string name_;
  TableOptions options_;
  PartitionLog* log_;
  DataFileStore* files_;
  TxnManager* txns_;

  Schema rowstore_schema_;  // user schema + hidden $rowid column
  std::unique_ptr<RowStoreTable> rowstore_;
  KeyLockManager key_locks_;

  mutable std::mutex meta_mu_;
  std::map<uint64_t, SegmentEntry> segments_;
  /// Live (not merged-away) segment ids, guarded by its own leaf lock so
  /// the global indexes' liveness callback never takes meta_mu_.
  mutable std::mutex live_mu_;
  std::unordered_set<uint64_t> live_segments_;
  std::vector<SortedRun> runs_;
  std::atomic<int64_t> next_rowid_{1};
  std::atomic<uint64_t> next_segment_id_{1};

  std::vector<IndexState> column_indexes_;  // one per distinct indexed col
  std::vector<IndexState> tuple_indexes_;   // multi-col indexes + unique key
  std::vector<std::vector<int>> rowstore_index_cols_;  // rowstore index map

  /// Replayed metadata operations staged per transaction; applied with the
  /// commit timestamp in StampCommit.
  struct StagedOp {
    enum Kind { kFlush, kMetadataUpdate, kMerge } kind = kFlush;
    SegmentMeta meta;                        // kFlush
    uint64_t segment_id = 0;                 // kMetadataUpdate
    std::shared_ptr<const BitVector> deletes;  // kMetadataUpdate
    std::vector<uint64_t> old_ids;           // kMerge
    std::vector<SegmentMeta> new_metas;      // kMerge
  };
  std::map<TxnId, std::vector<StagedOp>> staged_;  // guarded by meta_mu_

  std::mutex maintenance_mu_;  // serializes flush/merge
  TableStats stats_;
};

}  // namespace s2

#endif  // S2_STORAGE_UNIFIED_TABLE_H_
