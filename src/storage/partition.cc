#include "storage/partition.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/env.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/profile.h"

namespace s2 {

Partition::Partition(PartitionOptions options)
    : options_(std::move(options)),
      snapshots_(options_.dir + "/snapshots", options_.env) {}

Partition::~Partition() = default;

Status Partition::Init() {
  Env* env = options_.env != nullptr ? options_.env : Env::Default();
  S2_RETURN_NOT_OK(env->CreateDirs(options_.dir));
  LogOptions log_options;
  log_options.dir = options_.dir;
  log_options.page_size = options_.log_page_size;
  log_options.sync_to_disk = options_.sync_to_disk;
  log_options.env = options_.env;
  S2_ASSIGN_OR_RETURN(log_, PartitionLog::Open(log_options));

  DataFileStoreOptions file_options;
  file_options.blob_prefix = options_.blob_prefix + "files/";
  file_options.local_dir = options_.dir + "/files";
  file_options.local_cache_bytes = options_.cache_bytes;
  file_options.background_uploads = options_.background_uploads;
  file_options.executor = options_.executor;
  file_options.env = options_.env;
  files_ = std::make_unique<DataFileStore>(options_.blob, file_options);

  return Recover();
}

Result<UnifiedTable*> Partition::CreateTableInternal(
    const std::string& name, const TableOptions& options) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  auto table = std::make_unique<UnifiedTable>(name, options, log_.get(),
                                              files_.get(), &txns_);
  UnifiedTable* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<UnifiedTable*> Partition::CreateTable(const std::string& name,
                                             const TableOptions& options) {
  S2_ASSIGN_OR_RETURN(UnifiedTable * table,
                      CreateTableInternal(name, options));
  TxnManager::TxnHandle h = txns_.Begin();
  LogRecord rec;
  rec.txn_id = h.id;
  rec.type = LogRecordType::kDdl;
  PutLengthPrefixed(&rec.payload, name);
  options.EncodeTo(&rec.payload);
  log_->Append(rec);
  Status cs = log_->Commit(h.id);
  txns_.EndRead(h.id);
  if (!cs.ok()) return cs;
  return table;
}

Result<UnifiedTable*> Partition::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table " + name);
  return it->second.get();
}

std::vector<std::string> Partition::TableNames() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

TxnManager::TxnHandle Partition::Begin() { return txns_.Begin(); }

Status Partition::Commit(TxnId txn) {
  // Times the commit up to the visibility point (FinishCommit); the
  // best-effort auto-maintenance below is not commit latency, and failed
  // commits are not latency samples.
  ScopedTimer commit_timer(nullptr);
  // Durability before visibility: the commit record must be replicated
  // (acked) before any version becomes visible. On failure the caller can
  // retry Commit or Abort; nothing is visible yet.
  {
    ScopedTimer log_timer(nullptr);
    Status s = log_->Commit(txn);
    ProfileCollector::CountHere("log_commit_wait_ns",
                                static_cast<int64_t>(log_timer.ElapsedNs()));
    S2_RETURN_NOT_OK(s);
  }
  if (options_.sync_blob_commit && options_.blob != nullptr) {
    // CDW baseline: pay the blob round-trip on the commit path.
    S2_RETURN_NOT_OK(UploadToBlob());
  }
  Timestamp cts = txns_.PrepareCommit(txn);
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, table] : tables_) table->StampCommit(txn, cts);
  }
  txns_.FinishCommit(txn, cts);
  S2_HISTOGRAM("s2_txn_commit_ns").Record(commit_timer.ElapsedNs());
  ProfileCollector::CountHere("commit_wait_ns",
                              static_cast<int64_t>(commit_timer.ElapsedNs()));
  if (options_.auto_maintain) {
    std::vector<UnifiedTable*> to_flush;
    {
      std::lock_guard<std::mutex> lock(tables_mu_);
      for (auto& [name, table] : tables_) {
        if (table->NeedsFlush()) to_flush.push_back(table.get());
      }
    }
    (void)MaintainTables(to_flush, /*best_effort=*/true);
  }
  return Status::OK();
}

void Partition::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, table] : tables_) table->AbortTxn(txn);
  }
  log_->Abort(txn);
  txns_.Abort(txn);
}

void Partition::EndRead(TxnId txn) { txns_.EndRead(txn); }

Status Partition::Maintain() {
  std::vector<UnifiedTable*> tables;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, table] : tables_) tables.push_back(table.get());
  }
  S2_RETURN_NOT_OK(MaintainTables(tables, /*best_effort=*/false));
  if (options_.blob != nullptr) return UploadToBlob();
  return Status::OK();
}

Status Partition::MaintainTables(const std::vector<UnifiedTable*>& tables,
                                 bool best_effort) {
  auto maintain_one = [this, best_effort](UnifiedTable* table) -> Status {
    if (best_effort) {
      (void)table->FlushRowstore();
      (void)table->MaybeMergeRuns();
    } else {
      S2_RETURN_NOT_OK(table->FlushRowstore().status());
      S2_RETURN_NOT_OK(table->MaybeMergeRuns().status());
    }
    table->Vacuum(txns_.oldest_active());
    return Status::OK();
  };
  Executor* ex = options_.executor;
  if (ex != nullptr && ex->num_threads() > 1 && tables.size() > 1) {
    // Tables are independent (each flush/merge serializes internally on
    // the table's own maintenance mutex; log appends serialize in the
    // log), so their maintenance can proceed concurrently. Workers
    // re-attach to this thread's profile span so flush/merge spans from
    // pool threads land under the partition's maintenance node.
    ProfileCollector::Attachment att = ProfileCollector::Current();
    return ex->ParallelFor(tables.size(), [&](size_t i) {
      ProfileScope profile_scope(att.collector, att.node);
      return maintain_one(tables[i]);
    });
  }
  for (UnifiedTable* table : tables) S2_RETURN_NOT_OK(maintain_one(table));
  return Status::OK();
}

Status Partition::WriteSnapshot() {
  std::string payload;
  Lsn lsn;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    lsn = log_->durable_lsn();
    PutVarint64(&payload, tables_.size());
    for (const auto& [name, table] : tables_) {
      PutLengthPrefixed(&payload, name);
      std::string state;
      table->SerializeState(&state);
      PutLengthPrefixed(&payload, state);
    }
  }
  S2_RETURN_NOT_OK(snapshots_.Write(lsn, payload));
  S2_JOURNAL("storage", "snapshot",
             "dir=" + options_.dir + " lsn=" + std::to_string(lsn) +
                 " bytes=" + std::to_string(payload.size()));
  if (options_.blob != nullptr) {
    // Snapshots go straight to blob storage (paper Section 3.1: replicas
    // fetch them from there instead of taking their own).
    std::string crc_payload = payload;  // blob copy reuses the local format
    S2_RETURN_NOT_OK(options_.blob->Put(
        options_.blob_prefix + "snap/" + SnapshotStore::FileName(lsn),
        crc_payload));
    S2_RETURN_NOT_OK(UploadToBlob());
  }
  return Status::OK();
}

std::string Partition::LogChunkKey(const std::string& prefix, Lsn from,
                                   Lsn to) {
  char buf[64];
  snprintf(buf, sizeof(buf), "log/%020" PRIu64 "-%020" PRIu64, from, to);
  return prefix + buf;
}

Status Partition::UploadToBlob() {
  if (options_.blob == nullptr) return Status::OK();
  S2_RETURN_NOT_OK(files_->DrainUploads());
  std::lock_guard<std::mutex> lock(upload_mu_);
  Lsn durable = log_->durable_lsn();
  if (durable > log_uploaded_) {
    // Upload the sealed, fully replicated log range as an immutable chunk.
    // The tail past the durable LSN is never uploaded (Section 3.1).
    S2_ASSIGN_OR_RETURN(std::string chunk,
                        log_->ReadRange(log_uploaded_, durable));
    S2_RETURN_NOT_OK(options_.blob->Put(
        LogChunkKey(options_.blob_prefix, log_uploaded_, durable), chunk));
    log_uploaded_ = durable;
  }
  return Status::OK();
}

Lsn Partition::LogUploadedLsn() const {
  std::lock_guard<std::mutex> lock(upload_mu_);
  return log_uploaded_;
}

Status Partition::Recover() {
  Lsn replay_from = 0;
  Lsn replay_to = options_.recover_to_lsn;
  auto snapshot = snapshots_.LatestAtOrBelow(
      replay_to == 0 ? ~Lsn{0} : replay_to);
  if (snapshot.ok()) {
    replay_from = snapshot->first;
    Slice in(snapshot->second);
    S2_ASSIGN_OR_RETURN(uint64_t num_tables, GetVarint64(&in));
    for (uint64_t t = 0; t < num_tables; ++t) {
      S2_ASSIGN_OR_RETURN(Slice name, GetLengthPrefixed(&in));
      S2_ASSIGN_OR_RETURN(Slice state, GetLengthPrefixed(&in));
      Slice state_in = state;
      // Peek the options to construct the table, then restore its state.
      Slice options_peek = state;
      S2_ASSIGN_OR_RETURN(TableOptions opts,
                          TableOptions::DecodeFrom(&options_peek));
      S2_ASSIGN_OR_RETURN(UnifiedTable * table,
                          CreateTableInternal(name.ToString(), opts));
      S2_RETURN_NOT_OK(table->RestoreState(&state_in));
    }
    txns_.AdvanceTo(2);  // snapshot rows were committed at ts 1
  }

  // Replay the log: buffer records per transaction, apply at commit.
  std::map<TxnId, std::vector<std::pair<LogRecordType, std::string>>> pending;
  Status replay_status = log_->Replay(
      replay_from, replay_to, [&](Lsn, const LogRecord& rec) -> Status {
        switch (rec.type) {
          case LogRecordType::kCommit: {
            auto it = pending.find(rec.txn_id);
            if (it == pending.end()) return Status::OK();
            Status s = ApplyCommittedTxn(rec.txn_id, it->second);
            pending.erase(it);
            return s;
          }
          case LogRecordType::kAbort:
            pending.erase(rec.txn_id);
            return Status::OK();
          default:
            pending[rec.txn_id].emplace_back(rec.type, rec.payload);
            return Status::OK();
        }
      });
  S2_RETURN_NOT_OK(replay_status);
  log_uploaded_ = 0;
  return Status::OK();
}

Status Partition::ApplyCommittedTxn(
    TxnId /*logged_txn*/,
    const std::vector<std::pair<LogRecordType, std::string>>& ops) {
  TxnManager::TxnHandle h = txns_.Begin();
  for (const auto& [type, payload] : ops) {
    Slice in(payload);
    S2_ASSIGN_OR_RETURN(Slice name, GetLengthPrefixed(&in));
    if (type == LogRecordType::kDdl) {
      S2_ASSIGN_OR_RETURN(TableOptions opts, TableOptions::DecodeFrom(&in));
      auto created = CreateTableInternal(name.ToString(), opts);
      if (!created.ok() && !created.status().IsAlreadyExists()) {
        return created.status();
      }
      continue;
    }
    S2_ASSIGN_OR_RETURN(UnifiedTable * table, GetTable(name.ToString()));
    switch (type) {
      case LogRecordType::kInsertRows:
        S2_RETURN_NOT_OK(table->ReplayInsert(h.id, in));
        break;
      case LogRecordType::kDeleteRows:
        S2_RETURN_NOT_OK(table->ReplayDelete(h.id, in));
        break;
      case LogRecordType::kSegmentFlush:
        S2_RETURN_NOT_OK(table->ReplaySegmentFlush(h.id, in));
        break;
      case LogRecordType::kMetadataUpdate:
        S2_RETURN_NOT_OK(table->ReplayMetadataUpdate(h.id, in, 0));
        break;
      case LogRecordType::kSegmentMerge:
        S2_RETURN_NOT_OK(table->ReplaySegmentMerge(h.id, in));
        break;
      default:
        return Status::Corruption("unexpected log record type in replay");
    }
  }
  Timestamp cts = txns_.PrepareCommit(h.id);
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (auto& [name, table] : tables_) table->StampCommit(h.id, cts);
  }
  txns_.FinishCommit(h.id, cts);
  return Status::OK();
}

}  // namespace s2
