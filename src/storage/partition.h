#ifndef S2_STORAGE_PARTITION_H_
#define S2_STORAGE_PARTITION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "blob/data_file_store.h"
#include "common/executor.h"
#include "log/partition_log.h"
#include "log/snapshot.h"
#include "storage/unified_table.h"
#include "txn/txn_manager.h"

namespace s2 {

struct PartitionOptions {
  /// Local directory for the log and snapshot files.
  std::string dir;
  /// Optional blob store for separated storage; null = pure local mode
  /// ("S2DB can run with and without access to a blob store").
  BlobStore* blob = nullptr;
  /// Key prefix in the blob store for this partition.
  std::string blob_prefix;
  /// Local data-file cache budget.
  size_t cache_bytes = 256ull << 20;
  /// fsync the log on commit (off by default, like the paper).
  bool sync_to_disk = false;
  /// Run uploads on a background thread. Tests disable for determinism.
  bool background_uploads = true;
  /// Run flush/merge automatically after commits when thresholds trip.
  bool auto_maintain = true;
  /// Recovery stops at this LSN when nonzero (point-in-time restore).
  Lsn recover_to_lsn = 0;
  /// Cloud-data-warehouse mode: a commit is not acknowledged until the log
  /// chunk and data files are in blob storage. This is the design the
  /// paper argues *against* (Section 3: it "forces hot data to be written
  /// to the blobstore harming write latency"); the CDW baseline uses it.
  bool sync_blob_commit = false;
  size_t log_page_size = 64 * 1024;
  /// Shared executor for background uploads and parallel maintenance. Not
  /// owned; must outlive the partition. Null = Executor::Default() for
  /// uploads and serial maintenance.
  Executor* executor = nullptr;
  /// Filesystem for the log, snapshots, and local data files. Not owned;
  /// null = Env::Default(). Crash tests inject a FaultInjectionEnv.
  Env* env = nullptr;
};

/// One database partition: the unit of durability and replication (paper
/// Section 2). Owns the write-ahead log, the transaction manager, the data
/// file store, and the tables hash-partitioned onto it. The cluster module
/// composes partitions into distributed databases.
class Partition {
 public:
  explicit Partition(PartitionOptions options);
  ~Partition();

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  /// Opens the log and recovers state: latest snapshot at or below the
  /// recovery LSN, then log replay. Must be called before anything else.
  Status Init();

  /// Creates a table; logged as DDL so recovery rebuilds it.
  Result<UnifiedTable*> CreateTable(const std::string& name,
                                    const TableOptions& options);
  Result<UnifiedTable*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // --- transactions spanning this partition's tables ---
  TxnManager::TxnHandle Begin();
  /// Durability then visibility: log commit (replicated) first, then stamp
  /// row versions. On log failure the transaction stays open.
  Status Commit(TxnId txn);
  void Abort(TxnId txn);
  /// Ends a read-only transaction without logging.
  void EndRead(TxnId txn);

  // --- maintenance ---
  /// Flush + merge every table per thresholds; vacuum old versions.
  Status Maintain();
  /// Writes a rowstore snapshot for fast recovery; uploads it (and log
  /// chunks below the durable LSN) to blob storage when configured.
  Status WriteSnapshot();
  /// Pushes durable log chunks and pending data files to blob storage.
  Status UploadToBlob();

  /// Applies one committed transaction's records from a replication stream
  /// (replica partitions apply continuously so they can serve reads and
  /// take over without warm-up).
  Status ApplyReplicated(
      const std::vector<std::pair<LogRecordType, std::string>>& ops) {
    return ApplyCommittedTxn(0, ops);
  }

  PartitionLog* log() { return log_.get(); }
  DataFileStore* files() { return files_.get(); }
  TxnManager* txns() { return &txns_; }
  SnapshotStore* snapshots() { return &snapshots_; }

  /// LSN up to which the log has been uploaded to blob storage; the
  /// distance to durable_lsn() is the blob log-tail replication lag the
  /// replication_lag watchdog folds in (paper Section 3: workspaces follow
  /// the primary through log chunks in blob storage).
  Lsn LogUploadedLsn() const;

  /// Key under which log chunk [from, to) is stored in blob.
  static std::string LogChunkKey(const std::string& prefix, Lsn from, Lsn to);

 private:
  Status Recover();
  /// Flush/merge/vacuum the given tables; runs them as parallel executor
  /// tasks when an executor with >1 thread is configured. `best_effort`
  /// ignores flush/merge errors (the post-commit auto-maintain path).
  Status MaintainTables(const std::vector<UnifiedTable*>& tables,
                        bool best_effort);
  Status ApplyCommittedTxn(
      TxnId logged_txn,
      const std::vector<std::pair<LogRecordType, std::string>>& ops);
  Result<UnifiedTable*> CreateTableInternal(const std::string& name,
                                            const TableOptions& options);

  PartitionOptions options_;
  std::unique_ptr<PartitionLog> log_;
  std::unique_ptr<DataFileStore> files_;
  TxnManager txns_;
  SnapshotStore snapshots_;

  mutable std::mutex tables_mu_;
  std::map<std::string, std::unique_ptr<UnifiedTable>> tables_;

  mutable std::mutex upload_mu_;
  Lsn log_uploaded_ = 0;  // log bytes below this are in blob storage
};

}  // namespace s2

#endif  // S2_STORAGE_PARTITION_H_
