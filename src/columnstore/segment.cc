#include "columnstore/segment.h"

#include <mutex>

#include "common/coding.h"
#include "common/crc32.h"

namespace s2 {

namespace {
constexpr uint32_t kSegmentMagic = 0x53325347;  // "S2SG"
}  // namespace

// --- ColumnStats ---

void ColumnStats::EncodeTo(std::string* dst) const {
  min.EncodeTo(dst);
  max.EncodeTo(dst);
  dst->push_back(has_nulls ? 1 : 0);
}

Result<ColumnStats> ColumnStats::DecodeFrom(Slice* input) {
  ColumnStats stats;
  S2_ASSIGN_OR_RETURN(stats.min, Value::DecodeFrom(input));
  S2_ASSIGN_OR_RETURN(stats.max, Value::DecodeFrom(input));
  if (input->empty()) return Status::Corruption("truncated column stats");
  stats.has_nulls = (*input)[0] != 0;
  input->RemovePrefix(1);
  return stats;
}

bool ColumnStats::MayContain(const Value& v) const {
  if (v.is_null()) return has_nulls;
  if (min.is_null() && max.is_null()) {
    // No non-null values were observed (all-null or empty column).
    return false;
  }
  return min.Compare(v) <= 0 && v.Compare(max) <= 0;
}

bool ColumnStats::MayOverlap(const Value& lo, const Value& hi) const {
  if (min.is_null() && max.is_null()) return false;
  if (!lo.is_null() && max.Compare(lo) < 0) return false;
  if (!hi.is_null() && hi.Compare(min) < 0) return false;
  return true;
}

// --- Segment ---

Result<std::shared_ptr<Segment>> Segment::Open(
    std::shared_ptr<const std::string> file) {
  if (file->size() < 12) return Status::Corruption("segment file too small");
  const char* end = file->data() + file->size();
  uint32_t magic = DecodeFixed32(end - 4);
  if (magic != kSegmentMagic) return Status::Corruption("bad segment magic");
  uint32_t footer_size = DecodeFixed32(end - 8);
  if (footer_size + 8 > file->size()) {
    return Status::Corruption("bad segment footer size");
  }
  // Footer layout: [payload][crc u32][footer_size u32][magic u32] where
  // footer_size covers payload + crc.
  Slice footer(end - 8 - footer_size, footer_size);
  if (footer.size() < 4) return Status::Corruption("segment footer too small");
  Slice payload(footer.data(), footer.size() - 4);
  uint32_t crc = Crc32(payload.data(), payload.size());
  uint32_t stored_crc = DecodeFixed32(footer.data() + footer.size() - 4);
  if (crc != stored_crc) return Status::Corruption("segment footer crc");

  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->file_ = file;
  Slice in = payload;
  S2_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint64(&in));
  S2_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint64(&in));
  segment->num_rows_ = static_cast<uint32_t>(num_rows);
  segment->columns_ = std::vector<ColumnEntry>(num_cols);
  segment->stats_.reserve(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) {
    S2_ASSIGN_OR_RETURN(uint64_t offset, GetVarint64(&in));
    S2_ASSIGN_OR_RETURN(uint64_t size, GetVarint64(&in));
    if (offset + size > file->size()) {
      return Status::Corruption("segment column window out of range");
    }
    segment->columns_[c].offset = offset;
    segment->columns_[c].size = size;
    S2_ASSIGN_OR_RETURN(ColumnStats stats, ColumnStats::DecodeFrom(&in));
    segment->stats_.push_back(std::move(stats));
  }
  S2_ASSIGN_OR_RETURN(uint64_t num_aux, GetVarint64(&in));
  for (uint64_t a = 0; a < num_aux; ++a) {
    S2_ASSIGN_OR_RETURN(Slice name, GetLengthPrefixed(&in));
    S2_ASSIGN_OR_RETURN(uint64_t offset, GetVarint64(&in));
    S2_ASSIGN_OR_RETURN(uint64_t size, GetVarint64(&in));
    if (offset + size > file->size()) {
      return Status::Corruption("segment aux window out of range");
    }
    segment->aux_[name.ToString()] = {offset, size};
  }
  return segment;
}

Result<const ColumnReader*> Segment::column(size_t c) const {
  if (c >= columns_.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  const ColumnEntry& entry = columns_[c];
  Status open_status;
  std::call_once(entry.once, [&] {
    auto reader = OpenColumnAt(file_, entry.offset, entry.size);
    if (reader.ok()) {
      entry.reader = std::move(*reader);
    } else {
      open_status = reader.status();
    }
  });
  if (entry.reader == nullptr) {
    return open_status.ok()
               ? Status::Corruption("segment column failed to open earlier")
               : open_status;
  }
  return entry.reader.get();
}

Result<Slice> Segment::aux_block(const std::string& name) const {
  auto it = aux_.find(name);
  if (it == aux_.end()) return Status::NotFound("no aux block " + name);
  return Slice(file_->data() + it->second.first, it->second.second);
}

Result<Row> Segment::ReadRow(uint32_t r) const {
  if (r >= num_rows_) return Status::OutOfRange("row out of range");
  Row row;
  row.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    S2_ASSIGN_OR_RETURN(const ColumnReader* reader, column(c));
    row.push_back(reader->ValueAt(r));
  }
  return row;
}

// --- SegmentBuilder ---

SegmentBuilder::SegmentBuilder(const Schema& schema) : schema_(schema) {
  columns_.reserve(schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    columns_.emplace_back(col.type);
  }
}

void SegmentBuilder::AddRow(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(row[c]);
  }
  ++num_rows_;
}

void SegmentBuilder::AddColumnVector(size_t col, const ColumnVector& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    columns_[col].Append(data.GetValue(i));
  }
  if (col == columns_.size() - 1) {
    num_rows_ = static_cast<uint32_t>(columns_[0].size());
  }
}

void SegmentBuilder::AddAuxBlock(const std::string& name, std::string bytes) {
  aux_.emplace_back(name, std::move(bytes));
}

Result<std::string> SegmentBuilder::Finish() {
  std::string file;
  PutFixed32(&file, kSegmentMagic);

  std::string footer;
  PutVarint64(&footer, num_rows_);
  PutVarint64(&footer, columns_.size());

  for (ColumnVector& col : columns_) {
    Encoding enc = ChooseEncoding(col);
    S2_ASSIGN_OR_RETURN(std::string block, EncodeColumn(col, enc));
    uint64_t offset = file.size();
    file.append(block);
    PutVarint64(&footer, offset);
    PutVarint64(&footer, block.size());
    // Column stats.
    ColumnStats stats;
    for (size_t i = 0; i < col.size(); ++i) {
      Value v = col.GetValue(i);
      if (v.is_null()) {
        stats.has_nulls = true;
        continue;
      }
      if (stats.min.is_null() || v.Compare(stats.min) < 0) stats.min = v;
      if (stats.max.is_null() || v.Compare(stats.max) > 0) {
        stats.max = std::move(v);
      }
    }
    stats.EncodeTo(&footer);
  }

  PutVarint64(&footer, aux_.size());
  for (auto& [name, bytes] : aux_) {
    uint64_t offset = file.size();
    file.append(bytes);
    PutLengthPrefixed(&footer, name);
    PutVarint64(&footer, offset);
    PutVarint64(&footer, bytes.size());
  }

  PutFixed32(&footer, Crc32(footer.data(), footer.size()));
  uint32_t footer_size = static_cast<uint32_t>(footer.size());
  file.append(footer);
  PutFixed32(&file, footer_size);
  PutFixed32(&file, kSegmentMagic);
  return file;
}

}  // namespace s2
