#ifndef S2_COLUMNSTORE_MERGER_H_
#define S2_COLUMNSTORE_MERGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/result.h"
#include "common/types.h"
#include "columnstore/segment.h"

namespace s2 {

/// One input to a merge: a segment plus its current delete bit vector
/// (null == nothing deleted). Deleted rows are dropped during the merge —
/// this is where delete bit-vector space is reclaimed.
struct MergeInput {
  std::shared_ptr<Segment> segment;
  std::shared_ptr<const BitVector> deletes;
};

/// Where each input row landed: output segment index and row offset, or
/// dropped (deleted). Merges change physical row offsets; the storage layer
/// uses this mapping to (a) remap delete bits set by move transactions that
/// scanned before the merge committed (paper Section 4.2) and (b) rebuild
/// global secondary-index hash tables for the new segments (Section 4.1).
struct RowMapping {
  static constexpr uint32_t kDropped = ~uint32_t{0};
  // per input: per row: (out_segment, out_row); kDropped when deleted.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> where;
};

/// K-way merge of sorted segments into new sorted segments of bounded size.
/// With an empty sort key the inputs are concatenated in order (insertion
/// order preserved), which is also what flushing multiple rowstore chunks
/// uses.
class SegmentMerger {
 public:
  /// `sort_cols` index into the schema; empty means no sort key.
  SegmentMerger(Schema schema, std::vector<int> sort_cols,
                uint32_t max_rows_per_segment);

  /// Runs the merge. Returns the serialized new segment files in order;
  /// fills *mapping when non-null.
  Result<std::vector<std::string>> Merge(const std::vector<MergeInput>& inputs,
                                         RowMapping* mapping) const;

  /// Like Merge but returns the merged rows chunked per output segment,
  /// letting the caller build files with extra aux blocks (inverted
  /// indexes).
  Result<std::vector<std::vector<Row>>> MergeRows(
      const std::vector<MergeInput>& inputs, RowMapping* mapping) const;

 private:
  Schema schema_;
  std::vector<int> sort_cols_;
  uint32_t max_rows_;
};

}  // namespace s2

#endif  // S2_COLUMNSTORE_MERGER_H_
