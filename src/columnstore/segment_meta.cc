#include "columnstore/segment_meta.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>

#include "common/coding.h"

namespace s2 {

void SegmentMeta::EncodeTo(std::string* dst) const {
  PutVarint64(dst, id);
  PutLengthPrefixed(dst, file_name);
  PutVarint64(dst, num_rows);
  PutVarint64(dst, stats.size());
  for (const ColumnStats& s : stats) s.EncodeTo(dst);
  if (deletes != nullptr) {
    dst->push_back(1);
    deletes->EncodeTo(dst);
  } else {
    dst->push_back(0);
  }
}

Result<SegmentMeta> SegmentMeta::DecodeFrom(Slice* input) {
  SegmentMeta meta;
  S2_ASSIGN_OR_RETURN(meta.id, GetVarint64(input));
  S2_ASSIGN_OR_RETURN(Slice name, GetLengthPrefixed(input));
  meta.file_name = name.ToString();
  S2_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint64(input));
  meta.num_rows = static_cast<uint32_t>(num_rows);
  S2_ASSIGN_OR_RETURN(uint64_t num_stats, GetVarint64(input));
  meta.stats.reserve(num_stats);
  for (uint64_t i = 0; i < num_stats; ++i) {
    S2_ASSIGN_OR_RETURN(ColumnStats s, ColumnStats::DecodeFrom(input));
    meta.stats.push_back(std::move(s));
  }
  if (input->empty()) return Status::Corruption("truncated segment meta");
  bool has_deletes = (*input)[0] != 0;
  input->RemovePrefix(1);
  if (has_deletes) {
    S2_ASSIGN_OR_RETURN(BitVector bv, BitVector::DecodeFrom(input));
    meta.deletes = std::make_shared<const BitVector>(std::move(bv));
  }
  return meta;
}

std::string SegmentFileName(uint64_t lsn, uint64_t segment_id) {
  char buf[64];
  snprintf(buf, sizeof(buf), "seg_%020" PRIu64 "_%" PRIu64, lsn, segment_id);
  return buf;
}

std::vector<size_t> PickRunsToMerge(const std::vector<SortedRun>& runs,
                                    size_t max_runs) {
  if (runs.size() <= max_runs) return {};
  // Merge the smallest half (at least 2): amortizes write amplification
  // while shrinking the run count geometrically.
  std::vector<size_t> order(runs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return runs[a].total_rows < runs[b].total_rows;
  });
  size_t take = std::max<size_t>(2, runs.size() - max_runs + 1);
  order.resize(std::min(order.size(), take));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace s2
