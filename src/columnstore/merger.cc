#include "columnstore/merger.h"

#include <algorithm>
#include <queue>

namespace s2 {

namespace {

/// Decoded input segment: all columns materialized for the merge.
struct DecodedInput {
  std::vector<ColumnVector> columns;
  const BitVector* deletes;
  uint32_t num_rows;
};

int CompareRowsAt(const std::vector<DecodedInput>& inputs,
                  const std::vector<int>& sort_cols,
                  std::pair<size_t, uint32_t> a,
                  std::pair<size_t, uint32_t> b) {
  for (int c : sort_cols) {
    Value va = inputs[a.first].columns[c].GetValue(a.second);
    Value vb = inputs[b.first].columns[c].GetValue(b.second);
    int cmp = va.Compare(vb);
    if (cmp != 0) return cmp;
  }
  // Tie-break by input index for a stable merge.
  if (a.first != b.first) return a.first < b.first ? -1 : 1;
  return 0;
}

}  // namespace

SegmentMerger::SegmentMerger(Schema schema, std::vector<int> sort_cols,
                             uint32_t max_rows_per_segment)
    : schema_(std::move(schema)),
      sort_cols_(std::move(sort_cols)),
      max_rows_(max_rows_per_segment == 0 ? 1 : max_rows_per_segment) {}

Result<std::vector<std::string>> SegmentMerger::Merge(
    const std::vector<MergeInput>& inputs, RowMapping* mapping) const {
  S2_ASSIGN_OR_RETURN(std::vector<std::vector<Row>> chunks,
                      MergeRows(inputs, mapping));
  std::vector<std::string> out_files;
  out_files.reserve(chunks.size());
  for (const std::vector<Row>& chunk : chunks) {
    SegmentBuilder builder(schema_);
    for (const Row& row : chunk) builder.AddRow(row);
    S2_ASSIGN_OR_RETURN(std::string file, builder.Finish());
    out_files.push_back(std::move(file));
  }
  return out_files;
}

Result<std::vector<std::vector<Row>>> SegmentMerger::MergeRows(
    const std::vector<MergeInput>& inputs, RowMapping* mapping) const {
  // Decode every input column once.
  std::vector<DecodedInput> decoded;
  decoded.reserve(inputs.size());
  for (const MergeInput& input : inputs) {
    DecodedInput d;
    d.num_rows = input.segment->num_rows();
    d.deletes = input.deletes.get();
    d.columns.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      S2_ASSIGN_OR_RETURN(const ColumnReader* reader, input.segment->column(c));
      ColumnVector col(schema_.column(c).type);
      reader->DecodeAll(&col);
      d.columns.push_back(std::move(col));
    }
    decoded.push_back(std::move(d));
  }

  if (mapping != nullptr) {
    mapping->where.clear();
    for (const DecodedInput& d : decoded) {
      mapping->where.emplace_back(
          d.num_rows,
          std::make_pair(RowMapping::kDropped, RowMapping::kDropped));
    }
  }

  std::vector<std::vector<Row>> chunks;
  auto emit = [&](size_t input_idx, uint32_t row) -> Status {
    if (chunks.empty() || chunks.back().size() >= max_rows_) {
      chunks.emplace_back();
    }
    Row r;
    r.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      r.push_back(decoded[input_idx].columns[c].GetValue(row));
    }
    if (mapping != nullptr) {
      mapping->where[input_idx][row] = {
          static_cast<uint32_t>(chunks.size() - 1),
          static_cast<uint32_t>(chunks.back().size())};
    }
    chunks.back().push_back(std::move(r));
    return Status::OK();
  };

  auto is_deleted = [&](size_t input_idx, uint32_t row) {
    const BitVector* deletes = decoded[input_idx].deletes;
    return deletes != nullptr && deletes->Get(row);
  };

  if (sort_cols_.empty()) {
    // No sort key: concatenate inputs, dropping deleted rows.
    for (size_t i = 0; i < decoded.size(); ++i) {
      for (uint32_t r = 0; r < decoded[i].num_rows; ++r) {
        if (is_deleted(i, r)) continue;
        S2_RETURN_NOT_OK(emit(i, r));
      }
    }
  } else {
    // K-way heap merge by sort key.
    using Cursor = std::pair<size_t, uint32_t>;  // (input, row)
    auto greater = [&](const Cursor& a, const Cursor& b) {
      return CompareRowsAt(decoded, sort_cols_, a, b) > 0;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
        greater);
    auto push_next = [&](size_t input_idx, uint32_t from_row) {
      for (uint32_t r = from_row; r < decoded[input_idx].num_rows; ++r) {
        if (!is_deleted(input_idx, r)) {
          heap.push({input_idx, r});
          return;
        }
      }
    };
    for (size_t i = 0; i < decoded.size(); ++i) push_next(i, 0);
    while (!heap.empty()) {
      auto [input_idx, row] = heap.top();
      heap.pop();
      S2_RETURN_NOT_OK(emit(input_idx, row));
      push_next(input_idx, row + 1);
    }
  }

  return chunks;
}

}  // namespace s2
