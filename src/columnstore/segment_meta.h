#ifndef S2_COLUMNSTORE_SEGMENT_META_H_
#define S2_COLUMNSTORE_SEGMENT_META_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/result.h"
#include "common/types.h"
#include "columnstore/segment.h"

namespace s2 {

/// Mutable metadata for one immutable segment file. Lives in the durable
/// in-memory metadata store of the partition (changes are logged as
/// kMetadataUpdate / kSegmentFlush / kSegmentMerge records); the data file
/// itself never changes (paper Figure 1).
struct SegmentMeta {
  /// Monotonic segment id within the partition.
  uint64_t id = 0;
  /// Data file name; by convention "seg_<lsn>_<id>" so the file logically
  /// exists in the log stream at its creation LSN.
  std::string file_name;
  uint32_t num_rows = 0;
  /// Per-column min/max for segment elimination.
  std::vector<ColumnStats> stats;
  /// Current deleted-rows bit vector (copy-on-write: updates install a new
  /// vector; storage keeps older versions for snapshot reads).
  std::shared_ptr<const BitVector> deletes;

  uint32_t live_rows() const {
    return num_rows - (deletes ? deletes->Count() : 0);
  }

  /// Serialization for log records and snapshots (includes the current
  /// delete vector).
  void EncodeTo(std::string* dst) const;
  static Result<SegmentMeta> DecodeFrom(Slice* input);
};

/// Builds the data file name for a segment created at `lsn`.
std::string SegmentFileName(uint64_t lsn, uint64_t segment_id);

/// Tiered LSM run bookkeeping: each sorted run is a list of segment ids
/// whose rows are mutually sorted by the table's sort key. The flusher
/// appends single-segment runs; the background merger keeps the number of
/// runs logarithmic by merging the smallest runs together (paper Section
/// 2.1.2).
struct SortedRun {
  std::vector<uint64_t> segment_ids;
  uint64_t total_rows = 0;
};

/// Picks which runs to merge. Returns indices into `runs` (>= 2 of them),
/// or empty when the tree is healthy. Policy: when there are more than
/// `max_runs` runs, merge the ceil(half) smallest ones, which yields
/// O(log N) runs under steady insert load.
std::vector<size_t> PickRunsToMerge(const std::vector<SortedRun>& runs,
                                    size_t max_runs);

}  // namespace s2

#endif  // S2_COLUMNSTORE_SEGMENT_META_H_
