#ifndef S2_COLUMNSTORE_SEGMENT_H_
#define S2_COLUMNSTORE_SEGMENT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "encoding/encoding.h"

namespace s2 {

/// Per-column min/max statistics kept in segment metadata; segment
/// elimination checks these before fetching data files (paper Section
/// 2.1.2: "storing min/max values allows segment elimination to be
/// performed using in-memory metadata").
struct ColumnStats {
  Value min;
  Value max;
  bool has_nulls = false;

  void EncodeTo(std::string* dst) const;
  static Result<ColumnStats> DecodeFrom(Slice* input);

  /// Whether a row with column value == v could exist in the segment.
  bool MayContain(const Value& v) const;
  /// Whether values in [lo, hi] could exist (null bounds = unbounded).
  bool MayOverlap(const Value& lo, const Value& hi) const;
};

/// An immutable columnstore segment file opened for reading. The file holds
/// one encoded block per column plus optional named auxiliary blocks (the
/// index module stores per-segment inverted indexes there) and a footer
/// with the directory and column statistics.
///
/// Deleted rows are NOT represented here: delete bit-vectors live in
/// mutable segment *metadata* (storage module), keeping the file immutable
/// so it can be uploaded to blob storage as-is.
class Segment {
 public:
  /// Parses a segment file. Cheap: columns are opened lazily on first use.
  static Result<std::shared_ptr<Segment>> Open(
      std::shared_ptr<const std::string> file);

  uint32_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Reader for column c (opened lazily, cached, thread-safe).
  Result<const ColumnReader*> column(size_t c) const;

  const ColumnStats& stats(size_t c) const { return stats_[c]; }

  /// Raw bytes of the named auxiliary block; NotFound if absent.
  Result<Slice> aux_block(const std::string& name) const;

  /// Materializes full row `r` (all columns).
  Result<Row> ReadRow(uint32_t r) const;

  size_t file_size() const { return file_->size(); }

 private:
  struct ColumnEntry {
    uint64_t offset;
    uint64_t size;
    mutable std::unique_ptr<ColumnReader> reader;  // lazily opened
    mutable std::once_flag once;
  };

  Segment() = default;

  std::shared_ptr<const std::string> file_;
  uint32_t num_rows_ = 0;
  mutable std::vector<ColumnEntry> columns_;
  std::vector<ColumnStats> stats_;
  std::map<std::string, std::pair<uint64_t, uint64_t>> aux_;  // name -> window
};

/// Builds a segment file from rows. Rows must be appended in final order
/// (the caller sorts by the sort key first). Encoding is chosen per column
/// per segment unless forced.
class SegmentBuilder {
 public:
  explicit SegmentBuilder(const Schema& schema);

  void AddRow(const Row& row);
  void AddColumnVector(size_t col, const ColumnVector& data);  // bulk path

  /// Attaches a named auxiliary block (e.g. an inverted index).
  void AddAuxBlock(const std::string& name, std::string bytes);

  uint32_t num_rows() const { return num_rows_; }
  const ColumnVector& column_data(size_t c) const { return columns_[c]; }

  /// Serializes the file. The builder is consumed.
  Result<std::string> Finish();

 private:
  Schema schema_;
  uint32_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  std::vector<std::pair<std::string, std::string>> aux_;
};

}  // namespace s2

#endif  // S2_COLUMNSTORE_SEGMENT_H_
