#ifndef S2_ENGINE_SYSTEM_TABLES_H_
#define S2_ENGINE_SYSTEM_TABLES_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace s2 {

/// One rendered system table: a named snapshot with a fixed column list
/// and string-rendered rows, iterable by callers and printable for humans
/// (ToText) or tools (ToJson).
struct SystemTableDump {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Column-aligned text table with a header row.
  std::string ToText() const;
  /// JSON array of objects keyed by column name.
  std::string ToJson() const;
};

class MonitorService;

/// Live introspection over a cluster's internal state, rendered as system
/// tables (the reproduction's information_schema): segment catalog, per-
/// partition LSM/rowstore state, data-file cache residency, and replica
/// log positions. Each call takes a fresh snapshot; nothing is cached.
class SystemTables {
 public:
  /// `monitor` (optional, not owned) adds the monitor.history and
  /// monitor.watchdogs tables.
  explicit SystemTables(Cluster* cluster,
                        const MonitorService* monitor = nullptr)
      : cluster_(cluster), monitor_(monitor) {}

  /// One row per columnstore segment across all partitions and tables:
  /// rows, deleted bits, liveness, local-cache residency (on-disk vs
  /// blob-only), creation timestamp, per-column encodings and min/max.
  SystemTableDump Segments() const;

  /// One row per (partition, table): rowstore size (LSM level 0), live
  /// segment count, sorted-run shape, and lifetime write counters.
  SystemTableDump Tables() const;

  /// One row per partition's data-file cache: resident bytes, upload
  /// queue depth, hit/fetch/eviction counters.
  SystemTableDump Cache() const;

  /// One row per HA/workspace replica: applied vs master-durable log
  /// position and liveness.
  SystemTableDump Replicas() const;

  /// One row per sampled (series, point): the MonitorService's ring
  /// time-series flattened for querying. Empty when no monitor is wired.
  SystemTableDump History() const;

  /// One row per watchdog rule with its live state. Empty when no monitor
  /// is wired.
  SystemTableDump Watchdogs() const;

  /// The four core tables, plus the two monitor tables when a monitor is
  /// wired.
  std::vector<SystemTableDump> All() const;

  /// Every table, concatenated (text / one JSON object keyed by name).
  std::string ToText() const;
  std::string ToJson() const;

 private:
  Cluster* cluster_;
  const MonitorService* monitor_;
};

}  // namespace s2

#endif  // S2_ENGINE_SYSTEM_TABLES_H_
