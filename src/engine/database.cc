#include "engine/database.h"

#include <limits>

#include "common/metrics.h"

namespace s2 {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  ClusterOptions copts;
  copts.dir = db->options_.dir;
  copts.num_partitions = db->options_.num_partitions;
  copts.num_nodes = db->options_.num_nodes;
  copts.ha_replicas = db->options_.ha_replicas;
  copts.blob = db->options_.blob;
  copts.auto_maintain = db->options_.auto_maintain;
  copts.background_uploads = db->options_.background_uploads;
  copts.cache_bytes = db->options_.cache_bytes;
  copts.sync_blob_commit =
      db->options_.profile == EngineProfile::kCloudWarehouse;
  copts.num_exec_threads = db->options_.num_exec_threads;
  copts.env = db->options_.env;
  db->cluster_ = std::make_unique<Cluster>(copts);
  S2_RETURN_NOT_OK(db->cluster_->Start());
  return db;
}

Status Database::CreateTable(const std::string& name, TableOptions options,
                             std::vector<int> shard_key) {
  switch (options_.profile) {
    case EngineProfile::kUnified:
      break;
    case EngineProfile::kOperationalRowstore:
      // Rowstore-only: nothing ever flushes to columnstore segments, so
      // analytics scan row-oriented storage row-at-a-time.
      options.flush_threshold = std::numeric_limits<uint32_t>::max();
      break;
    case EngineProfile::kCloudWarehouse:
      // CDWs accept unique-key DDL but do not *enforce* it, and they lack
      // fine-grained OLTP indexing: drop both. Scans rely on zone maps
      // only. This is precisely why "CDW1 and CDW2 do not support running
      // TPC-C" in the paper's evaluation.
      options.unique_key.clear();
      options.indexes.clear();
      break;
  }
  return cluster_->CreateTable(name, options, std::move(shard_key));
}

Status Database::Insert(const std::string& table, const std::vector<Row>& rows,
                        DupPolicy policy) {
  return cluster_->InsertRows(table, rows, policy);
}

Result<std::vector<Row>> Database::Query(
    const std::function<PlanPtr()>& factory, int workspace) {
  if (options_.slow_query_ns == 0) {
    return cluster_->ScatterQuery(factory, workspace);
  }
  Result<QueryProfile> profiled = RunProfiled(factory, workspace);
  S2_RETURN_NOT_OK(profiled.status());
  return std::move(profiled->rows);
}

Result<QueryProfile> Database::Profile(
    const std::function<PlanPtr()>& factory, int workspace) {
  return RunProfiled(factory, workspace);
}

Result<QueryProfile> Database::RunProfiled(
    const std::function<PlanPtr()>& factory, int workspace) {
  QueryProfile out;
  out.tree = std::make_shared<ProfileCollector>("query");
  Result<std::vector<Row>> rows =
      cluster_->ScatterQuery(factory, workspace, out.tree.get());
  out.tree->FinishRoot();
  out.wall_ns = out.tree->root()->duration_ns;
  S2_HISTOGRAM("s2_query_ns").Record(out.wall_ns);
  S2_RETURN_NOT_OK(rows.status());
  out.rows = std::move(*rows);
  out.tree->AddCounter(out.tree->root(), "rows",
                       static_cast<int64_t>(out.rows.size()));
  if (options_.slow_query_ns != 0 && out.wall_ns >= options_.slow_query_ns) {
    S2_COUNTER("s2_slow_queries_total").Add();
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_.push_back({++slow_seq_, out.wall_ns, out.tree});
    while (slow_ring_.size() > options_.slow_query_capacity) {
      slow_ring_.pop_front();
    }
  }
  return out;
}

std::vector<SlowQuery> Database::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

std::string Database::DumpMetrics() {
  return MetricsRegistry::Global()->Dump();
}

std::string Database::DumpMetricsJson() {
  return MetricsRegistry::Global()->DumpJson();
}

}  // namespace s2
