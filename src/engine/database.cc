#include "engine/database.h"

#include <algorithm>
#include <limits>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/trace_export.h"
#include "engine/system_tables.h"

namespace s2 {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  ClusterOptions copts;
  copts.dir = db->options_.dir;
  copts.num_partitions = db->options_.num_partitions;
  copts.num_nodes = db->options_.num_nodes;
  copts.ha_replicas = db->options_.ha_replicas;
  copts.blob = db->options_.blob;
  copts.auto_maintain = db->options_.auto_maintain;
  copts.background_uploads = db->options_.background_uploads;
  copts.cache_bytes = db->options_.cache_bytes;
  copts.sync_blob_commit =
      db->options_.profile == EngineProfile::kCloudWarehouse;
  copts.num_exec_threads = db->options_.num_exec_threads;
  copts.env = db->options_.env;
  db->cluster_ = std::make_unique<Cluster>(copts);
  S2_RETURN_NOT_OK(db->cluster_->Start());
  if (db->options_.enable_monitor) {
    MonitorOptions mopts;
    mopts.interval_ns = db->options_.monitor_interval_ns;
    mopts.ring_capacity = db->options_.monitor_ring_capacity;
    mopts.env = db->options_.env;
    db->monitor_ = std::make_unique<MonitorService>(mopts);
    db->InstallStandardWatchdogs();
    if (db->options_.monitor_background) {
      db->monitor_->Start(db->cluster_->executor());
    }
  }
  return db;
}

void Database::InstallStandardWatchdogs() {
  Cluster* cluster = cluster_.get();
  MonitorService* monitor = monitor_.get();
  const WatchdogThresholds& t = options_.watchdog;

  // Replication consumers (HA replicas, workspaces, blob log tail)
  // trailing the primary's durable log position.
  monitor->AddRule(
      {"replication_lag",
       [cluster] { return static_cast<double>(cluster->ReplicationLagBytes()); },
       static_cast<double>(t.replication_lag_bytes), WatchdogCmp::kAbove,
       t.for_ticks});

  // Data files stuck in the blob upload queue (env clock, so fault
  // injection on the blob store shows up deterministically in tests).
  monitor->AddRule(
      {"upload_queue_age",
       [cluster] { return static_cast<double>(cluster->MaxUploadQueueAgeNs()); },
       static_cast<double>(t.upload_queue_age_ns), WatchdogCmp::kAbove,
       t.for_ticks});

  // Cache thrash: sustained evictions relative to hits means the working
  // set no longer fits the local-disk cache budget.
  monitor->AddRule(
      {"cache_thrash",
       [monitor] {
         double evict = monitor->RatePerSec("s2_cache_evictions_total");
         double hits = monitor->RatePerSec("s2_cache_mem_hits_total") +
                       monitor->RatePerSec("s2_cache_disk_hits_total");
         return evict / (hits + 1.0);
       },
       t.cache_thrash_ratio, WatchdogCmp::kAbove, t.for_ticks});

  // Executor-pool saturation: sampled shared-pool queue depth.
  monitor->AddRule({"executor_saturation",
                    [monitor] {
                      return monitor->LatestOr("s2_exec_queue_depth", 0.0);
                    },
                    t.executor_queue_depth, WatchdogCmp::kAbove, t.for_ticks});

  // Flush/merge falling behind ingest across the cluster's tables.
  monitor->AddRule({"maintenance_backlog",
                    [cluster] { return cluster->MaintenanceBacklog(); },
                    t.maintenance_backlog, WatchdogCmp::kAbove, t.for_ticks});

  // Commit p99 drifting away from its own recent median.
  monitor->AddRule({"commit_p99_drift",
                    [monitor] {
                      double median = monitor->SeriesMedian("s2_txn_commit_ns.p99");
                      if (median <= 0.0) return 0.0;
                      return monitor->LatestOr("s2_txn_commit_ns.p99", 0.0) /
                             median;
                    },
                    t.commit_p99_drift, WatchdogCmp::kAbove, t.for_ticks});
}

Status Database::CreateTable(const std::string& name, TableOptions options,
                             std::vector<int> shard_key) {
  switch (options_.profile) {
    case EngineProfile::kUnified:
      break;
    case EngineProfile::kOperationalRowstore:
      // Rowstore-only: nothing ever flushes to columnstore segments, so
      // analytics scan row-oriented storage row-at-a-time.
      options.flush_threshold = std::numeric_limits<uint32_t>::max();
      break;
    case EngineProfile::kCloudWarehouse:
      // CDWs accept unique-key DDL but do not *enforce* it, and they lack
      // fine-grained OLTP indexing: drop both. Scans rely on zone maps
      // only. This is precisely why "CDW1 and CDW2 do not support running
      // TPC-C" in the paper's evaluation.
      options.unique_key.clear();
      options.indexes.clear();
      break;
  }
  return cluster_->CreateTable(name, options, std::move(shard_key));
}

Status Database::Insert(const std::string& table, const std::vector<Row>& rows,
                        DupPolicy policy) {
  return cluster_->InsertRows(table, rows, policy);
}

Result<std::vector<Row>> Database::Query(
    const std::function<PlanPtr()>& factory, int workspace) {
  if (options_.slow_query_ns == 0) {
    return cluster_->ScatterQuery(factory, workspace);
  }
  Result<QueryProfile> profiled = RunProfiled(factory, workspace);
  S2_RETURN_NOT_OK(profiled.status());
  return std::move(profiled->rows);
}

Result<QueryProfile> Database::Profile(
    const std::function<PlanPtr()>& factory, int workspace) {
  return RunProfiled(factory, workspace);
}

Result<QueryProfile> Database::RunProfiled(
    const std::function<PlanPtr()>& factory, int workspace) {
  QueryProfile out;
  out.tree = std::make_shared<ProfileCollector>("query");
  Result<std::vector<Row>> rows =
      cluster_->ScatterQuery(factory, workspace, out.tree.get());
  out.tree->FinishRoot();
  out.wall_ns = out.tree->root()->duration_ns;
  S2_HISTOGRAM("s2_query_ns").Record(out.wall_ns);
  S2_RETURN_NOT_OK(rows.status());
  out.rows = std::move(*rows);
  out.tree->AddCounter(out.tree->root(), "rows",
                       static_cast<int64_t>(out.rows.size()));
  if (options_.slow_query_ns != 0 && out.wall_ns >= options_.slow_query_ns) {
    S2_COUNTER("s2_slow_queries_total").Add();
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_.push_back({++slow_seq_, out.wall_ns, out.tree});
    while (slow_ring_.size() > options_.slow_query_capacity) {
      slow_ring_.pop_front();
    }
  }
  return out;
}

std::vector<SlowQuery> Database::SlowQueries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

Status Database::DumpFlightRecorder(const std::string& dir) {
  FlightRecorderOptions opts;
  opts.dir = dir;
  opts.env = options_.env;
  opts.monitor = monitor_.get();

  SystemTables tables(cluster_.get(), monitor_.get());
  opts.extra_files.emplace_back("system_tables.json", tables.ToJson());

  // The slow-query ring, newest last: one JSON array of {seq, wall_ns,
  // profile-tree} objects.
  std::string slow = "[";
  bool first = true;
  for (const SlowQuery& q : SlowQueries()) {
    if (!first) slow += ",";
    first = false;
    slow += "{\"seq\":" + std::to_string(q.seq) +
            ",\"wall_ns\":" + std::to_string(q.wall_ns) +
            ",\"profile\":" + (q.tree ? q.tree->ToJson() : "{}") + "}";
  }
  slow += "]";
  opts.extra_files.emplace_back("slow_queries.json", std::move(slow));

  opts.extra_files.emplace_back("engine_trace.json", ExportChromeTrace());
  return s2::DumpFlightRecorder(opts);
}

std::string Database::ExportChromeTrace() const {
  ChromeTraceBuilder builder;
  builder.AddTraceEvents(TraceBuffer::Global()->Snapshot(), /*pid=*/1,
                         "trace_buffer");
  int pid = 2;
  std::vector<SlowQuery> slow;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow.assign(slow_ring_.begin(), slow_ring_.end());
  }
  for (const SlowQuery& q : slow) {
    if (!q.tree) continue;
    builder.AddProfileTree(*q.tree->root(), pid++,
                           "slow_query#" + std::to_string(q.seq));
  }
  return builder.Finish();
}

std::string Database::DumpMetrics() {
  return MetricsRegistry::Global()->Dump();
}

std::string Database::DumpMetricsJson() {
  return MetricsRegistry::Global()->DumpJson();
}

}  // namespace s2
