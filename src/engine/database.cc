#include "engine/database.h"

#include <limits>

#include "common/metrics.h"

namespace s2 {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  ClusterOptions copts;
  copts.dir = db->options_.dir;
  copts.num_partitions = db->options_.num_partitions;
  copts.num_nodes = db->options_.num_nodes;
  copts.ha_replicas = db->options_.ha_replicas;
  copts.blob = db->options_.blob;
  copts.auto_maintain = db->options_.auto_maintain;
  copts.background_uploads = db->options_.background_uploads;
  copts.cache_bytes = db->options_.cache_bytes;
  copts.sync_blob_commit =
      db->options_.profile == EngineProfile::kCloudWarehouse;
  copts.num_exec_threads = db->options_.num_exec_threads;
  copts.env = db->options_.env;
  db->cluster_ = std::make_unique<Cluster>(copts);
  S2_RETURN_NOT_OK(db->cluster_->Start());
  return db;
}

Status Database::CreateTable(const std::string& name, TableOptions options,
                             std::vector<int> shard_key) {
  switch (options_.profile) {
    case EngineProfile::kUnified:
      break;
    case EngineProfile::kOperationalRowstore:
      // Rowstore-only: nothing ever flushes to columnstore segments, so
      // analytics scan row-oriented storage row-at-a-time.
      options.flush_threshold = std::numeric_limits<uint32_t>::max();
      break;
    case EngineProfile::kCloudWarehouse:
      // CDWs accept unique-key DDL but do not *enforce* it, and they lack
      // fine-grained OLTP indexing: drop both. Scans rely on zone maps
      // only. This is precisely why "CDW1 and CDW2 do not support running
      // TPC-C" in the paper's evaluation.
      options.unique_key.clear();
      options.indexes.clear();
      break;
  }
  return cluster_->CreateTable(name, options, std::move(shard_key));
}

Status Database::Insert(const std::string& table, const std::vector<Row>& rows,
                        DupPolicy policy) {
  return cluster_->InsertRows(table, rows, policy);
}

std::string Database::DumpMetrics() {
  return MetricsRegistry::Global()->Dump();
}

std::string Database::DumpMetricsJson() {
  return MetricsRegistry::Global()->DumpJson();
}

}  // namespace s2
