#include "engine/system_tables.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"
#include "common/monitor.h"
#include "storage/partition.h"
#include "storage/unified_table.h"

namespace s2 {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

std::string Dbl(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string SystemTableDump::ToText() const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out = "== " + name + " ==\n";
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      out += cell;
      if (c + 1 < widths.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };
  append_row(columns);
  for (const auto& row : rows) append_row(row);
  return out;
}

std::string SystemTableDump::ToJson() const {
  std::string out = "[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out += ",";
      const std::string& cell = c < rows[r].size() ? rows[r][c] : "";
      out += JsonQuote(columns[c]) + ":" + JsonQuote(cell);
    }
    out += "}";
  }
  out += "]";
  return out;
}

SystemTableDump SystemTables::Segments() const {
  SystemTableDump dump;
  dump.name = "segments";
  dump.columns = {"partition", "table",      "segment",   "file",
                  "rows",      "deleted",    "live",      "local",
                  "created_ts", "encodings", "min_max"};
  for (int p = 0; p < cluster_->num_partitions(); ++p) {
    Partition* part = cluster_->partition(p);
    for (const std::string& tname : part->TableNames()) {
      Result<UnifiedTable*> table = part->GetTable(tname);
      if (!table.ok()) continue;
      for (const auto& seg : (*table)->DebugSegments()) {
        dump.rows.push_back({std::to_string(p), tname, U64(seg.id),
                             seg.file_name, U64(seg.num_rows),
                             U64(seg.deleted_rows), seg.live ? "1" : "0",
                             part->files()->IsLocal(seg.file_name) ? "1" : "0",
                             U64(seg.created_ts), seg.encodings, seg.min_max});
      }
    }
  }
  return dump;
}

SystemTableDump SystemTables::Tables() const {
  SystemTableDump dump;
  dump.name = "tables";
  dump.columns = {"partition",     "table",        "rowstore_rows",
                  "segments",      "runs",         "rows_inserted",
                  "rows_deleted",  "rows_updated", "rows_moved",
                  "flushes",       "merges"};
  for (int p = 0; p < cluster_->num_partitions(); ++p) {
    Partition* part = cluster_->partition(p);
    for (const std::string& tname : part->TableNames()) {
      Result<UnifiedTable*> table = part->GetTable(tname);
      if (!table.ok()) continue;
      const TableStats& stats = (*table)->stats();
      dump.rows.push_back(
          {std::to_string(p), tname, U64((*table)->RowstoreRows()),
           U64((*table)->NumSegments()), U64((*table)->DebugRuns().size()),
           U64(stats.rows_inserted.load()), U64(stats.rows_deleted.load()),
           U64(stats.rows_updated.load()), U64(stats.rows_moved.load()),
           U64(stats.flushes.load()), U64(stats.merges.load())});
    }
  }
  return dump;
}

SystemTableDump SystemTables::Cache() const {
  SystemTableDump dump;
  dump.name = "cache";
  dump.columns = {"partition",      "cached_bytes",   "pending_uploads",
                  "local_hits",     "blob_fetches",   "files_written",
                  "files_uploaded", "files_evicted",  "coalesced_reads",
                  "upload_retries"};
  for (int p = 0; p < cluster_->num_partitions(); ++p) {
    DataFileStore* files = cluster_->partition(p)->files();
    const DataFileStats& stats = files->stats();
    dump.rows.push_back(
        {std::to_string(p), U64(files->CachedBytes()),
         U64(files->PendingUploads()), U64(stats.local_hits.load()),
         U64(stats.blob_fetches.load()), U64(stats.files_written.load()),
         U64(stats.files_uploaded.load()), U64(stats.files_evicted.load()),
         U64(stats.coalesced_reads.load()), U64(stats.upload_retries.load())});
  }
  return dump;
}

SystemTableDump SystemTables::Replicas() const {
  SystemTableDump dump;
  dump.name = "replicas";
  dump.columns = {"partition",   "node",        "workspace",
                  "durable_lsn", "applied_lsn", "txns_applied",
                  "down"};
  for (const Cluster::ReplicaState& r : cluster_->ReplicaStates()) {
    dump.rows.push_back({std::to_string(r.partition), std::to_string(r.node),
                         std::to_string(r.workspace),
                         U64(r.master_durable_lsn), U64(r.applied_lsn),
                         U64(r.txns_applied), r.down ? "1" : "0"});
  }
  return dump;
}

SystemTableDump SystemTables::History() const {
  SystemTableDump dump;
  dump.name = "monitor.history";
  dump.columns = {"series", "ts_ns", "value"};
  if (monitor_ == nullptr) return dump;
  for (const std::string& series : monitor_->SeriesNames()) {
    for (const MonitorPoint& p : monitor_->Series(series)) {
      dump.rows.push_back({series, U64(p.ts_ns), Dbl(p.value)});
    }
  }
  return dump;
}

SystemTableDump SystemTables::Watchdogs() const {
  SystemTableDump dump;
  dump.name = "monitor.watchdogs";
  dump.columns = {"rule",   "cmp",          "threshold",      "observed",
                  "firing", "breach_ticks", "fired_since_ns", "fire_count"};
  if (monitor_ == nullptr) return dump;
  for (const WatchdogStatus& st : monitor_->RuleStatuses()) {
    dump.rows.push_back(
        {st.name, st.cmp == WatchdogCmp::kAbove ? "above" : "below",
         Dbl(st.threshold), Dbl(st.last_observed), st.firing ? "1" : "0",
         std::to_string(st.breach_ticks), U64(st.fired_since_ns),
         U64(st.fire_count)});
  }
  return dump;
}

std::vector<SystemTableDump> SystemTables::All() const {
  std::vector<SystemTableDump> all = {Segments(), Tables(), Cache(),
                                      Replicas()};
  if (monitor_ != nullptr) {
    all.push_back(History());
    all.push_back(Watchdogs());
  }
  return all;
}

std::string SystemTables::ToText() const {
  std::string out;
  for (const SystemTableDump& dump : All()) {
    out += dump.ToText();
    out += '\n';
  }
  return out;
}

std::string SystemTables::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const SystemTableDump& dump : All()) {
    if (!first) out += ",";
    first = false;
    out += JsonQuote(dump.name) + ":" + dump.ToJson();
  }
  out += "}";
  return out;
}

}  // namespace s2
