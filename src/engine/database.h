#ifndef S2_ENGINE_DATABASE_H_
#define S2_ENGINE_DATABASE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/monitor.h"
#include "common/profile.h"
#include "query/plan.h"
#include "storage/table_options.h"

namespace s2 {

/// Which engine personality a Database runs with. The paper's evaluation
/// (Section 6) compares S2DB with a cloud operational database ("CDB") and
/// two cloud data warehouses ("CDW1/CDW2"); the baselines here implement
/// the properties Section 6 attributes to them.
enum class EngineProfile {
  /// The paper's system: unified table storage, async blob uploads,
  /// secondary/unique keys, adaptive execution.
  kUnified,
  /// CDB-like: a rowstore-based operational database. Data stays in the
  /// in-memory rowstore (never flushed to columnstore), so analytics run
  /// row-at-a-time over row-oriented storage.
  kOperationalRowstore,
  /// CDW-like: pure columnstore, commits synchronously persisted to blob
  /// storage, and no secondary indexes, unique keys, or row-level locking
  /// — which is why "CDW1 and CDW2 do not support running TPC-C".
  kCloudWarehouse,
};

struct DatabaseOptions {
  std::string dir;
  BlobStore* blob = nullptr;
  int num_partitions = 1;
  int num_nodes = 1;
  int ha_replicas = 0;
  bool auto_maintain = true;
  bool background_uploads = false;
  /// Per-partition local data-file cache budget ("local disk" size).
  /// Tests shrink this to force cold reads through the blob store.
  size_t cache_bytes = 256ull << 20;
  EngineProfile profile = EngineProfile::kUnified;
  /// Worker threads for the cluster executor (query fan-out, parallel
  /// segment scans, maintenance, uploads). 0 = hardware concurrency;
  /// 1 = fully serial execution.
  size_t num_exec_threads = 0;
  /// Filesystem for all local state. Not owned; null = Env::Default().
  /// Crash tests inject a FaultInjectionEnv.
  Env* env = nullptr;
  /// Queries slower than this wall time are profiled and retained in the
  /// slow-query ring (see Database::SlowQueries). 0 disables the log and
  /// keeps unprofiled Query() calls overhead-free.
  uint64_t slow_query_ns = 0;
  /// Bounded retention for the slow-query ring (oldest dropped first).
  size_t slow_query_capacity = 32;
  /// Creates a MonitorService wired to the cluster's health signals and
  /// installs the standard watchdog rules (replication lag, upload queue
  /// age, cache thrash, executor saturation, maintenance backlog, commit
  /// p99 drift). Tests drive it with Database::monitor()->TickOnce().
  bool enable_monitor = false;
  /// Background sampling period when monitor_background is set.
  uint64_t monitor_interval_ns = 100'000'000;
  /// Points retained per sampled time-series.
  size_t monitor_ring_capacity = 240;
  /// Also start the monitor's background loop on the cluster executor
  /// (tests usually leave this off and tick manually for determinism).
  bool monitor_background = false;
  /// Thresholds for the standard watchdog rules.
  WatchdogThresholds watchdog;
};

/// A query result plus its profile tree (see Database::Profile).
struct QueryProfile {
  std::vector<Row> rows;
  /// Root span "query"; per-partition children carry scan/segment spans
  /// with strategy decisions and cache/lock/commit wait counters.
  std::shared_ptr<ProfileCollector> tree;
  uint64_t wall_ns = 0;

  std::string ToText() const { return tree ? tree->ToText() : std::string(); }
  std::string ToJson() const { return tree ? tree->ToJson() : "{}"; }
};

/// One retained slow query: monotonic sequence number, wall time, and the
/// full profile tree captured while it ran.
struct SlowQuery {
  uint64_t seq = 0;
  uint64_t wall_ns = 0;
  std::shared_ptr<ProfileCollector> tree;
};

/// The public façade: open a database, create tables, write rows, run
/// queries, manage workspaces. One Database wraps a (possibly
/// single-partition) simulated cluster.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  /// Creates a table on every partition. The engine profile adjusts the
  /// physical options (see EngineProfile). Returns InvalidArgument when
  /// the profile cannot support the request (e.g. unique keys on the CDW
  /// profile, matching the paper's "lack of enforced unique constraints").
  Status CreateTable(const std::string& name, TableOptions options,
                     std::vector<int> shard_key);

  /// Autocommit batch insert, routed by shard key.
  Status Insert(const std::string& table, const std::vector<Row>& rows,
                DupPolicy policy = DupPolicy::kError);

  /// Begins an explicit (multi-statement, multi-partition) transaction.
  Cluster::Txn Begin() { return cluster_->BeginTxn(); }

  /// Scatter phase of a query: runs `factory()`-built plans on every
  /// partition (workspace >= 0 targets a read-only workspace) and
  /// concatenates rows; the caller applies the gather/combine step. With
  /// slow_query_ns set, the query runs under a profile collector and is
  /// retained in the slow-query ring when it exceeds the threshold.
  Result<std::vector<Row>> Query(const std::function<PlanPtr()>& factory,
                                 int workspace = -1);

  /// Runs the query under a ProfileCollector and returns rows plus the
  /// span tree: per-partition children (merged on gather), scan/segment
  /// spans with skip/strategy decisions, rows scanned vs skipped, cache
  /// hits vs blob fetches, lock and commit wait time.
  Result<QueryProfile> Profile(const std::function<PlanPtr()>& factory,
                               int workspace = -1);

  /// Snapshot of the slow-query ring, oldest first (see
  /// DatabaseOptions::slow_query_ns).
  std::vector<SlowQuery> SlowQueries() const;

  /// Snapshot + upload everything to blob storage.
  Status Checkpoint() { return cluster_->UploadAllToBlob(); }

  /// Provisions a read-only workspace (requires a blob store).
  Result<int> CreateWorkspace() { return cluster_->CreateWorkspace(); }

  /// Flush/merge/vacuum across partitions.
  Status Maintain() { return cluster_->Maintain(); }

  Cluster* cluster() { return cluster_.get(); }
  EngineProfile profile() const { return options_.profile; }

  /// The continuous-monitoring service, or null when
  /// DatabaseOptions::enable_monitor is off.
  MonitorService* monitor() { return monitor_.get(); }

  /// Dumps one flight-recorder bundle to `dir`: the common core (metrics,
  /// monitor history, watchdog states, journal tail, Chrome trace) plus
  /// the engine's view — system_tables.json and the slowest retained
  /// query profiles as slow_queries.json.
  Status DumpFlightRecorder(const std::string& dir);

  /// Chrome trace_event JSON (Perfetto-loadable) combining the process
  /// TraceBuffer with the retained slow-query profile trees; see
  /// ChromeTraceBuilder for the pid/tid layout.
  std::string ExportChromeTrace() const;

  /// Prometheus-style text dump of the process-wide metrics registry
  /// (latency histograms, counters, gauges from every engine layer).
  static std::string DumpMetrics();
  /// Same data as one JSON object; embedded in bench harness output.
  static std::string DumpMetricsJson();

 private:
  explicit Database(DatabaseOptions options);

  /// Shared implementation of Query-with-threshold and Profile: runs the
  /// scatter under a collector, stamps the root, and feeds the slow ring.
  Result<QueryProfile> RunProfiled(const std::function<PlanPtr()>& factory,
                                   int workspace);

  /// Installs the standard watchdog rules on monitor_ (see
  /// WatchdogThresholds); called from Open() after the cluster starts.
  void InstallStandardWatchdogs();

  DatabaseOptions options_;
  std::unique_ptr<Cluster> cluster_;
  /// Declared after cluster_ so it is destroyed (and its loop stopped)
  /// first: watchdog observe() callbacks read cluster state.
  std::unique_ptr<MonitorService> monitor_;

  mutable std::mutex slow_mu_;
  std::deque<SlowQuery> slow_ring_;  // guarded by slow_mu_
  uint64_t slow_seq_ = 0;            // guarded by slow_mu_
};

}  // namespace s2

#endif  // S2_ENGINE_DATABASE_H_
