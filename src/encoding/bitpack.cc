#include "encoding/bitpack.h"

#include <bit>
#include <cstring>

namespace s2 {

int BitWidthFor(uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}

void BitPack(const uint64_t* values, size_t n, int width, std::string* dst) {
  if (width == 0) return;  // all values are zero; nothing stored
  size_t nbytes = BitPackedBytes(n, width);
  size_t base = dst->size();
  dst->resize(base + nbytes, 0);
  unsigned char* out = reinterpret_cast<unsigned char*>(dst->data() + base);
  size_t bitpos = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = values[i];
    size_t byte = bitpos >> 3;
    int shift = static_cast<int>(bitpos & 7);
    // Write up to width+7 bits starting at (byte, shift). Max span 9 bytes.
    uint64_t lo = v << shift;
    for (int b = 0; b < 8 && (shift + width) > b * 8; ++b) {
      out[byte + b] |= static_cast<unsigned char>(lo >> (b * 8));
    }
    if (shift + width > 64) {
      out[byte + 8] |= static_cast<unsigned char>(v >> (64 - shift));
    }
    bitpos += width;
  }
}

uint64_t BitUnpackOne(const char* data, size_t i, int width) {
  if (width == 0) return 0;
  size_t bitpos = i * static_cast<size_t>(width);
  size_t byte = bitpos >> 3;
  int shift = static_cast<int>(bitpos & 7);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint64_t v = 0;
  int got = 0;
  int b = 0;
  while (got < shift + width) {
    v |= static_cast<uint64_t>(p[byte + b]) << (b * 8);
    got += 8;
    ++b;
    if (b == 8) break;  // can hold at most 64 bits in v
  }
  v >>= shift;
  if (shift + width > 64) {
    uint64_t hi = p[byte + 8];
    v |= hi << (64 - shift);
  }
  if (width < 64) v &= (uint64_t{1} << width) - 1;
  return v;
}

void BitUnpackRange(const char* data, size_t start, size_t count, int width,
                    std::vector<uint64_t>* out) {
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(BitUnpackOne(data, start + i, width));
  }
}

}  // namespace s2
