#include "encoding/encoding.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/coding.h"
#include "encoding/bitpack.h"
#include "encoding/lz.h"

namespace s2 {

namespace {

constexpr size_t kLzBlockSize = 16 * 1024;

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

// Shared base holding the buffer and the payload window into it.
class ReaderBase : public ColumnReader {
 public:
  ReaderBase(DataType type, Encoding enc, uint32_t num_rows,
             std::shared_ptr<const std::string> buf, const char* payload,
             size_t payload_size)
      : ColumnReader(type, enc, num_rows),
        buf_(std::move(buf)),
        payload_(payload),
        payload_size_(payload_size) {}

 protected:
  std::shared_ptr<const std::string> buf_;
  const char* payload_;
  size_t payload_size_;
};

class PlainIntReader : public ReaderBase {
 public:
  using ReaderBase::ReaderBase;

  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    int64_t v = static_cast<int64_t>(DecodeFixed64(payload_ + row * 8));
    if (type_ == DataType::kDouble) {
      double d;
      memcpy(&d, &v, sizeof(d));
      return Value(d);
    }
    return Value(v);
  }

  void DecodeAll(ColumnVector* out) const override {
    out->Reserve(out->size() + num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      if (IsNull(i)) {
        out->AppendNull();
      } else if (type_ == DataType::kDouble) {
        double d;
        memcpy(&d, payload_ + i * 8, sizeof(d));
        out->AppendDouble(d);
      } else {
        out->AppendInt(static_cast<int64_t>(DecodeFixed64(payload_ + i * 8)));
      }
    }
  }
};

class PlainStringReader : public ReaderBase {
 public:
  PlainStringReader(DataType type, Encoding enc, uint32_t num_rows,
                    std::shared_ptr<const std::string> buf,
                    const char* payload, size_t payload_size)
      : ReaderBase(type, enc, num_rows, std::move(buf), payload,
                   payload_size) {
    offsets_ = payload_;
    bytes_ = payload_ + (num_rows + size_t{1}) * 4;
  }

  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    uint32_t b = DecodeFixed32(offsets_ + row * 4);
    uint32_t e = DecodeFixed32(offsets_ + (row + 1) * 4);
    return Value(std::string(bytes_ + b, e - b));
  }

  void DecodeAll(ColumnVector* out) const override {
    out->Reserve(out->size() + num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      if (IsNull(i)) {
        out->AppendNull();
      } else {
        uint32_t b = DecodeFixed32(offsets_ + i * 4);
        uint32_t e = DecodeFixed32(offsets_ + (i + 1) * 4);
        out->AppendString(std::string(bytes_ + b, e - b));
      }
    }
  }

 private:
  const char* offsets_;
  const char* bytes_;
};

class BitPackIntReader : public ReaderBase {
 public:
  BitPackIntReader(DataType type, Encoding enc, uint32_t num_rows,
                   std::shared_ptr<const std::string> buf, const char* payload,
                   size_t payload_size, int64_t min, int width)
      : ReaderBase(type, enc, num_rows, std::move(buf), payload, payload_size),
        min_(min),
        width_(width) {}

  // The encoder computes deltas as wrapping uint64 subtraction (the full
  // int64 range can exceed int64); decode must add them back the same way.
  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    return Value(static_cast<int64_t>(static_cast<uint64_t>(min_) +
                                      BitUnpackOne(payload_, row, width_)));
  }

  void DecodeAll(ColumnVector* out) const override {
    out->Reserve(out->size() + num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      if (IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendInt(static_cast<int64_t>(static_cast<uint64_t>(min_) +
                                            BitUnpackOne(payload_, i, width_)));
      }
    }
  }

 private:
  int64_t min_;
  int width_;
};

class RleIntReader : public ReaderBase {
 public:
  RleIntReader(DataType type, Encoding enc, uint32_t num_rows,
               std::shared_ptr<const std::string> buf, const char* payload,
               size_t payload_size, std::vector<int64_t> run_values,
               std::vector<uint32_t> run_ends)
      : ReaderBase(type, enc, num_rows, std::move(buf), payload, payload_size),
        run_values_(std::move(run_values)),
        run_ends_(std::move(run_ends)) {}

  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    auto it = std::upper_bound(run_ends_.begin(), run_ends_.end(), row);
    return Value(run_values_[it - run_ends_.begin()]);
  }

  void DecodeAll(ColumnVector* out) const override {
    out->Reserve(out->size() + num_rows_);
    uint32_t row = 0;
    for (size_t r = 0; r < run_values_.size(); ++r) {
      for (; row < run_ends_[r]; ++row) {
        if (IsNull(row)) {
          out->AppendNull();
        } else {
          out->AppendInt(run_values_[r]);
        }
      }
    }
  }

 private:
  std::vector<int64_t> run_values_;
  std::vector<uint32_t> run_ends_;  // exclusive cumulative end per run
};

class DictReader : public ReaderBase {
 public:
  DictReader(DataType type, Encoding enc, uint32_t num_rows,
             std::shared_ptr<const std::string> buf, const char* payload,
             size_t payload_size, ColumnVector dict, const char* codes,
             int width)
      : ReaderBase(type, enc, num_rows, std::move(buf), payload, payload_size),
        dict_(std::move(dict)),
        codes_(codes),
        width_(width) {}

  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    return dict_.GetValue(static_cast<size_t>(CodeAt(row)));
  }

  void DecodeAll(ColumnVector* out) const override {
    out->Reserve(out->size() + num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      if (IsNull(i)) {
        out->AppendNull();
      } else {
        out->Append(dict_.GetValue(CodeAt(i)));
      }
    }
  }

  const ColumnVector* dictionary() const override { return &dict_; }

  uint32_t CodeAt(uint32_t row) const override {
    return static_cast<uint32_t>(BitUnpackOne(codes_, row, width_));
  }

 private:
  ColumnVector dict_;
  const char* codes_;
  int width_;
};

class LzStringReader : public ReaderBase {
 public:
  LzStringReader(DataType type, Encoding enc, uint32_t num_rows,
                 std::shared_ptr<const std::string> buf, const char* payload,
                 size_t payload_size, std::vector<uint32_t> block_uncomp_end,
                 std::vector<const char*> block_data,
                 std::vector<uint32_t> block_comp_size)
      : ReaderBase(type, enc, num_rows, std::move(buf), payload, payload_size),
        block_uncomp_end_(std::move(block_uncomp_end)),
        block_data_(std::move(block_data)),
        block_comp_size_(std::move(block_comp_size)) {
    offsets_ = payload_;
  }

  Value ValueAt(uint32_t row) const override {
    if (IsNull(row)) return Value::Null();
    uint32_t b = DecodeFixed32(offsets_ + row * size_t{4});
    uint32_t e = DecodeFixed32(offsets_ + (row + size_t{1}) * 4);
    std::string out;
    if (!ReadBytes(b, e - b, &out).ok()) return Value::Null();
    return Value(std::move(out));
  }

  void DecodeAll(ColumnVector* out) const override {
    // Decompress all blocks once, then slice.
    std::string bytes;
    for (size_t blk = 0; blk < block_data_.size(); ++blk) {
      uint32_t ub = blk == 0 ? 0 : block_uncomp_end_[blk - 1];
      Status s = LzDecompress(Slice(block_data_[blk], block_comp_size_[blk]),
                              block_uncomp_end_[blk] - ub, &bytes);
      assert(s.ok());
      (void)s;
    }
    out->Reserve(out->size() + num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) {
      if (IsNull(i)) {
        out->AppendNull();
      } else {
        uint32_t b = DecodeFixed32(offsets_ + i * size_t{4});
        uint32_t e = DecodeFixed32(offsets_ + (i + size_t{1}) * 4);
        out->AppendString(bytes.substr(b, e - b));
      }
    }
  }

 private:
  // Reads `len` uncompressed bytes starting at `pos`, decompressing only
  // the blocks that overlap the range ("seekable at block granularity").
  Status ReadBytes(uint32_t pos, uint32_t len, std::string* out) const {
    uint32_t end = pos + len;
    size_t blk = std::upper_bound(block_uncomp_end_.begin(),
                                  block_uncomp_end_.end(), pos) -
                 block_uncomp_end_.begin();
    std::string scratch;
    while (pos < end) {
      uint32_t blk_begin = blk == 0 ? 0 : block_uncomp_end_[blk - 1];
      uint32_t blk_end = block_uncomp_end_[blk];
      scratch.clear();
      S2_RETURN_NOT_OK(LzDecompress(
          Slice(block_data_[blk], block_comp_size_[blk]), blk_end - blk_begin,
          &scratch));
      uint32_t take_begin = pos - blk_begin;
      uint32_t take_end = std::min(end, blk_end) - blk_begin;
      out->append(scratch.data() + take_begin, take_end - take_begin);
      pos = blk_begin + take_end;
      ++blk;
    }
    return Status::OK();
  }

  const char* offsets_;
  std::vector<uint32_t> block_uncomp_end_;  // cumulative uncompressed ends
  std::vector<const char*> block_data_;
  std::vector<uint32_t> block_comp_size_;
};

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

void EncodeHeader(const ColumnVector& col, Encoding enc, std::string* dst) {
  dst->push_back(static_cast<char>(enc));
  dst->push_back(static_cast<char>(col.type()));
  PutVarint64(dst, col.size());
  dst->push_back(col.has_nulls() ? 1 : 0);
  if (col.has_nulls()) {
    BitVector nulls(static_cast<uint32_t>(col.size()));
    for (uint32_t i = 0; i < col.size(); ++i) {
      if (col.IsNull(i)) nulls.Set(i);
    }
    nulls.EncodeTo(dst);
  }
}

void EncodePlain(const ColumnVector& col, std::string* dst) {
  if (col.type() == DataType::kString) {
    uint32_t off = 0;
    for (size_t i = 0; i < col.size(); ++i) {
      PutFixed32(dst, off);
      off += static_cast<uint32_t>(col.StringAt(i).size());
    }
    PutFixed32(dst, off);
    for (size_t i = 0; i < col.size(); ++i) dst->append(col.StringAt(i));
  } else if (col.type() == DataType::kDouble) {
    for (size_t i = 0; i < col.size(); ++i) {
      uint64_t bits;
      double d = col.DoubleAt(i);
      memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
    }
  } else {
    for (size_t i = 0; i < col.size(); ++i) {
      PutFixed64(dst, static_cast<uint64_t>(col.IntAt(i)));
    }
  }
}

Status EncodeBitPack(const ColumnVector& col, std::string* dst) {
  if (col.type() != DataType::kInt64) {
    return Status::InvalidArgument("bitpack requires int column");
  }
  int64_t min = 0, max = 0;
  bool first = true;
  for (size_t i = 0; i < col.size(); ++i) {
    int64_t v = col.IntAt(i);
    if (first) {
      min = max = v;
      first = false;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }
  uint64_t range = static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  int width = BitWidthFor(range);
  PutVarint64(dst, ZigZagEncode(min));
  dst->push_back(static_cast<char>(width));
  std::vector<uint64_t> rel(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    rel[i] = static_cast<uint64_t>(col.IntAt(i)) - static_cast<uint64_t>(min);
  }
  BitPack(rel.data(), rel.size(), width, dst);
  return Status::OK();
}

Status EncodeRle(const ColumnVector& col, std::string* dst) {
  if (col.type() != DataType::kInt64) {
    return Status::InvalidArgument("rle requires int column");
  }
  std::string runs;
  uint64_t num_runs = 0;
  size_t i = 0;
  while (i < col.size()) {
    int64_t v = col.IntAt(i);
    size_t j = i + 1;
    while (j < col.size() && col.IntAt(j) == v) ++j;
    PutVarint64(&runs, ZigZagEncode(v));
    PutVarint64(&runs, j - i);
    ++num_runs;
    i = j;
  }
  PutVarint64(dst, num_runs);
  dst->append(runs);
  return Status::OK();
}

Status EncodeDict(const ColumnVector& col, std::string* dst) {
  std::vector<uint64_t> codes(col.size());
  if (col.type() == DataType::kString) {
    std::unordered_map<std::string, uint32_t> dict;
    std::vector<const std::string*> order;
    for (size_t i = 0; i < col.size(); ++i) {
      auto [it, inserted] =
          dict.emplace(col.StringAt(i), static_cast<uint32_t>(dict.size()));
      if (inserted) order.push_back(&it->first);
      codes[i] = it->second;
    }
    PutVarint64(dst, order.size());
    for (const std::string* s : order) PutLengthPrefixed(dst, *s);
  } else if (col.type() == DataType::kInt64) {
    std::unordered_map<int64_t, uint32_t> dict;
    std::vector<int64_t> order;
    for (size_t i = 0; i < col.size(); ++i) {
      auto [it, inserted] =
          dict.emplace(col.IntAt(i), static_cast<uint32_t>(dict.size()));
      if (inserted) order.push_back(it->first);
      codes[i] = it->second;
    }
    PutVarint64(dst, order.size());
    for (int64_t v : order) PutVarint64(dst, ZigZagEncode(v));
  } else {
    return Status::InvalidArgument("dict requires int or string column");
  }
  uint64_t max_code = codes.empty() ? 0 : *std::max_element(codes.begin(),
                                                            codes.end());
  int width = BitWidthFor(max_code);
  dst->push_back(static_cast<char>(width));
  BitPack(codes.data(), codes.size(), width, dst);
  return Status::OK();
}

Status EncodeLz(const ColumnVector& col, std::string* dst) {
  if (col.type() != DataType::kString) {
    return Status::InvalidArgument("lz requires string column");
  }
  // Offsets (uncompressed positions), then block directory, then blocks.
  std::string bytes;
  uint32_t off = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    PutFixed32(dst, off);
    off += static_cast<uint32_t>(col.StringAt(i).size());
    bytes.append(col.StringAt(i));
  }
  PutFixed32(dst, off);

  size_t num_blocks = (bytes.size() + kLzBlockSize - 1) / kLzBlockSize;
  PutVarint64(dst, num_blocks);
  std::string blocks;
  std::vector<std::pair<uint64_t, uint64_t>> dir;  // (uncomp, comp) sizes
  for (size_t b = 0; b < num_blocks; ++b) {
    size_t begin = b * kLzBlockSize;
    size_t len = std::min(kLzBlockSize, bytes.size() - begin);
    size_t before = blocks.size();
    LzCompress(Slice(bytes.data() + begin, len), &blocks);
    dir.emplace_back(len, blocks.size() - before);
  }
  for (auto [u, c] : dir) {
    PutVarint64(dst, u);
    PutVarint64(dst, c);
  }
  dst->append(blocks);
  return Status::OK();
}

}  // namespace

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kBitPack:
      return "bitpack";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDict:
      return "dict";
    case Encoding::kLz:
      return "lz";
  }
  return "unknown";
}

Encoding ChooseEncoding(const ColumnVector& col) {
  if (col.size() == 0) return Encoding::kPlain;
  if (col.type() == DataType::kDouble) return Encoding::kPlain;
  if (col.type() == DataType::kInt64) {
    // Count runs and distinct values in one pass (distinct capped).
    size_t runs = 1;
    std::unordered_map<int64_t, int> distinct;
    bool too_many_distinct = false;
    for (size_t i = 0; i < col.size(); ++i) {
      if (i > 0 && col.IntAt(i) != col.IntAt(i - 1)) ++runs;
      if (!too_many_distinct) {
        distinct.emplace(col.IntAt(i), 1);
        if (distinct.size() > col.size() / 4 + 16) too_many_distinct = true;
      }
    }
    if (runs <= col.size() / 8) return Encoding::kRle;
    if (!too_many_distinct && distinct.size() <= 256) return Encoding::kDict;
    return Encoding::kBitPack;
  }
  // Strings: dictionary when low cardinality, else LZ when values repeat
  // content, else plain.
  std::unordered_map<std::string, int> distinct;
  size_t total_bytes = 0;
  bool too_many = false;
  for (size_t i = 0; i < col.size(); ++i) {
    total_bytes += col.StringAt(i).size();
    if (!too_many) {
      distinct.emplace(col.StringAt(i), 1);
      if (distinct.size() > col.size() / 4 + 16) too_many = true;
    }
  }
  if (!too_many && distinct.size() <= 4096 && col.size() >= 16) {
    return Encoding::kDict;
  }
  if (total_bytes >= 4096) return Encoding::kLz;
  return Encoding::kPlain;
}

Result<std::string> EncodeColumn(const ColumnVector& col, Encoding encoding) {
  // Fall back to plain when the requested encoding doesn't fit the type.
  if (col.type() == DataType::kDouble && encoding != Encoding::kPlain) {
    encoding = Encoding::kPlain;
  }
  if (col.type() == DataType::kString &&
      (encoding == Encoding::kBitPack || encoding == Encoding::kRle)) {
    encoding = Encoding::kPlain;
  }
  if (col.type() == DataType::kInt64 && encoding == Encoding::kLz) {
    encoding = Encoding::kPlain;
  }
  std::string out;
  EncodeHeader(col, encoding, &out);
  switch (encoding) {
    case Encoding::kPlain:
      EncodePlain(col, &out);
      break;
    case Encoding::kBitPack:
      S2_RETURN_NOT_OK(EncodeBitPack(col, &out));
      break;
    case Encoding::kRle:
      S2_RETURN_NOT_OK(EncodeRle(col, &out));
      break;
    case Encoding::kDict:
      S2_RETURN_NOT_OK(EncodeDict(col, &out));
      break;
    case Encoding::kLz:
      S2_RETURN_NOT_OK(EncodeLz(col, &out));
      break;
  }
  return out;
}

Result<std::unique_ptr<ColumnReader>> OpenColumn(
    std::shared_ptr<const std::string> data) {
  size_t size = data->size();
  return OpenColumnAt(std::move(data), 0, size);
}

Result<std::unique_ptr<ColumnReader>> OpenColumnAt(
    std::shared_ptr<const std::string> file, size_t offset, size_t size) {
  if (offset + size > file->size()) {
    return Status::InvalidArgument("column window outside file");
  }
  const std::shared_ptr<const std::string>& data = file;
  Slice in(file->data() + offset, size);
  if (in.size() < 3) return Status::Corruption("column block too small");
  Encoding enc = static_cast<Encoding>(in[0]);
  DataType type = static_cast<DataType>(in[1]);
  in.RemovePrefix(2);
  S2_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint64(&in));
  if (in.empty()) return Status::Corruption("truncated column header");
  bool has_nulls = in[0] != 0;
  in.RemovePrefix(1);
  BitVector nulls;
  if (has_nulls) {
    S2_ASSIGN_OR_RETURN(nulls, BitVector::DecodeFrom(&in));
  }

  std::unique_ptr<ColumnReader> reader;
  const uint32_t n = static_cast<uint32_t>(num_rows);
  switch (enc) {
    case Encoding::kPlain: {
      if (type == DataType::kString) {
        if (in.size() < (n + size_t{1}) * 4) {
          return Status::Corruption("truncated plain string column");
        }
        reader = std::make_unique<PlainStringReader>(type, enc, n, data,
                                                     in.data(), in.size());
      } else {
        if (in.size() < n * size_t{8}) {
          return Status::Corruption("truncated plain column");
        }
        reader = std::make_unique<PlainIntReader>(type, enc, n, data,
                                                  in.data(), in.size());
      }
      break;
    }
    case Encoding::kBitPack: {
      S2_ASSIGN_OR_RETURN(uint64_t zmin, GetVarint64(&in));
      if (in.empty()) return Status::Corruption("truncated bitpack header");
      int width = static_cast<unsigned char>(in[0]);
      in.RemovePrefix(1);
      if (in.size() < BitPackedBytes(n, width)) {
        return Status::Corruption("truncated bitpack column");
      }
      reader = std::make_unique<BitPackIntReader>(type, enc, n, data,
                                                  in.data(), in.size(),
                                                  ZigZagDecode(zmin), width);
      break;
    }
    case Encoding::kRle: {
      S2_ASSIGN_OR_RETURN(uint64_t num_runs, GetVarint64(&in));
      std::vector<int64_t> run_values;
      std::vector<uint32_t> run_ends;
      run_values.reserve(num_runs);
      run_ends.reserve(num_runs);
      uint32_t total = 0;
      for (uint64_t r = 0; r < num_runs; ++r) {
        S2_ASSIGN_OR_RETURN(uint64_t zv, GetVarint64(&in));
        S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&in));
        run_values.push_back(ZigZagDecode(zv));
        total += static_cast<uint32_t>(count);
        run_ends.push_back(total);
      }
      if (total != n) return Status::Corruption("rle run total mismatch");
      reader = std::make_unique<RleIntReader>(type, enc, n, data, in.data(),
                                              in.size(), std::move(run_values),
                                              std::move(run_ends));
      break;
    }
    case Encoding::kDict: {
      S2_ASSIGN_OR_RETURN(uint64_t dict_size, GetVarint64(&in));
      ColumnVector dict(type);
      for (uint64_t i = 0; i < dict_size; ++i) {
        if (type == DataType::kString) {
          S2_ASSIGN_OR_RETURN(Slice s, GetLengthPrefixed(&in));
          dict.AppendString(s.ToString());
        } else {
          S2_ASSIGN_OR_RETURN(uint64_t zv, GetVarint64(&in));
          dict.AppendInt(ZigZagDecode(zv));
        }
      }
      if (in.empty()) return Status::Corruption("truncated dict header");
      int width = static_cast<unsigned char>(in[0]);
      in.RemovePrefix(1);
      if (in.size() < BitPackedBytes(n, width)) {
        return Status::Corruption("truncated dict codes");
      }
      reader = std::make_unique<DictReader>(type, enc, n, data, in.data(),
                                            in.size(), std::move(dict),
                                            in.data(), width);
      break;
    }
    case Encoding::kLz: {
      if (in.size() < (n + size_t{1}) * 4) {
        return Status::Corruption("truncated lz offsets");
      }
      const char* payload = in.data();
      size_t payload_size = in.size();
      in.RemovePrefix((n + size_t{1}) * 4);
      S2_ASSIGN_OR_RETURN(uint64_t num_blocks, GetVarint64(&in));
      std::vector<uint32_t> uncomp_end;
      std::vector<uint32_t> comp_size;
      uncomp_end.reserve(num_blocks);
      comp_size.reserve(num_blocks);
      uint32_t utotal = 0;
      for (uint64_t b = 0; b < num_blocks; ++b) {
        S2_ASSIGN_OR_RETURN(uint64_t u, GetVarint64(&in));
        S2_ASSIGN_OR_RETURN(uint64_t c, GetVarint64(&in));
        utotal += static_cast<uint32_t>(u);
        uncomp_end.push_back(utotal);
        comp_size.push_back(static_cast<uint32_t>(c));
      }
      std::vector<const char*> block_data;
      block_data.reserve(num_blocks);
      for (uint64_t b = 0; b < num_blocks; ++b) {
        if (in.size() < comp_size[b]) {
          return Status::Corruption("truncated lz block");
        }
        block_data.push_back(in.data());
        in.RemovePrefix(comp_size[b]);
      }
      reader = std::make_unique<LzStringReader>(
          type, enc, n, data, payload, payload_size, std::move(uncomp_end),
          std::move(block_data), std::move(comp_size));
      break;
    }
    default:
      return Status::Corruption("unknown encoding");
  }
  reader->nulls_ = std::move(nulls);
  reader->has_nulls_ = has_nulls;
  return reader;
}

void ColumnReader::DecodeAll(ColumnVector* out) const {
  for (uint32_t i = 0; i < num_rows_; ++i) out->Append(ValueAt(i));
}

void ColumnReader::DecodeRows(const std::vector<uint32_t>& rows,
                              ColumnVector* out) const {
  for (uint32_t r : rows) out->Append(ValueAt(r));
}

}  // namespace s2
