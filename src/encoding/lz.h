#ifndef S2_ENCODING_LZ_H_
#define S2_ENCODING_LZ_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace s2 {

// "s2lz": an LZ4-style byte compressor (greedy hash-chain match finder,
// token format of literal-run + match). Stands in for LZ4 in column
// payload compression. Self-contained, no external dependency.

/// Compresses `input`, appending the compressed bytes to *dst. The output
/// is a raw block (no length header); the caller records sizes.
void LzCompress(Slice input, std::string* dst);

/// Decompresses a block produced by LzCompress. `uncompressed_size` must be
/// the exact original size. Appends to *dst; errors on malformed input.
Status LzDecompress(Slice block, size_t uncompressed_size, std::string* dst);

}  // namespace s2

#endif  // S2_ENCODING_LZ_H_
