#ifndef S2_ENCODING_COLUMN_VECTOR_H_
#define S2_ENCODING_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/types.h"

namespace s2 {

/// In-memory decoded column: the unit of vectorized execution and the input
/// to segment encoding. Storage is type-specific flat vectors plus a null
/// bitmap; rows with a set null bit still occupy a (zero) slot in the data
/// vector so offsets line up.
class ColumnVector {
 public:
  ColumnVector() : type_(DataType::kInt64) {}
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  void Append(const Value& v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();

  bool IsNull(size_t i) const { return has_nulls_ && nulls_.Get(i); }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Materializes row i as a Value (allocates for strings).
  Value GetValue(size_t i) const;

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  bool has_nulls() const { return has_nulls_; }

  void Clear();
  void Reserve(size_t n);

 private:
  void EnsureNulls();

  DataType type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  BitVector nulls_;
  bool has_nulls_ = false;
};

}  // namespace s2

#endif  // S2_ENCODING_COLUMN_VECTOR_H_
