#ifndef S2_ENCODING_BITPACK_H_
#define S2_ENCODING_BITPACK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s2 {

// Fixed-width bit packing. Values are packed LSB-first into a little-endian
// byte stream; random access at index i reads the (i*width)-th bit without
// touching neighbours, which is what makes bit-packed columns seekable
// (paper Section 2.1.2).

/// Minimum bit width able to represent v (0 -> 0 bits).
int BitWidthFor(uint64_t v);

/// Appends ceil(n*width/8) bytes holding values[0..n) at `width` bits each.
/// Values must all fit in `width` bits.
void BitPack(const uint64_t* values, size_t n, int width, std::string* dst);

/// Reads the value at index i from a packed buffer.
uint64_t BitUnpackOne(const char* data, size_t i, int width);

/// Decodes values [start, start+count) into out (appended).
void BitUnpackRange(const char* data, size_t start, size_t count, int width,
                    std::vector<uint64_t>* out);

/// Number of bytes a packed run occupies.
inline size_t BitPackedBytes(size_t n, int width) {
  return (n * static_cast<size_t>(width) + 7) / 8;
}

}  // namespace s2

#endif  // S2_ENCODING_BITPACK_H_
