#include "encoding/column_vector.h"

#include <cassert>

namespace s2 {

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt(v.as_int());
      break;
    case DataType::kDouble:
      AppendDouble(v.is_int() ? static_cast<double>(v.as_int())
                              : v.as_double());
      break;
    case DataType::kString:
      AppendString(v.as_string());
      break;
  }
}

void ColumnVector::AppendInt(int64_t v) {
  assert(type_ == DataType::kInt64);
  ints_.push_back(v);
  ++size_;
  if (has_nulls_) nulls_.Resize(static_cast<uint32_t>(size_));
}

void ColumnVector::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  doubles_.push_back(v);
  ++size_;
  if (has_nulls_) nulls_.Resize(static_cast<uint32_t>(size_));
}

void ColumnVector::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  ++size_;
  if (has_nulls_) nulls_.Resize(static_cast<uint32_t>(size_));
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  ++size_;
  EnsureNulls();
  nulls_.Set(static_cast<uint32_t>(size_ - 1));
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(strings_[i]);
  }
  return Value::Null();
}

void ColumnVector::Clear() {
  size_ = 0;
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  nulls_ = BitVector();
  has_nulls_ = false;
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::EnsureNulls() {
  if (!has_nulls_) {
    nulls_ = BitVector(static_cast<uint32_t>(size_));
    has_nulls_ = true;
  } else {
    nulls_.Resize(static_cast<uint32_t>(size_));
  }
}

}  // namespace s2
