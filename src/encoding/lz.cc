#include "encoding/lz.h"

#include <cstring>
#include <vector>

namespace s2 {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline uint32_t HashPos(const unsigned char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Writes an LZ4-style length: `base` (nibble already emitted) handled by the
// caller; this emits the 255-run continuation bytes for len >= 15.
void EmitExtLength(size_t len, std::string* dst) {
  while (len >= 255) {
    dst->push_back(static_cast<char>(255));
    len -= 255;
  }
  dst->push_back(static_cast<char>(len));
}

void EmitSequence(const unsigned char* lit, size_t lit_len, size_t match_len,
                  size_t offset, std::string* dst) {
  // Token: [literal nibble | match nibble]. match_len==0 means "no match"
  // (final literals); otherwise stored as match_len - kMinMatch.
  size_t ml = match_len == 0 ? 0 : match_len - kMinMatch;
  unsigned char token =
      static_cast<unsigned char>((lit_len >= 15 ? 15 : lit_len) << 4) |
      static_cast<unsigned char>(ml >= 15 ? 15 : ml);
  dst->push_back(static_cast<char>(token));
  if (lit_len >= 15) EmitExtLength(lit_len - 15, dst);
  dst->append(reinterpret_cast<const char*>(lit), lit_len);
  if (match_len > 0) {
    dst->push_back(static_cast<char>(offset & 0xff));
    dst->push_back(static_cast<char>((offset >> 8) & 0xff));
    if (ml >= 15) EmitExtLength(ml - 15, dst);
  }
}

}  // namespace

void LzCompress(Slice input, std::string* dst) {
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(input.data());
  const size_t n = input.size();
  if (n < kMinMatch + 1) {
    EmitSequence(base, n, 0, 0, dst);
    return;
  }
  std::vector<int64_t> table(size_t{1} << kHashBits, -1);
  size_t i = 0;
  size_t anchor = 0;
  // Leave the last kMinMatch bytes as literals so the hash never reads past
  // the end.
  const size_t limit = n - kMinMatch;
  while (i < limit) {
    uint32_t h = HashPos(base + i);
    int64_t cand = table[h];
    table[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kMaxOffset &&
        memcmp(base + cand, base + i, kMinMatch) == 0) {
      // Extend the match forward.
      size_t match_len = kMinMatch;
      while (i + match_len < n &&
             base[cand + match_len] == base[i + match_len]) {
        ++match_len;
      }
      EmitSequence(base + anchor, i - anchor, match_len,
                   i - static_cast<size_t>(cand), dst);
      i += match_len;
      anchor = i;
    } else {
      ++i;
    }
  }
  EmitSequence(base + anchor, n - anchor, 0, 0, dst);
}

Status LzDecompress(Slice block, size_t uncompressed_size, std::string* dst) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(block.data());
  const unsigned char* end = p + block.size();
  size_t out_base = dst->size();
  dst->reserve(out_base + uncompressed_size);

  auto read_ext = [&](size_t base_len) -> Result<size_t> {
    size_t len = base_len;
    if (base_len == 15) {
      unsigned char b;
      do {
        if (p >= end) return Status::Corruption("s2lz: truncated length");
        b = *p++;
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (p < end) {
    unsigned char token = *p++;
    S2_ASSIGN_OR_RETURN(size_t lit_len, read_ext(token >> 4));
    if (static_cast<size_t>(end - p) < lit_len) {
      return Status::Corruption("s2lz: truncated literals");
    }
    dst->append(reinterpret_cast<const char*>(p), lit_len);
    p += lit_len;
    if (p >= end) break;  // final literal run has no match part
    if (end - p < 2) return Status::Corruption("s2lz: truncated offset");
    size_t offset = p[0] | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    S2_ASSIGN_OR_RETURN(size_t ml, read_ext(token & 0x0f));
    size_t match_len = ml + kMinMatch;
    size_t produced = dst->size() - out_base;
    if (offset == 0 || offset > produced) {
      return Status::Corruption("s2lz: bad match offset");
    }
    // Byte-at-a-time copy: handles overlapping matches (RLE-style).
    size_t src = dst->size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      dst->push_back((*dst)[src + k]);
    }
  }
  if (dst->size() - out_base != uncompressed_size) {
    return Status::Corruption("s2lz: size mismatch after decompress");
  }
  return Status::OK();
}

}  // namespace s2
