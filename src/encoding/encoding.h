#ifndef S2_ENCODING_ENCODING_H_
#define S2_ENCODING_ENCODING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "encoding/column_vector.h"

namespace s2 {

/// Physical column encodings. Per the paper (Section 2.1.2) every encoding
/// is *seekable*: a value at a given row offset can be read without
/// decoding the whole column, which is what lets the columnstore serve
/// OLTP point reads.
enum class Encoding : uint8_t {
  kPlain = 0,    // fixed-width values / offset+bytes for strings
  kBitPack = 1,  // frame-of-reference + fixed-width bit packing (ints)
  kRle = 2,      // run-length encoding (ints)
  kDict = 3,     // dictionary + bit-packed codes (ints & strings)
  kLz = 4,       // s2lz block compression over plain string payload
};

const char* EncodingName(Encoding e);

/// Random-access reader over one encoded column block. Implementations own
/// (share) the underlying byte buffer. Thread-safe for concurrent reads.
class ColumnReader {
 public:
  virtual ~ColumnReader() = default;

  DataType type() const { return type_; }
  Encoding encoding() const { return encoding_; }
  uint32_t num_rows() const { return num_rows_; }

  bool IsNull(uint32_t row) const {
    return has_nulls_ && nulls_.Get(row);
  }

  /// Point read at a row offset ("seek"). O(1) for plain/bitpack/dict,
  /// O(log runs) for RLE, O(block) for LZ.
  virtual Value ValueAt(uint32_t row) const = 0;

  /// Full decode, appending all rows to *out.
  virtual void DecodeAll(ColumnVector* out) const;

  /// Selective decode of the given (ascending) row offsets — late
  /// materialization after filters.
  virtual void DecodeRows(const std::vector<uint32_t>& rows,
                          ColumnVector* out) const;

  /// Encoded-execution hook: for dictionary columns, returns the dictionary
  /// values; a filter can be evaluated once per dictionary entry and then
  /// mapped over codes. Returns nullptr when not dictionary-encoded.
  virtual const ColumnVector* dictionary() const { return nullptr; }

  /// Encoded-execution hook: dictionary code for a row (valid only when
  /// dictionary() != nullptr).
  virtual uint32_t CodeAt(uint32_t /*row*/) const { return 0; }

 protected:
  ColumnReader(DataType type, Encoding encoding, uint32_t num_rows)
      : type_(type), encoding_(encoding), num_rows_(num_rows) {}

  DataType type_;
  Encoding encoding_;
  uint32_t num_rows_;
  BitVector nulls_;
  bool has_nulls_ = false;

  friend Result<std::unique_ptr<ColumnReader>> OpenColumnAt(
      std::shared_ptr<const std::string> file, size_t offset, size_t size);
};

/// Picks an encoding for the column by analyzing its data: low-cardinality
/// columns get kDict, long-run ints get kRle, narrow-range ints get
/// kBitPack, compressible strings get kLz, otherwise kPlain. Each segment
/// chooses independently (the paper: "the same column can use a different
/// encoding in each segment").
Encoding ChooseEncoding(const ColumnVector& col);

/// Serializes `col` with the requested encoding. The output block is
/// self-describing (header carries encoding, type, row count, null bitmap).
Result<std::string> EncodeColumn(const ColumnVector& col, Encoding encoding);

/// Opens an encoded block for reading. The reader shares ownership of the
/// buffer.
Result<std::unique_ptr<ColumnReader>> OpenColumn(
    std::shared_ptr<const std::string> data);

/// Opens an encoded block living inside a larger buffer (e.g. one column of
/// a segment file) without copying. The reader shares ownership of `file`.
Result<std::unique_ptr<ColumnReader>> OpenColumnAt(
    std::shared_ptr<const std::string> file, size_t offset, size_t size);

}  // namespace s2

#endif  // S2_ENCODING_ENCODING_H_
