#include "common/profile.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"
#include "common/metrics.h"

namespace s2 {

namespace {

thread_local ProfileCollector::Attachment tls_attachment;

}  // namespace

int64_t ProfileNode::counter(const std::string& key) const {
  for (const auto& [k, v] : counters) {
    if (k == key) return v;
  }
  return 0;
}

ProfileCollector::ProfileCollector(std::string root_name) {
  root_.name = std::move(root_name);
  root_.start_ns = ScopedTimer::NowNs();
}

ProfileNode* ProfileCollector::StartSpan(ProfileNode* parent, std::string name,
                                         std::string detail) {
  auto node = std::make_unique<ProfileNode>();
  node->name = std::move(name);
  node->detail = std::move(detail);
  node->start_ns = ScopedTimer::NowNs();
  ProfileNode* raw = node.get();
  std::lock_guard<std::mutex> lock(mu_);
  parent->children.push_back(std::move(node));
  return raw;
}

void ProfileCollector::FinishSpan(ProfileNode* node) {
  uint64_t now = ScopedTimer::NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  node->duration_ns = now - node->start_ns;
}

void ProfileCollector::AddCounter(ProfileNode* node, const std::string& key,
                                  int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, v] : node->counters) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  node->counters.emplace_back(key, delta);
}

void ProfileCollector::SetDetail(ProfileNode* node, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  node->detail = std::move(detail);
}

void ProfileCollector::AppendDetail(ProfileNode* node,
                                    const std::string& more) {
  std::lock_guard<std::mutex> lock(mu_);
  node->detail += more;
}

void ProfileCollector::RenderText(const ProfileNode& node, int depth,
                                  std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.detail.empty()) {
    *out += ' ';
    *out += node.detail;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), " %.3fms",
           static_cast<double>(node.duration_ns) / 1e6);
  *out += buf;
  for (const auto& [k, v] : node.counters) {
    snprintf(buf, sizeof(buf), " %" PRId64, v);
    *out += ' ';
    *out += k;
    *out += '=';
    *out += buf + 1;  // skip the leading space from snprintf
  }
  *out += '\n';
  for (const auto& child : node.children) {
    RenderText(*child, depth + 1, out);
  }
}

std::string ProfileCollector::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  RenderText(root_, 0, &out);
  return out;
}

void ProfileCollector::RenderJson(const ProfileNode& node,
                                  std::string* out) const {
  *out += "{\"name\":\"";
  JsonAppendEscaped(node.name, out);
  *out += "\",\"detail\":\"";
  JsonAppendEscaped(node.detail, out);
  char buf[64];
  snprintf(buf, sizeof(buf), "\",\"duration_ns\":%" PRIu64, node.duration_ns);
  *out += buf;
  *out += ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : node.counters) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    JsonAppendEscaped(k, out);
    snprintf(buf, sizeof(buf), "\":%" PRId64, v);
    *out += buf;
  }
  *out += "},\"children\":[";
  first = true;
  for (const auto& child : node.children) {
    if (!first) *out += ',';
    first = false;
    RenderJson(*child, out);
  }
  *out += "]}";
}

std::string ProfileCollector::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  RenderJson(root_, &out);
  return out;
}

namespace {

int64_t SumCounter(const ProfileNode& node, const std::string& key) {
  int64_t total = node.counter(key);
  for (const auto& child : node.children) total += SumCounter(*child, key);
  return total;
}

void CollectByName(const ProfileNode& node, const std::string& name,
                   std::vector<const ProfileNode*>* out) {
  if (node.name == name) out->push_back(&node);
  for (const auto& child : node.children) CollectByName(*child, name, out);
}

}  // namespace

int64_t ProfileCollector::TotalCounter(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SumCounter(root_, key);
}

std::vector<const ProfileNode*> ProfileCollector::FindAll(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ProfileNode*> out;
  CollectByName(root_, name, &out);
  return out;
}

ProfileCollector::Attachment ProfileCollector::Current() {
  return tls_attachment;
}

void ProfileCollector::Attach(const Attachment& a) { tls_attachment = a; }

void ProfileCollector::CountHere(const std::string& key, int64_t delta) {
  const Attachment& a = tls_attachment;
  if (a.collector == nullptr) return;
  a.collector->AddCounter(a.node, key, delta);
}

ProfileScope::ProfileScope(ProfileCollector* collector, ProfileNode* node) {
  prev_ = ProfileCollector::Current();
  ProfileCollector::Attach({collector, collector != nullptr ? node : nullptr});
}

ProfileScope::~ProfileScope() { ProfileCollector::Attach(prev_); }

ProfileSpan::ProfileSpan(const char* name, std::string detail) {
  prev_ = ProfileCollector::Current();
  if (prev_.collector == nullptr) return;
  collector_ = prev_.collector;
  node_ = collector_->StartSpan(prev_.node, name, std::move(detail));
  ProfileCollector::Attach({collector_, node_});
}

ProfileSpan::~ProfileSpan() {
  if (node_ == nullptr) return;
  collector_->FinishSpan(node_);
  ProfileCollector::Attach(prev_);
}

void ProfileSpan::Count(const std::string& key, int64_t delta) {
  if (node_ != nullptr) collector_->AddCounter(node_, key, delta);
}

void ProfileSpan::SetDetail(std::string detail) {
  if (node_ != nullptr) collector_->SetDetail(node_, std::move(detail));
}

void ProfileSpan::AppendDetail(const std::string& more) {
  if (node_ != nullptr) collector_->AppendDetail(node_, more);
}

}  // namespace s2
