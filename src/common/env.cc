#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace s2 {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

std::string ParentDir(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteFd(int fd, const std::string& path, const std::string& data,
               bool sync) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("write " + path);
    }
    off += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync " + path);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

uint64_t Env::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Env::WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  // fsync the temp file before the rename: without it, power loss after the
  // rename can expose an empty or partial target file.
  S2_RETURN_NOT_OK(WriteStringToFile(tmp, data, /*sync=*/true));
  S2_RETURN_NOT_OK(RenameFile(tmp, path));
  // fsync the parent directory so the rename itself survives power loss.
  return SyncDir(ParentDir(path));
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status PosixEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories " + path + ": " +
                                 ec.message());
  return Status::OK();
}

Status PosixEnv::WriteStringToFile(const std::string& path,
                                   const std::string& data, bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return WriteFd(fd, path, data, sync);
}

Status PosixEnv::AppendToFile(const std::string& path, const std::string& data,
                              bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  return WriteFd(fd, path, data, sync);
}

Result<std::string> PosixEnv::ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read " + path);
  return data;
}

Result<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

Status PosixEnv::RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("remove " + path +
                           (ec ? ": " + ec.message() : ": not found"));
  }
  return Status::OK();
}

Status PosixEnv::RemoveDirRecursive(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> PosixEnv::FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

Status PosixEnv::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate " + path);
  }
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) return Status::IOError("rename " + from + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories; that is not a data
    // loss on those systems, so only real errors surface.
    if (errno != EINVAL && errno != ENOTSUP) {
      ::close(fd);
      return ErrnoStatus("fsync dir " + dir);
    }
  }
  ::close(fd);
  return Status::OK();
}

Result<std::string> PosixEnv::MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path dir =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    if (fs::create_directory(dir, ec) && !ec) return dir.string();
  }
  return Status::IOError("could not create temp dir with prefix " + prefix);
}

}  // namespace s2
