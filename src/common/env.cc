#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace s2 {

namespace fs = std::filesystem;

namespace {
Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}
}  // namespace

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories " + path + ": " +
                                 ec.message());
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  return Status::OK();
}

Status AppendToFile(const std::string& path, const std::string& data,
                    bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("write " + path);
    }
    off += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync " + path);
  }
  ::close(fd);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read " + path);
  return data;
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("remove " + path +
                           (ec ? ": " + ec.message() : ": not found"));
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("temp_directory_path: " + ec.message());
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path dir =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    if (fs::create_directory(dir, ec) && !ec) return dir.string();
  }
  return Status::IOError("could not create temp dir with prefix " + prefix);
}

}  // namespace s2
