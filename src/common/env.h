#ifndef S2_COMMON_ENV_H_
#define S2_COMMON_ENV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace s2 {

/// Filesystem abstraction behind every local-persistence path — log files,
/// snapshot files, segment data files, the blob store's local-directory
/// backend. Components take an `Env*` (null = Env::Default(), a PosixEnv)
/// so tests can substitute a FaultInjectionEnv (common/fault_env.h) and
/// exercise crash/IO-failure behavior deterministically.
///
/// The virtual methods are the primitive operations fault injection hooks;
/// WriteFileAtomic is composed from them in the base class so a wrapper
/// env intercepts each step (temp write, temp fsync, rename, directory
/// fsync) individually.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates the directory and any missing parents.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Truncating write of the whole file. When `sync` is true the data is
  /// fsync'd before returning.
  virtual Status WriteStringToFile(const std::string& path,
                                   const std::string& data, bool sync) = 0;

  /// Appends `data` to `path`, creating it if needed. When `sync` is true
  /// the write is fsync'd before returning.
  virtual Status AppendToFile(const std::string& path, const std::string& data,
                              bool sync) = 0;

  /// Reads the whole file.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Lists regular-file names (not paths) directly under `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Truncates the file to `size` bytes (recovery drops torn log tails).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// fsyncs the directory itself so entries created/renamed within it
  /// survive power loss.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Creates a fresh unique directory under the system temp dir. Tests and
  /// examples use this for scratch space.
  virtual Result<std::string> MakeTempDir(const std::string& prefix) = 0;

  /// Monotonic clock in nanoseconds (same epoch as ScopedTimer::NowNs).
  /// Virtual so FaultInjectionEnv can freeze/advance time and drive
  /// age-based logic (upload-queue age, monitor sampling timestamps)
  /// deterministically in tests.
  virtual uint64_t NowNs();

  /// Crash-atomic full-file write: write `path + ".tmp"`, fsync it, rename
  /// over `path`, then fsync the parent directory. After a crash at any
  /// point the target holds either the old contents or the new contents,
  /// never a prefix (the temp fsync orders data before the rename; the
  /// directory fsync makes the rename itself durable).
  Status WriteFileAtomic(const std::string& path, const std::string& data);

  /// Process-wide default environment (a PosixEnv singleton).
  static Env* Default();
};

/// The real filesystem.
class PosixEnv : public Env {
 public:
  Status CreateDirs(const std::string& path) override;
  Status WriteStringToFile(const std::string& path, const std::string& data,
                           bool sync) override;
  Status AppendToFile(const std::string& path, const std::string& data,
                      bool sync) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::string> MakeTempDir(const std::string& prefix) override;
};

// Convenience wrappers over Env::Default() for call sites that don't need
// injection (tests, examples, benchmarks).

inline Status CreateDirs(const std::string& path) {
  return Env::Default()->CreateDirs(path);
}
inline Status WriteFileAtomic(const std::string& path,
                              const std::string& data) {
  return Env::Default()->WriteFileAtomic(path, data);
}
inline Status AppendToFile(const std::string& path, const std::string& data,
                           bool sync = false) {
  return Env::Default()->AppendToFile(path, data, sync);
}
inline Result<std::string> ReadFileToString(const std::string& path) {
  return Env::Default()->ReadFileToString(path);
}
inline Result<std::vector<std::string>> ListDir(const std::string& dir) {
  return Env::Default()->ListDir(dir);
}
inline Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}
inline Status RemoveDirRecursive(const std::string& path) {
  return Env::Default()->RemoveDirRecursive(path);
}
inline bool FileExists(const std::string& path) {
  return Env::Default()->FileExists(path);
}
inline Result<uint64_t> FileSize(const std::string& path) {
  return Env::Default()->FileSize(path);
}
inline Result<std::string> MakeTempDir(const std::string& prefix) {
  return Env::Default()->MakeTempDir(prefix);
}

}  // namespace s2

#endif  // S2_COMMON_ENV_H_
