#ifndef S2_COMMON_ENV_H_
#define S2_COMMON_ENV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace s2 {

// Thin filesystem helpers (std::filesystem wrapped in Status). All local
// persistence — log files, snapshot files, segment data files, the blob
// store's local-directory backend — goes through these.

/// Creates the directory and any missing parents.
Status CreateDirs(const std::string& path);

/// Writes `data` to `path` via a temp file + rename (atomic on POSIX).
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Appends `data` to `path`, creating it if needed. When `sync` is true the
/// write is fsync'd before returning.
Status AppendToFile(const std::string& path, const std::string& data,
                    bool sync = false);

/// Reads the whole file.
Result<std::string> ReadFileToString(const std::string& path);

/// Lists regular-file names (not paths) directly under `dir`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

Status RemoveFile(const std::string& path);
Status RemoveDirRecursive(const std::string& path);
bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);

/// Creates a fresh unique directory under the system temp dir. Tests and
/// examples use this for scratch space.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace s2

#endif  // S2_COMMON_ENV_H_
