#ifndef S2_COMMON_EXECUTOR_H_
#define S2_COMMON_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "common/threadpool.h"

namespace s2 {

/// Cooperative cancellation: producers call Cancel(), long-running work
/// polls cancelled() at natural preemption points (between segments,
/// between partitions) and unwinds with Status::Aborted. ParallelFor sets
/// the token on the first body error so sibling tasks stop early.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The process's shared execution layer: one sized thread pool behind a
/// structured-parallelism API. Every concurrent activity in the library —
/// scatter-gather query fan-out, intra-partition parallel segment scans,
/// background flush/merge/vacuum, and blob uploads — runs on an Executor,
/// so thread ownership has a single story (see DESIGN.md "Threading
/// model").
///
/// ParallelFor is deadlock-free under nesting: the calling thread both
/// participates in the loop body and, while waiting for stragglers, steals
/// queued pool tasks (ThreadPool::TryRunOne). A body may therefore call
/// back into the same Executor (scatter fan-out -> per-partition scan ->
/// per-segment morsels) without reserving threads per level.
class Executor {
 public:
  /// `num_threads == 0` sizes the pool to the hardware concurrency.
  explicit Executor(size_t num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_threads() const { return pool_.num_threads(); }

  /// Fire-and-forget. Returns false when shutting down (task dropped).
  bool Submit(std::function<void()> task) { return pool_.Submit(std::move(task)); }

  /// Submit with a result future. If the pool is shutting down the task
  /// runs inline on the caller, so the future is always satisfied.
  template <typename Fn>
  auto SubmitWithResult(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    if (!pool_.Submit([task] { (*task)(); })) (*task)();
    return result;
  }

  /// Runs body(0) ... body(n-1), distributing iterations over the pool
  /// while the calling thread participates. Returns the first error in
  /// iteration order of discovery; on the first error (or when `cancel`
  /// trips) remaining un-started iterations are skipped and `cancel`, when
  /// given, is set so in-flight bodies can unwind cooperatively. Returns
  /// Status::Aborted when cancelled with no body error. Bodies of the same
  /// call may run concurrently and must synchronize any shared state.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                     CancelToken* cancel = nullptr);

  /// Blocks until no task is queued or running.
  void WaitIdle() { pool_.WaitIdle(); }

  /// Runs one queued task inline if any (work-stealing; see ThreadPool).
  bool TryRunOne() { return pool_.TryRunOne(); }

  /// Process-wide fallback executor, sized to the hardware, created on
  /// first use and intentionally leaked so it outlives every static user.
  /// Components that are not handed an executor (stand-alone Partitions,
  /// ad-hoc DataFileStores) schedule their background work here.
  static Executor* Default();

 private:
  ThreadPool pool_;
};

}  // namespace s2

#endif  // S2_COMMON_EXECUTOR_H_
