#ifndef S2_COMMON_STATUS_H_
#define S2_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace s2 {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIOError,
  kNotSupported,
  kAborted,       // transaction conflict / retryable
  kUnavailable,   // blob store outage, node down
  kInternal,
};

/// Outcome of an operation that can fail. Modeled after Arrow/RocksDB
/// Status: cheap to pass by value in the OK case (a single null pointer),
/// carries a code and message on error. No exceptions cross module
/// boundaries in this codebase; every fallible API returns Status or
/// Result<T>.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }

  /// Human-readable "CODE: message" string, "OK" when ok().
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

  std::shared_ptr<State> state_;  // null == OK
};

/// Returns from the enclosing function if `expr` yields a non-OK Status.
#define S2_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::s2::Status _s2_status = (expr);         \
    if (!_s2_status.ok()) return _s2_status;  \
  } while (false)

}  // namespace s2

#endif  // S2_COMMON_STATUS_H_
