#ifndef S2_COMMON_FLIGHT_RECORDER_H_
#define S2_COMMON_FLIGHT_RECORDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace s2 {

class Env;
class EventJournal;
class MonitorService;

struct FlightRecorderOptions {
  /// Output directory (created if missing). One bundle per call; callers
  /// wanting history pass distinct directories.
  std::string dir;
  /// Filesystem to write through; null = Env::Default(). Never pass an env
  /// whose operations journal into the same journal being dumped.
  Env* env = nullptr;
  /// When set, monitor_history.json and watchdogs.json are included.
  const MonitorService* monitor = nullptr;
  /// Journal to dump; null = EventJournal::Global().
  const EventJournal* journal = nullptr;
  /// Newest journal events included in journal.jsonl.
  size_t journal_tail = 1024;
  /// Extra (file name, content) pairs layered into the bundle by callers
  /// with more context — the engine adds system tables and slow-query
  /// profiles on top of this common core.
  std::vector<std::pair<std::string, std::string>> extra_files;
};

/// Dumps one debugging bundle — the state a failure post-mortem needs — to
/// `opts.dir`:
///
///   metrics.prom            MetricsRegistry::Dump()
///   metrics.json            MetricsRegistry::DumpJson()
///   monitor_history.json    sampled time-series (when monitor given)
///   watchdogs.json          rule states (when monitor given)
///   journal.jsonl           newest journal events, one JSON object/line
///   trace.json              TraceBuffer as Chrome trace_event JSON
///   manifest.json           file list + capture metadata (drop counts)
///   <extra_files...>
///
/// Best-effort: every file is attempted; the first write error is
/// returned (later files are still attempted so a partial bundle is as
/// complete as the disk allowed).
Status DumpFlightRecorder(const FlightRecorderOptions& opts);

}  // namespace s2

#endif  // S2_COMMON_FLIGHT_RECORDER_H_
