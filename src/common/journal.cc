#include "common/journal.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/env.h"
#include "common/json.h"
#include "common/metrics.h"

namespace s2 {

std::string JournalEvent::ToJson() const {
  char buf[64];
  std::string out = "{\"seq\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, seq);
  out += buf;
  out += ",\"ts_ns\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, ts_ns);
  out += buf;
  out += ",\"category\":";
  out += JsonQuote(category);
  out += ",\"name\":";
  out += JsonQuote(name);
  out += ",\"detail\":";
  out += JsonQuote(detail);
  out += "}";
  return out;
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventJournal* EventJournal::Global() {
  // Leaked, like MetricsRegistry: emit sites may run during static
  // destruction of other objects.
  static EventJournal* journal = new EventJournal();
  return journal;
}

void EventJournal::Append(const std::string& category, const std::string& name,
                          const std::string& detail, uint64_t ts_ns) {
  JournalEvent ev;
  ev.ts_ns = ts_ns != 0 ? ts_ns : ScopedTimer::NowNs();
  ev.category = category;
  ev.name = name;
  ev.detail = detail;
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(std::move(ev));
}

void EventJournal::AppendLocked(JournalEvent ev) {
  ev.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.resize(ring_.size() + 1);
  } else {
    ++dropped_;
  }
  std::string line;
  if (file_env_ != nullptr && file_healthy_) {
    line = ev.ToJson();
    line += '\n';
  }
  ring_[ev.seq % capacity_] = std::move(ev);
  if (!line.empty()) {
    // The sink env must not be one whose operations journal back into us
    // (see the class comment); with that contract this call is safe under
    // mu_ because it never re-enters EventJournal.
    Status st = file_env_->AppendToFile(file_path_, line, /*sync=*/false);
    if (!st.ok()) file_healthy_ = false;
  }
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  return Tail(capacity_);
}

std::vector<JournalEvent> EventJournal::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t oldest = next_seq_ >= ring_.size() ? next_seq_ - ring_.size() : 0;
  if (next_seq_ - oldest > n) oldest = next_seq_ - n;
  std::vector<JournalEvent> out;
  out.reserve(static_cast<size_t>(next_seq_ - oldest));
  for (uint64_t seq = oldest; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t EventJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

void EventJournal::AttachFile(Env* env, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (path.empty()) {
    file_env_ = nullptr;
    file_path_.clear();
    return;
  }
  file_env_ = env != nullptr ? env : Env::Default();
  file_path_ = path;
  file_healthy_ = true;
}

bool EventJournal::file_sink_healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_healthy_;
}

}  // namespace s2
