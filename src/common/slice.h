#ifndef S2_COMMON_SLICE_H_
#define S2_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace s2 {

/// A non-owning view over a contiguous byte range, RocksDB-style. Used at
/// storage boundaries where std::string_view's char orientation is awkward.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const char* s) : data_(s), size_(s ? strlen(s) : 0) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.Compare(b) < 0;
}

}  // namespace s2

#endif  // S2_COMMON_SLICE_H_
