#ifndef S2_COMMON_HASH_H_
#define S2_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace s2 {

/// 64-bit byte-string hash (xxhash64-style avalanche, simplified). Used by
/// the global secondary-index hash tables, hash joins, and shard-key
/// partitioning. Deterministic across processes so hashes can be persisted
/// in index files.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(Slice s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Mixes a 64-bit integer (splitmix64 finalizer). Used to hash integer keys
/// without serializing them.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace s2

#endif  // S2_COMMON_HASH_H_
