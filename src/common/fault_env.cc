#include "common/fault_env.h"

#include <utility>

#include "common/journal.h"

namespace s2 {

const char* EnvOpName(EnvOp op) {
  switch (op) {
    case EnvOp::kWrite: return "write";
    case EnvOp::kAppend: return "append";
    case EnvOp::kSync: return "sync";
    case EnvOp::kRename: return "rename";
    case EnvOp::kSyncDir: return "syncdir";
    case EnvOp::kRead: return "read";
    case EnvOp::kTruncate: return "truncate";
    case EnvOp::kRemove: return "remove";
    case EnvOp::kCreateDirs: return "createdirs";
    case EnvOp::kList: return "list";
  }
  return "unknown";
}

namespace {

Status FaultStatus(EnvOp op, const std::string& path) {
  return Status::IOError(std::string("injected fault: ") + EnvOpName(op) +
                         " " + path);
}

Status FrozenStatus(EnvOp op, const std::string& path) {
  return Status::IOError(std::string("env frozen (simulated crash): ") +
                         EnvOpName(op) + " " + path);
}

std::string ParentDir(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::InjectFault(EnvOp op, const std::string& path_substr,
                                    FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_rng_ = Rng(spec.seed);
  faults_.push_back(ArmedFault{op, path_substr, spec, 0});
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

bool FaultInjectionEnv::FaultFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_any_;
}

uint64_t FaultInjectionEnv::OpCount(EnvOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<int>(op)];
}

void FaultInjectionEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = true;
  EventJournal::Global()->Append("fault", "crash", "simulated process crash",
                                 ClockNowLocked());
}

void FaultInjectionEnv::Unfreeze() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = false;
  EventJournal::Global()->Append("fault", "unfreeze", "env unfrozen (reopen)",
                                 ClockNowLocked());
}

bool FaultInjectionEnv::frozen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frozen_;
}

void FaultInjectionEnv::FreezeClockAt(uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_frozen_ = true;
  manual_clock_ns_ = ns;
}

void FaultInjectionEnv::AdvanceClock(uint64_t delta_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!clock_frozen_) {
    clock_frozen_ = true;
    manual_clock_ns_ = base_->NowNs();
  }
  manual_clock_ns_ += delta_ns;
}

void FaultInjectionEnv::UnfreezeClock() {
  std::lock_guard<std::mutex> lock(mu_);
  clock_frozen_ = false;
}

uint64_t FaultInjectionEnv::NowNs() {
  std::lock_guard<std::mutex> lock(mu_);
  return ClockNowLocked();
}

uint64_t FaultInjectionEnv::ClockNowLocked() const {
  return clock_frozen_ ? manual_clock_ns_ : base_->NowNs();
}

Status FaultInjectionEnv::DropUnsyncedData() {
  std::map<std::string, SyncState> tracked;
  std::set<std::string> unsynced_renames;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracked.swap(tracked_);
    unsynced_renames.swap(unsynced_renames_);
    EventJournal::Global()->Append(
        "fault", "power_loss",
        "dropping unsynced data: tracked_files=" +
            std::to_string(tracked.size()) +
            " unsynced_renames=" + std::to_string(unsynced_renames.size()),
        ClockNowLocked());
  }
  for (const auto& path : unsynced_renames) {
    if (base_->FileExists(path)) {
      S2_RETURN_NOT_OK(base_->RemoveFile(path));
    }
    tracked.erase(path);
  }
  for (const auto& [path, state] : tracked) {
    if (state.synced >= state.size) continue;
    if (!base_->FileExists(path)) continue;
    S2_RETURN_NOT_OK(base_->Truncate(path, state.synced));
  }
  return Status::OK();
}

std::vector<std::pair<EnvOp, std::string>> FaultInjectionEnv::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

FaultInjectionEnv::Action FaultInjectionEnv::InterceptLocked(
    EnvOp op, const std::string& path, bool mutating) {
  counts_[static_cast<int>(op)]++;
  history_.emplace_back(op, path);
  if (frozen_ && mutating) return Action::kError;
  for (auto& fault : faults_) {
    if (fault.op != op) continue;
    if (!fault.path_substr.empty() &&
        path.find(fault.path_substr) == std::string::npos) {
      continue;
    }
    if (fault.spec.skip > 0) {
      fault.spec.skip--;
      continue;
    }
    if (fault.fired >= fault.spec.count) continue;
    fault.fired++;
    fired_any_ = true;
    EventJournal::Global()->Append(
        "fault", "injected",
        std::string("mode=") +
            (fault.spec.mode == FaultSpec::Mode::kError     ? "error"
             : fault.spec.mode == FaultSpec::Mode::kTorn    ? "torn"
             : fault.spec.mode == FaultSpec::Mode::kDropSync ? "drop_sync"
                                                             : "freeze") +
            " op=" + EnvOpName(op) + " path=" + path,
        ClockNowLocked());
    switch (fault.spec.mode) {
      case FaultSpec::Mode::kError:
        return Action::kError;
      case FaultSpec::Mode::kTorn:
        frozen_ = true;
        return Action::kTorn;
      case FaultSpec::Mode::kDropSync:
        return Action::kDropSync;
      case FaultSpec::Mode::kFreeze:
        frozen_ = true;
        return Action::kError;
    }
  }
  return Action::kNone;
}

FaultInjectionEnv::SyncState* FaultInjectionEnv::TrackLocked(
    const std::string& path) {
  auto it = tracked_.find(path);
  if (it == tracked_.end()) {
    SyncState state;
    if (base_->FileExists(path)) {
      auto size = base_->FileSize(path);
      if (size.ok()) {
        // Bytes from before we started watching are assumed durable.
        state.size = *size;
        state.synced = *size;
      }
    }
    it = tracked_.emplace(path, state).first;
  }
  return &it->second;
}

uint64_t FaultInjectionEnv::TornPrefixLenLocked(uint64_t full) {
  if (full == 0) return 0;
  // Strict prefix: at least one byte short of the full write.
  return torn_rng_.Uniform(full);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kCreateDirs, path, /*mutating=*/true) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kCreateDirs, path);
    }
  }
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::WriteStringToFile(const std::string& path,
                                            const std::string& data,
                                            bool sync) {
  Action action;
  uint64_t torn_len = 0;
  bool drop_sync = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    action = InterceptLocked(EnvOp::kWrite, path, /*mutating=*/true);
    if (action == Action::kTorn) torn_len = TornPrefixLenLocked(data.size());
    if (action == Action::kError) return FaultStatus(EnvOp::kWrite, path);
    if (sync && action != Action::kTorn) {
      Action sync_action = InterceptLocked(EnvOp::kSync, path,
                                           /*mutating=*/true);
      if (sync_action == Action::kError) {
        // A failed fsync after a successful truncating write: the data hit
        // the page cache but durability is unknown. Model the worst case —
        // write the data unsynced, report failure.
        Status st = base_->WriteStringToFile(path, data, /*sync=*/false);
        SyncState* state = TrackLocked(path);
        state->size = data.size();
        state->synced = 0;
        (void)st;
        return FaultStatus(EnvOp::kSync, path);
      }
      if (sync_action == Action::kDropSync) drop_sync = true;
    }
  }
  if (action == Action::kTorn) {
    Status st =
        base_->WriteStringToFile(path, data.substr(0, torn_len), false);
    std::lock_guard<std::mutex> lock(mu_);
    SyncState* state = TrackLocked(path);
    state->size = torn_len;
    state->synced = 0;
    (void)st;
    return FaultStatus(EnvOp::kWrite, path);
  }
  bool actually_sync = sync && !drop_sync;
  S2_RETURN_NOT_OK(base_->WriteStringToFile(path, data, actually_sync));
  std::lock_guard<std::mutex> lock(mu_);
  SyncState* state = TrackLocked(path);
  state->size = data.size();
  state->synced = actually_sync ? data.size() : 0;
  return Status::OK();
}

Status FaultInjectionEnv::AppendToFile(const std::string& path,
                                       const std::string& data, bool sync) {
  Action action;
  uint64_t torn_len = 0;
  bool drop_sync = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    action = InterceptLocked(EnvOp::kAppend, path, /*mutating=*/true);
    if (action == Action::kTorn) torn_len = TornPrefixLenLocked(data.size());
    if (action == Action::kError) return FaultStatus(EnvOp::kAppend, path);
    // Seed the sync tracking from the PRE-append on-disk size; the later
    // `size += data.size()` updates below assume the entry exists (seeding
    // after the base append would double-count the appended bytes).
    TrackLocked(path);
    if (sync && action != Action::kTorn) {
      Action sync_action = InterceptLocked(EnvOp::kSync, path,
                                           /*mutating=*/true);
      if (sync_action == Action::kError) {
        Status st = base_->AppendToFile(path, data, /*sync=*/false);
        SyncState* state = TrackLocked(path);
        state->size += data.size();
        (void)st;
        return FaultStatus(EnvOp::kSync, path);
      }
      if (sync_action == Action::kDropSync) drop_sync = true;
    }
  }
  if (action == Action::kTorn) {
    Status st = base_->AppendToFile(path, data.substr(0, torn_len), false);
    std::lock_guard<std::mutex> lock(mu_);
    SyncState* state = TrackLocked(path);
    state->size += torn_len;
    (void)st;
    return FaultStatus(EnvOp::kAppend, path);
  }
  bool actually_sync = sync && !drop_sync;
  S2_RETURN_NOT_OK(base_->AppendToFile(path, data, actually_sync));
  std::lock_guard<std::mutex> lock(mu_);
  SyncState* state = TrackLocked(path);
  state->size += data.size();
  // A successful fsync covers everything written so far, including bytes
  // whose own sync was dropped earlier.
  if (actually_sync) state->synced = state->size;
  return Status::OK();
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kRead, path, /*mutating=*/false) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kRead, path);
    }
  }
  return base_->ReadFileToString(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kList, dir, /*mutating=*/false) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kList, dir);
    }
  }
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kRemove, path, /*mutating=*/true) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kRemove, path);
    }
    tracked_.erase(path);
    unsynced_renames_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kRemove, path, /*mutating=*/true) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kRemove, path);
    }
  }
  return base_->RemoveDirRecursive(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::Truncate(const std::string& path, uint64_t size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (InterceptLocked(EnvOp::kTruncate, path, /*mutating=*/true) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kTruncate, path);
    }
  }
  S2_RETURN_NOT_OK(base_->Truncate(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(path);
  if (it != tracked_.end()) {
    it->second.size = size;
    if (it->second.synced > size) it->second.synced = size;
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The destination is the interesting path (it is what recovery reads).
    if (InterceptLocked(EnvOp::kRename, to, /*mutating=*/true) !=
        Action::kNone) {
      return FaultStatus(EnvOp::kRename, to);
    }
  }
  S2_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracked_.find(from);
  if (it != tracked_.end()) {
    tracked_[to] = it->second;
    tracked_.erase(it);
  }
  // Until the parent directory is fsync'd, power loss undoes the rename
  // (the old name is already gone, so the file simply disappears).
  unsynced_renames_.insert(to);
  unsynced_renames_.erase(from);
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  Action action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    action = InterceptLocked(EnvOp::kSyncDir, dir, /*mutating=*/true);
    if (action == Action::kError) return FaultStatus(EnvOp::kSyncDir, dir);
    if (action == Action::kDropSync) return Status::OK();
  }
  S2_RETURN_NOT_OK(base_->SyncDir(dir));
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = unsynced_renames_.begin(); it != unsynced_renames_.end();) {
    if (ParentDir(*it) == dir) {
      it = unsynced_renames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<std::string> FaultInjectionEnv::MakeTempDir(const std::string& prefix) {
  return base_->MakeTempDir(prefix);
}

}  // namespace s2
