#ifndef S2_COMMON_TYPES_H_
#define S2_COMMON_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/slice.h"

namespace s2 {

/// Transaction identifier, unique per partition.
using TxnId = uint64_t;

/// Transaction timestamp. Commit timestamps start at 1; two reserved
/// sentinels mark in-flight and aborted row versions.
using Timestamp = uint64_t;
constexpr Timestamp kTsUncommitted = ~Timestamp{0};
constexpr Timestamp kTsAborted = ~Timestamp{0} - 1;
constexpr Timestamp kTsMax = ~Timestamp{0} - 2;

/// Logical column types supported by the engine. Enough surface for the
/// TPC-C / TPC-H / CH-benCHmark schemas (decimals are stored as Int64
/// scaled values or Double as the workload generators choose).
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* DataTypeName(DataType t);

/// A single cell value. Null is represented by the monostate alternative.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int64_t x) : v_(x) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(double x) : v_(x) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(std::string x) : v_(std::move(x)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(const char* x) : v_(std::string(x)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: ints widen to double. Only valid for non-null numerics.
  double AsNumeric() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Total order: null < any value; cross-numeric compares numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash, equal values hash equally across processes
  /// (persisted by the global secondary index).
  uint64_t Hash() const;

  /// Binary serialization (tag byte + payload).
  void EncodeTo(std::string* dst) const;
  static Result<Value> DecodeFrom(Slice* input);

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

/// Encodes a tuple of values into a single order-preserving-enough key for
/// hash maps / lock tables (not for range scans).
std::string EncodeKey(const Row& values);
std::string EncodeKey(const std::vector<const Value*>& values);

/// One column definition.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// Table schema: ordered columns with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the named column, or error.
  Result<int> FindColumn(const std::string& name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

inline bool ColumnDefEq(const ColumnDef& a, const ColumnDef& b) {
  return a.name == b.name && a.type == b.type;
}

}  // namespace s2

#endif  // S2_COMMON_TYPES_H_
