#ifndef S2_COMMON_TRACE_EXPORT_H_
#define S2_COMMON_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace s2 {

struct ProfileNode;

/// Builds a Chrome `trace_event` JSON document (the format Perfetto and
/// chrome://tracing load) from TraceBuffer events and ProfileCollector
/// trees. Each Add* call contributes one "process" (pid) to the trace;
/// within a process, lanes (tid) separate concurrent work:
///
///   - TraceBuffer events keep the dense per-thread id recorded at emit
///     time, so spans emitted by different pool threads land on different
///     rows.
///   - A profile tree maps the root span to tid 0 and each top-level child
///     (the scatter-gather fan-out: one span per partition/table) to its
///     own tid, so parallel branches render side by side instead of
///     stacked on one row.
///
/// Spans become "X" (complete) events with microsecond timestamps
/// normalized to the earliest event in the document; instant events become
/// "i"; process/thread names are attached via "M" metadata events.
class ChromeTraceBuilder {
 public:
  /// Adds TraceBuffer events as one process.
  void AddTraceEvents(const std::vector<TraceEvent>& events, int pid,
                      const std::string& process_name);

  /// Adds one profile tree as one process (top-level children fan out to
  /// their own tids).
  void AddProfileTree(const ProfileNode& root, int pid,
                      const std::string& process_name);

  bool empty() const { return events_.empty(); }

  /// The complete JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string Finish() const;

 private:
  struct Event {
    std::string name;
    std::string cat;
    char ph = 'X';  // 'X' complete, 'i' instant, 'M' metadata
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;
    int pid = 0;
    uint64_t tid = 0;
    std::string args_json;  // complete {"..."} object, pre-escaped
  };

  void AddNode(const ProfileNode& node, int pid, uint64_t tid, bool fan_out);
  void AddThreadName(int pid, uint64_t tid, const std::string& name);

  std::vector<Event> events_;
};

}  // namespace s2

#endif  // S2_COMMON_TRACE_EXPORT_H_
