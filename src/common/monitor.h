#ifndef S2_COMMON_MONITOR_H_
#define S2_COMMON_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace s2 {

class Env;
class EventJournal;
class Executor;
class MetricsRegistry;

/// One sample of one time-series.
struct MonitorPoint {
  uint64_t ts_ns = 0;
  double value = 0.0;
};

/// Comparison direction for a watchdog rule.
enum class WatchdogCmp { kAbove, kBelow };

/// A health rule evaluated on every monitor tick. `observe` returns the
/// current value of the watched quantity (it may read cluster state,
/// registry metrics, or the monitor's own time-series for rate/drift
/// rules); the rule fires when the value breaches `threshold` for
/// `for_ticks` consecutive ticks, and clears on the first non-breaching
/// tick. Fire and clear transitions are journaled with the rule name,
/// threshold, observed value, and (on clear) the firing duration.
struct WatchdogRule {
  std::string name;
  std::function<double()> observe;
  double threshold = 0.0;
  WatchdogCmp cmp = WatchdogCmp::kAbove;
  /// Consecutive breaching ticks required before firing (debounce).
  int for_ticks = 1;
};

/// Current state of one rule, for the monitor.watchdogs system table and
/// the flight-recorder bundle.
struct WatchdogStatus {
  std::string name;
  double threshold = 0.0;
  WatchdogCmp cmp = WatchdogCmp::kAbove;
  double last_observed = 0.0;
  int breach_ticks = 0;      // current consecutive-breach run
  bool firing = false;
  uint64_t fired_since_ns = 0;  // tick timestamp when firing started
  uint64_t fire_count = 0;      // lifetime fire transitions
};

/// Default thresholds for the standard rule set the engine installs (see
/// Database::Open); embedded in DatabaseOptions so tests and deployments
/// tune them without touching rule code. The values are deliberately loose
/// for the tiny data sizes in tests — rules should fire on injected
/// pathologies, not healthy load.
struct WatchdogThresholds {
  /// replication_lag: max bytes any replica (HA sink, workspace, or the
  /// blob log-tail upload) trails the primary's durable LSN.
  uint64_t replication_lag_bytes = 4ull << 20;
  /// upload_queue_age: age of the oldest data file still waiting for blob
  /// upload, on the env clock.
  uint64_t upload_queue_age_ns = 5'000'000'000;
  /// cache_thrash: evictions/sec divided by (hits/sec + 1) over the recent
  /// sample window — sustained re-faulting of the working set.
  double cache_thrash_ratio = 0.5;
  /// executor_saturation: sampled executor queue depth.
  double executor_queue_depth = 256.0;
  /// maintenance_backlog: summed flush/merge pressure score across tables
  /// (rowstore bytes over flush threshold + sorted runs over merge limit).
  double maintenance_backlog = 8.0;
  /// commit_p99_drift: current commit p99 divided by its own recent
  /// median (dimensionless multiple).
  double commit_p99_drift = 8.0;
  /// Debounce applied to the standard rules.
  int for_ticks = 2;
};

struct MonitorOptions {
  /// Background sampling period (real time, condition-variable wait).
  uint64_t interval_ns = 100'000'000;
  /// Points retained per series (ring; oldest dropped).
  size_t ring_capacity = 240;
  /// Clock for sample timestamps and rule durations; null = Env::Default().
  /// A FaultInjectionEnv here (FreezeClockAt/AdvanceClock) plus manual
  /// TickOnce() calls makes every timestamp in tests deterministic.
  Env* env = nullptr;
  /// Metric source; null = MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Alert sink; null = EventJournal::Global().
  EventJournal* journal = nullptr;
};

/// Continuous monitoring: snapshots every registry metric into bounded
/// ring time-series on each tick and evaluates watchdog rules against the
/// live state. Ticks come from a background loop (Start/Stop — the wait is
/// real time, the tick body runs on the shared executor) or from explicit
/// TickOnce() calls in tests, where the injected env clock makes the
/// recorded history reproducible.
///
/// Lock order: series state is guarded by series_mu_, rule state by
/// rules_mu_, and rules are evaluated holding neither — observe()
/// callbacks may therefore read the monitor's own series (RatePerSec,
/// SeriesMedian) or take subsystem locks without deadlock.
class MonitorService {
 public:
  explicit MonitorService(MonitorOptions options = MonitorOptions());
  ~MonitorService();  // Stops the background loop.

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  void AddRule(WatchdogRule rule);

  /// One sample-and-evaluate pass: reads the clock, appends every registry
  /// metric to its series, then evaluates all rules. Thread-safe.
  void TickOnce();

  /// Starts the background loop (idempotent). Each tick body is submitted
  /// to `executor` (null = Executor::Default()).
  void Start(Executor* executor = nullptr);
  /// Stops and joins the loop (idempotent; also called by the dtor).
  void Stop();
  bool running() const;

  uint64_t ticks() const;
  uint64_t interval_ns() const { return options_.interval_ns; }

  // --- series queries ---
  std::vector<std::string> SeriesNames() const;
  /// Points of one series, oldest first (empty when unknown).
  std::vector<MonitorPoint> Series(const std::string& name) const;
  /// Last recorded value, or `fallback` when the series is empty.
  double LatestOr(const std::string& name, double fallback) const;
  /// Per-second rate of change over up to the last `window` points of a
  /// (cumulative) series, using sample timestamps; 0 with <2 points or no
  /// elapsed time. Rate/drift rules are built on these.
  double RatePerSec(const std::string& name, size_t window = 10) const;
  /// Median of the non-zero values of a series (drift baseline); 0 when
  /// all values are zero.
  double SeriesMedian(const std::string& name) const;

  std::vector<WatchdogStatus> RuleStatuses() const;
  /// True if any rule is currently firing.
  bool AnyFiring() const;

  /// {"interval_ns":..,"ticks":..,"series":{name:[{"ts_ns":..,"v":..}..]}}
  std::string HistoryJson() const;
  /// [{"rule":..,"threshold":..,"cmp":..,"observed":..,"firing":..,..}]
  std::string WatchdogsJson() const;

 private:
  void SampleLocked(uint64_t now_ns);  // series_mu_ held
  void EvaluateRules(uint64_t now_ns);
  void LoopBody();

  MonitorOptions options_;
  Env* env_;
  MetricsRegistry* registry_;
  EventJournal* journal_;

  mutable std::mutex series_mu_;
  std::map<std::string, std::deque<MonitorPoint>> series_;
  uint64_t ticks_ = 0;

  mutable std::mutex rules_mu_;
  struct RuleState {
    WatchdogRule rule;
    WatchdogStatus status;
  };
  std::vector<RuleState> rules_;

  mutable std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread loop_;
  Executor* executor_ = nullptr;
};

}  // namespace s2

#endif  // S2_COMMON_MONITOR_H_
