#ifndef S2_COMMON_RNG_H_
#define S2_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace s2 {

/// Small fast deterministic PRNG (xoshiro256**). Workload generators and
/// property tests seed this explicitly so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // splitmix64 expansion of the seed into state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    const uint64_t result = Rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII string of length in [min_len, max_len].
  std::string NextString(size_t min_len, size_t max_len) {
    size_t len = min_len + Uniform(max_len - min_len + 1);
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

  /// TPC-style non-uniform random (NURand).
  int64_t NonUniform(int64_t a, int64_t x, int64_t y, int64_t c = 7911) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + c) % (y - x + 1)) + x;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace s2

#endif  // S2_COMMON_RNG_H_
