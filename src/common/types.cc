#include "common/types.h"

#include <cmath>
#include <cstdio>

#include "common/coding.h"

namespace s2 {

namespace {
// Tag bytes for Value serialization.
constexpr char kTagNull = 0;
constexpr char kTagInt = 1;
constexpr char kTagDouble = 2;
constexpr char kTagString = 3;
}  // namespace

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_string() || other.is_string()) {
    // Strings only compare against strings; mixed compares order strings
    // after numerics deterministically.
    if (is_string() && other.is_string()) {
      return Slice(as_string()).Compare(Slice(other.as_string()));
    }
    return is_string() ? 1 : -1;
  }
  if (is_int() && other.is_int()) {
    int64_t a = as_int(), b = other.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsNumeric(), b = other.AsNumeric();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6e756c6cULL;
  if (is_int()) return MixHash64(static_cast<uint64_t>(as_int()));
  if (is_double()) {
    double d = as_double();
    // Normalize -0.0 / 0.0 and integral doubles so 1.0 hashes like int 1,
    // matching Compare()'s cross-numeric equality.
    if (d == 0.0) d = 0.0;
    double intpart;
    if (std::modf(d, &intpart) == 0.0 && intpart >= -9.2e18 &&
        intpart <= 9.2e18) {
      return MixHash64(static_cast<uint64_t>(static_cast<int64_t>(intpart)));
    }
    uint64_t bits;
    memcpy(&bits, &d, sizeof(bits));
    return MixHash64(bits);
  }
  return Hash64(as_string());
}

void Value::EncodeTo(std::string* dst) const {
  if (is_null()) {
    dst->push_back(kTagNull);
  } else if (is_int()) {
    dst->push_back(kTagInt);
    PutVarint64(dst, ZigZagEncode(as_int()));
  } else if (is_double()) {
    dst->push_back(kTagDouble);
    double d = as_double();
    uint64_t bits;
    memcpy(&bits, &d, sizeof(bits));
    PutFixed64(dst, bits);
  } else {
    dst->push_back(kTagString);
    PutLengthPrefixed(dst, as_string());
  }
}

Result<Value> Value::DecodeFrom(Slice* input) {
  if (input->empty()) return Status::Corruption("truncated value");
  char tag = (*input)[0];
  input->RemovePrefix(1);
  switch (tag) {
    case kTagNull:
      return Value();
    case kTagInt: {
      S2_ASSIGN_OR_RETURN(uint64_t z, GetVarint64(input));
      return Value(ZigZagDecode(z));
    }
    case kTagDouble: {
      if (input->size() < 8) return Status::Corruption("truncated double");
      uint64_t bits = DecodeFixed64(input->data());
      input->RemovePrefix(8);
      double d;
      memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      S2_ASSIGN_OR_RETURN(Slice s, GetLengthPrefixed(input));
      return Value(s.ToString());
    }
    default:
      return Status::Corruption("bad value tag");
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.6g", as_double());
    return buf;
  }
  return as_string();
}

std::string EncodeKey(const Row& values) {
  std::string key;
  for (const Value& v : values) v.EncodeTo(&key);
  return key;
}

std::string EncodeKey(const std::vector<const Value*>& values) {
  std::string key;
  for (const Value* v : values) v->EncodeTo(&key);
  return key;
}

Result<int> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!ColumnDefEq(columns_[i], other.columns_[i])) return false;
  }
  return true;
}

}  // namespace s2
