#include "common/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "common/json.h"
#include "common/profile.h"

namespace s2 {

namespace {

std::string ArgsWithDetail(const std::string& detail) {
  std::string out = "{\"detail\":";
  out += JsonQuote(detail);
  out += "}";
  return out;
}

}  // namespace

void ChromeTraceBuilder::AddThreadName(int pid, uint64_t tid,
                                       const std::string& name) {
  Event ev;
  ev.name = "thread_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args_json = "{\"name\":" + JsonQuote(name) + "}";
  events_.push_back(std::move(ev));
}

void ChromeTraceBuilder::AddTraceEvents(const std::vector<TraceEvent>& events,
                                        int pid,
                                        const std::string& process_name) {
  Event meta;
  meta.name = "process_name";
  meta.ph = 'M';
  meta.pid = pid;
  meta.args_json = "{\"name\":" + JsonQuote(process_name) + "}";
  events_.push_back(std::move(meta));

  std::set<uint64_t> tids;
  for (const TraceEvent& te : events) {
    Event ev;
    ev.name = te.category;
    ev.cat = te.category;
    ev.ph = te.duration_ns == 0 ? 'i' : 'X';
    ev.ts_ns = te.start_ns;
    ev.dur_ns = te.duration_ns;
    ev.pid = pid;
    ev.tid = te.tid;
    char buf[32];
    snprintf(buf, sizeof(buf), "%" PRIu64, te.seq);
    ev.args_json = "{\"seq\":" + std::string(buf) +
                   ",\"detail\":" + JsonQuote(te.detail) + "}";
    tids.insert(te.tid);
    events_.push_back(std::move(ev));
  }
  for (uint64_t tid : tids) {
    AddThreadName(pid, tid, "emitter-" + std::to_string(tid));
  }
}

void ChromeTraceBuilder::AddProfileTree(const ProfileNode& root, int pid,
                                        const std::string& process_name) {
  Event meta;
  meta.name = "process_name";
  meta.ph = 'M';
  meta.pid = pid;
  meta.args_json = "{\"name\":" + JsonQuote(process_name) + "}";
  events_.push_back(std::move(meta));

  AddThreadName(pid, 0, root.name);
  // The root occupies lane 0; each of its children — the scatter-gather
  // fan-out, one span per partition/table — gets its own lane so parallel
  // branches are visually parallel.
  AddNode(root, pid, 0, /*fan_out=*/true);
}

void ChromeTraceBuilder::AddNode(const ProfileNode& node, int pid,
                                 uint64_t tid, bool fan_out) {
  Event ev;
  ev.name = node.name;
  ev.cat = "profile";
  ev.ph = 'X';
  ev.ts_ns = node.start_ns;
  // Render still-open spans (duration never stamped) as instants rather
  // than zero-width completes.
  if (node.duration_ns == 0) ev.ph = 'i';
  ev.dur_ns = node.duration_ns;
  ev.pid = pid;
  ev.tid = tid;
  std::string args = "{\"detail\":" + JsonQuote(node.detail);
  if (!node.counters.empty()) {
    args += ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : node.counters) {
      if (!first) args += ",";
      first = false;
      args += JsonQuote(key);
      char buf[32];
      snprintf(buf, sizeof(buf), ":%" PRId64, value);
      args += buf;
    }
    args += "}";
  }
  args += "}";
  ev.args_json = std::move(args);
  events_.push_back(std::move(ev));

  uint64_t child_tid = tid;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const ProfileNode& child = *node.children[i];
    if (fan_out) {
      child_tid = i + 1;
      AddThreadName(pid, child_tid,
                    child.name + "-" + std::to_string(i));
    }
    AddNode(child, pid, child_tid, /*fan_out=*/false);
  }
}

std::string ChromeTraceBuilder::Finish() const {
  // Normalize to the earliest real event so Perfetto's viewport starts at
  // ~0 instead of hours of steady_clock uptime.
  uint64_t min_ts = UINT64_MAX;
  for (const Event& ev : events_) {
    if (ev.ph != 'M' && ev.ts_ns < min_ts) min_ts = ev.ts_ns;
  }
  if (min_ts == UINT64_MAX) min_ts = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Event& ev : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    out += JsonQuote(ev.name);
    if (!ev.cat.empty()) {
      out += ",\"cat\":";
      out += JsonQuote(ev.cat);
    }
    out += ",\"ph\":\"";
    out += ev.ph;
    out += "\"";
    if (ev.ph != 'M') {
      snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
               static_cast<double>(ev.ts_ns - min_ts) / 1000.0);
      out += buf;
      if (ev.ph == 'X') {
        snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                 static_cast<double>(ev.dur_ns) / 1000.0);
        out += buf;
      }
      if (ev.ph == 'i') out += ",\"s\":\"t\"";
    }
    snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%" PRIu64, ev.pid,
             ev.tid);
    out += buf;
    if (!ev.args_json.empty()) {
      out += ",\"args\":";
      out += ev.args_json;
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace s2
