#ifndef S2_COMMON_FAULT_ENV_H_
#define S2_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"

namespace s2 {

/// The primitive operations faults can attach to. A failpoint is an
/// (operation, path-substring) pair — e.g. (kAppend, "/log") is the log
/// append, (kWrite, "/snapshots/") the snapshot write, (kRename,
/// "/snapshots/") the manifest rename. See DESIGN.md for the catalog.
enum class EnvOp {
  kWrite,       // WriteStringToFile payload write
  kAppend,      // AppendToFile payload write
  kSync,        // file fsync (appends and full writes with sync=true)
  kRename,      // RenameFile (matched against the destination path)
  kSyncDir,     // directory fsync
  kRead,        // ReadFileToString
  kTruncate,    // Truncate
  kRemove,      // RemoveFile / RemoveDirRecursive
  kCreateDirs,  // CreateDirs
  kList,        // ListDir
};
constexpr int kNumEnvOps = 10;

const char* EnvOpName(EnvOp op);

/// What happens when an armed fault fires.
struct FaultSpec {
  enum class Mode {
    /// The call fails with IOError; nothing is written.
    kError,
    /// A random strict prefix of the data is written, then the call fails
    /// and the env freezes (a crash mid-write leaves a torn record and the
    /// process never writes again). Meaningful for kWrite/kAppend.
    kTorn,
    /// The fsync silently does nothing but reports success — a lying
    /// device. Combine with DropUnsyncedData() to model the power loss
    /// that makes the lie observable. Meaningful for kSync/kSyncDir.
    kDropSync,
    /// This call fails and the env freezes: every later mutating call
    /// fails too (a process crash at this point).
    kFreeze,
  };
  Mode mode = Mode::kError;
  /// Fire on the (skip+1)-th matching call from now.
  int skip = 0;
  /// How many matching calls fire (kFreeze and kTorn are sticky anyway).
  int count = 1;
  /// Seed for the torn-write prefix length.
  uint64_t seed = 1;
};

/// An Env wrapper that injects faults at tagged call sites, deterministically
/// by call count. Also tracks which bytes were actually fsync'd so
/// DropUnsyncedData() can simulate power loss (appended-but-unsynced bytes
/// vanish; files whose creating rename was never followed by a parent
/// directory fsync vanish entirely).
///
/// Thread-safe; every operation serializes on an internal mutex.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (null = Env::Default()). Not owned.
  explicit FaultInjectionEnv(Env* base = nullptr);

  /// Arms a fault at the failpoint (op, path substring). An empty substring
  /// matches every path. Matching calls count from now.
  void InjectFault(EnvOp op, const std::string& path_substr, FaultSpec spec);
  void ClearFaults();

  /// True once any armed fault has fired.
  bool FaultFired() const;

  /// Calls seen per op since construction (faulted calls included).
  uint64_t OpCount(EnvOp op) const;

  /// Freezes all further mutating operations ("the process crashed here").
  void Crash();
  /// Lifts a freeze (the "reopened process" uses the env again).
  void Unfreeze();
  bool frozen() const;

  /// Pins NowNs() to `ns`. Combined with AdvanceClock this makes every
  /// age/interval computation that reads the env clock (upload-queue age,
  /// monitor sample timestamps) fully deterministic.
  void FreezeClockAt(uint64_t ns);
  /// Advances the pinned clock by `delta_ns`. If the clock is not frozen
  /// yet it is first pinned at the base env's current time.
  void AdvanceClock(uint64_t delta_ns);
  /// Returns to the base env's real clock.
  void UnfreezeClock();

  uint64_t NowNs() override;

  /// Power-loss simulation: truncates files with appended-but-unsynced
  /// bytes back to their last synced size and removes files whose creating
  /// rename was never made durable by a parent-directory fsync. Clears the
  /// tracking state.
  Status DropUnsyncedData();

  /// Recorded (op, path) call sequence, for white-box ordering assertions.
  std::vector<std::pair<EnvOp, std::string>> History() const;

  // Env:
  Status CreateDirs(const std::string& path) override;
  Status WriteStringToFile(const std::string& path, const std::string& data,
                           bool sync) override;
  Status AppendToFile(const std::string& path, const std::string& data,
                      bool sync) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::string> MakeTempDir(const std::string& prefix) override;

 private:
  enum class Action { kNone, kError, kTorn, kDropSync };

  struct ArmedFault {
    EnvOp op;
    std::string path_substr;
    FaultSpec spec;
    int fired = 0;
  };

  struct SyncState {
    uint64_t size = 0;    // bytes written so far
    uint64_t synced = 0;  // bytes known durable (covered by an fsync)
  };

  /// Counts the call, records history, applies freeze, and resolves the
  /// first matching armed fault. mu_ must be held. Fault fires are
  /// journaled into EventJournal::Global() — which means a journal file
  /// sink must never be attached through this same env (see journal.h).
  Action InterceptLocked(EnvOp op, const std::string& path, bool mutating);
  /// Clock read with mu_ already held (NowNs() itself takes mu_).
  uint64_t ClockNowLocked() const;
  /// Ensures sync tracking exists for `path`, seeding pre-existing bytes as
  /// synced (earlier sessions are assumed crash-consistent). mu_ held.
  SyncState* TrackLocked(const std::string& path);
  uint64_t TornPrefixLenLocked(uint64_t full);

  Env* base_;

  mutable std::mutex mu_;
  std::vector<ArmedFault> faults_;
  uint64_t counts_[kNumEnvOps] = {};
  std::vector<std::pair<EnvOp, std::string>> history_;
  bool frozen_ = false;
  bool fired_any_ = false;
  bool clock_frozen_ = false;
  uint64_t manual_clock_ns_ = 0;
  Rng torn_rng_{1};
  std::map<std::string, SyncState> tracked_;
  std::set<std::string> unsynced_renames_;
};

}  // namespace s2

#endif  // S2_COMMON_FAULT_ENV_H_
