#include "common/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace s2 {

namespace {

size_t DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// State shared between the caller and its helper tasks. Helpers hold a
/// shared_ptr so a helper that is dequeued after the loop already finished
/// only touches the counters (never `body`, which lives on the caller's
/// frame) and exits.
struct LoopState {
  LoopState(size_t n_in, const std::function<Status(size_t)>* body_in,
            CancelToken* cancel_in)
      : n(n_in), body(body_in), cancel(cancel_in) {}

  const size_t n;
  const std::function<Status(size_t)>* const body;
  CancelToken* const cancel;

  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};

  std::mutex mu;
  std::condition_variable cv;
  Status first_error;   // guarded by mu
  size_t running = 0;   // helpers currently inside the claim loop

  void RecordError(Status s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = std::move(s);
    }
    stop.store(true, std::memory_order_release);
    if (cancel != nullptr) cancel->Cancel();
  }

  /// Claims and runs iterations until the range is exhausted or stopped.
  void RunLoop() {
    for (;;) {
      if (stop.load(std::memory_order_acquire)) return;
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Claiming an index below n proves the caller is still blocked in
      // ParallelFor: it cannot observe exhaustion until next >= n, and
      // next never decreases. Only from here on is it safe to touch
      // caller-frame state (`body` and `cancel`) — a helper dequeued
      // after the loop finished exits above, via counters alone.
      if (cancel != nullptr && cancel->cancelled()) {
        stop.store(true, std::memory_order_release);
        return;
      }
      Status s = (*body)(i);
      if (!s.ok()) {
        RecordError(std::move(s));
        return;
      }
    }
  }
};

void HelperTask(const std::shared_ptr<LoopState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->running;
  }
  // A helper that starts after the range was fully claimed (or the loop
  // stopped) exits without ever dereferencing `body`.
  state->RunLoop();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->running;
  }
  state->cv.notify_all();
}

}  // namespace

Executor::Executor(size_t num_threads)
    : pool_(num_threads == 0 ? DefaultThreads() : num_threads) {}

Executor::~Executor() { pool_.Shutdown(); }

Executor* Executor::Default() {
  static Executor* shared = new Executor(0);
  return shared;
}

Status Executor::ParallelFor(size_t n,
                             const std::function<Status(size_t)>& body,
                             CancelToken* cancel) {
  if (n == 0) return Status::OK();
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Aborted("cancelled");
  }

  auto state = std::make_shared<LoopState>(n, &body, cancel);

  // The caller participates, so at most n-1 helpers are useful. Submit
  // failures (pool shutting down) are fine: the caller runs what the
  // helpers would have.
  size_t helpers = std::min(pool_.num_threads(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool_.Submit([state] { HelperTask(state); })) break;
  }

  state->RunLoop();

  // Wait for in-flight helpers; steal queued pool work while waiting so a
  // nested ParallelFor (whose helpers sit behind us in the queue) cannot
  // deadlock the pool.
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    bool exhausted = state->next.load(std::memory_order_acquire) >= n ||
                     state->stop.load(std::memory_order_acquire);
    if (state->running == 0 && exhausted) break;
    lock.unlock();
    if (!pool_.TryRunOne()) {
      lock.lock();
      state->cv.wait_for(lock, std::chrono::milliseconds(1));
    } else {
      lock.lock();
    }
  }
  if (!state->first_error.ok()) return state->first_error;
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Aborted("cancelled");
  }
  return Status::OK();
}

}  // namespace s2
