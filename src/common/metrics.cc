#include "common/metrics.h"

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace s2 {

// --- Histogram ---

size_t Histogram::BucketFor(uint64_t v) {
  if (v < kSub) return static_cast<size_t>(v);  // exact for tiny values
  // v in [2^e, 2^(e+1)): octave e, linear sub-bucket from the bits right
  // below the leading one.
  int e = 63 - std::countl_zero(v);
  size_t sub = static_cast<size_t>(v >> (e - kSubShift)) & (kSub - 1);
  size_t group = static_cast<size_t>(e) - kSubShift + 1;
  return group * kSub + sub;
}

uint64_t Histogram::BucketMid(size_t bucket) {
  if (bucket < kSub) return bucket;
  size_t group = bucket / kSub;
  size_t sub = bucket % kSub;
  int e = static_cast<int>(group + kSubShift - 1);
  uint64_t low = (kSub + sub) << (e - kSubShift);
  uint64_t width = uint64_t{1} << (e - kSubShift);
  return low + width / 2;
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum >= target) {
      // Never report past the true max (the top bucket's midpoint can).
      return std::min(BucketMid(b), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- ScopedTimer ---

uint64_t ScopedTimer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- MetricsRegistry ---

MetricsRegistry* MetricsRegistry::Global() {
  // Leaked so metric handles cached in function-local statics stay valid
  // during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string EscapePrometheusLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void AppendHistogramText(std::string* out, const std::string& name,
                         const Histogram& h) {
  char buf[256];
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& [label, q] : kQuantiles) {
    snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %" PRIu64 "\n",
             name.c_str(), EscapePrometheusLabel(label).c_str(),
             h.Quantile(q));
    *out += buf;
  }
  snprintf(buf, sizeof(buf),
           "%s_count %" PRIu64 "\n%s_sum %" PRIu64 "\n%s_max %" PRIu64 "\n",
           name.c_str(), h.count(), name.c_str(), h.sum(), name.c_str(),
           h.max());
  *out += buf;
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
           ",\"mean\":%.1f,\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
           ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 "}",
           h.count(), h.sum(), h.mean(), h.Quantile(0.5), h.Quantile(0.95),
           h.Quantile(0.99), h.max());
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(), c->value());
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    AppendHistogramText(&out, name, *h);
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  char buf[256];
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    out += JsonQuote(name);
    snprintf(buf, sizeof(buf), ":%" PRIu64, c->value());
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    out += JsonQuote(name);
    snprintf(buf, sizeof(buf), ":%" PRId64, g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    out += JsonQuote(name);
    out += ":";
    AppendHistogramJson(&out, *h);
  }
  out += "}";
  return out;
}

std::vector<MetricSample> MetricsRegistry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& [name, c] : counters_) {
    out.push_back({name, static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, static_cast<double>(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name + ".p50", static_cast<double>(h->Quantile(0.5))});
    out.push_back({name + ".p95", static_cast<double>(h->Quantile(0.95))});
    out.push_back({name + ".p99", static_cast<double>(h->Quantile(0.99))});
    out.push_back({name + ".count", static_cast<double>(h->count())});
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

// --- TraceBuffer ---

TraceBuffer* TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return buffer;
}

namespace {

// Small dense per-thread id for Chrome-trace tid mapping: assigned on a
// thread's first emit, stable for the thread's lifetime.
uint64_t CurrentTraceTid() {
  static std::atomic<uint64_t> next_tid{1};
  thread_local uint64_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void TraceBuffer::Emit(const char* category, std::string detail,
                       uint64_t start_ns, uint64_t duration_ns) {
  uint64_t tid = CurrentTraceTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.resize(ring_.size() + 1);
  } else {
    // Full ring: this emit overwrites the oldest event. Count the loss so
    // a snapshot consumer knows the ring is a suffix of the event stream.
    ++dropped_;
    ++dropped_window_;
    S2_COUNTER("s2_trace_dropped_total").Add();
  }
  TraceEvent& slot = ring_[next_seq_ % capacity_];
  slot.category = category;
  slot.detail = std::move(detail);
  slot.start_ns = start_ns;
  slot.duration_ns = duration_ns;
  slot.seq = next_seq_++;
  slot.tid = tid;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  uint64_t oldest = next_seq_ >= capacity_ ? next_seq_ - capacity_ : 0;
  for (uint64_t seq = oldest; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  dropped_window_ = 0;
  return out;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  dropped_window_ = 0;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t TraceBuffer::dropped_since_last_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_window_;
}

}  // namespace s2
