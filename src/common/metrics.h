#ifndef S2_COMMON_METRICS_H_
#define S2_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace s2 {

/// Monotonic event counter. The hot path is one relaxed fetch_add; call
/// sites cache the pointer handed out by MetricsRegistry (see the
/// S2_COUNTER macro below) so name lookup happens once per call site.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, cached bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Bounded-memory log-linear latency histogram. Values (nanoseconds, but
/// any uint64 works) are bucketed by power-of-two octave with kSub linear
/// sub-buckets per octave, so every recorded sample lands within ~1/kSub
/// relative error of its bucket's representative value. Memory is a fixed
/// array of atomics regardless of how many samples are recorded, and
/// Record() is lock-free (three relaxed atomic ops plus a CAS-loop max).
class Histogram {
 public:
  static constexpr size_t kSubShift = 3;  // 8 linear sub-buckets per octave
  static constexpr size_t kSub = size_t{1} << kSubShift;
  static constexpr size_t kBuckets = (64 - kSubShift + 1) * kSub;

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Approximate quantile (q in [0, 1]) from bucket representatives; the
  /// top quantile is clamped to the exact observed max.
  uint64_t Quantile(double q) const;

  void Reset();

  /// Bucket index for a value and the representative (midpoint) value of a
  /// bucket; exposed for tests of the bucketing error bound.
  static size_t BucketFor(uint64_t v);
  static uint64_t BucketMid(size_t bucket);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One (name, value) pair from MetricsRegistry::SnapshotValues. Histograms
/// expand to several samples (`name.p50`, `name.p95`, `name.p99`,
/// `name.count`).
struct MetricSample {
  std::string name;
  double value = 0.0;
};

/// Process-wide registry of named metrics. Registration (first lookup of a
/// name) takes a mutex; the returned pointers stay valid for the process
/// lifetime and are lock-free to update. ResetForTest zeroes values but
/// never invalidates pointers, so cached call-site handles survive.
///
/// Naming convention (the catalog lives in DESIGN.md): snake_case with an
/// `s2_` prefix; counters end in `_total` (or `_bytes_total`), histograms
/// of durations end in `_ns`.
class MetricsRegistry {
 public:
  static MetricsRegistry* Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Prometheus-style text exposition: `name value` lines for counters and
  /// gauges; `name{quantile="..."}`, `name_count`, `name_sum`, `name_max`
  /// for histograms. Names are emitted in sorted order.
  std::string Dump() const;

  /// The same data as one JSON object (bench harness output): counters and
  /// gauges as numbers, histograms as {count, sum, mean, p50, p95, p99,
  /// max} objects.
  std::string DumpJson() const;

  /// Every registered metric flattened to (name, value) pairs — counters,
  /// then gauges, then histograms (each group name-sorted); counters and
  /// gauges one sample each, histograms as
  /// `name.p50/.p95/.p99/.count`. This is the iteration surface the
  /// MonitorService sampler uses to build time-series without knowing
  /// metric names up front.
  std::vector<MetricSample> SnapshotValues() const;

  /// Zeroes every registered metric (pointers stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double-quote and newline become \\, \" and \n.
std::string EscapePrometheusLabel(const std::string& value);

/// Records elapsed nanoseconds into a histogram at scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist), start_(NowNs()) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNs() const { return NowNs() - start_; }
  /// Drops the pending record (e.g. the operation failed and its latency
  /// would pollute the success histogram).
  void Cancel() { hist_ = nullptr; }

  static uint64_t NowNs();

 private:
  Histogram* hist_;
  uint64_t start_;
};

// Cached-handle accessors: the static local resolves the name once per call
// site, after which the metric update is a single atomic op.
#define S2_COUNTER(name)                                              \
  ([]() -> ::s2::Counter& {                                           \
    static ::s2::Counter* c =                                         \
        ::s2::MetricsRegistry::Global()->counter(name);               \
    return *c;                                                        \
  }())
#define S2_GAUGE(name)                                                \
  ([]() -> ::s2::Gauge& {                                             \
    static ::s2::Gauge* g = ::s2::MetricsRegistry::Global()->gauge(name); \
    return *g;                                                        \
  }())
#define S2_HISTOGRAM(name)                                            \
  ([]() -> ::s2::Histogram& {                                         \
    static ::s2::Histogram* h =                                       \
        ::s2::MetricsRegistry::Global()->histogram(name);             \
    return *h;                                                        \
  }())
#define S2_SCOPED_TIMER_CONCAT_(x, y) x##y
#define S2_SCOPED_TIMER_CONCAT(x, y) S2_SCOPED_TIMER_CONCAT_(x, y)
#define S2_SCOPED_TIMER(name)                           \
  ::s2::ScopedTimer S2_SCOPED_TIMER_CONCAT(             \
      _s2_scoped_timer_, __LINE__)(&S2_HISTOGRAM(name))

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One trace event: a point event (duration_ns == 0) or a completed span.
/// `category` is a static string literal supplied at the emit site.
struct TraceEvent {
  const char* category = "";
  std::string detail;
  uint64_t start_ns = 0;     // ScopedTimer::NowNs() clock
  uint64_t duration_ns = 0;  // 0 for instant events
  uint64_t seq = 0;          // global emission order
  uint64_t tid = 0;          // small dense id of the emitting thread
};

/// Bounded ring buffer of trace events, off by default. When enabled,
/// S2_TRACE_SPAN / S2_TRACE_EVENT sites record into it; tests snapshot the
/// buffer to reconstruct e.g. a scan's per-segment strategy decisions.
/// When disabled the only cost at an emit site is one relaxed atomic load
/// (detail strings are not even built; see the macros).
class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 8192;

  /// Tests shrink `capacity` to exercise ring wrap cheaply.
  explicit TraceBuffer(size_t capacity = kCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static TraceBuffer* Global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Emit(const char* category, std::string detail, uint64_t start_ns,
            uint64_t duration_ns);

  /// Events currently in the ring, oldest first. Ends the current drop
  /// window: dropped_since_last_snapshot() restarts from zero, so a later
  /// capture doesn't attribute this window's losses to itself.
  std::vector<TraceEvent> Snapshot() const;
  void Clear();

  /// Events overwritten by ring wrap since the last Clear(). Also counted
  /// in the s2_trace_dropped_total registry counter so DumpMetrics()
  /// exposes the loss.
  uint64_t dropped() const;

  /// Events overwritten since the last Snapshot()/Clear() — the losses
  /// that belong to the *next* capture window.
  uint64_t dropped_since_last_snapshot() const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  // Reset by Snapshot() (hence mutable: snapshotting is logically const
  // but ends the drop window).
  mutable uint64_t dropped_window_ = 0;
};

/// RAII span: emits one event with the scope's duration at destruction.
/// Construct with the detail string, or amend it mid-scope via AppendDetail
/// (e.g. record a strategy decision made inside the span).
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string detail)
      : enabled_(TraceBuffer::Global()->enabled()),
        category_(category),
        detail_(std::move(detail)),
        start_(enabled_ ? ScopedTimer::NowNs() : 0) {}
  ~TraceSpan() {
    if (enabled_) {
      TraceBuffer::Global()->Emit(category_, std::move(detail_), start_,
                                  ScopedTimer::NowNs() - start_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return enabled_; }
  void AppendDetail(const std::string& more) {
    if (enabled_) detail_ += more;
  }

 private:
  bool enabled_;
  const char* category_;
  std::string detail_;
  uint64_t start_;
};

// Span over the enclosing scope. The detail expression is only evaluated
// when tracing is enabled.
#define S2_TRACE_SPAN(var, category, detail_expr)                        \
  ::s2::TraceSpan var(                                                   \
      category, ::s2::TraceBuffer::Global()->enabled() ? (detail_expr)   \
                                                       : std::string())
// Instant event (no duration).
#define S2_TRACE_EVENT(category, detail_expr)                            \
  do {                                                                   \
    if (::s2::TraceBuffer::Global()->enabled()) {                        \
      ::s2::TraceBuffer::Global()->Emit(                                 \
          category, (detail_expr), ::s2::ScopedTimer::NowNs(), 0);       \
    }                                                                    \
  } while (0)

}  // namespace s2

#endif  // S2_COMMON_METRICS_H_
