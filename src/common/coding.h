#ifndef S2_COMMON_CODING_H_
#define S2_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace s2 {

// Little-endian fixed-width and varint byte (de)serialization used by the
// log, segment file, and index file formats. All hosts we target are
// little-endian; encodes are plain memcpy.

inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

/// Appends v in LEB128 varint form (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint64 from the front of *input, advancing it. Returns an
/// error on truncated input.
Result<uint64_t> GetVarint64(Slice* input);

/// Appends a varint length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Parses a length-prefixed slice from the front of *input, advancing it.
/// The returned Slice aliases the input buffer.
Result<Slice> GetLengthPrefixed(Slice* input);

/// Zig-zag maps signed ints to unsigned so small magnitudes stay small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace s2

#endif  // S2_COMMON_CODING_H_
