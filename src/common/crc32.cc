#include "common/crc32.h"

namespace s2 {

namespace {

struct Crc32Table {
  uint32_t t[256];
  constexpr Crc32Table() : t() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

constexpr Crc32Table kTable;

}  // namespace

uint32_t Crc32(const char* data, size_t n, uint32_t seed) {
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace s2
