#ifndef S2_COMMON_JOURNAL_H_
#define S2_COMMON_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2 {

class Env;

/// One structured journal entry. `category` groups related events
/// ("watchdog", "storage", "cluster", "fault", "query"); `name` is the
/// specific event ("flush", "merge", "snapshot", "eviction",
/// "replica_attach", "rule_fired", ...); `detail` is free-form key=value
/// context. Sequence numbers are monotonic per process, so consumers can
/// detect ring loss and order events across subsystems.
struct JournalEvent {
  uint64_t seq = 0;
  uint64_t ts_ns = 0;  // ScopedTimer::NowNs() / Env::NowNs() clock
  std::string category;
  std::string name;
  std::string detail;

  /// One JSON object: {"seq":..,"ts_ns":..,"category":"..","name":"..",
  /// "detail":".."} — strings escaped via JsonEscape.
  std::string ToJson() const;
};

/// Process-wide structured event journal: a bounded ring absorbing
/// lifecycle events (segment flush/merge, snapshot, cache eviction,
/// replica attach, fault injections) and watchdog alerts, plus an optional
/// JSONL file sink. Always on — appends are one mutex acquisition plus a
/// few string copies, cheap relative to the events journaled (which are
/// all slow-path: IO, alerts, topology changes). The ring is a suffix of
/// the event stream; `dropped()` counts overwritten entries.
///
/// Thread-safe. Appends may run under subsystem locks (DataFileStore's
/// mutex, FaultInjectionEnv's mutex), so Append never calls back into any
/// subsystem — and a file sink must never write through an env whose
/// operations journal (e.g. the same FaultInjectionEnv), or Append would
/// deadlock/recurse. Attach the *base* env instead.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit EventJournal(size_t capacity = kDefaultCapacity);

  /// Process-wide journal (leaked singleton, like MetricsRegistry).
  static EventJournal* Global();

  /// Appends one event. `ts_ns` of 0 means "stamp with ScopedTimer::NowNs()
  /// now"; pass an explicit timestamp to use an injected clock.
  void Append(const std::string& category, const std::string& name,
              const std::string& detail, uint64_t ts_ns = 0);

  /// Events currently in the ring, oldest first.
  std::vector<JournalEvent> Snapshot() const;
  /// The newest `n` events, oldest first.
  std::vector<JournalEvent> Tail(size_t n) const;

  /// Entries overwritten by ring wrap since construction / last Clear.
  uint64_t dropped() const;
  /// Next sequence number to be assigned (== total appends since Clear).
  uint64_t next_seq() const;

  /// Empties the ring and resets seq/dropped. The file sink, if attached,
  /// is left attached (its contents are not touched).
  void Clear();

  /// Attaches a JSONL sink: every subsequent event is also appended to
  /// `path` (one JSON object per line) through `env` (null =
  /// Env::Default()). Write failures set a flag exposed by
  /// file_sink_healthy() and stop further file writes; the ring continues.
  /// Pass an empty path to detach.
  void AttachFile(Env* env, const std::string& path);
  bool file_sink_healthy() const;

 private:
  void AppendLocked(JournalEvent ev);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<JournalEvent> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  Env* file_env_ = nullptr;
  std::string file_path_;
  bool file_healthy_ = true;
};

// Journals an event into the process-wide journal. Kept as a macro for
// symmetry with S2_COUNTER / S2_TRACE_EVENT emit sites.
#define S2_JOURNAL(category, name, detail_expr) \
  ::s2::EventJournal::Global()->Append((category), (name), (detail_expr))

}  // namespace s2

#endif  // S2_COMMON_JOURNAL_H_
