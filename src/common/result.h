#ifndef S2_COMMON_RESULT_H_
#define S2_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace s2 {

/// Holds either a value of type T or a non-OK Status. Modeled after
/// arrow::Result. Construction from a value or a non-OK Status is implicit
/// so `return value;` and `return Status::NotFound(...);` both work inside
/// functions returning Result<T>.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be built from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns that error from the
/// enclosing function, otherwise moves the value into `lhs` (which may be a
/// declaration, e.g. `S2_ASSIGN_OR_RETURN(auto x, Foo());`).
#define S2_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)   \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define S2_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define S2_ASSIGN_OR_RETURN_CONCAT(x, y) S2_ASSIGN_OR_RETURN_CONCAT_(x, y)
#define S2_ASSIGN_OR_RETURN(lhs, rexpr) \
  S2_ASSIGN_OR_RETURN_IMPL(             \
      S2_ASSIGN_OR_RETURN_CONCAT(_s2_result_, __LINE__), lhs, rexpr)

}  // namespace s2

#endif  // S2_COMMON_RESULT_H_
