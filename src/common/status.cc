#include "common/status.h"

namespace s2 {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace s2
