#include "common/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

#include "common/env.h"
#include "common/journal.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/monitor.h"
#include "common/trace_export.h"

namespace s2 {

Status DumpFlightRecorder(const FlightRecorderOptions& opts) {
  Env* env = opts.env != nullptr ? opts.env : Env::Default();
  const EventJournal* journal =
      opts.journal != nullptr ? opts.journal : EventJournal::Global();

  Status first_error = env->CreateDirs(opts.dir);
  std::vector<std::string> written;
  auto write = [&](const std::string& name, const std::string& content) {
    Status st = env->WriteStringToFile(opts.dir + "/" + name, content,
                                       /*sync=*/false);
    if (st.ok()) {
      written.push_back(name);
    } else if (first_error.ok()) {
      first_error = st;
    }
  };

  write("metrics.prom", MetricsRegistry::Global()->Dump());
  write("metrics.json", MetricsRegistry::Global()->DumpJson());

  if (opts.monitor != nullptr) {
    write("monitor_history.json", opts.monitor->HistoryJson());
    write("watchdogs.json", opts.monitor->WatchdogsJson());
  }

  std::vector<JournalEvent> tail = journal->Tail(opts.journal_tail);
  std::string jsonl;
  for (const JournalEvent& ev : tail) {
    jsonl += ev.ToJson();
    jsonl += '\n';
  }
  write("journal.jsonl", jsonl);

  TraceBuffer* tb = TraceBuffer::Global();
  std::vector<TraceEvent> trace_events = tb->Snapshot();
  uint64_t trace_dropped = tb->dropped();
  ChromeTraceBuilder builder;
  builder.AddTraceEvents(trace_events, /*pid=*/1, "s2 trace ring");
  write("trace.json", builder.Finish());

  for (const auto& [name, content] : opts.extra_files) {
    write(name, content);
  }

  char buf[64];
  std::string manifest = "{\"files\":[";
  // The manifest names itself too, so a reader sees the intended set.
  written.push_back("manifest.json");
  bool first = true;
  for (const std::string& name : written) {
    if (!first) manifest += ",";
    first = false;
    manifest += JsonQuote(name);
  }
  manifest += "],\"journal_events\":";
  snprintf(buf, sizeof(buf), "%zu", tail.size());
  manifest += buf;
  manifest += ",\"journal_dropped\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, journal->dropped());
  manifest += buf;
  manifest += ",\"trace_events\":";
  snprintf(buf, sizeof(buf), "%zu", trace_events.size());
  manifest += buf;
  manifest += ",\"trace_dropped_total\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, trace_dropped);
  manifest += buf;
  manifest += ",\"captured_at_ns\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, env->NowNs());
  manifest += buf;
  manifest += "}";
  write("manifest.json", manifest);

  return first_error;
}

}  // namespace s2
