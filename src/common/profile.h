#ifndef S2_COMMON_PROFILE_H_
#define S2_COMMON_PROFILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace s2 {

/// One timed span in a query profile tree: a name ("partition", "scan",
/// "segment", ...), an optional detail string (strategy decisions, ids),
/// wall time, counters attributed to the span, and child spans.
struct ProfileNode {
  std::string name;
  std::string detail;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Insertion-ordered (key, value) pairs; repeated Add calls to the same
  /// key accumulate into one entry.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::unique_ptr<ProfileNode>> children;

  /// Value of a counter, 0 when absent.
  int64_t counter(const std::string& key) const;
};

/// A per-query (or per-maintenance-round) profile: a mutex-guarded tree of
/// ProfileNodes. One collector is created per profiled operation and
/// threaded through the layers via thread-local attachment (see
/// ProfileScope / ProfileSpan below), so deep layers — the data-file
/// cache, the lock manager, the log commit — can attribute their costs to
/// the active span without any signature changes along the way.
///
/// Thread model: Start/Finish/AddCounter take the collector mutex, so
/// spans may be opened concurrently from scatter-gather workers; child
/// pointers stay stable (children are heap nodes). Rendering (ToText /
/// ToJson) also locks, but meaningful output requires the collection to
/// have quiesced — callers render after the profiled operation returns.
class ProfileCollector {
 public:
  /// The collector starts with an open root span named `root_name`; call
  /// FinishRoot() (or FinishSpan(root())) when the operation completes.
  explicit ProfileCollector(std::string root_name);

  ProfileNode* root() { return &root_; }
  const ProfileNode* root() const { return &root_; }

  /// Opens a child span under `parent` and returns it.
  ProfileNode* StartSpan(ProfileNode* parent, std::string name,
                         std::string detail = std::string());
  /// Stamps the span's duration.
  void FinishSpan(ProfileNode* node);
  void FinishRoot() { FinishSpan(&root_); }

  void AddCounter(ProfileNode* node, const std::string& key, int64_t delta);
  void SetDetail(ProfileNode* node, std::string detail);
  void AppendDetail(ProfileNode* node, const std::string& more);

  /// Pretty-printed tree: one line per span with duration and counters.
  std::string ToText() const;
  /// The tree as nested JSON objects.
  std::string ToJson() const;

  /// Sum of counter `key` over the whole tree (tests).
  int64_t TotalCounter(const std::string& key) const;
  /// Every node with the given span name, preorder (tests). Pointers are
  /// valid while the collector is alive and collection has quiesced.
  std::vector<const ProfileNode*> FindAll(const std::string& name) const;

  // ------------------------------------------------------------------
  // Thread-local ambient attachment
  // ------------------------------------------------------------------

  struct Attachment {
    ProfileCollector* collector = nullptr;
    ProfileNode* node = nullptr;
  };

  /// The (collector, current span) the calling thread is attached to;
  /// {nullptr, nullptr} when profiling is off for this thread.
  static Attachment Current();

  /// Adds to a counter on the calling thread's current span; no-op when
  /// the thread is not attached. This is the hook deep layers use.
  static void CountHere(const std::string& key, int64_t delta);

 private:
  friend class ProfileScope;
  friend class ProfileSpan;

  static void Attach(const Attachment& a);

  void RenderText(const ProfileNode& node, int depth, std::string* out) const;
  void RenderJson(const ProfileNode& node, std::string* out) const;

  mutable std::mutex mu_;
  ProfileNode root_;
};

/// Attaches (collector, node) to the calling thread for the scope's
/// lifetime, restoring the previous attachment at exit. Used at executor
/// fan-out points: a worker task re-attaches to the parent span captured
/// on the submitting thread. Always restores — pool threads are reused, so
/// a leaked attachment would dangle into unrelated tasks. A null collector
/// detaches (spans inside become no-ops).
class ProfileScope {
 public:
  ProfileScope(ProfileCollector* collector, ProfileNode* node);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileCollector::Attachment prev_;
};

/// RAII child span of the calling thread's current span. When the thread
/// is not attached, construction is a thread-local load and nothing else —
/// profiling off costs nothing on these paths. While alive, the span is
/// the thread's current node, so nested ProfileSpans and CountHere calls
/// land under it.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name,
                       std::string detail = std::string());
  ~ProfileSpan();

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  /// Whether this span is recording (thread was attached). Callers gate
  /// detail-string construction on this to keep the off path free.
  bool active() const { return node_ != nullptr; }
  ProfileNode* node() { return node_; }

  void Count(const std::string& key, int64_t delta);
  void SetDetail(std::string detail);
  void AppendDetail(const std::string& more);

 private:
  ProfileCollector* collector_ = nullptr;
  ProfileNode* node_ = nullptr;
  ProfileCollector::Attachment prev_;
};

}  // namespace s2

#endif  // S2_COMMON_PROFILE_H_
