#include "common/hash.h"

#include <cstring>

namespace s2 {

namespace {

constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Load64(const char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

inline uint32_t Load32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

}  // namespace

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  uint64_t h = seed + kPrime3 + n;
  const char* p = data;
  const char* end = data + n;
  while (p + 8 <= end) {
    uint64_t k = Load64(p) * kPrime2;
    h ^= Rotl(k, 31) * kPrime1;
    h = Rotl(h, 27) * kPrime1 + kPrime2;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime1;
    h = Rotl(h, 11) * kPrime2;
    ++p;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace s2
