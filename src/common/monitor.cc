#include "common/monitor.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <utility>

#include "common/env.h"
#include "common/executor.h"
#include "common/journal.h"
#include "common/json.h"
#include "common/metrics.h"

namespace s2 {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const char* CmpName(WatchdogCmp cmp) {
  return cmp == WatchdogCmp::kAbove ? "above" : "below";
}

bool Breaches(double v, double threshold, WatchdogCmp cmp) {
  return cmp == WatchdogCmp::kAbove ? v > threshold : v < threshold;
}

}  // namespace

MonitorService::MonitorService(MonitorOptions options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      registry_(options.registry != nullptr ? options.registry
                                            : MetricsRegistry::Global()),
      journal_(options.journal != nullptr ? options.journal
                                          : EventJournal::Global()) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

MonitorService::~MonitorService() { Stop(); }

void MonitorService::AddRule(WatchdogRule rule) {
  std::lock_guard<std::mutex> lock(rules_mu_);
  RuleState state;
  state.status.name = rule.name;
  state.status.threshold = rule.threshold;
  state.status.cmp = rule.cmp;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

void MonitorService::TickOnce() {
  uint64_t now = env_->NowNs();
  {
    std::lock_guard<std::mutex> lock(series_mu_);
    SampleLocked(now);
    ++ticks_;
  }
  EvaluateRules(now);
}

void MonitorService::SampleLocked(uint64_t now_ns) {
  for (const MetricSample& sample : registry_->SnapshotValues()) {
    std::deque<MonitorPoint>& ring = series_[sample.name];
    ring.push_back(MonitorPoint{now_ns, sample.value});
    while (ring.size() > options_.ring_capacity) ring.pop_front();
  }
}

void MonitorService::EvaluateRules(uint64_t now_ns) {
  // Copy the observers out so evaluation holds no monitor lock: observe()
  // callbacks read cluster/registry state and the monitor's own series.
  struct Pending {
    size_t index;
    std::function<double()> observe;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(rules_mu_);
    pending.reserve(rules_.size());
    for (size_t i = 0; i < rules_.size(); ++i) {
      pending.push_back(Pending{i, rules_[i].rule.observe});
    }
  }
  std::vector<double> observed(pending.size(), 0.0);
  for (size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].observe) observed[i] = pending[i].observe();
  }
  std::lock_guard<std::mutex> lock(rules_mu_);
  for (size_t i = 0; i < pending.size(); ++i) {
    RuleState& rs = rules_[pending[i].index];
    WatchdogStatus& st = rs.status;
    double v = observed[i];
    st.last_observed = v;
    if (Breaches(v, rs.rule.threshold, rs.rule.cmp)) {
      ++st.breach_ticks;
      if (!st.firing && st.breach_ticks >= rs.rule.for_ticks) {
        st.firing = true;
        st.fired_since_ns = now_ns;
        ++st.fire_count;
        journal_->Append(
            "watchdog", "rule_fired",
            "rule=" + st.name + " cmp=" + CmpName(rs.rule.cmp) +
                " threshold=" + FormatDouble(rs.rule.threshold) +
                " observed=" + FormatDouble(v) +
                " breach_ticks=" + std::to_string(st.breach_ticks),
            now_ns);
      }
    } else {
      if (st.firing) {
        journal_->Append(
            "watchdog", "rule_cleared",
            "rule=" + st.name + " observed=" + FormatDouble(v) +
                " duration_ns=" +
                std::to_string(now_ns >= st.fired_since_ns
                                   ? now_ns - st.fired_since_ns
                                   : 0),
            now_ns);
      }
      st.firing = false;
      st.breach_ticks = 0;
      st.fired_since_ns = 0;
    }
  }
}

void MonitorService::Start(Executor* executor) {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (running_) return;
  executor_ = executor != nullptr ? executor : Executor::Default();
  stop_ = false;
  running_ = true;
  loop_ = std::thread([this] { LoopBody(); });
}

void MonitorService::LoopBody() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      loop_cv_.wait_for(lock,
                        std::chrono::nanoseconds(options_.interval_ns),
                        [this] { return stop_; });
      if (stop_) return;
    }
    // The tick body runs on the shared executor pool (the loop thread only
    // paces); the blocking get() keeps ticks serialized.
    executor_->SubmitWithResult([this] { TickOnce(); }).get();
  }
}

void MonitorService::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!running_) return;
    stop_ = true;
  }
  loop_cv_.notify_all();
  loop_.join();
  std::lock_guard<std::mutex> lock(loop_mu_);
  running_ = false;
}

bool MonitorService::running() const {
  std::lock_guard<std::mutex> lock(loop_mu_);
  return running_;
}

uint64_t MonitorService::ticks() const {
  std::lock_guard<std::mutex> lock(series_mu_);
  return ticks_;
}

std::vector<std::string> MonitorService::SeriesNames() const {
  std::lock_guard<std::mutex> lock(series_mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) names.push_back(name);
  return names;
}

std::vector<MonitorPoint> MonitorService::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return std::vector<MonitorPoint>(it->second.begin(), it->second.end());
}

double MonitorService::LatestOr(const std::string& name,
                                double fallback) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return fallback;
  return it->second.back().value;
}

double MonitorService::RatePerSec(const std::string& name,
                                  size_t window) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.size() < 2) return 0.0;
  const std::deque<MonitorPoint>& ring = it->second;
  size_t n = std::min(window < 2 ? size_t{2} : window, ring.size());
  const MonitorPoint& first = ring[ring.size() - n];
  const MonitorPoint& last = ring.back();
  if (last.ts_ns <= first.ts_ns) return 0.0;
  double dt_sec =
      static_cast<double>(last.ts_ns - first.ts_ns) / 1e9;
  return (last.value - first.value) / dt_sec;
}

double MonitorService::SeriesMedian(const std::string& name) const {
  std::vector<double> values;
  {
    std::lock_guard<std::mutex> lock(series_mu_);
    auto it = series_.find(name);
    if (it == series_.end()) return 0.0;
    for (const MonitorPoint& p : it->second) {
      if (p.value != 0.0) values.push_back(p.value);
    }
  }
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

std::vector<WatchdogStatus> MonitorService::RuleStatuses() const {
  std::lock_guard<std::mutex> lock(rules_mu_);
  std::vector<WatchdogStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) out.push_back(rs.status);
  return out;
}

bool MonitorService::AnyFiring() const {
  std::lock_guard<std::mutex> lock(rules_mu_);
  for (const RuleState& rs : rules_) {
    if (rs.status.firing) return true;
  }
  return false;
}

std::string MonitorService::HistoryJson() const {
  std::lock_guard<std::mutex> lock(series_mu_);
  char buf[64];
  std::string out = "{\"interval_ns\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, options_.interval_ns);
  out += buf;
  out += ",\"ticks\":";
  snprintf(buf, sizeof(buf), "%" PRIu64, ticks_);
  out += buf;
  out += ",\"series\":{";
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!first_series) out += ",";
    first_series = false;
    out += JsonQuote(name);
    out += ":[";
    bool first_point = true;
    for (const MonitorPoint& p : ring) {
      if (!first_point) out += ",";
      first_point = false;
      out += "{\"ts_ns\":";
      snprintf(buf, sizeof(buf), "%" PRIu64, p.ts_ns);
      out += buf;
      out += ",\"v\":";
      out += FormatDouble(p.value);
      out += "}";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

std::string MonitorService::WatchdogsJson() const {
  std::lock_guard<std::mutex> lock(rules_mu_);
  char buf[64];
  std::string out = "[";
  bool first = true;
  for (const RuleState& rs : rules_) {
    const WatchdogStatus& st = rs.status;
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":";
    out += JsonQuote(st.name);
    out += ",\"cmp\":\"";
    out += CmpName(st.cmp);
    out += "\",\"threshold\":";
    out += FormatDouble(st.threshold);
    out += ",\"observed\":";
    out += FormatDouble(st.last_observed);
    out += ",\"firing\":";
    out += st.firing ? "true" : "false";
    out += ",\"breach_ticks\":";
    snprintf(buf, sizeof(buf), "%d", st.breach_ticks);
    out += buf;
    out += ",\"fire_count\":";
    snprintf(buf, sizeof(buf), "%" PRIu64, st.fire_count);
    out += buf;
    out += ",\"fired_since_ns\":";
    snprintf(buf, sizeof(buf), "%" PRIu64, st.fired_since_ns);
    out += buf;
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace s2
