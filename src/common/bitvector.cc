#include "common/bitvector.h"

#include <bit>

#include "common/coding.h"

namespace s2 {

uint32_t BitVector::Count() const {
  uint32_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool BitVector::NoneSet() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::Resize(uint32_t num_bits) {
  num_bits_ = num_bits;
  words_.resize((num_bits + 63) / 64, 0);
  // Clear any bits past the new logical end in the last word.
  if (num_bits & 63) {
    words_.back() &= (uint64_t{1} << (num_bits & 63)) - 1;
  }
}

void BitVector::Union(const BitVector& other) {
  for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void BitVector::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_bits_);
  dst->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

Result<BitVector> BitVector::DecodeFrom(Slice* input) {
  S2_ASSIGN_OR_RETURN(uint64_t num_bits, GetVarint64(input));
  BitVector bv(static_cast<uint32_t>(num_bits));
  size_t byte_len = bv.words_.size() * sizeof(uint64_t);
  if (input->size() < byte_len) {
    return Status::Corruption("truncated bit vector");
  }
  memcpy(bv.words_.data(), input->data(), byte_len);
  input->RemovePrefix(byte_len);
  return bv;
}

}  // namespace s2
