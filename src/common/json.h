#ifndef S2_COMMON_JSON_H_
#define S2_COMMON_JSON_H_

#include <string>

namespace s2 {

/// Appends `in` to `out` escaped for use inside a JSON string literal:
/// double-quote, backslash, and the control characters (\n \t \r \b \f,
/// everything else below 0x20 as \u00XX). The one shared escaper for every
/// JSON emitter in the tree (metrics, profiles, system tables, journal,
/// trace export) so label/detail strings can never break a document.
void JsonAppendEscaped(const std::string& in, std::string* out);

/// Returns the escaped string (no surrounding quotes).
std::string JsonEscape(const std::string& in);

/// Returns the string as a complete JSON string literal, quotes included.
std::string JsonQuote(const std::string& in);

}  // namespace s2

#endif  // S2_COMMON_JSON_H_
