#ifndef S2_COMMON_CRC32_H_
#define S2_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace s2 {

/// CRC-32 (IEEE polynomial, table-driven). Guards log pages and snapshot
/// files against torn writes and corruption.
uint32_t Crc32(const char* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(Slice s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace s2

#endif  // S2_COMMON_CRC32_H_
