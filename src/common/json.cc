#include "common/json.h"

#include <cstdio>

namespace s2 {

void JsonAppendEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x",
                   static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  JsonAppendEscaped(in, &out);
  return out;
}

std::string JsonQuote(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  out += '"';
  JsonAppendEscaped(in, &out);
  out += '"';
  return out;
}

}  // namespace s2
