#include "common/threadpool.h"

#include "common/metrics.h"

namespace s2 {

namespace {

// Shared-executor observability: queue depth as a gauge, per-task execution
// latency as a histogram. One pool of metrics across all pools — the
// process normally runs one shared Executor (see DESIGN.md).
void NoteSubmitted() { S2_GAUGE("s2_exec_queue_depth").Add(1); }
void NoteDequeued() { S2_GAUGE("s2_exec_queue_depth").Add(-1); }

struct TaskRunScope {
  ScopedTimer timer{&S2_HISTOGRAM("s2_exec_task_ns")};
  ~TaskRunScope() { S2_COUNTER("s2_exec_tasks_total").Add(); }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  NoteSubmitted();
  task_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
  }
  NoteDequeued();
  {
    TaskRunScope scope;
    task();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    NoteDequeued();
    {
      TaskRunScope scope;
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace s2
