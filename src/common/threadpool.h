#ifndef S2_COMMON_THREADPOOL_H_
#define S2_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s2 {

/// Fixed-size worker pool used for background flush/merge/upload tasks and
/// benchmark worker threads. Tasks are plain std::function<void()>; tasks
/// must not throw.
///
/// Shutdown/drain contract (relied on by Executor and DataFileStore):
///  - Submit() after Shutdown() has begun returns false and the task is
///    dropped; the caller owns the fallback (run inline, requeue, ...).
///  - Tasks enqueued before Shutdown() are all executed: Shutdown() stops
///    intake, drains the queue, then joins the workers.
///  - A task may Submit() further tasks (upload -> evict -> upload chains).
///    WaitIdle() only returns when the queue is empty AND no task is
///    running, so such chains are fully settled when it returns. A chain
///    task submitted during Shutdown() is dropped like any other late
///    Submit.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Robust to
  /// tasks that enqueue further tasks (see class comment).
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all workers. Safe to
  /// call concurrently / repeatedly; only the first call joins.
  void Shutdown();

  /// Pops one queued task and runs it on the calling thread. Returns false
  /// if the queue was empty. Lets a thread that is blocked waiting on pool
  /// work help drain the queue instead (work-stealing wait), which is what
  /// makes nested ParallelFor/Submit patterns deadlock-free.
  bool TryRunOne();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace s2

#endif  // S2_COMMON_THREADPOOL_H_
