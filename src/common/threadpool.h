#ifndef S2_COMMON_THREADPOOL_H_
#define S2_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s2 {

/// Fixed-size worker pool used for background flush/merge/upload tasks and
/// benchmark worker threads. Tasks are plain std::function<void()>; tasks
/// must not throw.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace s2

#endif  // S2_COMMON_THREADPOOL_H_
