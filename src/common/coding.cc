#include "common/coding.h"

namespace s2 {

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<const char*>(buf), n);
}

Result<uint64_t> GetVarint64(Slice* input) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) {
      return Status::Corruption("truncated varint");
    }
    unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      return result;
    }
  }
  return Status::Corruption("varint too long");
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Result<Slice> GetLengthPrefixed(Slice* input) {
  S2_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(input));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed slice");
  }
  Slice result(input->data(), len);
  input->RemovePrefix(len);
  return result;
}

}  // namespace s2
