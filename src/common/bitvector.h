#ifndef S2_COMMON_BITVECTOR_H_
#define S2_COMMON_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace s2 {

/// Dense bit vector. Segment metadata stores one of these per segment to
/// mark deleted rows (the paper's alternative to LSM tombstones, Section 4).
/// Copy-on-write friendly: copies are cheap relative to segment sizes and a
/// new version is installed per metadata update.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(uint32_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  uint32_t size() const { return num_bits_; }

  bool Get(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint32_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Number of set bits.
  uint32_t Count() const;

  bool AllSet() const { return Count() == num_bits_; }
  bool NoneSet() const;

  /// Appends `n` zero bits.
  void Resize(uint32_t num_bits);

  /// this |= other. Sizes must match.
  void Union(const BitVector& other);

  /// Serialized form: varint bit count followed by raw words.
  void EncodeTo(std::string* dst) const;
  static Result<BitVector> DecodeFrom(Slice* input);

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Direct word access for vectorized consumers (exec filter kernels).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace s2

#endif  // S2_COMMON_BITVECTOR_H_
