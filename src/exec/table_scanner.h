#ifndef S2_EXEC_TABLE_SCANNER_H_
#define S2_EXEC_TABLE_SCANNER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "exec/filter.h"
#include "storage/unified_table.h"

namespace s2 {

/// Feature toggles and tuning for adaptive scans. The ablation benchmarks
/// flip these to quantify each Section 5 mechanism.
struct ScanOptions {
  /// Columns to materialize; empty = all columns.
  std::vector<int> projection;
  /// Filter condition; null = no filter.
  const FilterNode* filter = nullptr;

  bool use_zone_maps = true;         // min/max segment elimination
  bool use_secondary_index = true;   // postings-driven row selection
  bool use_encoded_filters = true;   // evaluate on dictionary codes
  bool use_group_filter = true;      // whole-condition eval on wide passes
  bool adaptive_reorder = true;      // (1-P)/cost clause ordering

  /// An index clause is disabled when it needs more key probes than this
  /// fraction of the segment's rows (Section 5.1: IN-lists with too many
  /// keys fall back to scanning).
  double max_index_key_fraction = 0.05;

  /// Rows per vectorized block; selectivity feedback flows block to block.
  size_t block_rows = 4096;

  /// When set (and sized > 1 thread), segments are scanned in parallel
  /// morsels on this executor; batches are still delivered to the callback
  /// in segment order by a sequencer, so results are byte-identical to the
  /// serial scan. Null = serial scan on the calling thread.
  Executor* executor = nullptr;
  /// Checked between segments and row blocks; a tripped token aborts the
  /// scan with Status::Aborted (query fan-out cancels siblings on error).
  const CancelToken* cancel = nullptr;
};

/// Per-scan counters. A value type so parallel scans can accumulate one
/// instance per worker and Merge() them once at the end instead of sharing
/// hot atomics across morsel workers.
struct ScanStats {
  uint64_t segments_total = 0;
  uint64_t segments_skipped_zone = 0;
  uint64_t segments_skipped_index = 0;
  uint64_t rows_considered = 0;
  uint64_t rows_output = 0;
  uint64_t index_filter_uses = 0;
  uint64_t encoded_filter_uses = 0;
  uint64_t group_filter_uses = 0;
  uint64_t regular_filter_uses = 0;
  /// Times the residual-clause order was recomputed (the sort runs only
  /// when clause estimates move materially, not per row block).
  uint64_t reorder_sorts = 0;

  void Merge(const ScanStats& other) {
    segments_total += other.segments_total;
    segments_skipped_zone += other.segments_skipped_zone;
    segments_skipped_index += other.segments_skipped_index;
    rows_considered += other.rows_considered;
    rows_output += other.rows_output;
    index_filter_uses += other.index_filter_uses;
    encoded_filter_uses += other.encoded_filter_uses;
    group_filter_uses += other.group_filter_uses;
    regular_filter_uses += other.regular_filter_uses;
    reorder_sorts += other.reorder_sorts;
  }
};

/// One emitted batch: the projected columns (aligned) plus each row's
/// storage location (for UPDATE/DELETE driving).
struct ScanBatch {
  std::vector<ColumnVector> columns;   // size == projection size
  std::vector<RowLocation> locations;  // aligned with rows
  size_t num_rows = 0;
};

/// Adaptive vectorized scan over one unified table at a snapshot (paper
/// Section 5): segment skipping via secondary indexes then zone maps,
/// per-segment filter-strategy selection (regular / encoded / group /
/// index), and dynamic clause reordering by (1 - P) / cost with
/// selectivity estimates fed back from previous blocks.
class TableScanner {
 public:
  TableScanner(UnifiedTable* table, ScanOptions options);

  /// Runs the scan. `cb` is invoked per batch — always from one thread at
  /// a time and in deterministic segment order, even when segments are
  /// scanned in parallel — and returns false to stop early (LIMIT).
  /// Thread-compatible: create one scanner per thread.
  Status Scan(TxnId txn, Timestamp read_ts,
              const std::function<bool(const ScanBatch&)>& cb);

  const ScanStats& stats() const { return stats_; }

 private:
  /// Running per-clause estimates (selectivity and per-row cost) shared
  /// across segments and blocks of one scan.
  struct ClauseStats {
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    double cost_ns_per_row = 50.0;  // prior
    double selectivity() const {
      return rows_in == 0 ? 0.5
                          : static_cast<double>(rows_out) /
                                static_cast<double>(rows_in);
    }
  };

  /// Mutable scan state owned by one worker: its counters plus its
  /// adaptive clause estimates. Parallel scans give each morsel worker its
  /// own WorkerState (reordering adapts within the worker's morsel); the
  /// stats halves are merged when the scan completes.
  struct WorkerState {
    ScanStats stats;
    std::unordered_map<const FilterNode*, ClauseStats> clause_stats;

    ClauseStats& StatsFor(const FilterNode* node) {
      return clause_stats[node];
    }
  };

  /// Internal emission: batches are moved to the sink (the serial path
  /// forwards to the user callback; the parallel path buffers them for
  /// in-order delivery).
  using BatchSink = std::function<bool(ScanBatch&&)>;

  Status ScanSegment(WorkerState& ws, const SegmentSnapshot& snap,
                     const BatchSink& sink, bool* stop);

  Status ScanSegmentsParallel(const std::vector<SegmentSnapshot>& segments,
                              const std::function<bool(const ScanBatch&)>& cb,
                              WorkerState& root);

  /// Evaluates `node` over `rows` (ascending offsets within the segment),
  /// returning the surviving offsets.
  Result<std::vector<uint32_t>> EvalNode(WorkerState& ws,
                                         const FilterNode* node,
                                         const Segment& segment,
                                         std::vector<uint32_t> rows);

  Result<std::vector<uint32_t>> EvalLeaf(WorkerState& ws,
                                         const FilterNode* leaf,
                                         const Segment& segment,
                                         std::vector<uint32_t> rows);

  bool ZoneMapPasses(const FilterNode* conjunct, const Segment& segment);

  /// Index-driven base selection for the segment; returns true when an
  /// index was applied (and fills *rows), false to scan all rows.
  Result<bool> IndexBaseSelection(WorkerState& ws, const Segment& segment,
                                  const std::vector<const FilterNode*>&
                                      conjuncts,
                                  std::vector<const FilterNode*>* consumed,
                                  std::vector<uint32_t>* rows);

  Status EmitRows(WorkerState& ws, const SegmentSnapshot& snap,
                  const std::vector<uint32_t>& rows, const BatchSink& sink,
                  bool* stop);

  /// Folds one scan's counters into stats_ and the process-wide registry.
  void FinishScan(const ScanStats& scan_stats);

  bool Cancelled() const {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }

  UnifiedTable* table_;
  ScanOptions options_;
  std::vector<int> projection_;
  ScanStats stats_;
};

}  // namespace s2

#endif  // S2_EXEC_TABLE_SCANNER_H_
