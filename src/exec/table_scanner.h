#ifndef S2_EXEC_TABLE_SCANNER_H_
#define S2_EXEC_TABLE_SCANNER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/filter.h"
#include "storage/unified_table.h"

namespace s2 {

/// Feature toggles and tuning for adaptive scans. The ablation benchmarks
/// flip these to quantify each Section 5 mechanism.
struct ScanOptions {
  /// Columns to materialize; empty = all columns.
  std::vector<int> projection;
  /// Filter condition; null = no filter.
  const FilterNode* filter = nullptr;

  bool use_zone_maps = true;         // min/max segment elimination
  bool use_secondary_index = true;   // postings-driven row selection
  bool use_encoded_filters = true;   // evaluate on dictionary codes
  bool use_group_filter = true;      // whole-condition eval on wide passes
  bool adaptive_reorder = true;      // (1-P)/cost clause ordering

  /// An index clause is disabled when it needs more key probes than this
  /// fraction of the segment's rows (Section 5.1: IN-lists with too many
  /// keys fall back to scanning).
  double max_index_key_fraction = 0.05;

  /// Rows per vectorized block; selectivity feedback flows block to block.
  size_t block_rows = 4096;
};

struct ScanStats {
  uint64_t segments_total = 0;
  uint64_t segments_skipped_zone = 0;
  uint64_t segments_skipped_index = 0;
  uint64_t rows_considered = 0;
  uint64_t rows_output = 0;
  uint64_t index_filter_uses = 0;
  uint64_t encoded_filter_uses = 0;
  uint64_t group_filter_uses = 0;
  uint64_t regular_filter_uses = 0;
};

/// One emitted batch: the projected columns (aligned) plus each row's
/// storage location (for UPDATE/DELETE driving).
struct ScanBatch {
  std::vector<ColumnVector> columns;   // size == projection size
  std::vector<RowLocation> locations;  // aligned with rows
  size_t num_rows = 0;
};

/// Adaptive vectorized scan over one unified table at a snapshot (paper
/// Section 5): segment skipping via secondary indexes then zone maps,
/// per-segment filter-strategy selection (regular / encoded / group /
/// index), and dynamic clause reordering by (1 - P) / cost with
/// selectivity estimates fed back from previous blocks.
class TableScanner {
 public:
  TableScanner(UnifiedTable* table, ScanOptions options);

  /// Runs the scan. `cb` is invoked per batch and returns false to stop
  /// early (LIMIT). Thread-compatible: create one scanner per thread.
  Status Scan(TxnId txn, Timestamp read_ts,
              const std::function<bool(const ScanBatch&)>& cb);

  const ScanStats& stats() const { return stats_; }

 private:
  /// Running per-clause estimates (selectivity and per-row cost) shared
  /// across segments and blocks of one scan.
  struct ClauseStats {
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    double cost_ns_per_row = 50.0;  // prior
    double selectivity() const {
      return rows_in == 0 ? 0.5
                          : static_cast<double>(rows_out) /
                                static_cast<double>(rows_in);
    }
  };

  Status ScanSegment(const SegmentSnapshot& snap,
                     const std::function<bool(const ScanBatch&)>& cb,
                     bool* stop);

  /// Evaluates `node` over `rows` (ascending offsets within the segment),
  /// returning the surviving offsets.
  Result<std::vector<uint32_t>> EvalNode(const FilterNode* node,
                                         const Segment& segment,
                                         std::vector<uint32_t> rows);

  Result<std::vector<uint32_t>> EvalLeaf(const FilterNode* leaf,
                                         const Segment& segment,
                                         std::vector<uint32_t> rows);

  bool ZoneMapPasses(const FilterNode* conjunct, const Segment& segment);

  /// Index-driven base selection for the segment; returns true when an
  /// index was applied (and fills *rows), false to scan all rows.
  Result<bool> IndexBaseSelection(const Segment& segment,
                                  const std::vector<const FilterNode*>&
                                      conjuncts,
                                  std::vector<const FilterNode*>* consumed,
                                  std::vector<uint32_t>* rows);

  Status EmitRows(const SegmentSnapshot& snap,
                  const std::vector<uint32_t>& rows,
                  const std::function<bool(const ScanBatch&)>& cb,
                  bool* stop);

  ClauseStats& StatsFor(const FilterNode* node) { return clause_stats_[node]; }

  UnifiedTable* table_;
  ScanOptions options_;
  std::vector<int> projection_;
  ScanStats stats_;
  std::unordered_map<const FilterNode*, ClauseStats> clause_stats_;
};

}  // namespace s2

#endif  // S2_EXEC_TABLE_SCANNER_H_
