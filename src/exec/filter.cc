#include "exec/filter.h"

namespace s2 {

bool FilterNode::EvalValue(const Value& v) const {
  if (v.is_null()) return false;  // SQL semantics: NULL fails predicates
  if (is_in) {
    for (const Value& candidate : in_list) {
      if (v.Compare(candidate) == 0) return true;
    }
    return false;
  }
  if (is_between) {
    return v.Compare(value) >= 0 && v.Compare(value2) <= 0;
  }
  int cmp = v.Compare(value);
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool FilterNode::EvalRow(const Row& row) const {
  switch (kind) {
    case Kind::kLeaf:
      return EvalValue(row[col]);
    case Kind::kAnd:
      for (const auto& child : children) {
        if (!child->EvalRow(row)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& child : children) {
        if (child->EvalRow(row)) return true;
      }
      return false;
  }
  return false;
}

std::unique_ptr<FilterNode> FilterNode::Clone() const {
  auto node = std::make_unique<FilterNode>();
  node->kind = kind;
  node->col = col;
  node->op = op;
  node->value = value;
  node->value2 = value2;
  node->in_list = in_list;
  node->is_in = is_in;
  node->is_between = is_between;
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

std::unique_ptr<FilterNode> FilterEq(int col, Value v) {
  return FilterCmp(col, CmpOp::kEq, std::move(v));
}

std::unique_ptr<FilterNode> FilterCmp(int col, CmpOp op, Value v) {
  auto node = std::make_unique<FilterNode>();
  node->kind = FilterNode::Kind::kLeaf;
  node->col = col;
  node->op = op;
  node->value = std::move(v);
  return node;
}

std::unique_ptr<FilterNode> FilterBetween(int col, Value lo, Value hi) {
  auto node = std::make_unique<FilterNode>();
  node->kind = FilterNode::Kind::kLeaf;
  node->col = col;
  node->is_between = true;
  node->value = std::move(lo);
  node->value2 = std::move(hi);
  return node;
}

std::unique_ptr<FilterNode> FilterIn(int col, std::vector<Value> values) {
  auto node = std::make_unique<FilterNode>();
  node->kind = FilterNode::Kind::kLeaf;
  node->col = col;
  node->is_in = true;
  node->in_list = std::move(values);
  return node;
}

std::unique_ptr<FilterNode> FilterAnd(
    std::vector<std::unique_ptr<FilterNode>> children) {
  auto node = std::make_unique<FilterNode>();
  node->kind = FilterNode::Kind::kAnd;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<FilterNode> FilterOr(
    std::vector<std::unique_ptr<FilterNode>> children) {
  auto node = std::make_unique<FilterNode>();
  node->kind = FilterNode::Kind::kOr;
  node->children = std::move(children);
  return node;
}

void CollectTopLevelConjuncts(const FilterNode* node,
                              std::vector<const FilterNode*>* out) {
  if (node == nullptr) return;
  if (node->kind == FilterNode::Kind::kAnd) {
    for (const auto& child : node->children) {
      CollectTopLevelConjuncts(child.get(), out);
    }
  } else {
    out->push_back(node);
  }
}

}  // namespace s2
