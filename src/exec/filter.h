#ifndef S2_EXEC_FILTER_H_
#define S2_EXEC_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "encoding/column_vector.h"

namespace s2 {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A filter condition tree: AND/OR internal nodes over leaf clauses of the
/// form `col <op> constant`, `col IN (...)`, `col BETWEEN a AND b`. This is
/// the unit the adaptive executor reorders and costs (paper Section 5.2:
/// "S2DB represents the filter condition as a tree and reorders each
/// intermediate AND/OR node in the tree separately").
struct FilterNode {
  enum class Kind { kLeaf, kAnd, kOr };

  Kind kind = Kind::kLeaf;

  // Leaf payload.
  int col = 0;
  CmpOp op = CmpOp::kEq;
  Value value;             // comparison constant / BETWEEN low
  Value value2;            // BETWEEN high
  std::vector<Value> in_list;
  bool is_in = false;
  bool is_between = false;

  std::vector<std::unique_ptr<FilterNode>> children;

  /// Row-at-a-time evaluation (rowstore side and group filters).
  bool EvalRow(const Row& row) const;

  /// Evaluates this leaf against a single value.
  bool EvalValue(const Value& v) const;

  /// Deep copy.
  std::unique_ptr<FilterNode> Clone() const;
};

// Construction helpers.
std::unique_ptr<FilterNode> FilterEq(int col, Value v);
std::unique_ptr<FilterNode> FilterCmp(int col, CmpOp op, Value v);
std::unique_ptr<FilterNode> FilterBetween(int col, Value lo, Value hi);
std::unique_ptr<FilterNode> FilterIn(int col, std::vector<Value> values);
std::unique_ptr<FilterNode> FilterAnd(
    std::vector<std::unique_ptr<FilterNode>> children);
std::unique_ptr<FilterNode> FilterOr(
    std::vector<std::unique_ptr<FilterNode>> children);

/// Collects the leaf clauses of a top-level AND (a single leaf counts as a
/// one-clause AND). Used to find index-eligible equality clauses.
void CollectTopLevelConjuncts(const FilterNode* node,
                              std::vector<const FilterNode*>* out);

}  // namespace s2

#endif  // S2_EXEC_FILTER_H_
