#include "exec/table_scanner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/profile.h"
#include "index/inverted_index.h"
#include "index/postings.h"

namespace s2 {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Lower clamp for measured clause cost in the (1 - P) / cost ordering.
/// Vectorized clauses routinely cost well under 1 ns/row; clamping at 1.0
/// (the old behaviour) collapsed every such clause to the same cost and
/// made the ordering selectivity-only. A small epsilon keeps the division
/// safe without erasing real sub-nanosecond cost differences.
constexpr double kMinCostNsPerRow = 1e-3;

/// Relative change in a clause's (1 - P) / cost ratio that triggers
/// re-sorting the residual clause order. Below this the previous order is
/// kept, so the sort no longer runs once per row block.
constexpr double kResortThreshold = 0.3;

void PublishScanStats(const ScanStats& s) {
  S2_COUNTER("s2_scan_segments_total").Add(s.segments_total);
  S2_COUNTER("s2_scan_segments_skipped_zone_total")
      .Add(s.segments_skipped_zone);
  S2_COUNTER("s2_scan_segments_skipped_index_total")
      .Add(s.segments_skipped_index);
  S2_COUNTER("s2_scan_rows_considered_total").Add(s.rows_considered);
  S2_COUNTER("s2_scan_rows_output_total").Add(s.rows_output);
  S2_COUNTER("s2_scan_index_filter_total").Add(s.index_filter_uses);
  S2_COUNTER("s2_scan_encoded_filter_total").Add(s.encoded_filter_uses);
  S2_COUNTER("s2_scan_group_filter_total").Add(s.group_filter_uses);
  S2_COUNTER("s2_scan_regular_filter_total").Add(s.regular_filter_uses);
  S2_COUNTER("s2_scan_reorder_sorts_total").Add(s.reorder_sorts);
}

}  // namespace

TableScanner::TableScanner(UnifiedTable* table, ScanOptions options)
    : table_(table), options_(std::move(options)) {
  if (options_.projection.empty()) {
    for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
      projection_.push_back(static_cast<int>(c));
    }
  } else {
    projection_ = options_.projection;
  }
}

void TableScanner::FinishScan(const ScanStats& scan_stats) {
  stats_.Merge(scan_stats);
  PublishScanStats(scan_stats);
  // Attribute this scan's counters to the ambient profile span (the scan
  // span opened in Scan() is still the current node at every call site).
  if (ProfileCollector::Current().collector != nullptr) {
    const ScanStats& s = scan_stats;
    ProfileCollector::CountHere("segments",
                                static_cast<int64_t>(s.segments_total));
    ProfileCollector::CountHere(
        "segments_skipped_zone",
        static_cast<int64_t>(s.segments_skipped_zone));
    ProfileCollector::CountHere(
        "segments_skipped_index",
        static_cast<int64_t>(s.segments_skipped_index));
    ProfileCollector::CountHere("rows_considered",
                                static_cast<int64_t>(s.rows_considered));
    ProfileCollector::CountHere("rows_output",
                                static_cast<int64_t>(s.rows_output));
    ProfileCollector::CountHere("index_filter_uses",
                                static_cast<int64_t>(s.index_filter_uses));
    ProfileCollector::CountHere("encoded_filter_uses",
                                static_cast<int64_t>(s.encoded_filter_uses));
    ProfileCollector::CountHere("group_filter_uses",
                                static_cast<int64_t>(s.group_filter_uses));
    ProfileCollector::CountHere("regular_filter_uses",
                                static_cast<int64_t>(s.regular_filter_uses));
    ProfileCollector::CountHere("reorder_sorts",
                                static_cast<int64_t>(s.reorder_sorts));
  }
}

Status TableScanner::Scan(TxnId txn, Timestamp read_ts,
                          const std::function<bool(const ScanBatch&)>& cb) {
  S2_COUNTER("s2_scan_total").Add();
  S2_SCOPED_TIMER("s2_scan_ns");
  ProfileSpan scan_span("scan");
  if (scan_span.active()) scan_span.SetDetail("table=" + table_->name());
  bool stop = false;
  WorkerState root;

  // Level 0 rowstore: row-at-a-time filter (it is small by design). Always
  // scanned serially first so rowstore rows precede segment rows
  // deterministically.
  ScanBatch batch;
  for (int c : projection_) {
    batch.columns.emplace_back(table_->schema().column(c).type);
  }
  auto flush_batch = [&]() -> bool {
    if (batch.num_rows == 0) return true;
    root.stats.rows_output += batch.num_rows;
    bool keep_going = cb(batch);
    for (auto& col : batch.columns) col.Clear();
    batch.locations.clear();
    batch.num_rows = 0;
    return keep_going;
  };

  table_->ScanRowstore(txn, read_ts, [&](const Row& row,
                                         const RowLocation& loc) {
    ++root.stats.rows_considered;
    if (options_.filter != nullptr && !options_.filter->EvalRow(row)) {
      return true;
    }
    for (size_t i = 0; i < projection_.size(); ++i) {
      batch.columns[i].Append(row[projection_[i]]);
    }
    batch.locations.push_back(loc);
    ++batch.num_rows;
    if (batch.num_rows >= options_.block_rows) {
      if (!flush_batch()) {
        stop = true;
        return false;
      }
    }
    return true;
  });
  if (!stop && !flush_batch()) stop = true;
  if (Cancelled()) {
    FinishScan(root.stats);
    return Status::Aborted("scan cancelled");
  }
  if (stop) {
    FinishScan(root.stats);
    return Status::OK();
  }

  // Columnstore segments.
  S2_ASSIGN_OR_RETURN(std::vector<SegmentSnapshot> segments,
                      table_->GetSegments(read_ts));
  root.stats.segments_total += segments.size();

  bool parallel = options_.executor != nullptr &&
                  options_.executor->num_threads() > 1 && segments.size() > 1;
  if (parallel) {
    Status s = ScanSegmentsParallel(segments, cb, root);
    FinishScan(root.stats);
    return s;
  }

  BatchSink serial_sink = [&](ScanBatch&& b) { return cb(b); };
  for (const SegmentSnapshot& snap : segments) {
    if (Cancelled()) {
      FinishScan(root.stats);
      return Status::Aborted("scan cancelled");
    }
    Status s = ScanSegment(root, snap, serial_sink, &stop);
    if (!s.ok()) {
      FinishScan(root.stats);
      return s;
    }
    if (stop) break;
  }
  FinishScan(root.stats);
  return Status::OK();
}

Status TableScanner::ScanSegmentsParallel(
    const std::vector<SegmentSnapshot>& segments,
    const std::function<bool(const ScanBatch&)>& cb, WorkerState& root) {
  // Morsel-parallel scan: segments split into contiguous chunks, one per
  // worker; each worker scans its chunk with private adaptive state and
  // posts per-segment batch lists to a sequencer that delivers them to the
  // callback in segment order (single-threaded, deterministic).
  struct SegmentResult {
    std::vector<ScanBatch> batches;
    bool done = false;
  };
  const size_t num_segments = segments.size();
  size_t workers =
      std::min(options_.executor->num_threads(), num_segments);
  std::vector<WorkerState> states(workers);
  std::vector<SegmentResult> results(num_segments);
  std::mutex emit_mu;           // guards results/next_emit and the callback
  size_t next_emit = 0;
  std::atomic<bool> hard_stop{false};  // LIMIT hit or delivered error

  // Morsel workers run on pool threads; re-attach them to the scan span so
  // their per-segment profile nodes land under it.
  ProfileCollector::Attachment att = ProfileCollector::Current();
  Status s = options_.executor->ParallelFor(
      workers,
      [&](size_t w) -> Status {
        ProfileScope profile_scope(att.collector, att.node);
        WorkerState& ws = states[w];
        size_t begin = w * num_segments / workers;
        size_t end = (w + 1) * num_segments / workers;
        for (size_t i = begin; i < end; ++i) {
          if (hard_stop.load(std::memory_order_acquire)) return Status::OK();
          if (Cancelled()) return Status::Aborted("scan cancelled");
          std::vector<ScanBatch> local;
          bool seg_stop = false;
          Status seg_status = ScanSegment(
              ws, segments[i],
              [&](ScanBatch&& b) {
                local.push_back(std::move(b));
                // Keep producing unless the whole scan already stopped.
                return !hard_stop.load(std::memory_order_relaxed);
              },
              &seg_stop);
          // Sequencer: record this segment, then deliver every ready
          // segment in order. Errors surface at their in-order position so
          // the scan reports the same (first) error the serial scan would.
          std::lock_guard<std::mutex> lock(emit_mu);
          if (!seg_status.ok()) {
            hard_stop.store(true, std::memory_order_release);
            return seg_status;
          }
          results[i].batches = std::move(local);
          results[i].done = true;
          while (next_emit < num_segments && results[next_emit].done &&
                 !hard_stop.load(std::memory_order_acquire)) {
            for (ScanBatch& b : results[next_emit].batches) {
              if (!cb(b)) {
                hard_stop.store(true, std::memory_order_release);
                break;
              }
            }
            results[next_emit].batches.clear();
            ++next_emit;
          }
        }
        return Status::OK();
      },
      nullptr);
  for (const WorkerState& ws : states) root.stats.Merge(ws.stats);
  return s;
}

bool TableScanner::ZoneMapPasses(const FilterNode* conjunct,
                                 const Segment& segment) {
  if (conjunct->kind != FilterNode::Kind::kLeaf) return true;
  const ColumnStats& stats = segment.stats(conjunct->col);
  if (conjunct->is_in) {
    for (const Value& v : conjunct->in_list) {
      if (stats.MayContain(v)) return true;
    }
    return false;
  }
  if (conjunct->is_between) {
    return stats.MayOverlap(conjunct->value, conjunct->value2);
  }
  switch (conjunct->op) {
    case CmpOp::kEq:
      return stats.MayContain(conjunct->value);
    case CmpOp::kLt:
    case CmpOp::kLe:
      return stats.MayOverlap(Value::Null(), conjunct->value);
    case CmpOp::kGt:
    case CmpOp::kGe:
      return stats.MayOverlap(conjunct->value, Value::Null());
    case CmpOp::kNe:
      return true;
  }
  return true;
}

Result<bool> TableScanner::IndexBaseSelection(
    WorkerState& ws, const Segment& segment,
    const std::vector<const FilterNode*>& conjuncts,
    std::vector<const FilterNode*>* consumed, std::vector<uint32_t>* rows) {
  if (!options_.use_secondary_index) return false;
  // One sorted row-set per index-eligible conjunct; intersected at the end
  // (postings lists are sorted by construction; eq conjuncts could also
  // leapfrog via SeekTo, which LookupSegmentsByCols uses on the OLTP path).
  std::vector<std::vector<uint32_t>> sets;
  for (const FilterNode* leaf : conjuncts) {
    if (leaf->kind != FilterNode::Kind::kLeaf) continue;
    bool eligible =
        leaf->is_in || (!leaf->is_between && leaf->op == CmpOp::kEq);
    if (!eligible) continue;
    size_t num_keys = leaf->is_in ? leaf->in_list.size() : 1;
    // Section 5.1: too many keys relative to the data size makes index
    // probing a loss; dynamically disable the index for this clause.
    if (static_cast<double>(num_keys) >
        options_.max_index_key_fraction * segment.num_rows() + 1) {
      continue;
    }
    auto block = segment.aux_block(InvertedIndexBuilder::BlockName(leaf->col));
    if (!block.ok()) continue;
    S2_ASSIGN_OR_RETURN(InvertedIndexReader reader,
                        InvertedIndexReader::Open(*block));
    std::vector<uint32_t> matched;
    if (leaf->is_in) {
      std::vector<PostingsIterator> per_key;
      for (const Value& v : leaf->in_list) {
        S2_ASSIGN_OR_RETURN(PostingsIterator it, reader.Lookup(v));
        if (it.Valid()) per_key.push_back(std::move(it));
      }
      S2_RETURN_NOT_OK(UnionPostings(std::move(per_key), &matched));
    } else {
      S2_ASSIGN_OR_RETURN(PostingsIterator it, reader.Lookup(leaf->value));
      while (it.Valid()) {
        matched.push_back(it.row());
        it.Next();
      }
    }
    consumed->push_back(leaf);
    sets.push_back(std::move(matched));
    if (sets.back().empty()) break;  // empty intersection; stop probing
  }
  if (sets.empty()) return false;
  *rows = std::move(sets[0]);
  for (size_t i = 1; i < sets.size(); ++i) {
    std::vector<uint32_t> merged;
    std::set_intersection(rows->begin(), rows->end(), sets[i].begin(),
                          sets[i].end(), std::back_inserter(merged));
    *rows = std::move(merged);
  }
  ++ws.stats.index_filter_uses;
  return true;
}

Status TableScanner::ScanSegment(WorkerState& ws, const SegmentSnapshot& snap,
                                 const BatchSink& sink, bool* stop) {
  const Segment& segment = *snap.segment;
  const ScanStats seg_before = ws.stats;  // for the per-segment trace diff
  // The per-segment profile node and trace event share one detail string,
  // so the tree and the trace ring report identical strategy decisions.
  ProfileSpan seg_span("segment");
  const bool annotate = seg_span.active() || TraceBuffer::Global()->enabled();
  auto record_decision = [&seg_span](std::string d) {
    if (TraceBuffer::Global()->enabled()) {
      TraceBuffer::Global()->Emit("scan.segment", d, ScopedTimer::NowNs(), 0);
    }
    if (seg_span.active()) seg_span.SetDetail(std::move(d));
  };
  std::vector<const FilterNode*> conjuncts;
  CollectTopLevelConjuncts(options_.filter, &conjuncts);

  // Step 1 (Section 5.1): segment skipping — zone maps on the conjuncts.
  if (options_.use_zone_maps) {
    for (const FilterNode* conjunct : conjuncts) {
      if (!ZoneMapPasses(conjunct, segment)) {
        ++ws.stats.segments_skipped_zone;
        if (annotate) {
          record_decision("seg=" + std::to_string(snap.id) +
                          " strategy=skip_zone");
        }
        return Status::OK();
      }
    }
  }

  // Step 2: base row selection via the per-segment inverted indexes.
  std::vector<uint32_t> rows;
  std::vector<const FilterNode*> consumed;
  S2_ASSIGN_OR_RETURN(
      bool used_index,
      IndexBaseSelection(ws, segment, conjuncts, &consumed, &rows));
  if (used_index && rows.empty()) {
    ++ws.stats.segments_skipped_index;
    if (annotate) {
      record_decision("seg=" + std::to_string(snap.id) +
                      " strategy=skip_index");
    }
    return Status::OK();
  }
  if (!used_index) {
    rows.resize(segment.num_rows());
    for (uint32_t r = 0; r < segment.num_rows(); ++r) rows[r] = r;
  }
  ws.stats.rows_considered += rows.size();

  // Step 3: drop deleted rows (cheap bit check, never merge-based).
  if (snap.deletes != nullptr) {
    std::vector<uint32_t> live;
    live.reserve(rows.size());
    for (uint32_t r : rows) {
      if (!snap.deletes->Get(r)) live.push_back(r);
    }
    rows = std::move(live);
  }

  // Step 4: residual filter clauses, blockwise with adaptive ordering.
  const FilterNode* filter = options_.filter;
  std::vector<const FilterNode*> residual;
  for (const FilterNode* conjunct : conjuncts) {
    if (std::find(consumed.begin(), consumed.end(), conjunct) ==
        consumed.end()) {
      residual.push_back(conjunct);
    }
  }
  if (filter != nullptr && !residual.empty()) {
    // "Costing is skipped if the filter condition is a conjunction with a
    // selective index filter" — just run the residuals in order.
    bool skip_costing =
        used_index && rows.size() * 20 < segment.num_rows();
    // Order conjuncts by (1 - P) / cost, descending (Section 5.2). The
    // ratios are snapshotted at each sort; the sort re-runs only when a
    // clause's ratio drifts materially from its snapshot, not every block.
    auto ratio_of = [&ws](const FilterNode* n) {
      const ClauseStats& s = ws.StatsFor(n);
      return (1.0 - s.selectivity()) /
             std::max(kMinCostNsPerRow, s.cost_ns_per_row);
    };
    std::vector<double> sorted_ratios;
    auto resort_residual = [&] {
      std::stable_sort(residual.begin(), residual.end(),
                       [&](const FilterNode* a, const FilterNode* b) {
                         return ratio_of(a) > ratio_of(b);
                       });
      sorted_ratios.clear();
      for (const FilterNode* n : residual) {
        sorted_ratios.push_back(ratio_of(n));
      }
      ++ws.stats.reorder_sorts;
    };
    std::vector<uint32_t> selected;
    size_t block = options_.block_rows;
    for (size_t begin = 0; begin < rows.size() && !*stop; begin += block) {
      if (Cancelled()) return Status::Aborted("scan cancelled");
      size_t end = std::min(rows.size(), begin + block);
      std::vector<uint32_t> block_rows(rows.begin() + begin,
                                       rows.begin() + end);
      if (!skip_costing && options_.adaptive_reorder) {
        if (sorted_ratios.empty()) {
          resort_residual();
        } else {
          for (size_t i = 0; i < residual.size(); ++i) {
            double now = ratio_of(residual[i]);
            double ref = std::max(std::abs(sorted_ratios[i]), 1e-12);
            if (std::abs(now - sorted_ratios[i]) / ref > kResortThreshold) {
              resort_residual();
              break;
            }
          }
        }
      }
      // Group filter: when every residual clause is barely selective,
      // evaluating the whole condition at once avoids per-clause overhead.
      bool all_wide = options_.use_group_filter && residual.size() > 1;
      for (const FilterNode* clause : residual) {
        if (ws.StatsFor(clause).rows_in < 512 ||
            ws.StatsFor(clause).selectivity() < 0.75) {
          all_wide = false;
        }
      }
      if (all_wide) {
        ++ws.stats.group_filter_uses;
        std::vector<int> cols_needed;
        for (const FilterNode* clause : residual) {
          std::vector<const FilterNode*> leaves;
          CollectTopLevelConjuncts(clause, &leaves);
          for (const FilterNode* leaf : leaves) {
            if (leaf->kind == FilterNode::Kind::kLeaf) {
              cols_needed.push_back(leaf->col);
            }
          }
        }
        std::sort(cols_needed.begin(), cols_needed.end());
        cols_needed.erase(
            std::unique(cols_needed.begin(), cols_needed.end()),
            cols_needed.end());
        std::unordered_map<int, ColumnVector> decoded;
        for (int c : cols_needed) {
          S2_ASSIGN_OR_RETURN(const ColumnReader* reader, segment.column(c));
          ColumnVector out(table_->schema().column(c).type);
          reader->DecodeRows(block_rows, &out);
          decoded.emplace(c, std::move(out));
        }
        Row probe(table_->schema().num_columns());
        for (size_t i = 0; i < block_rows.size(); ++i) {
          for (int c : cols_needed) probe[c] = decoded.at(c).GetValue(i);
          bool pass = true;
          for (const FilterNode* clause : residual) {
            if (!clause->EvalRow(probe)) {
              pass = false;
              break;
            }
          }
          if (pass) selected.push_back(block_rows[i]);
        }
        continue;
      }
      std::vector<uint32_t> current = std::move(block_rows);
      for (const FilterNode* clause : residual) {
        if (current.empty()) break;
        S2_ASSIGN_OR_RETURN(
            current, EvalNode(ws, clause, segment, std::move(current)));
      }
      selected.insert(selected.end(), current.begin(), current.end());
    }
    rows = std::move(selected);
  }

  // One decision record per scanned segment reconstructs the strategy
  // choices (filter flavors used, reorder sorts) segment by segment, both
  // in the trace ring and on the segment's profile node.
  if (annotate) {
    record_decision(
        "seg=" + std::to_string(snap.id) + " rows_out=" +
        std::to_string(rows.size()) + " index=" + (used_index ? "1" : "0") +
        " encoded=" +
        std::to_string(ws.stats.encoded_filter_uses -
                       seg_before.encoded_filter_uses) +
        " group=" +
        std::to_string(ws.stats.group_filter_uses -
                       seg_before.group_filter_uses) +
        " regular=" +
        std::to_string(ws.stats.regular_filter_uses -
                       seg_before.regular_filter_uses) +
        " sorts=" +
        std::to_string(ws.stats.reorder_sorts - seg_before.reorder_sorts));
  }
  seg_span.Count("rows_out", static_cast<int64_t>(rows.size()));
  return EmitRows(ws, snap, rows, sink, stop);
}

Result<std::vector<uint32_t>> TableScanner::EvalNode(
    WorkerState& ws, const FilterNode* node, const Segment& segment,
    std::vector<uint32_t> rows) {
  switch (node->kind) {
    case FilterNode::Kind::kLeaf:
      return EvalLeaf(ws, node, segment, std::move(rows));
    case FilterNode::Kind::kAnd: {
      std::vector<const FilterNode*> order;
      for (const auto& child : node->children) order.push_back(child.get());
      if (options_.adaptive_reorder) {
        std::stable_sort(order.begin(), order.end(),
                         [&](const FilterNode* a, const FilterNode* b) {
                           const ClauseStats& sa = ws.StatsFor(a);
                           const ClauseStats& sb = ws.StatsFor(b);
                           return (1.0 - sa.selectivity()) /
                                      std::max(kMinCostNsPerRow,
                                               sa.cost_ns_per_row) >
                                  (1.0 - sb.selectivity()) /
                                      std::max(kMinCostNsPerRow,
                                               sb.cost_ns_per_row);
                         });
      }
      for (const FilterNode* child : order) {
        if (rows.empty()) break;
        S2_ASSIGN_OR_RETURN(rows,
                            EvalNode(ws, child, segment, std::move(rows)));
      }
      return rows;
    }
    case FilterNode::Kind::kOr: {
      std::vector<const FilterNode*> order;
      for (const auto& child : node->children) order.push_back(child.get());
      if (options_.adaptive_reorder) {
        // For OR, evaluate the clause that accepts the most rows per unit
        // cost first: accepted rows skip all later clauses.
        std::stable_sort(order.begin(), order.end(),
                         [&](const FilterNode* a, const FilterNode* b) {
                           const ClauseStats& sa = ws.StatsFor(a);
                           const ClauseStats& sb = ws.StatsFor(b);
                           return sa.selectivity() /
                                      std::max(kMinCostNsPerRow,
                                               sa.cost_ns_per_row) >
                                  sb.selectivity() /
                                      std::max(kMinCostNsPerRow,
                                               sb.cost_ns_per_row);
                         });
      }
      std::vector<uint32_t> accepted;
      std::vector<uint32_t> remaining = std::move(rows);
      for (const FilterNode* child : order) {
        if (remaining.empty()) break;
        S2_ASSIGN_OR_RETURN(std::vector<uint32_t> pass,
                            EvalNode(ws, child, segment, remaining));
        std::vector<uint32_t> next_remaining;
        std::set_difference(remaining.begin(), remaining.end(), pass.begin(),
                            pass.end(), std::back_inserter(next_remaining));
        accepted.insert(accepted.end(), pass.begin(), pass.end());
        remaining = std::move(next_remaining);
      }
      std::sort(accepted.begin(), accepted.end());
      return accepted;
    }
  }
  return rows;
}

Result<std::vector<uint32_t>> TableScanner::EvalLeaf(
    WorkerState& ws, const FilterNode* leaf, const Segment& segment,
    std::vector<uint32_t> rows) {
  S2_ASSIGN_OR_RETURN(const ColumnReader* reader, segment.column(leaf->col));
  ClauseStats& stats = ws.StatsFor(leaf);
  uint64_t start_ns = NowNs();
  std::vector<uint32_t> out;
  out.reserve(rows.size());

  const ColumnVector* dict = reader->dictionary();
  bool encoded = options_.use_encoded_filters && dict != nullptr &&
                 dict->size() < rows.size();
  if (encoded) {
    // Encoded filter (Section 5.2): evaluate once per dictionary entry,
    // then test rows via their codes without decoding.
    ++ws.stats.encoded_filter_uses;
    std::vector<char> pass(dict->size());
    for (size_t d = 0; d < dict->size(); ++d) {
      pass[d] = leaf->EvalValue(dict->GetValue(d)) ? 1 : 0;
    }
    for (uint32_t r : rows) {
      if (reader->IsNull(r)) continue;
      if (pass[reader->CodeAt(r)]) out.push_back(r);
    }
  } else {
    // Regular filter: selectively decode only the candidate rows (late
    // materialization) and evaluate.
    ++ws.stats.regular_filter_uses;
    ColumnVector values(reader->type());
    reader->DecodeRows(rows, &values);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (leaf->EvalValue(values.GetValue(i))) out.push_back(rows[i]);
    }
  }

  uint64_t elapsed = NowNs() - start_ns;
  stats.rows_in += rows.size();
  stats.rows_out += out.size();
  if (!rows.empty()) {
    double per_row = static_cast<double>(elapsed) /
                     static_cast<double>(rows.size());
    // Exponential moving average keeps the estimate per-segment adaptive.
    stats.cost_ns_per_row = 0.7 * stats.cost_ns_per_row + 0.3 * per_row;
  }
  return out;
}

Status TableScanner::EmitRows(WorkerState& ws, const SegmentSnapshot& snap,
                              const std::vector<uint32_t>& rows,
                              const BatchSink& sink, bool* stop) {
  if (rows.empty()) return Status::OK();
  size_t block = options_.block_rows;
  for (size_t begin = 0; begin < rows.size() && !*stop; begin += block) {
    size_t end = std::min(rows.size(), begin + block);
    std::vector<uint32_t> batch_rows(rows.begin() + begin, rows.begin() + end);
    ScanBatch batch;
    batch.num_rows = batch_rows.size();
    for (int c : projection_) {
      S2_ASSIGN_OR_RETURN(const ColumnReader* reader, snap.segment->column(c));
      ColumnVector out(table_->schema().column(c).type);
      reader->DecodeRows(batch_rows, &out);
      batch.columns.push_back(std::move(out));
    }
    batch.locations.reserve(batch_rows.size());
    for (uint32_t r : batch_rows) {
      RowLocation loc;
      loc.in_rowstore = false;
      loc.segment_id = snap.id;
      loc.row_offset = r;
      batch.locations.push_back(loc);
    }
    ws.stats.rows_output += batch.num_rows;
    if (!sink(std::move(batch))) *stop = true;
  }
  return Status::OK();
}

}  // namespace s2
