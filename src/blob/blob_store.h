#ifndef S2_BLOB_BLOB_STORE_H_
#define S2_BLOB_BLOB_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2 {

class Env;

/// Counters every BlobStore maintains. Benchmarks read these to show the
/// commit path performs zero blob writes (paper Section 3.1).
struct BlobStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> bytes_uploaded{0};
  std::atomic<uint64_t> bytes_downloaded{0};
};

/// Abstraction of a cloud blob store (S3-like): immutable puts of whole
/// objects, whole-object gets, listing by prefix. High durability, *lower*
/// availability — implementations support injected outages so tests can
/// show steady-state workloads survive blob unavailability when reads stay
/// within the cached working set.
///
/// The public operations are non-virtual wrappers that maintain BlobStats
/// and the process-wide metrics (s2_blob_put_ns / s2_blob_get_ns latency
/// histograms, byte and error counters) uniformly across backends;
/// implementations override the Do* hooks.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  Status Put(const std::string& key, const std::string& data);
  Result<std::string> Get(const std::string& key);
  Status Delete(const std::string& key);
  Result<std::vector<std::string>> List(const std::string& prefix);
  bool Exists(const std::string& key);

  const BlobStats& stats() const { return stats_; }

 protected:
  virtual Status DoPut(const std::string& key, const std::string& data) = 0;
  virtual Result<std::string> DoGet(const std::string& key) = 0;
  virtual Status DoDelete(const std::string& key) = 0;
  virtual Result<std::vector<std::string>> DoList(
      const std::string& prefix) = 0;
  virtual bool DoExists(const std::string& key) = 0;

  BlobStats stats_;
};

/// In-memory blob store with fault and latency injection. The default
/// backend for tests and benchmarks.
class MemBlobStore : public BlobStore {
 public:
  MemBlobStore() = default;

  /// Simulated outage: every operation returns Unavailable while false.
  void set_available(bool available) { available_ = available; }

  /// Injected per-operation latency in microseconds (simulates network
  /// round-trips; lets benches show what synchronous blob commit costs).
  void set_put_latency_us(uint64_t us) { put_latency_us_ = us; }
  void set_get_latency_us(uint64_t us) { get_latency_us_ = us; }

  /// Scripted error schedule: the i-th upcoming Put fails iff schedule[i]
  /// is true. Once the schedule is exhausted Puts succeed again. Replaces
  /// any previous Put schedule.
  void ScriptPutFailures(std::vector<bool> schedule);
  /// Convenience: fail the next `n` Puts, then succeed.
  void FailNextPuts(size_t n);
  /// Same, for Get.
  void ScriptGetFailures(std::vector<bool> schedule);
  void FailNextGets(size_t n);

 protected:
  Status DoPut(const std::string& key, const std::string& data) override;
  Result<std::string> DoGet(const std::string& key) override;
  Status DoDelete(const std::string& key) override;
  Result<std::vector<std::string>> DoList(const std::string& prefix) override;
  bool DoExists(const std::string& key) override;

 private:
  Status CheckAvailable() const;
  /// Pops the front of `schedule`; true means this call must fail.
  static bool ConsumeScript(std::deque<bool>* schedule);

  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
  std::deque<bool> put_failures_;
  std::deque<bool> get_failures_;
  std::atomic<bool> available_{true};
  std::atomic<uint64_t> put_latency_us_{0};
  std::atomic<uint64_t> get_latency_us_{0};
};

/// Blob store backed by a local directory. Keys map to file paths under the
/// root; used by examples so blob contents are inspectable on disk.
class LocalDirBlobStore : public BlobStore {
 public:
  /// `env` null means Env::Default(); tests pass a FaultInjectionEnv.
  explicit LocalDirBlobStore(std::string root, Env* env = nullptr);

 protected:
  Status DoPut(const std::string& key, const std::string& data) override;
  Result<std::string> DoGet(const std::string& key) override;
  Status DoDelete(const std::string& key) override;
  Result<std::vector<std::string>> DoList(const std::string& prefix) override;
  bool DoExists(const std::string& key) override;

 private:
  std::string PathFor(const std::string& key) const;
  std::string root_;
  Env* env_;
};

}  // namespace s2

#endif  // S2_BLOB_BLOB_STORE_H_
