#ifndef S2_BLOB_DATA_FILE_STORE_H_
#define S2_BLOB_DATA_FILE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blob/blob_store.h"
#include "common/executor.h"
#include "common/result.h"

namespace s2 {

struct DataFileStoreOptions {
  /// Key prefix within the blob store (e.g. "db1/part3/files/").
  std::string blob_prefix;
  /// When non-empty, files are also persisted to this local directory
  /// ("local disk"), so a process restart recovers them without the blob
  /// store. Evicting a cold file removes its local copy too.
  std::string local_dir;
  /// Max bytes of file content kept in the local cache. Files that are not
  /// yet uploaded are pinned and never evicted regardless of this limit.
  size_t local_cache_bytes = 256ull << 20;
  /// When false, uploads only happen via DrainUploads() (deterministic
  /// tests); when true upload tasks are scheduled on `executor` (or the
  /// process-wide Executor::Default() when null) as files are written.
  bool background_uploads = true;
  /// Shared executor for background upload work. Not owned; must outlive
  /// the store. Null = Executor::Default().
  Executor* executor = nullptr;
  /// Filesystem for the local tier. Not owned; null = Env::Default().
  /// Tests inject a FaultInjectionEnv to fail segment-file writes.
  Env* env = nullptr;
};

struct DataFileStats {
  std::atomic<uint64_t> local_hits{0};
  std::atomic<uint64_t> blob_fetches{0};
  std::atomic<uint64_t> files_written{0};
  std::atomic<uint64_t> files_uploaded{0};
  std::atomic<uint64_t> files_evicted{0};
  /// Readers that joined another reader's in-flight fetch of the same file
  /// instead of issuing their own (single-flight coalescing).
  std::atomic<uint64_t> coalesced_reads{0};
  /// Failed uploads put back on the queue for a later retry.
  std::atomic<uint64_t> upload_retries{0};
};

/// Manages the immutable columnstore data files of one partition across the
/// storage hierarchy: local cache ("local disk") and blob storage.
///
/// Paper Section 3.1 semantics:
///  - Write() stores the file locally and schedules an asynchronous upload;
///    the caller's commit never waits for the blob store.
///  - Read() serves from local cache; on miss it fetches from blob storage
///    on demand and re-caches.
///  - Cold files (uploaded + least recently used) are evicted from local
///    storage when the cache exceeds its budget, letting the partition hold
///    more data than fits on local disk.
///  - Remove() drops a file from local storage only; blob history is
///    retained, enabling point-in-time restore without explicit backups.
///
/// Background uploads run as tasks on the shared Executor (no private
/// thread): at most one "pump" task exists per store at a time; it drains
/// the upload queue and exits, and is rescheduled by the next Write. On an
/// upload error the pump parks (the file stays pinned and queued) until the
/// next Write or DrainUploads retries.
///
/// Works without a blob store too (`blob == nullptr`): then it behaves like
/// plain local storage and never evicts.
class DataFileStore {
 public:
  DataFileStore(BlobStore* blob, DataFileStoreOptions options);
  ~DataFileStore();

  DataFileStore(const DataFileStore&) = delete;
  DataFileStore& operator=(const DataFileStore&) = delete;

  /// Adds a newly created immutable file. Local-only until the async upload
  /// completes.
  Status Write(const std::string& name,
               std::shared_ptr<const std::string> data);

  /// Hook invoked on every Write: the cluster uses it to replicate data
  /// files to HA replicas as soon as they are written ("each file is
  /// replicated as soon as it's written on the master without need to wait
  /// for the transaction to commit", paper Section 3).
  using FileHook =
      std::function<void(const std::string&, std::shared_ptr<const std::string>)>;
  void SetFileHook(FileHook hook);

  /// Returns the file contents from local cache or blob storage.
  Result<std::shared_ptr<const std::string>> Read(const std::string& name);

  /// Whether the file is currently resident in local cache.
  bool IsLocal(const std::string& name) const;

  /// Drops the local copy (segment merged away / table dropped). The blob
  /// object is kept as history.
  Status Remove(const std::string& name);

  /// Blocks until every pending upload has been attempted once; returns the
  /// first upload error if any (files stay pinned and queued on failure).
  /// The caller's thread participates in draining the queue, so this is
  /// safe to call from an executor task (it never waits on a task that
  /// cannot be scheduled).
  Status DrainUploads();

  /// Number of files written but not yet uploaded.
  size_t PendingUploads() const;

  /// Age (env clock) of the oldest file still waiting for its blob upload;
  /// 0 when nothing is pending. Ages survive retry re-queues — the clock
  /// starts at the original enqueue — so a stuck blob store shows as
  /// monotonically growing age. This feeds the upload_queue_age watchdog.
  uint64_t OldestPendingUploadAgeNs() const;

  /// Evicts uploaded cold files until the cache is within its budget. Runs
  /// automatically after writes/uploads; exposed for tests.
  void EvictCold();

  /// Iterates every locally resident file (used to seed a new replica when
  /// no blob store exists to bootstrap from).
  void ForEachFile(
      const std::function<void(const std::string&,
                               std::shared_ptr<const std::string>)>& cb) const;

  const DataFileStats& stats() const { return stats_; }
  BlobStore* blob() const { return blob_; }
  const std::string& blob_prefix() const { return options_.blob_prefix; }

  /// Bytes of file content currently resident in the in-memory cache.
  size_t CachedBytes() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> data;  // null when evicted
    bool uploaded = false;
    std::list<std::string>::iterator lru_it;  // valid when data != null
  };

  /// Single-flight state for one cold read: the first reader (the leader)
  /// performs the disk/blob fetch while later readers of the same file wait
  /// on `cv` — without holding mu_, so cache hits on other files proceed
  /// while a slow blob backend is mid-fetch.
  struct InflightFetch {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;  // fetch outcome; data valid iff ok
    std::shared_ptr<const std::string> data;
  };

  std::string BlobKey(const std::string& name) const {
    return options_.blob_prefix + name;
  }
  /// Submits the upload pump to the executor if it is not already queued
  /// or running. mu_ must be held.
  void SchedulePumpLocked();
  /// The executor task: drains the upload queue, then exits. At most one
  /// instance exists at a time (pump_scheduled_).
  void PumpUploads();
  Status UploadOne(const std::string& name);
  void TouchLocked(const std::string& name, Entry* entry);
  void EvictColdLocked();

  BlobStore* blob_;  // not owned; may be null
  DataFileStoreOptions options_;
  DataFileStats stats_;
  Executor* exec_ = nullptr;  // non-null iff background uploads are on
  Env* env_ = nullptr;        // resolved from options_.env in the ctor

  /// The leader's fetch for `name`; called without mu_ held.
  Result<std::shared_ptr<const std::string>> FetchAndInsert(
      const std::string& name);

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  std::unordered_map<std::string, Entry> files_;
  std::unordered_map<std::string, std::shared_ptr<InflightFetch>> inflight_;
  std::list<std::string> lru_;  // front = most recent
  std::deque<std::string> upload_queue_;
  /// First-enqueue timestamp per pending upload (kept across retries,
  /// erased on upload success / Remove).
  std::unordered_map<std::string, uint64_t> upload_enqueued_ns_;
  size_t cached_bytes_ = 0;
  FileHook file_hook_;
  bool shutdown_ = false;
  bool pump_scheduled_ = false;  // a pump task is queued or running
  size_t uploads_inflight_ = 0;  // UploadOne calls currently executing
  Status last_upload_error_;
};

}  // namespace s2

#endif  // S2_BLOB_DATA_FILE_STORE_H_
