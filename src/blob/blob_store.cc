#include "blob/blob_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "common/env.h"

namespace s2 {

namespace {
void MaybeSleepUs(uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}
}  // namespace

// --- MemBlobStore ---

Status MemBlobStore::CheckAvailable() const {
  if (!available_.load()) {
    return Status::Unavailable("blob store outage (injected)");
  }
  return Status::OK();
}

bool MemBlobStore::ConsumeScript(std::deque<bool>* schedule) {
  if (schedule->empty()) return false;
  bool fail = schedule->front();
  schedule->pop_front();
  return fail;
}

void MemBlobStore::ScriptPutFailures(std::vector<bool> schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  put_failures_.assign(schedule.begin(), schedule.end());
}

void MemBlobStore::FailNextPuts(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  put_failures_.assign(n, true);
}

void MemBlobStore::ScriptGetFailures(std::vector<bool> schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  get_failures_.assign(schedule.begin(), schedule.end());
}

void MemBlobStore::FailNextGets(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  get_failures_.assign(n, true);
}

Status MemBlobStore::Put(const std::string& key, const std::string& data) {
  S2_RETURN_NOT_OK(CheckAvailable());
  MaybeSleepUs(put_latency_us_.load());
  std::lock_guard<std::mutex> lock(mu_);
  if (ConsumeScript(&put_failures_)) {
    return Status::Unavailable("blob put failure (scripted): " + key);
  }
  objects_[key] = data;
  stats_.puts.fetch_add(1);
  stats_.bytes_uploaded.fetch_add(data.size());
  return Status::OK();
}

Result<std::string> MemBlobStore::Get(const std::string& key) {
  S2_RETURN_NOT_OK(CheckAvailable());
  MaybeSleepUs(get_latency_us_.load());
  std::lock_guard<std::mutex> lock(mu_);
  if (ConsumeScript(&get_failures_)) {
    return Status::Unavailable("blob get failure (scripted): " + key);
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no blob object " + key);
  stats_.gets.fetch_add(1);
  stats_.bytes_downloaded.fetch_add(it->second.size());
  return it->second;
}

Status MemBlobStore::Delete(const std::string& key) {
  S2_RETURN_NOT_OK(CheckAvailable());
  std::lock_guard<std::mutex> lock(mu_);
  stats_.deletes.fetch_add(1);
  objects_.erase(key);
  return Status::OK();
}

Result<std::vector<std::string>> MemBlobStore::List(
    const std::string& prefix) {
  S2_RETURN_NOT_OK(CheckAvailable());
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

bool MemBlobStore::Exists(const std::string& key) {
  if (!available_.load()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.count(key) > 0;
}

// --- LocalDirBlobStore ---

LocalDirBlobStore::LocalDirBlobStore(std::string root, Env* env)
    : root_(std::move(root)), env_(env != nullptr ? env : Env::Default()) {
  (void)env_->CreateDirs(root_);
}

std::string LocalDirBlobStore::PathFor(const std::string& key) const {
  // Keys may contain '/', which maps to subdirectories.
  return root_ + "/" + key;
}

Status LocalDirBlobStore::Put(const std::string& key,
                              const std::string& data) {
  std::string path = PathFor(key);
  auto slash = path.find_last_of('/');
  S2_RETURN_NOT_OK(env_->CreateDirs(path.substr(0, slash)));
  S2_RETURN_NOT_OK(env_->WriteFileAtomic(path, data));
  stats_.puts.fetch_add(1);
  stats_.bytes_uploaded.fetch_add(data.size());
  return Status::OK();
}

Result<std::string> LocalDirBlobStore::Get(const std::string& key) {
  std::string path = PathFor(key);
  if (!env_->FileExists(path)) return Status::NotFound("no blob object " + key);
  S2_ASSIGN_OR_RETURN(std::string data, env_->ReadFileToString(path));
  stats_.gets.fetch_add(1);
  stats_.bytes_downloaded.fetch_add(data.size());
  return data;
}

Status LocalDirBlobStore::Delete(const std::string& key) {
  stats_.deletes.fetch_add(1);
  return env_->RemoveFile(PathFor(key));
}

Result<std::vector<std::string>> LocalDirBlobStore::List(
    const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<std::string> keys;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string rel = fs::relative(it->path(), root_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0) keys.push_back(rel);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool LocalDirBlobStore::Exists(const std::string& key) {
  return env_->FileExists(PathFor(key));
}

}  // namespace s2
