#include "blob/blob_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "common/env.h"
#include "common/metrics.h"

namespace s2 {

namespace {
void MaybeSleepUs(uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}
}  // namespace

// --- BlobStore (instrumented wrappers) ---

Status BlobStore::Put(const std::string& key, const std::string& data) {
  ScopedTimer timer(&S2_HISTOGRAM("s2_blob_put_ns"));
  Status s = DoPut(key, data);
  if (s.ok()) {
    stats_.puts.fetch_add(1);
    stats_.bytes_uploaded.fetch_add(data.size());
    S2_COUNTER("s2_blob_put_total").Add();
    S2_COUNTER("s2_blob_put_bytes_total").Add(data.size());
  } else {
    timer.Cancel();  // keep the success-latency histogram clean
    S2_COUNTER("s2_blob_put_errors_total").Add();
  }
  return s;
}

Result<std::string> BlobStore::Get(const std::string& key) {
  ScopedTimer timer(&S2_HISTOGRAM("s2_blob_get_ns"));
  Result<std::string> r = DoGet(key);
  if (r.ok()) {
    stats_.gets.fetch_add(1);
    stats_.bytes_downloaded.fetch_add(r->size());
    S2_COUNTER("s2_blob_get_total").Add();
    S2_COUNTER("s2_blob_get_bytes_total").Add(r->size());
  } else {
    timer.Cancel();
    S2_COUNTER("s2_blob_get_errors_total").Add();
  }
  return r;
}

Status BlobStore::Delete(const std::string& key) {
  Status s = DoDelete(key);
  if (s.ok()) {
    stats_.deletes.fetch_add(1);
    S2_COUNTER("s2_blob_delete_total").Add();
  }
  return s;
}

Result<std::vector<std::string>> BlobStore::List(const std::string& prefix) {
  return DoList(prefix);
}

bool BlobStore::Exists(const std::string& key) {
  S2_COUNTER("s2_blob_exists_total").Add();
  return DoExists(key);
}

// --- MemBlobStore ---

Status MemBlobStore::CheckAvailable() const {
  if (!available_.load()) {
    return Status::Unavailable("blob store outage (injected)");
  }
  return Status::OK();
}

bool MemBlobStore::ConsumeScript(std::deque<bool>* schedule) {
  if (schedule->empty()) return false;
  bool fail = schedule->front();
  schedule->pop_front();
  return fail;
}

void MemBlobStore::ScriptPutFailures(std::vector<bool> schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  put_failures_.assign(schedule.begin(), schedule.end());
}

void MemBlobStore::FailNextPuts(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  put_failures_.assign(n, true);
}

void MemBlobStore::ScriptGetFailures(std::vector<bool> schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  get_failures_.assign(schedule.begin(), schedule.end());
}

void MemBlobStore::FailNextGets(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  get_failures_.assign(n, true);
}

Status MemBlobStore::DoPut(const std::string& key, const std::string& data) {
  S2_RETURN_NOT_OK(CheckAvailable());
  MaybeSleepUs(put_latency_us_.load());
  std::lock_guard<std::mutex> lock(mu_);
  if (ConsumeScript(&put_failures_)) {
    return Status::Unavailable("blob put failure (scripted): " + key);
  }
  objects_[key] = data;
  return Status::OK();
}

Result<std::string> MemBlobStore::DoGet(const std::string& key) {
  S2_RETURN_NOT_OK(CheckAvailable());
  MaybeSleepUs(get_latency_us_.load());
  std::lock_guard<std::mutex> lock(mu_);
  if (ConsumeScript(&get_failures_)) {
    return Status::Unavailable("blob get failure (scripted): " + key);
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no blob object " + key);
  return it->second;
}

Status MemBlobStore::DoDelete(const std::string& key) {
  S2_RETURN_NOT_OK(CheckAvailable());
  std::lock_guard<std::mutex> lock(mu_);
  objects_.erase(key);
  return Status::OK();
}

Result<std::vector<std::string>> MemBlobStore::DoList(
    const std::string& prefix) {
  S2_RETURN_NOT_OK(CheckAvailable());
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    keys.push_back(it->first);
  }
  return keys;
}

bool MemBlobStore::DoExists(const std::string& key) {
  if (!available_.load()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.count(key) > 0;
}

// --- LocalDirBlobStore ---

LocalDirBlobStore::LocalDirBlobStore(std::string root, Env* env)
    : root_(std::move(root)), env_(env != nullptr ? env : Env::Default()) {
  (void)env_->CreateDirs(root_);
}

std::string LocalDirBlobStore::PathFor(const std::string& key) const {
  // Keys may contain '/', which maps to subdirectories.
  return root_ + "/" + key;
}

Status LocalDirBlobStore::DoPut(const std::string& key,
                              const std::string& data) {
  std::string path = PathFor(key);
  auto slash = path.find_last_of('/');
  S2_RETURN_NOT_OK(env_->CreateDirs(path.substr(0, slash)));
  S2_RETURN_NOT_OK(env_->WriteFileAtomic(path, data));
  return Status::OK();
}

Result<std::string> LocalDirBlobStore::DoGet(const std::string& key) {
  std::string path = PathFor(key);
  if (!env_->FileExists(path)) return Status::NotFound("no blob object " + key);
  S2_ASSIGN_OR_RETURN(std::string data, env_->ReadFileToString(path));
  return data;
}

Status LocalDirBlobStore::DoDelete(const std::string& key) {
  return env_->RemoveFile(PathFor(key));
}

Result<std::vector<std::string>> LocalDirBlobStore::DoList(
    const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<std::string> keys;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string rel = fs::relative(it->path(), root_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0) keys.push_back(rel);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool LocalDirBlobStore::DoExists(const std::string& key) {
  return env_->FileExists(PathFor(key));
}

}  // namespace s2
