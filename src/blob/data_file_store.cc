#include "blob/data_file_store.h"

#include <cassert>

#include "common/env.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/profile.h"

namespace s2 {

DataFileStore::DataFileStore(BlobStore* blob, DataFileStoreOptions options)
    : blob_(blob), options_(std::move(options)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  if (!options_.local_dir.empty()) (void)env_->CreateDirs(options_.local_dir);
  if (blob_ != nullptr && options_.background_uploads) {
    exec_ = options_.executor != nullptr ? options_.executor
                                         : Executor::Default();
  }
}

DataFileStore::~DataFileStore() {
  // No private thread to join; wait for the executor-scheduled pump (if
  // queued or running) to observe shutdown_ and exit, so no task touches
  // this store afterwards.
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  drain_cv_.wait(lock, [this] {
    return !pump_scheduled_ && uploads_inflight_ == 0;
  });
}

void DataFileStore::SetFileHook(FileHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  file_hook_ = std::move(hook);
}

void DataFileStore::SchedulePumpLocked() {
  if (exec_ == nullptr || pump_scheduled_ || shutdown_ ||
      upload_queue_.empty()) {
    return;
  }
  pump_scheduled_ = true;
  if (!exec_->Submit([this] { PumpUploads(); })) pump_scheduled_ = false;
}

void DataFileStore::PumpUploads() {
  for (;;) {
    std::string name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Park on shutdown, an empty queue, or a sticky error (the file was
      // requeued; the next Write or DrainUploads retries).
      if (shutdown_ || upload_queue_.empty() || !last_upload_error_.ok()) {
        pump_scheduled_ = false;
        drain_cv_.notify_all();
        return;
      }
      name = std::move(upload_queue_.front());
      upload_queue_.pop_front();
      ++uploads_inflight_;
    }
    Status s = UploadOne(name);
    std::lock_guard<std::mutex> lock(mu_);
    --uploads_inflight_;
    if (!s.ok()) {
      upload_queue_.push_front(name);
      stats_.upload_retries.fetch_add(1);
      S2_COUNTER("s2_blob_upload_retries_total").Add();
      last_upload_error_ = s;
    }
    if (upload_queue_.empty() || !s.ok()) drain_cv_.notify_all();
  }
}

Status DataFileStore::Write(const std::string& name,
                            std::shared_ptr<const std::string> data) {
  FileHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = file_hook_;
  }
  // Replicate outside the lock: the hook delivers to replica stores.
  if (hook) hook(name, data);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = files_.try_emplace(name);
  if (!inserted && it->second.data != nullptr) {
    return Status::AlreadyExists("data file exists: " + name);
  }
  if (!options_.local_dir.empty()) {
    // Persist to local disk so a process restart recovers the file without
    // the blob store (the paper's local-storage tier).
    Status s = env_->WriteFileAtomic(options_.local_dir + "/" + name, *data);
    if (!s.ok()) {
      if (inserted) files_.erase(it);
      return s;
    }
  }
  cached_bytes_ += data->size();
  S2_GAUGE("s2_cache_bytes").Set(static_cast<int64_t>(cached_bytes_));
  it->second.data = std::move(data);
  it->second.uploaded = false;
  lru_.push_front(name);
  it->second.lru_it = lru_.begin();
  stats_.files_written.fetch_add(1);
  if (blob_ != nullptr) {
    upload_queue_.push_back(name);
    upload_enqueued_ns_.try_emplace(name, env_->NowNs());
    // A retry on a parked error: give the queue another chance.
    last_upload_error_ = Status::OK();
    SchedulePumpLocked();
  }
  EvictColdLocked();
  return Status::OK();
}

Result<std::shared_ptr<const std::string>> DataFileStore::Read(
    const std::string& name) {
  std::shared_ptr<InflightFetch> fetch;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it != files_.end() && it->second.data != nullptr) {
      stats_.local_hits.fetch_add(1);
      S2_COUNTER("s2_cache_mem_hits_total").Add();
      ProfileCollector::CountHere("cache_mem_hits", 1);
      TouchLocked(name, &it->second);
      return it->second.data;
    }
    // Cold read. Single-flight: the first reader of a missing file becomes
    // the leader and performs the fetch; concurrent readers of the same
    // file share its result instead of issuing duplicate blob Gets.
    auto [fit, inserted] = inflight_.try_emplace(name);
    if (inserted) {
      fit->second = std::make_shared<InflightFetch>();
      leader = true;
    }
    fetch = fit->second;
  }

  if (!leader) {
    stats_.coalesced_reads.fetch_add(1);
    S2_COUNTER("s2_cache_wait_total").Add();
    // Wait on the fetch's own mutex/cv — never on mu_ — so a slow blob
    // backend only stalls readers of this file.
    std::unique_lock<std::mutex> flock(fetch->m);
    fetch->cv.wait(flock, [&fetch] { return fetch->done; });
    if (!fetch->status.ok()) return fetch->status;
    return fetch->data;
  }

  auto result = FetchAndInsert(name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(name);
  }
  {
    std::lock_guard<std::mutex> flock(fetch->m);
    fetch->done = true;
    if (result.ok()) {
      fetch->data = *result;
    } else {
      fetch->status = result.status();
    }
  }
  fetch->cv.notify_all();
  return result;
}

Result<std::shared_ptr<const std::string>> DataFileStore::FetchAndInsert(
    const std::string& name) {
  ScopedTimer timer(&S2_HISTOGRAM("s2_cache_fetch_ns"));
  // Memory miss: try the local disk copy, then blob storage (cold data
  // pulled on demand), then re-cache.
  std::string bytes;
  bool have_bytes = false;
  bool from_disk = false;
  if (!options_.local_dir.empty()) {
    std::string path = options_.local_dir + "/" + name;
    if (env_->FileExists(path)) {
      auto local = env_->ReadFileToString(path);
      if (local.ok()) {
        bytes = std::move(*local);
        have_bytes = true;
        from_disk = true;
        stats_.local_hits.fetch_add(1);
        S2_COUNTER("s2_cache_disk_hits_total").Add();
        ProfileCollector::CountHere("cache_disk_hits", 1);
      }
    }
  }
  if (!have_bytes) {
    if (blob_ == nullptr) {
      timer.Cancel();
      return Status::NotFound("no data file " + name);
    }
    S2_COUNTER("s2_cache_misses_total").Add();
    ScopedTimer blob_timer(nullptr);
    auto fetched = blob_->Get(BlobKey(name));
    if (!fetched.ok()) {
      timer.Cancel();
      return fetched.status();
    }
    bytes = std::move(*fetched);
    stats_.blob_fetches.fetch_add(1);
    ProfileCollector::CountHere("blob_fetches", 1);
    ProfileCollector::CountHere("blob_fetch_wait_ns", blob_timer.ElapsedNs());
  }
  // A disk-recovered file may not have been uploaded before the crash;
  // probe blob existence *before* taking mu_ (the probe may be a remote
  // round-trip) so the cache stays responsive during it. A blob-fetched
  // file trivially exists in the blob store; skip the probe.
  bool in_blob = !from_disk;
  if (from_disk && blob_ != nullptr) in_blob = blob_->Exists(BlobKey(name));

  auto data = std::make_shared<const std::string>(std::move(bytes));
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = files_[name];
  if (entry.data == nullptr) {
    entry.data = data;
    entry.uploaded = blob_ != nullptr && in_blob;
    if (blob_ != nullptr && !entry.uploaded) {
      // Re-queue so blob history stays complete.
      upload_queue_.push_back(name);
      upload_enqueued_ns_.try_emplace(name, env_->NowNs());
      SchedulePumpLocked();
    }
    cached_bytes_ += data->size();
    S2_GAUGE("s2_cache_bytes").Set(static_cast<int64_t>(cached_bytes_));
    lru_.push_front(name);
    entry.lru_it = lru_.begin();
    EvictColdLocked();
  }
  return entry.data != nullptr ? entry.data : data;
}

bool DataFileStore::IsLocal(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it != files_.end() && it->second.data != nullptr) return true;
  }
  return !options_.local_dir.empty() &&
         env_->FileExists(options_.local_dir + "/" + name);
}

Status DataFileStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no data file " + name);
  if (it->second.data != nullptr) {
    cached_bytes_ -= it->second.data->size();
    S2_GAUGE("s2_cache_bytes").Set(static_cast<int64_t>(cached_bytes_));
    lru_.erase(it->second.lru_it);
  }
  files_.erase(it);
  upload_enqueued_ns_.erase(name);
  if (!options_.local_dir.empty()) {
    std::string path = options_.local_dir + "/" + name;
    if (env_->FileExists(path)) (void)env_->RemoveFile(path);
  }
  // Blob object intentionally retained: history for PITR.
  return Status::OK();
}

Status DataFileStore::DrainUploads() {
  if (blob_ == nullptr) return Status::OK();
  {
    // A stale error from a parked pump is retried below, not re-reported.
    std::lock_guard<std::mutex> lock(mu_);
    last_upload_error_ = Status::OK();
  }
  // The calling thread drains the queue itself, cooperating with any
  // running pump task through the shared queue. It therefore never blocks
  // on a task that cannot be scheduled (safe inside executor tasks).
  for (;;) {
    std::string name;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!last_upload_error_.ok()) {
        // A concurrent pump attempt failed while we drained.
        Status s = last_upload_error_;
        return s;
      }
      if (upload_queue_.empty()) {
        if (uploads_inflight_ == 0) return Status::OK();
        drain_cv_.wait(lock);  // a pump attempt is mid-flight; let it land
        continue;
      }
      name = std::move(upload_queue_.front());
      upload_queue_.pop_front();
      ++uploads_inflight_;
    }
    Status s = UploadOne(name);
    std::lock_guard<std::mutex> lock(mu_);
    --uploads_inflight_;
    if (!s.ok()) {
      upload_queue_.push_front(name);
      stats_.upload_retries.fetch_add(1);
      S2_COUNTER("s2_blob_upload_retries_total").Add();
      last_upload_error_ = s;
      drain_cv_.notify_all();
      return s;
    }
    if (upload_queue_.empty()) drain_cv_.notify_all();
  }
}

size_t DataFileStore::PendingUploads() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, entry] : files_) {
    if (!entry.uploaded) ++n;
  }
  return n;
}

uint64_t DataFileStore::OldestPendingUploadAgeNs() const {
  // Read the clock before taking mu_ (an injected env clock has its own
  // mutex; keep the two un-nested).
  uint64_t now = env_->NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t oldest = UINT64_MAX;
  for (const auto& [name, ts] : upload_enqueued_ns_) {
    if (ts < oldest) oldest = ts;
  }
  if (oldest == UINT64_MAX || oldest >= now) return 0;
  return now - oldest;
}

void DataFileStore::EvictCold() {
  std::lock_guard<std::mutex> lock(mu_);
  EvictColdLocked();
}

size_t DataFileStore::CachedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

void DataFileStore::ForEachFile(
    const std::function<void(const std::string&,
                             std::shared_ptr<const std::string>)>& cb) const {
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
      resident;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : files_) {
      if (entry.data != nullptr) resident.emplace_back(name, entry.data);
    }
  }
  for (auto& [name, data] : resident) cb(name, data);
}

Status DataFileStore::UploadOne(const std::string& name) {
  std::shared_ptr<const std::string> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(name);
    if (it == files_.end() || it->second.uploaded) return Status::OK();
    data = it->second.data;
  }
  assert(data != nullptr);
  S2_RETURN_NOT_OK(blob_->Put(BlobKey(name), *data));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it != files_.end()) {
    it->second.uploaded = true;
    stats_.files_uploaded.fetch_add(1);
  }
  upload_enqueued_ns_.erase(name);
  EvictColdLocked();
  return Status::OK();
}

void DataFileStore::TouchLocked(const std::string& name, Entry* entry) {
  lru_.erase(entry->lru_it);
  lru_.push_front(name);
  entry->lru_it = lru_.begin();
}

void DataFileStore::EvictColdLocked() {
  if (blob_ == nullptr) return;  // nothing backs the data; never evict
  size_t evicted = 0;
  size_t evicted_bytes = 0;
  auto it = lru_.end();
  while (cached_bytes_ > options_.local_cache_bytes && it != lru_.begin()) {
    --it;
    auto fit = files_.find(*it);
    assert(fit != files_.end());
    if (!fit->second.uploaded || fit->second.data == nullptr) {
      continue;  // pinned until uploaded
    }
    cached_bytes_ -= fit->second.data->size();
    evicted_bytes += fit->second.data->size();
    S2_GAUGE("s2_cache_bytes").Set(static_cast<int64_t>(cached_bytes_));
    S2_COUNTER("s2_cache_evictions_total").Add();
    fit->second.data = nullptr;
    if (!options_.local_dir.empty()) {
      // Cold + uploaded: drop the local-disk copy too; it can always be
      // re-fetched from blob storage.
      std::string path = options_.local_dir + "/" + fit->first;
      if (env_->FileExists(path)) (void)env_->RemoveFile(path);
    }
    stats_.files_evicted.fetch_add(1);
    ++evicted;
    it = lru_.erase(it);
  }
  if (evicted > 0) {
    S2_JOURNAL("storage", "eviction",
               "prefix=" + options_.blob_prefix +
                   " files=" + std::to_string(evicted) +
                   " bytes=" + std::to_string(evicted_bytes) +
                   " cached_bytes=" + std::to_string(cached_bytes_));
  }
}

}  // namespace s2
