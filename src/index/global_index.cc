#include "index/global_index.h"

#include <bit>
#include <unordered_set>

#include "common/coding.h"

namespace s2 {

namespace {

// Slot layout: [occupied u8][hash u64][segment u64][offset u32] = 21 bytes.
constexpr size_t kSlotSize = 21;

void WriteSlot(char* slot, const IndexEntry& entry) {
  slot[0] = 1;
  memcpy(slot + 1, &entry.hash, 8);
  memcpy(slot + 9, &entry.segment_id, 8);
  memcpy(slot + 17, &entry.postings_offset, 4);
}

bool SlotOccupied(const char* slot) { return slot[0] != 0; }

IndexEntry ReadSlot(const char* slot) {
  IndexEntry entry;
  memcpy(&entry.hash, slot + 1, 8);
  memcpy(&entry.segment_id, slot + 9, 8);
  memcpy(&entry.postings_offset, slot + 17, 4);
  return entry;
}

}  // namespace

std::string ImmutableHashTable::Build(
    const std::vector<IndexEntry>& entries,
    std::vector<uint64_t> covered_segments) {
  uint64_t table_size = std::bit_ceil(
      std::max<uint64_t>(4, entries.size() * 2));
  std::string out;
  PutVarint64(&out, entries.size());
  PutVarint64(&out, table_size);
  PutVarint64(&out, covered_segments.size());
  for (uint64_t seg : covered_segments) PutVarint64(&out, seg);

  size_t slots_base = out.size();
  out.resize(slots_base + table_size * kSlotSize, 0);
  char* slots = out.data() + slots_base;
  for (const IndexEntry& entry : entries) {
    uint64_t pos = entry.hash & (table_size - 1);
    while (SlotOccupied(slots + pos * kSlotSize)) {
      pos = (pos + 1) & (table_size - 1);
    }
    WriteSlot(slots + pos * kSlotSize, entry);
  }
  return out;
}

Result<ImmutableHashTable> ImmutableHashTable::Open(
    std::shared_ptr<const std::string> data) {
  ImmutableHashTable table;
  Slice in(*data);
  S2_ASSIGN_OR_RETURN(uint64_t num_entries, GetVarint64(&in));
  S2_ASSIGN_OR_RETURN(table.table_size_, GetVarint64(&in));
  S2_ASSIGN_OR_RETURN(uint64_t num_covered, GetVarint64(&in));
  table.covered_.reserve(num_covered);
  for (uint64_t i = 0; i < num_covered; ++i) {
    S2_ASSIGN_OR_RETURN(uint64_t seg, GetVarint64(&in));
    table.covered_.push_back(seg);
  }
  if (in.size() < table.table_size_ * kSlotSize) {
    return Status::Corruption("truncated hash table slots");
  }
  table.num_entries_ = num_entries;
  table.slots_ = in.data();
  table.data_ = std::move(data);
  return table;
}

void ImmutableHashTable::Lookup(
    uint64_t hash, const std::function<void(const IndexEntry&)>& cb) const {
  if (table_size_ == 0) return;
  uint64_t pos = hash & (table_size_ - 1);
  // Linear probing invariant: all entries colliding on this chain sit
  // between the home slot and the first empty slot.
  for (uint64_t probes = 0; probes < table_size_; ++probes) {
    const char* slot = slots_ + pos * kSlotSize;
    if (!SlotOccupied(slot)) return;
    IndexEntry entry = ReadSlot(slot);
    if (entry.hash == hash) cb(entry);
    pos = (pos + 1) & (table_size_ - 1);
  }
}

void ImmutableHashTable::ForEach(
    const std::function<void(const IndexEntry&)>& cb) const {
  for (uint64_t pos = 0; pos < table_size_; ++pos) {
    const char* slot = slots_ + pos * kSlotSize;
    if (SlotOccupied(slot)) cb(ReadSlot(slot));
  }
}

GlobalIndex::GlobalIndex(size_t max_tables)
    : max_tables_(max_tables == 0 ? 1 : max_tables) {}

void GlobalIndex::AddSegment(uint64_t segment_id,
                             const std::vector<IndexEntry>& entries) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string bytes = ImmutableHashTable::Build(entries, {segment_id});
  auto table =
      ImmutableHashTable::Open(std::make_shared<const std::string>(bytes));
  if (table.ok()) tables_.push_back(std::move(*table));
  if (tables_.size() > max_tables_) MergeAllLocked();
}

void GlobalIndex::Lookup(
    uint64_t hash, const std::function<void(const IndexEntry&)>& cb) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const ImmutableHashTable& table : tables_) {
    table.Lookup(hash, [&](const IndexEntry& entry) {
      // Lazy deletion: skip entries referencing dead segments.
      if (is_live_ == nullptr || is_live_(entry.segment_id)) cb(entry);
    });
  }
}

bool GlobalIndex::Maintain() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bool changed = false;
  if (tables_.size() > max_tables_) {
    MergeAllLocked();
    changed = true;
  }
  // Rewrite any table with >= half of its covered segments dead.
  if (is_live_ != nullptr) {
    for (size_t t = 0; t < tables_.size(); ++t) {
      const auto& covered = tables_[t].covered_segments();
      size_t dead = 0;
      for (uint64_t seg : covered) {
        if (!is_live_(seg)) ++dead;
      }
      if (covered.empty() || dead * 2 < covered.size()) continue;
      std::vector<IndexEntry> live_entries;
      std::vector<uint64_t> live_covered;
      std::unordered_set<uint64_t> seen_segments;
      tables_[t].ForEach([&](const IndexEntry& entry) {
        if (!is_live_(entry.segment_id)) return;
        live_entries.push_back(entry);
        if (seen_segments.insert(entry.segment_id).second) {
          live_covered.push_back(entry.segment_id);
        }
      });
      std::string bytes =
          ImmutableHashTable::Build(live_entries, std::move(live_covered));
      auto table = ImmutableHashTable::Open(
          std::make_shared<const std::string>(bytes));
      if (table.ok()) {
        tables_[t] = std::move(*table);
        changed = true;
      }
    }
  }
  return changed;
}

size_t GlobalIndex::total_entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& table : tables_) n += table.num_entries();
  return n;
}

void GlobalIndex::MergeAllLocked() {
  std::vector<IndexEntry> entries;
  std::vector<uint64_t> covered;
  std::unordered_set<uint64_t> seen_segments;
  for (const ImmutableHashTable& table : tables_) {
    table.ForEach([&](const IndexEntry& entry) {
      // Merging is where lazily-deleted entries are dropped for good.
      if (is_live_ != nullptr && !is_live_(entry.segment_id)) return;
      entries.push_back(entry);
      if (seen_segments.insert(entry.segment_id).second) {
        covered.push_back(entry.segment_id);
      }
    });
  }
  std::string bytes = ImmutableHashTable::Build(entries, std::move(covered));
  auto table =
      ImmutableHashTable::Open(std::make_shared<const std::string>(bytes));
  if (table.ok()) {
    tables_.clear();
    tables_.push_back(std::move(*table));
  }
}

}  // namespace s2
