#ifndef S2_INDEX_POSTINGS_H_
#define S2_INDEX_POSTINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace s2 {

/// Encodes a strictly-increasing list of row offsets (a postings list) with
/// delta varints plus a group skip table. The skip table is what makes the
/// format support *forward seeking* (paper Section 4.1): during a
/// multi-index merge, sections of a long postings list are skipped when the
/// other lists guarantee no match there.
void EncodePostings(const std::vector<uint32_t>& rows, std::string* dst);

/// Streaming cursor over an encoded postings list.
class PostingsIterator {
 public:
  /// `data` must stay alive while the iterator is used.
  static Result<PostingsIterator> Open(Slice data);

  PostingsIterator() = default;

  bool Valid() const { return valid_; }
  uint32_t row() const { return current_; }
  uint32_t count() const { return count_; }

  /// Advances to the next posting.
  void Next();

  /// Advances to the first posting >= target (no-op when already there).
  /// Uses the skip table to jump whole groups.
  void SeekTo(uint32_t target);

  /// Bytes this list occupies (for slicing concatenated lists).
  size_t encoded_size() const { return encoded_size_; }

 private:
  static constexpr uint32_t kGroupSize = 64;

  void LoadGroup(uint32_t group);

  Slice deltas_;           // full delta region
  const char* skip_ = nullptr;  // skip table: (first_row, byte_offset) pairs
  uint32_t count_ = 0;
  uint32_t num_groups_ = 0;
  size_t encoded_size_ = 0;

  uint32_t group_ = 0;     // current group index
  uint32_t in_group_ = 0;  // position within group
  uint32_t index_ = 0;     // global position
  uint32_t current_ = 0;
  Slice cursor_;           // remaining deltas in current group
  bool valid_ = false;
};

/// Intersects iterators (logical AND across index filters), appending
/// matching rows to *out. Uses SeekTo leapfrogging.
Status IntersectPostings(std::vector<PostingsIterator> its,
                         std::vector<uint32_t>* out);

/// Unions iterators (logical OR), appending the sorted distinct rows.
Status UnionPostings(std::vector<PostingsIterator> its,
                     std::vector<uint32_t>* out);

}  // namespace s2

#endif  // S2_INDEX_POSTINGS_H_
