#ifndef S2_INDEX_GLOBAL_INDEX_H_
#define S2_INDEX_GLOBAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2 {

/// One entry of the global secondary index: a value hash mapped to the
/// segment containing the value and the starting offset of its postings
/// list inside that segment's inverted index. Only hashes are stored —
/// column values stay in the per-segment inverted indexes, which keeps LSM
/// merge write-amplification low for wide columns (paper Section 4.1).
struct IndexEntry {
  uint64_t hash = 0;
  uint64_t segment_id = 0;
  uint32_t postings_offset = 0;
};

/// Immutable open-addressing hash table over IndexEntry, the building block
/// of the global index LSM. Linear probing; duplicate hashes (same value in
/// several segments) occupy adjacent probe slots, so one probe chain visit
/// finds them all.
class ImmutableHashTable {
 public:
  /// Serializes `entries` into a table sized 2x entry count (power of two).
  /// `covered_segments` lists every segment id the table references.
  static std::string Build(const std::vector<IndexEntry>& entries,
                           std::vector<uint64_t> covered_segments);

  static Result<ImmutableHashTable> Open(
      std::shared_ptr<const std::string> data);

  /// Invokes cb for every entry whose hash equals `hash` (expected O(1)).
  void Lookup(uint64_t hash,
              const std::function<void(const IndexEntry&)>& cb) const;

  /// Iterates every entry (used by merges).
  void ForEach(const std::function<void(const IndexEntry&)>& cb) const;

  const std::vector<uint64_t>& covered_segments() const { return covered_; }
  size_t num_entries() const { return num_entries_; }

 private:
  std::shared_ptr<const std::string> data_;
  const char* slots_ = nullptr;
  uint64_t table_size_ = 0;
  size_t num_entries_ = 0;
  std::vector<uint64_t> covered_;
};

/// The global secondary index for one column (or column tuple): a special
/// LSM tree whose levels are immutable hash tables. A new single-segment
/// table is appended when a segment is created; background merging keeps
/// the number of tables logarithmic, so a point lookup probes O(log N)
/// tables instead of checking every segment (paper Section 4.1).
///
/// Segment deletion is lazy: lookups skip entries whose segment is no
/// longer live, and a table is rewritten only once at least half of its
/// covered segments are dead.
class GlobalIndex {
 public:
  explicit GlobalIndex(size_t max_tables = 8);

  /// Registers the index entries of a newly created segment as a new
  /// level-0 table, then merges if the LSM is over its run budget.
  void AddSegment(uint64_t segment_id, const std::vector<IndexEntry>& entries);

  /// Sets the liveness oracle used to skip dead segments. Must be set
  /// before lookups when segments can be deleted.
  void set_live_check(std::function<bool(uint64_t)> is_live) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    is_live_ = std::move(is_live);
  }

  /// Invokes cb for every live entry matching `hash`, across all tables.
  void Lookup(uint64_t hash,
              const std::function<void(const IndexEntry&)>& cb) const;

  /// Background maintenance: merges tables beyond the budget and rewrites
  /// tables with >= half dead coverage. Returns true if anything changed.
  bool Maintain();

  size_t num_tables() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return tables_.size();
  }

  size_t total_entries() const;

 private:
  void MergeAllLocked();

  size_t max_tables_;
  mutable std::shared_mutex mu_;
  std::vector<ImmutableHashTable> tables_;  // newest last
  std::function<bool(uint64_t)> is_live_;
};

}  // namespace s2

#endif  // S2_INDEX_GLOBAL_INDEX_H_
