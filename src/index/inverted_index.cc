#include "index/inverted_index.h"

#include <algorithm>
#include <map>

#include "common/coding.h"

namespace s2 {

// Block layout:
//   [num_terms varint]
//   directory: per term (sorted by encoded value):
//     [value length-prefixed][entry_offset varint]
//   [entries_size varint]
//   entries region: per term: [value length-prefixed][postings]
//
// The entry stores the value again so PostingsAt(offset) can verify the
// term without consulting the directory (global-index path, which must
// reject 64-bit hash collisions).

std::string InvertedIndexBuilder::Build(const ColumnVector& column) {
  std::vector<TermInfo> unused;
  return BuildWithTerms(column, &unused);
}

std::string InvertedIndexBuilder::BuildWithTerms(
    const ColumnVector& column, std::vector<TermInfo>* terms) {
  // Group rows by encoded value (ordered map keeps the directory sorted).
  std::map<std::string, std::vector<uint32_t>> groups;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    std::string key;
    column.GetValue(i).EncodeTo(&key);
    groups[key].push_back(static_cast<uint32_t>(i));
  }

  std::string entries;
  std::string directory;
  terms->clear();
  terms->reserve(groups.size());
  for (const auto& [value, rows] : groups) {
    uint32_t offset = static_cast<uint32_t>(entries.size());
    PutLengthPrefixed(&entries, value);
    EncodePostings(rows, &entries);

    PutLengthPrefixed(&directory, value);
    PutVarint64(&directory, offset);

    Slice value_slice(value);
    Value decoded = *Value::DecodeFrom(&value_slice);
    terms->push_back(TermInfo{decoded.Hash(), offset,
                              static_cast<uint32_t>(rows.size())});
  }

  std::string block;
  PutVarint64(&block, groups.size());
  block.append(directory);
  PutVarint64(&block, entries.size());
  block.append(entries);
  return block;
}

Result<InvertedIndexReader> InvertedIndexReader::Open(Slice block) {
  InvertedIndexReader reader;
  Slice in = block;
  S2_ASSIGN_OR_RETURN(uint64_t num_terms, GetVarint64(&in));
  reader.terms_.reserve(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    S2_ASSIGN_OR_RETURN(Slice value, GetLengthPrefixed(&in));
    S2_ASSIGN_OR_RETURN(uint64_t offset, GetVarint64(&in));
    reader.terms_.push_back(
        Term{value.ToString(), static_cast<uint32_t>(offset)});
  }
  S2_ASSIGN_OR_RETURN(uint64_t entries_size, GetVarint64(&in));
  if (in.size() < entries_size) {
    return Status::Corruption("truncated inverted index entries");
  }
  reader.entries_ = Slice(in.data(), entries_size);
  return reader;
}

Result<PostingsIterator> InvertedIndexReader::Lookup(const Value& value) const {
  std::string key;
  value.EncodeTo(&key);
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), key,
      [](const Term& t, const std::string& k) { return t.encoded_value < k; });
  if (it == terms_.end() || it->encoded_value != key) {
    return PostingsIterator();  // invalid: value absent
  }
  return PostingsAt(it->offset, value);
}

void InvertedIndexReader::ForEachTerm(
    const std::function<void(const Value& value, uint32_t offset)>& cb) const {
  for (const Term& term : terms_) {
    Slice in(term.encoded_value);
    auto value = Value::DecodeFrom(&in);
    if (value.ok()) cb(*value, term.offset);
  }
}

Result<PostingsIterator> InvertedIndexReader::PostingsAt(
    uint32_t offset, const Value& expected) const {
  if (offset >= entries_.size()) {
    return Status::Corruption("postings offset out of range");
  }
  Slice in(entries_.data() + offset, entries_.size() - offset);
  S2_ASSIGN_OR_RETURN(Slice stored_value, GetLengthPrefixed(&in));
  std::string expected_key;
  expected.EncodeTo(&expected_key);
  if (stored_value != Slice(expected_key)) {
    // Hash collision in the global index: this postings list belongs to a
    // different value.
    return PostingsIterator();
  }
  return PostingsIterator::Open(in);
}

}  // namespace s2
