#include "index/postings.h"

#include <algorithm>

#include "common/coding.h"

namespace s2 {

namespace {
constexpr uint32_t kGroupSize = 64;
}  // namespace

void EncodePostings(const std::vector<uint32_t>& rows, std::string* dst) {
  // Layout: [count varint][num_groups varint]
  //         [skip: num_groups * (first_row fixed32, delta_offset fixed32)]
  //         [delta varints]
  PutVarint64(dst, rows.size());
  uint32_t num_groups =
      static_cast<uint32_t>((rows.size() + kGroupSize - 1) / kGroupSize);
  PutVarint64(dst, num_groups);

  std::string deltas;
  std::vector<std::pair<uint32_t, uint32_t>> skip;
  skip.reserve(num_groups);
  uint32_t prev = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i % kGroupSize == 0) {
      skip.emplace_back(rows[i], static_cast<uint32_t>(deltas.size()));
      PutVarint64(&deltas, rows[i]);  // group leader stored absolute
    } else {
      PutVarint64(&deltas, rows[i] - prev);
    }
    prev = rows[i];
  }
  for (auto [first_row, offset] : skip) {
    PutFixed32(dst, first_row);
    PutFixed32(dst, offset);
  }
  dst->append(deltas);
}

Result<PostingsIterator> PostingsIterator::Open(Slice data) {
  PostingsIterator it;
  Slice in = data;
  S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&in));
  S2_ASSIGN_OR_RETURN(uint64_t num_groups, GetVarint64(&in));
  it.count_ = static_cast<uint32_t>(count);
  it.num_groups_ = static_cast<uint32_t>(num_groups);
  size_t skip_bytes = num_groups * 8;
  if (in.size() < skip_bytes) {
    return Status::Corruption("truncated postings skip table");
  }
  it.skip_ = in.data();
  in.RemovePrefix(skip_bytes);
  it.deltas_ = in;
  if (count > 0) {
    it.valid_ = true;
    it.LoadGroup(0);
    it.Next();  // position on the first posting
  }
  // Compute the encoded size: walk the last group to its end.
  if (count > 0) {
    PostingsIterator probe = it;
    probe.LoadGroup(it.num_groups_ - 1);
    uint32_t remaining = it.count_ - (it.num_groups_ - 1) * kGroupSize;
    Slice cursor = probe.cursor_;
    for (uint32_t i = 0; i < remaining; ++i) {
      auto v = GetVarint64(&cursor);
      if (!v.ok()) return Status::Corruption("truncated postings deltas");
    }
    it.encoded_size_ =
        static_cast<size_t>(cursor.data() - data.data());
  } else {
    it.encoded_size_ = static_cast<size_t>(it.deltas_.data() - data.data());
  }
  return it;
}

void PostingsIterator::LoadGroup(uint32_t group) {
  group_ = group;
  in_group_ = 0;
  index_ = group * kGroupSize;
  uint32_t offset = DecodeFixed32(skip_ + group * 8 + 4);
  cursor_ = Slice(deltas_.data() + offset, deltas_.size() - offset);
  current_ = 0;  // leader delta is absolute
}

void PostingsIterator::Next() {
  // Called with the iterator positioned *before* the posting to produce.
  if (index_ >= count_) {
    valid_ = false;
    return;
  }
  if (in_group_ == kGroupSize) {
    LoadGroup(group_ + 1);
  }
  auto delta = GetVarint64(&cursor_);
  if (!delta.ok()) {
    valid_ = false;
    return;
  }
  current_ = in_group_ == 0 ? static_cast<uint32_t>(*delta)
                            : current_ + static_cast<uint32_t>(*delta);
  ++in_group_;
  ++index_;
}

void PostingsIterator::SeekTo(uint32_t target) {
  if (!valid_ || current_ >= target) return;
  // Find the last group whose first_row <= target; if it's ahead of the
  // current group, jump there.
  uint32_t lo = group_, hi = num_groups_ - 1, best = group_;
  while (lo <= hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    uint32_t first_row = DecodeFixed32(skip_ + mid * 8);
    if (first_row <= target) {
      best = mid;
      if (mid == num_groups_ - 1) break;
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  if (best > group_) {
    LoadGroup(best);
    Next();
  }
  while (valid_ && current_ < target) Next();
}

Status IntersectPostings(std::vector<PostingsIterator> its,
                         std::vector<uint32_t>* out) {
  if (its.empty()) return Status::OK();
  for (const auto& it : its) {
    if (!it.Valid()) return Status::OK();  // empty intersection
  }
  // Leapfrog: repeatedly seek every iterator to the current max.
  for (;;) {
    uint32_t target = its[0].row();
    bool all_equal = true;
    for (auto& it : its) {
      if (it.row() != target) all_equal = false;
      target = std::max(target, it.row());
    }
    if (all_equal) {
      out->push_back(target);
      for (auto& it : its) {
        it.Next();
        if (!it.Valid()) return Status::OK();
      }
      continue;
    }
    for (auto& it : its) {
      it.SeekTo(target);
      if (!it.Valid()) return Status::OK();
    }
  }
}

Status UnionPostings(std::vector<PostingsIterator> its,
                     std::vector<uint32_t>* out) {
  for (;;) {
    uint32_t min = ~uint32_t{0};
    bool any = false;
    for (auto& it : its) {
      if (it.Valid()) {
        any = true;
        min = std::min(min, it.row());
      }
    }
    if (!any) return Status::OK();
    out->push_back(min);
    for (auto& it : its) {
      if (it.Valid() && it.row() == min) it.Next();
    }
  }
}

}  // namespace s2
