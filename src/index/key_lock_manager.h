#ifndef S2_INDEX_KEY_LOCK_MANAGER_H_
#define S2_INDEX_KEY_LOCK_MANAGER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace s2 {

/// In-memory lock manager over arbitrary key values, used by uniqueness
/// enforcement to serialize concurrent inserts of the same unique-key value
/// (paper Section 4.1.2, step 1: "take locks on the unique key values for
/// each row in the batch").
///
/// Keys are locked in sorted order (the caller passes the batch; sorting
/// happens here), so two batches can never deadlock against each other.
/// Waits time out into Aborted.
class KeyLockManager {
 public:
  KeyLockManager() = default;

  /// Locks every key in `keys` for `txn`. Re-entrant per txn. On timeout or
  /// failure nothing remains held that wasn't already held before the call.
  Status LockAll(TxnId txn, std::vector<std::string> keys,
                 int timeout_ms = 1000);

  /// Releases every key held by txn.
  void UnlockAll(TxnId txn);

  size_t num_locked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return owners_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, TxnId> owners_;
  std::unordered_map<TxnId, std::vector<std::string>> held_;
};

}  // namespace s2

#endif  // S2_INDEX_KEY_LOCK_MANAGER_H_
