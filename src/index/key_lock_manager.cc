#include "index/key_lock_manager.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"
#include "common/profile.h"

namespace s2 {

Status KeyLockManager::LockAll(TxnId txn, std::vector<std::string> keys,
                               int timeout_ms) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  uint64_t wait_start_ns = 0;  // set on first contended wait

  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::string> newly_acquired;
  for (const std::string& key : keys) {
    for (;;) {
      auto it = owners_.find(key);
      if (it == owners_.end()) {
        owners_[key] = txn;
        newly_acquired.push_back(key);
        break;
      }
      if (it->second == txn) break;  // re-entrant
      if (wait_start_ns == 0) wait_start_ns = ScopedTimer::NowNs();
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // Roll back this call's acquisitions.
        for (const std::string& k : newly_acquired) owners_.erase(k);
        if (!newly_acquired.empty()) cv_.notify_all();
        S2_COUNTER("s2_lock_timeouts_total").Add();
        S2_HISTOGRAM("s2_lock_wait_ns")
            .Record(ScopedTimer::NowNs() - wait_start_ns);
        ProfileCollector::CountHere(
            "lock_wait_ns",
            static_cast<int64_t>(ScopedTimer::NowNs() - wait_start_ns));
        return Status::Aborted("unique key lock timeout");
      }
    }
  }
  if (wait_start_ns != 0) {
    S2_HISTOGRAM("s2_lock_wait_ns")
        .Record(ScopedTimer::NowNs() - wait_start_ns);
    ProfileCollector::CountHere(
        "lock_wait_ns",
        static_cast<int64_t>(ScopedTimer::NowNs() - wait_start_ns));
  }
  auto& held = held_[txn];
  held.insert(held.end(), newly_acquired.begin(), newly_acquired.end());
  return Status::OK();
}

void KeyLockManager::UnlockAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const std::string& key : it->second) owners_.erase(key);
  held_.erase(it);
  cv_.notify_all();
}

}  // namespace s2
