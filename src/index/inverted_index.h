#ifndef S2_INDEX_INVERTED_INDEX_H_
#define S2_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "encoding/column_vector.h"
#include "index/postings.h"

namespace s2 {

/// Per-segment inverted index over one column (paper Section 4.1, the lower
/// level of the two-level secondary index). Maps each distinct value in the
/// segment to a postings list of row offsets. Built once when the segment
/// is created, stored as an immutable aux block inside the segment file.
///
/// The *column values* live here (not in the global index, which stores
/// only hashes): this keeps the global LSM merges cheap for wide columns.
class InvertedIndexBuilder {
 public:
  /// Indexes all rows of `column` (row offsets 0..n). Null values are not
  /// indexed.
  static std::string Build(const ColumnVector& column);

  /// Conventional aux-block name for the index on column `col`.
  static std::string BlockName(int col) {
    return "inv." + std::to_string(col);
  }

  /// Entries produced for the global index: one per distinct value.
  struct TermInfo {
    uint64_t hash;             // Value::Hash() of the term
    uint32_t postings_offset;  // offset of the postings list in the block
    uint32_t doc_count;        // number of rows with this value
  };

  /// Builds the block and reports per-term info (for the global index).
  static std::string BuildWithTerms(const ColumnVector& column,
                                    std::vector<TermInfo>* terms);
};

/// Read-side view over an inverted-index aux block. The underlying bytes
/// (the segment file) must outlive the reader.
class InvertedIndexReader {
 public:
  static Result<InvertedIndexReader> Open(Slice block);

  /// Looks up a value; returns an invalid iterator when absent.
  Result<PostingsIterator> Lookup(const Value& value) const;

  /// Opens the postings list at a known offset (the global-index fast path:
  /// no directory search). Verifies the stored term equals `expected` to
  /// reject hash collisions.
  Result<PostingsIterator> PostingsAt(uint32_t offset,
                                      const Value& expected) const;

  size_t num_terms() const { return terms_.size(); }

  /// Iterates all terms (used to rebuild global-index entries during
  /// recovery: the per-segment index is the durable source of truth).
  void ForEachTerm(
      const std::function<void(const Value& value, uint32_t offset)>& cb)
      const;

 private:
  struct Term {
    std::string encoded_value;
    uint32_t offset;  // into entries region
  };

  Slice entries_;  // concatenated [value][postings] records
  std::vector<Term> terms_;  // sorted by encoded_value
};

}  // namespace s2

#endif  // S2_INDEX_INVERTED_INDEX_H_
