#include "rowstore/rowstore_table.h"

#include <chrono>
#include <thread>

#include "common/coding.h"

namespace s2 {


RowStoreTable::RowStoreTable(Schema schema, std::vector<int> pk_cols)
    : schema_(std::move(schema)), pk_cols_(std::move(pk_cols)) {}

RowStoreTable::~RowStoreTable() = default;

void RowStoreTable::AddSecondaryIndex(std::vector<int> cols) {
  SecondaryIndex index;
  index.cols = std::move(cols);
  index.list = std::make_unique<SkipList>();
  secondaries_.push_back(std::move(index));
}

std::string RowStoreTable::PkFromRow(const Row& row) const {
  std::string key;
  for (int c : pk_cols_) row[c].EncodeTo(&key);
  return key;
}

Status RowStoreTable::LockRow(SkipList::Node* node, TxnId txn) const {
  // Spin briefly, then sleep-wait until the timeout. Timing out into
  // Aborted is the deadlock-avoidance policy: callers retry the
  // transaction.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(lock_timeout_ms_);
  for (int spin = 0;; ++spin) {
    uint64_t expected = 0;
    if (node->lock_owner.compare_exchange_weak(expected, txn,
                                               std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      const_cast<RowStoreTable*>(this)->pending_[txn].push_back(node);
      return Status::OK();
    }
    if (expected == txn) return Status::OK();  // re-entrant
    if (spin < 128) {
      std::this_thread::yield();
    } else {
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::Aborted("row lock timeout");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

RowVersion* RowStoreTable::VisibleVersion(const SkipList::Node* node,
                                          TxnId txn, Timestamp read_ts) {
  for (RowVersion* v = node->versions.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    Timestamp ts = v->commit_ts.load(std::memory_order_acquire);
    if (ts == kTsAborted) continue;
    if (v->txn_id == txn) return v;  // own write, committed or not
    if (ts != kTsUncommitted && ts <= read_ts) return v;
  }
  return nullptr;
}

Status RowStoreTable::WriteVersion(TxnId txn, Timestamp read_ts,
                                   const std::string& pk, Row data,
                                   bool deleted, bool must_exist,
                                   bool must_not_exist, bool system,
                                   bool at_latest) {
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  bool created = false;
  SkipList::Node* node = primary_.GetOrInsert(pk, &created);
  S2_RETURN_NOT_OK(LockRow(node, txn));

  // Holding the row lock, the newest non-aborted version is either ours or
  // committed. Find the newest non-aborted version.
  RowVersion* newest = nullptr;
  for (RowVersion* v = node->versions.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    if (v->commit_ts.load(std::memory_order_acquire) != kTsAborted) {
      newest = v;
      break;
    }
  }
  if (newest != nullptr && newest->txn_id != txn) {
    Timestamp ts = newest->commit_ts.load(std::memory_order_acquire);
    bool conflicts = ts != kTsUncommitted && ts > read_ts;
    if (at_latest) {
      // Move-transaction aware conflict rule: only a *non-system* version
      // committed after the snapshot is a real conflicting write; a newer
      // move copy carries unchanged logical content (paper Section 4.2).
      conflicts = false;
      for (RowVersion* v = node->versions.load(std::memory_order_acquire);
           v != nullptr; v = v->next) {
        Timestamp vts = v->commit_ts.load(std::memory_order_acquire);
        if (vts == kTsAborted || vts == kTsUncommitted) continue;
        if (vts <= read_ts) break;
        if (!v->system) {
          conflicts = true;
          break;
        }
      }
    }
    if (conflicts) {
      // Someone committed this row after our snapshot: first-committer-wins.
      return Status::Aborted("write-write conflict");
    }
  }
  bool exists = newest != nullptr && !newest->deleted;
  if (must_not_exist && exists) {
    return Status::AlreadyExists("duplicate primary key");
  }
  if (must_exist && !exists) {
    return Status::NotFound("no row with given primary key");
  }

  auto* version = new RowVersion();
  version->txn_id = txn;
  version->deleted = deleted;
  version->system = system;
  version->data = std::move(data);
  version->next = node->versions.load(std::memory_order_relaxed);
  node->versions.store(version, std::memory_order_release);

  if (!deleted) IndexRow(version->data, pk);
  return Status::OK();
}

void RowStoreTable::IndexRow(const Row& row, const std::string& pk) {
  for (SecondaryIndex& index : secondaries_) {
    std::string key;
    for (int c : index.cols) row[c].EncodeTo(&key);
    key.append(pk);
    bool created = false;
    SkipList::Node* node = index.list->GetOrInsert(key, &created);
    if (created) {
      // Secondary entries carry the pk values; visibility is re-checked
      // against the primary chain at seek time, so the entry itself is
      // immediately visible.
      auto* version = new RowVersion();
      version->commit_ts.store(1, std::memory_order_relaxed);
      Row pk_row;
      Slice in(pk);
      while (!in.empty()) {
        auto value = Value::DecodeFrom(&in);
        if (!value.ok()) break;
        pk_row.push_back(std::move(*value));
      }
      version->data = std::move(pk_row);
      version->next = node->versions.load(std::memory_order_relaxed);
      node->versions.store(version, std::memory_order_release);
    }
  }
}

Status RowStoreTable::Insert(TxnId txn, Timestamp read_ts, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  return WriteVersion(txn, read_ts, PkFromRow(row), row, /*deleted=*/false,
                      /*must_exist=*/false, /*must_not_exist=*/true);
}

Status RowStoreTable::InsertMoved(TxnId txn, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  return WriteVersion(txn, kTsMax, PkFromRow(row), row, /*deleted=*/false,
                      /*must_exist=*/false, /*must_not_exist=*/true,
                      /*system=*/true, /*at_latest=*/true);
}

Status RowStoreTable::DeleteLatest(TxnId txn, Timestamp read_ts,
                                   const Row& pk) {
  std::string key;
  for (const Value& v : pk) v.EncodeTo(&key);
  return WriteVersion(txn, read_ts, key, Row(), /*deleted=*/true,
                      /*must_exist=*/true, /*must_not_exist=*/false,
                      /*system=*/false, /*at_latest=*/true);
}

Status RowStoreTable::UpdateLatest(TxnId txn, Timestamp read_ts, const Row& pk,
                                   const Row& new_row) {
  if (new_row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::string key;
  for (const Value& v : pk) v.EncodeTo(&key);
  if (PkFromRow(new_row) != key) {
    return Status::InvalidArgument("update must not change the primary key");
  }
  return WriteVersion(txn, read_ts, key, new_row, /*deleted=*/false,
                      /*must_exist=*/true, /*must_not_exist=*/false,
                      /*system=*/false, /*at_latest=*/true);
}

Status RowStoreTable::Delete(TxnId txn, Timestamp read_ts, const Row& pk) {
  std::string key;
  for (const Value& v : pk) v.EncodeTo(&key);
  return WriteVersion(txn, read_ts, key, Row(), /*deleted=*/true,
                      /*must_exist=*/true, /*must_not_exist=*/false);
}

Status RowStoreTable::Update(TxnId txn, Timestamp read_ts, const Row& pk,
                             const Row& new_row) {
  if (new_row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::string key;
  for (const Value& v : pk) v.EncodeTo(&key);
  if (PkFromRow(new_row) != key) {
    return Status::InvalidArgument("update must not change the primary key");
  }
  return WriteVersion(txn, read_ts, key, new_row, /*deleted=*/false,
                      /*must_exist=*/true, /*must_not_exist=*/false);
}

Result<Row> RowStoreTable::Get(TxnId txn, Timestamp read_ts,
                               const Row& pk) const {
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  std::string key;
  for (const Value& v : pk) v.EncodeTo(&key);
  SkipList::Node* node = primary_.Find(key);
  if (node == nullptr) return Status::NotFound("no row");
  RowVersion* v = VisibleVersion(node, txn, read_ts);
  if (v == nullptr || v->deleted) return Status::NotFound("no visible row");
  return v->data;
}

Status RowStoreTable::IndexSeek(
    int index_id, TxnId txn, Timestamp read_ts, const Row& key,
    const std::function<bool(const Row&)>& cb) const {
  if (index_id < 0 || index_id >= static_cast<int>(secondaries_.size())) {
    return Status::InvalidArgument("bad secondary index id");
  }
  const SecondaryIndex& index = secondaries_[index_id];
  if (key.size() != index.cols.size()) {
    return Status::InvalidArgument("index key arity mismatch");
  }
  std::string prefix;
  for (const Value& v : key) v.EncodeTo(&prefix);

  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  for (SkipList::Node* node = index.list->Seek(prefix); node != nullptr;
       node = SkipList::Next(node)) {
    Slice node_key(node->key);
    if (node_key.size() < prefix.size() ||
        memcmp(node_key.data(), prefix.data(), prefix.size()) != 0) {
      break;
    }
    RowVersion* entry = node->versions.load(std::memory_order_acquire);
    if (entry == nullptr) continue;
    // Re-check against the primary: the row must be visible and must still
    // match the index key (entries are not removed on update/delete).
    std::string pk_encoded(node_key.data() + prefix.size(),
                           node_key.size() - prefix.size());
    SkipList::Node* primary_node = primary_.Find(pk_encoded);
    if (primary_node == nullptr) continue;
    RowVersion* v = VisibleVersion(primary_node, txn, read_ts);
    if (v == nullptr || v->deleted) continue;
    bool still_matches = true;
    std::string current_key;
    for (int c : index.cols) v->data[c].EncodeTo(&current_key);
    if (current_key != prefix) still_matches = false;
    if (still_matches && !cb(v->data)) break;
  }
  return Status::OK();
}

void RowStoreTable::Scan(TxnId txn, Timestamp read_ts,
                         const std::function<bool(const Row&)>& cb) const {
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  for (SkipList::Node* node = primary_.First(); node != nullptr;
       node = SkipList::Next(node)) {
    RowVersion* v = VisibleVersion(node, txn, read_ts);
    if (v == nullptr || v->deleted) continue;
    if (!cb(v->data)) break;
  }
}

void RowStoreTable::ScanFrom(const Row& pk_prefix, TxnId txn,
                             Timestamp read_ts,
                             const std::function<bool(const Row&)>& cb) const {
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  std::string start;
  for (const Value& v : pk_prefix) v.EncodeTo(&start);
  for (SkipList::Node* node = primary_.Seek(start); node != nullptr;
       node = SkipList::Next(node)) {
    RowVersion* v = VisibleVersion(node, txn, read_ts);
    if (v == nullptr || v->deleted) continue;
    if (!cb(v->data)) break;
  }
}

void RowStoreTable::CommitTxn(TxnId txn, Timestamp commit_ts) {
  // Shared table lock: the version-chain walk below must not race Purge,
  // which truncates and frees chain tails under the exclusive lock.
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  std::vector<SkipList::Node*> nodes;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) return;
    nodes = std::move(it->second);
    pending_.erase(it);
  }
  for (SkipList::Node* node : nodes) {
    for (RowVersion* v = node->versions.load(std::memory_order_acquire);
         v != nullptr; v = v->next) {
      if (v->txn_id == txn &&
          v->commit_ts.load(std::memory_order_relaxed) == kTsUncommitted) {
        v->commit_ts.store(commit_ts, std::memory_order_release);
      }
    }
    uint64_t expected = txn;
    node->lock_owner.compare_exchange_strong(expected, 0,
                                             std::memory_order_release);
  }
}

void RowStoreTable::AbortTxn(TxnId txn) {
  // Shared table lock, as in CommitTxn: keeps Purge from freeing chain
  // tails mid-walk.
  std::shared_lock<std::shared_mutex> table_lock(table_lock_);
  std::vector<SkipList::Node*> nodes;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(txn);
    if (it == pending_.end()) return;
    nodes = std::move(it->second);
    pending_.erase(it);
  }
  for (SkipList::Node* node : nodes) {
    for (RowVersion* v = node->versions.load(std::memory_order_acquire);
         v != nullptr; v = v->next) {
      if (v->txn_id == txn &&
          v->commit_ts.load(std::memory_order_relaxed) == kTsUncommitted) {
        v->commit_ts.store(kTsAborted, std::memory_order_release);
      }
    }
    uint64_t expected = txn;
    node->lock_owner.compare_exchange_strong(expected, 0,
                                             std::memory_order_release);
  }
}

size_t RowStoreTable::CountVisible(Timestamp ts) const {
  size_t count = 0;
  Scan(0, ts, [&](const Row&) {
    ++count;
    return true;
  });
  return count;
}

size_t RowStoreTable::Purge(Timestamp oldest_active) {
  std::unique_lock<std::shared_mutex> table_lock(table_lock_);
  // Prune version chains: within each node, drop everything older than the
  // newest version visible to every active snapshot, and drop aborted
  // versions.
  for (SkipList::Node* node = primary_.First(); node != nullptr;
       node = SkipList::Next(node)) {
    RowVersion* head = node->versions.load(std::memory_order_relaxed);
    // Remove aborted versions from the head first.
    while (head != nullptr &&
           head->commit_ts.load(std::memory_order_relaxed) == kTsAborted) {
      RowVersion* next = head->next;
      delete head;
      head = next;
    }
    node->versions.store(head, std::memory_order_relaxed);
    // Find the anchor: the newest version already visible to every active
    // snapshot. Everything older can never be read again.
    RowVersion* anchor = head;
    while (anchor != nullptr) {
      Timestamp ts = anchor->commit_ts.load(std::memory_order_relaxed);
      if (ts <= kTsMax && ts <= oldest_active) break;
      anchor = anchor->next;
    }
    if (anchor != nullptr) {
      RowVersion* old = anchor->next;
      anchor->next = nullptr;
      while (old != nullptr) {
        RowVersion* next = old->next;
        delete old;
        old = next;
      }
    }
  }
  size_t purged = primary_.Purge([&](SkipList::Node* node) {
    RowVersion* v = node->versions.load(std::memory_order_relaxed);
    if (v == nullptr) return true;  // never got a version
    Timestamp ts = v->commit_ts.load(std::memory_order_relaxed);
    return v->deleted && ts <= kTsMax && ts <= oldest_active &&
           v->next == nullptr;
  });
  // Rebuild secondary indexes: stale entries (updated/deleted rows) and
  // entries pointing at purged rows are dropped wholesale.
  if (!secondaries_.empty() && purged > 0) {
    for (SecondaryIndex& index : secondaries_) {
      index.list = std::make_unique<SkipList>();
    }
    for (SkipList::Node* node = primary_.First(); node != nullptr;
         node = SkipList::Next(node)) {
      RowVersion* v = node->versions.load(std::memory_order_relaxed);
      if (v != nullptr && !v->deleted) IndexRow(v->data, node->key);
    }
  }
  return purged;
}

std::string RowStoreTable::SerializeSnapshot(Timestamp ts) const {
  std::string out;
  size_t count = 0;
  std::string rows;
  Scan(0, ts, [&](const Row& row) {
    for (const Value& v : row) v.EncodeTo(&rows);
    ++count;
    return true;
  });
  PutVarint64(&out, count);
  out.append(rows);
  return out;
}

Status RowStoreTable::RestoreSnapshot(Slice snapshot, Timestamp commit_ts) {
  S2_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&snapshot));
  const TxnId restore_txn = ~TxnId{0};
  for (uint64_t i = 0; i < count; ++i) {
    Row row;
    row.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      S2_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&snapshot));
      row.push_back(std::move(v));
    }
    S2_RETURN_NOT_OK(Insert(restore_txn, kTsMax, row));
  }
  CommitTxn(restore_txn, commit_ts);
  return Status::OK();
}

}  // namespace s2
