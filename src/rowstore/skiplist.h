#ifndef S2_ROWSTORE_SKIPLIST_H_
#define S2_ROWSTORE_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/slice.h"
#include "common/types.h"

namespace s2 {

/// One MVCC version of a row. Versions form a newest-first singly linked
/// chain hanging off a skiplist node; readers walk the chain to the first
/// version visible at their snapshot, so readers never wait on writers
/// (paper Section 2.1.1).
struct RowVersion {
  std::atomic<Timestamp> commit_ts{kTsUncommitted};
  uint64_t txn_id = 0;
  bool deleted = false;  // true: this version deletes the row
  /// Written by a system "move transaction" (paper Section 4.2): the row
  /// was copied from a columnstore segment into the rowstore without
  /// changing logical table content. System versions never count as
  /// write-write conflicts against user snapshots.
  bool system = false;
  Row data;
  RowVersion* next = nullptr;  // older version
};

/// Lock-free concurrent skiplist keyed by encoded byte strings.
///
/// Concurrency contract:
///  - GetOrInsert / Find / iteration may run concurrently from any number
///    of threads (inserts use CAS splicing, LevelDB-style; nodes are never
///    unlinked concurrently).
///  - Purge() physically unlinks nodes and requires external exclusion
///    against all concurrent access (the rowstore table takes its exclusive
///    lock). Unlinked nodes are kept on a graveyard and freed with the
///    list, so stale pointers never dangle.
class SkipList {
 public:
  static constexpr int kMaxHeight = 14;

  struct Node {
    std::string key;
    std::atomic<RowVersion*> versions{nullptr};
    /// Row lock: owner txn id, 0 when free. The in-memory rowstore's
    /// pessimistic write concurrency control.
    std::atomic<uint64_t> lock_owner{0};
    int height;
    std::atomic<Node*> next[1];  // [height] pointers, allocated inline

    Node* Next(int level) const {
      return next[level].load(std::memory_order_acquire);
    }
  };

  SkipList();
  ~SkipList();

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Returns the node for `key`, inserting an empty one if absent.
  /// `created` reports whether this call inserted it.
  Node* GetOrInsert(Slice key, bool* created);

  /// Returns the node with exactly `key`, or nullptr.
  Node* Find(Slice key) const;

  /// Returns the first node with key >= `key`, or nullptr (seek for ordered
  /// scans).
  Node* Seek(Slice key) const;

  /// First node in key order, or nullptr.
  Node* First() const;

  /// Successor in key order, or nullptr.
  static Node* Next(const Node* node) { return node->Next(0); }

  /// Unlinks every node for which `dead(node)` returns true. Requires
  /// external exclusion (no concurrent readers or writers). Returns the
  /// number of unlinked nodes; their memory is reclaimed on destruction.
  template <typename Pred>
  size_t Purge(Pred dead) {
    size_t purged = 0;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* prev = head_;
      Node* cur = prev->next[level].load(std::memory_order_relaxed);
      while (cur != nullptr) {
        Node* next = cur->next[level].load(std::memory_order_relaxed);
        if (dead(cur)) {
          prev->next[level].store(next, std::memory_order_relaxed);
          if (level == 0) {
            graveyard_.push_back(cur);
            ++purged;
          }
        } else {
          prev = cur;
        }
        cur = next;
      }
    }
    num_nodes_.fetch_sub(purged, std::memory_order_relaxed);
    return purged;
  }

  size_t num_nodes() const {
    return num_nodes_.load(std::memory_order_relaxed);
  }

 private:
  static Node* NewNode(Slice key, int height);
  static void DeleteNode(Node* node);
  int RandomHeight();

  /// Finds the node >= key, filling prev[] with the rightmost node strictly
  /// before key at every level below the search height. `search_height`
  /// (when non-null) reports the max_height_ value the search used, i.e.
  /// how many prev[] levels were filled — a concurrent insert may bump
  /// max_height_ mid-search, so callers must not re-read it instead.
  Node* FindGreaterOrEqual(Slice key, Node** prev,
                           int* search_height = nullptr) const;

  Node* head_;
  std::atomic<int> max_height_{1};
  std::atomic<size_t> num_nodes_{0};
  std::atomic<uint64_t> rng_state_{0x853c49e6748fea9bULL};
  std::vector<Node*> graveyard_;
};

}  // namespace s2

#endif  // S2_ROWSTORE_SKIPLIST_H_
