#ifndef S2_ROWSTORE_ROWSTORE_TABLE_H_
#define S2_ROWSTORE_ROWSTORE_TABLE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "rowstore/skiplist.h"

namespace s2 {

/// In-memory MVCC rowstore table (paper Section 2.1.1).
///
///  - The primary index is a lock-free skiplist keyed by the encoded
///    primary-key columns; each node carries a newest-first version chain,
///    so readers never block on writers.
///  - Writes use pessimistic concurrency control via per-node row locks;
///    lock waits time out into Aborted so callers can retry (deadlock
///    avoidance by timeout).
///  - Optional secondary skiplist indexes map encoded secondary key + pk to
///    the primary key for seeks.
///  - Snapshot isolation: a reader sees versions with commit_ts <= read_ts
///    plus its own uncommitted writes; first-committer-wins on write-write
///    conflicts.
///
/// Commit protocol: callers stage writes under a TxnId, then CommitTxn
/// stamps every staged version with the commit timestamp and releases row
/// locks (AbortTxn rolls back). Durability is the log's job, not this
/// class's.
class RowStoreTable {
 public:
  /// `pk_cols` index into the schema; they form the unique primary key.
  /// Empty pk_cols means "no user key": callers must provide a hidden
  /// unique key column themselves.
  RowStoreTable(Schema schema, std::vector<int> pk_cols);
  ~RowStoreTable();

  RowStoreTable(const RowStoreTable&) = delete;
  RowStoreTable& operator=(const RowStoreTable&) = delete;

  const Schema& schema() const { return schema_; }
  const std::vector<int>& pk_cols() const { return pk_cols_; }

  /// Adds a secondary index over `cols`. Must be called before any writes.
  void AddSecondaryIndex(std::vector<int> cols);

  /// Inserts a row. AlreadyExists if a live version of the key is visible
  /// at read_ts or a committed-later writer won the key (Aborted).
  Status Insert(TxnId txn, Timestamp read_ts, const Row& row);

  /// Move-transaction insert (paper Section 4.2): installs a `system` copy
  /// of a segment row. Checked against the *latest* committed state:
  /// AlreadyExists when a live copy is already present (another mover or
  /// writer beat us), letting the caller fall through to mutating that
  /// copy.
  Status InsertMoved(TxnId txn, const Row& row);

  /// Deletes/updates against the *latest* committed row state instead of a
  /// snapshot. Used by the unified table after a move transaction: the
  /// moved copy commits after the user's snapshot, but represents unchanged
  /// logical content, so it must not trigger a conflict. A committed
  /// non-system version newer than read_ts still aborts
  /// (first-committer-wins against real writes).
  Status DeleteLatest(TxnId txn, Timestamp read_ts, const Row& pk);
  Status UpdateLatest(TxnId txn, Timestamp read_ts, const Row& pk,
                      const Row& new_row);

  /// Deletes the row with the given primary-key values. NotFound if no
  /// visible live version exists.
  Status Delete(TxnId txn, Timestamp read_ts, const Row& pk);

  /// Replaces the row with the given primary key. NotFound when absent.
  /// The new row must have identical primary-key values.
  Status Update(TxnId txn, Timestamp read_ts, const Row& pk,
                const Row& new_row);

  /// Point read by primary key at a snapshot.
  Result<Row> Get(TxnId txn, Timestamp read_ts, const Row& pk) const;

  /// Seek by secondary index `index_id` (in AddSecondaryIndex call order):
  /// invokes cb for every visible row matching the key values. cb returns
  /// false to stop.
  Status IndexSeek(int index_id, TxnId txn, Timestamp read_ts, const Row& key,
                   const std::function<bool(const Row&)>& cb) const;

  /// Full scan of visible rows in primary-key order. cb returns false to
  /// stop early.
  void Scan(TxnId txn, Timestamp read_ts,
            const std::function<bool(const Row&)>& cb) const;

  /// Ordered scan starting at the first pk >= prefix.
  void ScanFrom(const Row& pk_prefix, TxnId txn, Timestamp read_ts,
                const std::function<bool(const Row&)>& cb) const;

  /// Stamps all of txn's staged versions with commit_ts and releases locks.
  void CommitTxn(TxnId txn, Timestamp commit_ts);

  /// Discards txn's staged versions and releases locks.
  void AbortTxn(TxnId txn);

  /// Number of live committed rows visible at ts (approximate under
  /// concurrency; exact when quiescent).
  size_t CountVisible(Timestamp ts) const;

  /// Number of skiplist nodes (live + logically deleted, pre-purge).
  size_t num_nodes() const { return primary_.num_nodes(); }

  /// Physically removes nodes whose newest version is a committed delete
  /// with commit_ts < oldest_active, and prunes version chains. Takes the
  /// table's exclusive lock (scans/writes take it shared).
  size_t Purge(Timestamp oldest_active);

  /// Row-lock wait budget before a writer gives up with Aborted.
  void set_lock_timeout_ms(int ms) { lock_timeout_ms_ = ms; }

  /// Serializes all rows visible at `ts` (snapshot file payload).
  std::string SerializeSnapshot(Timestamp ts) const;

  /// Loads rows from a snapshot produced by SerializeSnapshot. The rows are
  /// installed as committed at `commit_ts`. Table must be empty.
  Status RestoreSnapshot(Slice snapshot, Timestamp commit_ts);

 private:
  struct SecondaryIndex {
    std::vector<int> cols;
    std::unique_ptr<SkipList> list;  // key: enc(sec cols) + enc(pk)
  };

  std::string PkFromRow(const Row& row) const;
  Status LockRow(SkipList::Node* node, TxnId txn) const;
  static RowVersion* VisibleVersion(const SkipList::Node* node, TxnId txn,
                                    Timestamp read_ts);
  Status WriteVersion(TxnId txn, Timestamp read_ts, const std::string& pk,
                      Row data, bool deleted, bool must_exist,
                      bool must_not_exist, bool system = false,
                      bool at_latest = false);
  void IndexRow(const Row& row, const std::string& pk);

  Schema schema_;
  std::vector<int> pk_cols_;
  int lock_timeout_ms_ = 1000;
  SkipList primary_;
  std::vector<SecondaryIndex> secondaries_;

  /// Readers/writers take shared; Purge takes exclusive.
  mutable std::shared_mutex table_lock_;

  /// Staged writes per transaction (nodes whose newest version belongs to
  /// the txn and whose row lock the txn holds).
  mutable std::mutex pending_mu_;
  std::unordered_map<TxnId, std::vector<SkipList::Node*>> pending_;
};

}  // namespace s2

#endif  // S2_ROWSTORE_ROWSTORE_TABLE_H_
