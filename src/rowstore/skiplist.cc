#include "rowstore/skiplist.h"

#include <cstdlib>
#include <new>

namespace s2 {

SkipList::SkipList() { head_ = NewNode(Slice(), kMaxHeight); }

SkipList::~SkipList() {
  Node* node = head_->next[0].load(std::memory_order_relaxed);
  while (node != nullptr) {
    Node* next = node->next[0].load(std::memory_order_relaxed);
    DeleteNode(node);
    node = next;
  }
  for (Node* dead : graveyard_) DeleteNode(dead);
  DeleteNode(head_);
}

SkipList::Node* SkipList::NewNode(Slice key, int height) {
  size_t size = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  void* mem = ::operator new(size);
  Node* node = new (mem) Node{};
  node->key = key.ToString();
  node->height = height;
  for (int i = 0; i < height; ++i) {
    new (&node->next[i]) std::atomic<Node*>(nullptr);
  }
  return node;
}

void SkipList::DeleteNode(Node* node) {
  RowVersion* v = node->versions.load(std::memory_order_relaxed);
  while (v != nullptr) {
    RowVersion* next = v->next;
    delete v;
    v = next;
  }
  node->~Node();
  ::operator delete(node);
}

int SkipList::RandomHeight() {
  // xorshift on a shared atomic state; collisions only perturb the height
  // distribution, never correctness.
  uint64_t x = rng_state_.load(std::memory_order_relaxed);
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_state_.store(x, std::memory_order_relaxed);
  int height = 1;
  while (height < kMaxHeight && (x & 3) == 0) {
    ++height;
    x >>= 2;
  }
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(Slice key, Node** prev,
                                             int* search_height) const {
  Node* x = head_;
  int start = max_height_.load(std::memory_order_relaxed);
  if (search_height != nullptr) *search_height = start;
  int level = start - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (next != nullptr && Slice(next->key).Compare(key) < 0) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

SkipList::Node* SkipList::GetOrInsert(Slice key, bool* created) {
  Node* prev[kMaxHeight];
  for (;;) {
    int searched = 0;
    Node* found = FindGreaterOrEqual(key, prev, &searched);
    if (found != nullptr && Slice(found->key) == key) {
      *created = false;
      return found;
    }
    // Fill prev for levels the search did not cover. This must use the
    // height the search actually ran with, not a fresh max_height_ read: a
    // concurrent insert can bump max_height_ between the search and here,
    // which would leave prev[] entries in that gap uninitialized.
    int height = RandomHeight();
    for (int i = searched; i < height; ++i) prev[i] = head_;
    if (height > max_height_.load(std::memory_order_relaxed)) {
      // Racy max bump is fine: a stale small value only costs search time.
      max_height_.store(height, std::memory_order_relaxed);
    }
    Node* node = NewNode(key, height);
    // Splice bottom-up. If the bottom-level CAS fails, someone inserted a
    // node in our window: retry the whole operation (the key may now
    // exist).
    node->next[0].store(prev[0]->Next(0), std::memory_order_relaxed);
    Node* expected = node->next[0].load(std::memory_order_relaxed);
    if (expected != nullptr && Slice(expected->key).Compare(key) <= 0) {
      DeleteNode(node);
      continue;  // a racing insert got in; re-search
    }
    if (!prev[0]->next[0].compare_exchange_strong(
            expected, node, std::memory_order_release)) {
      DeleteNode(node);
      continue;
    }
    // Upper levels: best-effort CAS; on failure re-find predecessors.
    for (int level = 1; level < height; ++level) {
      for (;;) {
        Node* next = prev[level]->Next(level);
        if (next != nullptr && Slice(next->key).Compare(key) < 0) {
          // Predecessor moved; re-find at this level.
          Node* x = prev[level];
          while (true) {
            Node* n2 = x->Next(level);
            if (n2 == nullptr || Slice(n2->key).Compare(key) >= 0) break;
            x = n2;
          }
          prev[level] = x;
          continue;
        }
        node->next[level].store(next, std::memory_order_relaxed);
        if (prev[level]->next[level].compare_exchange_strong(
                next, node, std::memory_order_release)) {
          break;
        }
      }
    }
    num_nodes_.fetch_add(1, std::memory_order_relaxed);
    *created = true;
    return node;
  }
}

SkipList::Node* SkipList::Find(Slice key) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && Slice(node->key) == key) return node;
  return nullptr;
}

SkipList::Node* SkipList::Seek(Slice key) const {
  return FindGreaterOrEqual(key, nullptr);
}

SkipList::Node* SkipList::First() const { return head_->Next(0); }

}  // namespace s2
