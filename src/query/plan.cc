#include "query/plan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace s2 {

namespace {
constexpr size_t kBatchRows = 1024;
}  // namespace

Result<std::vector<Row>> RunPlan(PlanNode* plan, QueryContext* ctx) {
  std::vector<Row> out;
  S2_RETURN_NOT_OK(plan->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (Row& row : batch) out.push_back(std::move(row));
    return true;
  }));
  return out;
}

// --- ScanOp ---

ScanOp::ScanOp(std::string table, std::vector<int> projection,
               std::unique_ptr<FilterNode> filter, ExprPtr post_filter)
    : table_(std::move(table)),
      projection_(std::move(projection)),
      filter_(std::move(filter)),
      post_filter_(std::move(post_filter)) {}

Status ScanOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  S2_ASSIGN_OR_RETURN(UnifiedTable * table, ctx->partition->GetTable(table_));
  ScanOptions options = ctx->scan_options;
  options.projection = projection_;
  options.filter = filter_.get();
  TableScanner scanner(table, options);
  bool keep_going = true;
  Status s = scanner.Scan(ctx->txn, ctx->read_ts, [&](const ScanBatch& batch) {
    std::vector<Row> rows;
    rows.reserve(batch.num_rows);
    for (size_t i = 0; i < batch.num_rows; ++i) {
      Row row;
      row.reserve(batch.columns.size());
      for (const ColumnVector& col : batch.columns) {
        row.push_back(col.GetValue(i));
      }
      if (post_filter_ != nullptr) {
        Value pass = post_filter_->Eval(row);
        if (pass.is_null() || pass.as_int() == 0) continue;
      }
      rows.push_back(std::move(row));
    }
    if (rows.empty()) return true;
    keep_going = sink(std::move(rows));
    return keep_going;
  });
  stats_ = scanner.stats();
  return s;
}

// --- FilterOp ---

FilterOp::FilterOp(PlanPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  return child_->Execute(ctx, [&](std::vector<Row>&& batch) {
    std::vector<Row> out;
    out.reserve(batch.size());
    for (Row& row : batch) {
      Value pass = predicate_->Eval(row);
      if (!pass.is_null() && pass.as_int() != 0) out.push_back(std::move(row));
    }
    if (out.empty()) return true;
    return sink(std::move(out));
  });
}

// --- ProjectOp ---

ProjectOp::ProjectOp(PlanPtr child, std::vector<ExprPtr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

Status ProjectOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  return child_->Execute(ctx, [&](std::vector<Row>&& batch) {
    std::vector<Row> out;
    out.reserve(batch.size());
    for (const Row& row : batch) {
      Row projected;
      projected.reserve(exprs_.size());
      for (const ExprPtr& e : exprs_) projected.push_back(e->Eval(row));
      out.push_back(std::move(projected));
    }
    return sink(std::move(out));
  });
}

// --- HashJoinOp ---

HashJoinOp::HashJoinOp(PlanPtr left, PlanPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, JoinType type,
                       size_t right_width)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      type_(type),
      right_width_(right_width) {}

Status HashJoinOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  // Build phase on the right child.
  std::unordered_map<std::string, std::vector<Row>> table;
  S2_RETURN_NOT_OK(right_->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (Row& row : batch) {
      Row key_values;
      key_values.reserve(right_keys_.size());
      bool has_null = false;
      for (const ExprPtr& e : right_keys_) {
        key_values.push_back(e->Eval(row));
        if (key_values.back().is_null()) has_null = true;
      }
      if (has_null) continue;  // NULL keys never match
      table[EncodeKey(key_values)].push_back(std::move(row));
    }
    return true;
  }));

  // Probe phase on the left child.
  std::vector<Row> out;
  bool keep_going = true;
  Status s = left_->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (Row& row : batch) {
      Row key_values;
      key_values.reserve(left_keys_.size());
      bool has_null = false;
      for (const ExprPtr& e : left_keys_) {
        key_values.push_back(e->Eval(row));
        if (key_values.back().is_null()) has_null = true;
      }
      auto it = has_null ? table.end() : table.find(EncodeKey(key_values));
      bool matched = it != table.end();
      switch (type_) {
        case JoinType::kSemi:
          if (matched) out.push_back(std::move(row));
          break;
        case JoinType::kAnti:
          if (!matched) out.push_back(std::move(row));
          break;
        case JoinType::kInner:
        case JoinType::kLeft:
          if (matched) {
            for (const Row& right_row : it->second) {
              Row joined = row;
              joined.insert(joined.end(), right_row.begin(), right_row.end());
              out.push_back(std::move(joined));
            }
          } else if (type_ == JoinType::kLeft) {
            Row joined = std::move(row);
            for (size_t i = 0; i < right_width_; ++i) {
              joined.push_back(Value::Null());
            }
            out.push_back(std::move(joined));
          }
          break;
      }
      if (out.size() >= kBatchRows) {
        keep_going = sink(std::move(out));
        out.clear();
        if (!keep_going) return false;
      }
    }
    return true;
  });
  S2_RETURN_NOT_OK(s);
  if (keep_going && !out.empty()) sink(std::move(out));
  return Status::OK();
}

// --- IndexJoinOp ---

IndexJoinOp::IndexJoinOp(std::string table, std::vector<int> projection,
                         int probe_col, PlanPtr build, ExprPtr build_key,
                         std::unique_ptr<FilterNode> table_filter,
                         double max_key_fraction)
    : table_(std::move(table)),
      projection_(std::move(projection)),
      probe_col_(probe_col),
      build_(std::move(build)),
      build_key_(std::move(build_key)),
      table_filter_(std::move(table_filter)),
      max_key_fraction_(max_key_fraction) {}

Status IndexJoinOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  S2_ASSIGN_OR_RETURN(UnifiedTable * table, ctx->partition->GetTable(table_));

  // Materialize the build side, grouped by key.
  std::unordered_map<std::string, std::vector<Row>> build_rows;
  std::vector<std::pair<std::string, Value>> distinct_keys;
  S2_RETURN_NOT_OK(build_->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (Row& row : batch) {
      Value key = build_key_->Eval(row);
      if (key.is_null()) continue;
      std::string encoded;
      key.EncodeTo(&encoded);
      auto [it, inserted] = build_rows.try_emplace(encoded);
      if (inserted) distinct_keys.emplace_back(encoded, key);
      it->second.push_back(std::move(row));
    }
    return true;
  }));
  stats_.distinct_keys = distinct_keys.size();

  uint64_t table_rows = table->ApproxRowCount();
  bool use_index =
      static_cast<double>(distinct_keys.size()) <=
      max_key_fraction_ * static_cast<double>(table_rows);
  stats_.used_index = use_index;

  std::vector<Row> out;
  bool keep_going = true;
  auto emit = [&](const Row& table_row,
                  const std::vector<Row>& matches) -> bool {
    for (const Row& build_row : matches) {
      Row joined;
      joined.reserve(projection_.size() + build_row.size());
      for (int c : projection_) joined.push_back(table_row[c]);
      joined.insert(joined.end(), build_row.begin(), build_row.end());
      out.push_back(std::move(joined));
    }
    if (out.size() >= kBatchRows) {
      keep_going = sink(std::move(out));
      out.clear();
    }
    return keep_going;
  };

  if (use_index) {
    // Probe the secondary index once per distinct build key: the join
    // index filter, with zero false positives (unlike a bloom filter).
    for (const auto& [encoded, key] : distinct_keys) {
      ++stats_.index_probes;
      bool stopped = false;
      S2_RETURN_NOT_OK(table->LookupByIndex(
          ctx->txn, ctx->read_ts, {probe_col_}, {key},
          [&](const Row& row, const RowLocation&) {
            if (table_filter_ != nullptr && !table_filter_->EvalRow(row)) {
              return true;
            }
            if (!emit(row, build_rows.at(encoded))) {
              stopped = true;
              return false;
            }
            return true;
          }));
      if (stopped) return Status::OK();
    }
  } else {
    // Fallback: full scan of the table, hash probe per row.
    ScanOptions options = ctx->scan_options;
    options.filter = table_filter_.get();
    TableScanner scanner(table, options);  // full-row projection for filter
    Status s = scanner.Scan(
        ctx->txn, ctx->read_ts, [&](const ScanBatch& batch) {
          for (size_t i = 0; i < batch.num_rows; ++i) {
            Row row;
            row.reserve(batch.columns.size());
            for (const ColumnVector& col : batch.columns) {
              row.push_back(col.GetValue(i));
            }
            std::string encoded;
            row[probe_col_].EncodeTo(&encoded);
            auto it = build_rows.find(encoded);
            if (it == build_rows.end()) continue;
            if (!emit(row, it->second)) return false;
          }
          return true;
        });
    S2_RETURN_NOT_OK(s);
  }
  if (keep_going && !out.empty()) sink(std::move(out));
  return Status::OK();
}

// --- AggregateOp ---

AggregateOp::AggregateOp(PlanPtr child, std::vector<ExprPtr> group_by,
                         std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {}

namespace {

struct AggState {
  Row group;
  std::vector<double> sums;
  std::vector<uint64_t> counts;        // per agg: non-null input count
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<std::unordered_set<std::string>> distincts;
  uint64_t star_count = 0;  // rows in group
};

}  // namespace

Status AggregateOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  std::unordered_map<std::string, AggState> groups;
  S2_RETURN_NOT_OK(child_->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (const Row& row : batch) {
      Row group_values;
      group_values.reserve(group_by_.size());
      for (const ExprPtr& e : group_by_) group_values.push_back(e->Eval(row));
      std::string key = EncodeKey(group_values);
      auto [it, inserted] = groups.try_emplace(key);
      AggState& state = it->second;
      if (inserted) {
        state.group = std::move(group_values);
        state.sums.assign(aggs_.size(), 0.0);
        state.counts.assign(aggs_.size(), 0);
        state.mins.assign(aggs_.size(), Value::Null());
        state.maxs.assign(aggs_.size(), Value::Null());
        state.distincts.resize(aggs_.size());
      }
      ++state.star_count;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggSpec& spec = aggs_[a];
        if (spec.expr == nullptr) continue;  // COUNT(*)
        Value v = spec.expr->Eval(row);
        if (v.is_null()) continue;
        ++state.counts[a];
        switch (spec.kind) {
          case AggKind::kSum:
          case AggKind::kAvg:
            state.sums[a] += v.AsNumeric();
            break;
          case AggKind::kMin:
            if (state.mins[a].is_null() || v.Compare(state.mins[a]) < 0) {
              state.mins[a] = v;
            }
            break;
          case AggKind::kMax:
            if (state.maxs[a].is_null() || v.Compare(state.maxs[a]) > 0) {
              state.maxs[a] = v;
            }
            break;
          case AggKind::kCountDistinct: {
            std::string encoded;
            v.EncodeTo(&encoded);
            state.distincts[a].insert(std::move(encoded));
            break;
          }
          case AggKind::kCount:
            break;
        }
      }
    }
    return true;
  }));

  // With no GROUP BY, SQL semantics produce one row even for empty input.
  if (group_by_.empty() && groups.empty()) {
    groups.try_emplace("");
    AggState& state = groups.begin()->second;
    state.sums.assign(aggs_.size(), 0.0);
    state.counts.assign(aggs_.size(), 0);
    state.mins.assign(aggs_.size(), Value::Null());
    state.maxs.assign(aggs_.size(), Value::Null());
    state.distincts.resize(aggs_.size());
  }

  std::vector<Row> out;
  for (auto& [key, state] : groups) {
    Row row = std::move(state.group);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      switch (spec.kind) {
        case AggKind::kCount:
          row.push_back(Value(static_cast<int64_t>(
              spec.expr == nullptr ? state.star_count : state.counts[a])));
          break;
        case AggKind::kCountDistinct:
          row.push_back(
              Value(static_cast<int64_t>(state.distincts[a].size())));
          break;
        case AggKind::kSum:
          row.push_back(state.counts[a] == 0 ? Value::Null()
                                             : Value(state.sums[a]));
          break;
        case AggKind::kAvg:
          row.push_back(state.counts[a] == 0
                            ? Value::Null()
                            : Value(state.sums[a] /
                                    static_cast<double>(state.counts[a])));
          break;
        case AggKind::kMin:
          row.push_back(state.mins[a]);
          break;
        case AggKind::kMax:
          row.push_back(state.maxs[a]);
          break;
      }
    }
    out.push_back(std::move(row));
    if (out.size() >= kBatchRows) {
      if (!sink(std::move(out))) return Status::OK();
      out.clear();
    }
  }
  if (!out.empty()) sink(std::move(out));
  return Status::OK();
}

// --- SortOp ---

SortOp::SortOp(PlanPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  std::vector<Row> rows;
  S2_RETURN_NOT_OK(child_->Execute(ctx, [&](std::vector<Row>&& batch) {
    for (Row& row : batch) rows.push_back(std::move(row));
    return true;
  }));
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (const SortKey& key : keys_) {
      int cmp = key.expr->Eval(a).Compare(key.expr->Eval(b));
      if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  sink(std::move(rows));
  return Status::OK();
}

// --- LimitOp ---

LimitOp::LimitOp(PlanPtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::Execute(QueryContext* ctx, const BatchSink& sink) {
  size_t emitted = 0;
  return child_->Execute(ctx, [&](std::vector<Row>&& batch) {
    if (emitted >= limit_) return false;
    if (emitted + batch.size() > limit_) batch.resize(limit_ - emitted);
    emitted += batch.size();
    bool keep_going = sink(std::move(batch));
    return keep_going && emitted < limit_;
  });
}

// --- ValuesOp ---

ValuesOp::ValuesOp(std::vector<Row> rows) : rows_(std::move(rows)) {}

Status ValuesOp::Execute(QueryContext* /*ctx*/, const BatchSink& sink) {
  std::vector<Row> copy = rows_;
  sink(std::move(copy));
  return Status::OK();
}

}  // namespace s2
