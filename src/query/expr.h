#ifndef S2_QUERY_EXPR_H_
#define S2_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace s2 {

/// Scalar expression evaluated row-at-a-time over an operator's output row
/// (scans and filters below are vectorized; expression projection above
/// them is row-oriented).
class Expr {
 public:
  enum class Kind {
    kColumn,   // input column by index
    kConst,    // literal
    kArith,    // + - * /
    kCmp,      // = != < <= > >=
    kAnd,
    kOr,
    kNot,
    kLike,     // SQL LIKE with % and _
    kCase,     // CASE WHEN cond THEN v ... ELSE e END
    kSubstr,   // substring(expr, start(1-based), len)
    kIsNull,
  };

  enum class Arith { kAdd, kSub, kMul, kDiv };
  enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

  Value Eval(const Row& row) const;

  Kind kind = Kind::kConst;
  int column = 0;
  Value constant;
  Arith arith = Arith::kAdd;
  Cmp cmp = Cmp::kEq;
  std::string pattern;            // kLike
  int substr_start = 1;           // kSubstr (1-based)
  int substr_len = 0;
  std::vector<std::shared_ptr<Expr>> args;  // operands / WHEN-THEN pairs+ELSE
};

using ExprPtr = std::shared_ptr<Expr>;

ExprPtr Col(int index);
ExprPtr Lit(Value v);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Cmp(Expr::Cmp op, ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Like(ExprPtr a, std::string pattern);
/// args: cond1, val1, cond2, val2, ..., else_val
ExprPtr CaseWhen(std::vector<ExprPtr> args);
ExprPtr Substr(ExprPtr a, int start, int len);
ExprPtr IsNull(ExprPtr a);

/// SQL LIKE match with % (any run) and _ (any single char).
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace s2

#endif  // S2_QUERY_EXPR_H_
