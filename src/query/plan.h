#ifndef S2_QUERY_PLAN_H_
#define S2_QUERY_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/table_scanner.h"
#include "query/expr.h"
#include "storage/partition.h"

namespace s2 {

/// Execution context: the partition to read and the snapshot to read at.
/// The cluster module fans a plan out across partitions and unions the
/// results (shared-nothing execution, paper Section 2).
struct QueryContext {
  Partition* partition = nullptr;
  TxnId txn = 0;
  Timestamp read_ts = 0;
  /// Adaptive-execution toggles applied to every scan in the plan.
  ScanOptions scan_options;
};

/// Receives batches of output rows; returns false to stop (LIMIT).
using BatchSink = std::function<bool(std::vector<Row>&&)>;

/// A push-model physical operator. Scans and filters below are vectorized
/// (exec module); operators exchange row batches.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  virtual Status Execute(QueryContext* ctx, const BatchSink& sink) = 0;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Materializes a plan's full result.
Result<std::vector<Row>> RunPlan(PlanNode* plan, QueryContext* ctx);

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Vectorized adaptive table scan (wraps exec::TableScanner). `filter` is
/// the pushed-down condition tree; `post_filter` handles residual
/// predicates the tree cannot express (e.g. column-vs-column comparisons),
/// evaluated against the projected row.
class ScanOp : public PlanNode {
 public:
  ScanOp(std::string table, std::vector<int> projection,
         std::unique_ptr<FilterNode> filter = nullptr,
         ExprPtr post_filter = nullptr);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

  const ScanStats& stats() const { return stats_; }

 private:
  std::string table_;
  std::vector<int> projection_;
  std::unique_ptr<FilterNode> filter_;
  ExprPtr post_filter_;
  ScanStats stats_;
};

/// Row filter on arbitrary expressions.
class FilterOp : public PlanNode {
 public:
  FilterOp(PlanPtr child, ExprPtr predicate);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

/// Expression projection.
class ProjectOp : public PlanNode {
 public:
  ProjectOp(PlanPtr child, std::vector<ExprPtr> exprs);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr child_;
  std::vector<ExprPtr> exprs_;
};

enum class JoinType { kInner, kLeft, kSemi, kAnti };

/// Hash join: builds on the right child, streams the left. Output schema:
/// left columns ++ right columns (inner/left; right padded with NULLs for
/// unmatched left rows) or left columns only (semi/anti).
class HashJoinOp : public PlanNode {
 public:
  /// `right_width` is the arity of right-child rows (needed to pad NULLs
  /// when the build side is empty).
  HashJoinOp(PlanPtr left, PlanPtr right, std::vector<ExprPtr> left_keys,
             std::vector<ExprPtr> right_keys, JoinType type,
             size_t right_width);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  JoinType type_;
  size_t right_width_;
};

/// The paper's "join index filter" (Section 5.1): joins a small build side
/// against a large indexed table by probing the table's secondary index per
/// distinct build key — no false positives, no full scan. Dynamically
/// disabled (falls back to a hash join over a full scan) when the build
/// side has too many distinct keys relative to the table size.
///
/// Output schema: table projection columns ++ build-side columns.
class IndexJoinOp : public PlanNode {
 public:
  struct Stats {
    bool used_index = false;
    size_t distinct_keys = 0;
    size_t index_probes = 0;
  };

  IndexJoinOp(std::string table, std::vector<int> projection, int probe_col,
              PlanPtr build, ExprPtr build_key,
              std::unique_ptr<FilterNode> table_filter = nullptr,
              double max_key_fraction = 0.05);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

  const Stats& stats() const { return stats_; }

 private:
  std::string table_;
  std::vector<int> projection_;
  int probe_col_;
  PlanPtr build_;
  ExprPtr build_key_;
  std::unique_ptr<FilterNode> table_filter_;
  double max_key_fraction_;
  Stats stats_;
};

enum class AggKind { kCount, kCountDistinct, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggKind kind;
  ExprPtr expr;  // null for COUNT(*)
};

/// Hash aggregation. Output: group expressions then aggregate results, in
/// declaration order.
class AggregateOp : public PlanNode {
 public:
  AggregateOp(PlanPtr child, std::vector<ExprPtr> group_by,
              std::vector<AggSpec> aggs);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
};

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

/// Full sort (materializes the child).
class SortOp : public PlanNode {
 public:
  SortOp(PlanPtr child, std::vector<SortKey> keys);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitOp : public PlanNode {
 public:
  LimitOp(PlanPtr child, size_t limit);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  PlanPtr child_;
  size_t limit_;
};

/// Re-emits a pre-materialized rowset (for scalar-subquery composition).
class ValuesOp : public PlanNode {
 public:
  explicit ValuesOp(std::vector<Row> rows);
  Status Execute(QueryContext* ctx, const BatchSink& sink) override;

 private:
  std::vector<Row> rows_;
};

}  // namespace s2

#endif  // S2_QUERY_PLAN_H_
