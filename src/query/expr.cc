#include "query/expr.h"

namespace s2 {

namespace {

Value EvalArith(Expr::Arith op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_int() && b.is_int() && op != Expr::Arith::kDiv) {
    switch (op) {
      case Expr::Arith::kAdd:
        return Value(a.as_int() + b.as_int());
      case Expr::Arith::kSub:
        return Value(a.as_int() - b.as_int());
      case Expr::Arith::kMul:
        return Value(a.as_int() * b.as_int());
      default:
        break;
    }
  }
  double x = a.AsNumeric(), y = b.AsNumeric();
  switch (op) {
    case Expr::Arith::kAdd:
      return Value(x + y);
    case Expr::Arith::kSub:
      return Value(x - y);
    case Expr::Arith::kMul:
      return Value(x * y);
    case Expr::Arith::kDiv:
      return y == 0 ? Value::Null() : Value(x / y);
  }
  return Value::Null();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative glob match with backtracking on the last %.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Value Expr::Eval(const Row& row) const {
  switch (kind) {
    case Kind::kColumn:
      return row[column];
    case Kind::kConst:
      return constant;
    case Kind::kArith:
      return EvalArith(arith, args[0]->Eval(row), args[1]->Eval(row));
    case Kind::kCmp: {
      Value a = args[0]->Eval(row);
      Value b = args[1]->Eval(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      int c = a.Compare(b);
      bool result = false;
      switch (cmp) {
        case Cmp::kEq:
          result = c == 0;
          break;
        case Cmp::kNe:
          result = c != 0;
          break;
        case Cmp::kLt:
          result = c < 0;
          break;
        case Cmp::kLe:
          result = c <= 0;
          break;
        case Cmp::kGt:
          result = c > 0;
          break;
        case Cmp::kGe:
          result = c >= 0;
          break;
      }
      return Value(int64_t{result ? 1 : 0});
    }
    case Kind::kAnd: {
      Value a = args[0]->Eval(row);
      if (!a.is_null() && a.as_int() == 0) return Value(int64_t{0});
      Value b = args[1]->Eval(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value(int64_t{(a.as_int() != 0 && b.as_int() != 0) ? 1 : 0});
    }
    case Kind::kOr: {
      Value a = args[0]->Eval(row);
      if (!a.is_null() && a.as_int() != 0) return Value(int64_t{1});
      Value b = args[1]->Eval(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value(int64_t{(a.as_int() != 0 || b.as_int() != 0) ? 1 : 0});
    }
    case Kind::kNot: {
      Value a = args[0]->Eval(row);
      if (a.is_null()) return Value::Null();
      return Value(int64_t{a.as_int() == 0 ? 1 : 0});
    }
    case Kind::kLike: {
      Value a = args[0]->Eval(row);
      if (a.is_null()) return Value(int64_t{0});
      return Value(int64_t{LikeMatch(a.as_string(), pattern) ? 1 : 0});
    }
    case Kind::kCase: {
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        Value cond = args[i]->Eval(row);
        if (!cond.is_null() && cond.as_int() != 0) {
          return args[i + 1]->Eval(row);
        }
      }
      return i < args.size() ? args[i]->Eval(row) : Value::Null();
    }
    case Kind::kSubstr: {
      Value a = args[0]->Eval(row);
      if (a.is_null()) return Value::Null();
      const std::string& s = a.as_string();
      size_t start = substr_start > 0 ? static_cast<size_t>(substr_start - 1)
                                      : 0;
      if (start >= s.size()) return Value(std::string());
      return Value(s.substr(start, static_cast<size_t>(substr_len)));
    }
    case Kind::kIsNull:
      return Value(int64_t{args[0]->Eval(row).is_null() ? 1 : 0});
  }
  return Value::Null();
}

ExprPtr Col(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column = index;
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kConst;
  e->constant = std::move(v);
  return e;
}

namespace {
ExprPtr MakeArith(Expr::Arith op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kArith;
  e->arith = op;
  e->args = {std::move(a), std::move(b)};
  return e;
}
}  // namespace

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeArith(Expr::Arith::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeArith(Expr::Arith::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeArith(Expr::Arith::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeArith(Expr::Arith::kDiv, std::move(a), std::move(b));
}

ExprPtr Cmp(Expr::Cmp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCmp;
  e->cmp = op;
  e->args = {std::move(a), std::move(b)};
  return e;
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Cmp(Expr::Cmp::kGe, std::move(a), std::move(b));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAnd;
  e->args = {std::move(a), std::move(b)};
  return e;
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kOr;
  e->args = {std::move(a), std::move(b)};
  return e;
}
ExprPtr Not(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kNot;
  e->args = {std::move(a)};
  return e;
}

ExprPtr Like(ExprPtr a, std::string pattern) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLike;
  e->pattern = std::move(pattern);
  e->args = {std::move(a)};
  return e;
}

ExprPtr CaseWhen(std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCase;
  e->args = std::move(args);
  return e;
}

ExprPtr Substr(ExprPtr a, int start, int len) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kSubstr;
  e->substr_start = start;
  e->substr_len = len;
  e->args = {std::move(a)};
  return e;
}

ExprPtr IsNull(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kIsNull;
  e->args = {std::move(a)};
  return e;
}

}  // namespace s2
